//! Spatial analytics with the extension features: GROUP BY over safe
//! constraint queries (the paper's §7 open question) and exact integrals /
//! averages of polynomials over semi-linear regions (the §1 motivation:
//! "ask for the average value of a polynomial over a spatial object").
//!
//! ```text
//! cargo run --release --example spatial_analytics
//! ```

use constraint_agg::agg::{average_over_2d, group_aggregate, integral_over_2d, Aggregate};
use constraint_agg::core::Database;
use constraint_agg::logic::{parse_formula_with, VarMap};
use constraint_agg::poly::MPoly;
use constraint_agg::prelude::*;

fn main() {
    // --- GROUP BY over a mixed finite + constraint query ------------------
    let mut db = Database::new();
    // Readings(station, value); stations 1..3.
    db.add_finite_relation(
        "Readings",
        vec![
            vec![rat(1, 1), rat(12, 1)],
            vec![rat(1, 1), rat(18, 1)],
            vec![rat(2, 1), rat(7, 1)],
            vec![rat(2, 1), rat(11, 1)],
            vec![rat(2, 1), rat(6, 1)],
            vec![rat(3, 1), rat(40, 1)],
        ],
    )
    .unwrap();
    // Valid readings are constrained by a (constraint!) relation.
    db.define("Valid", &["v"], "0 <= v & v <= 30").unwrap();

    let s = db.vars_mut().intern("s");
    let v = db.vars_mut().get("v").unwrap();
    let q = parse_formula_with("Readings(s, v) & Valid(v)", db.vars_mut()).unwrap();

    println!("average valid reading per station (GROUP BY s):");
    let rows = group_aggregate(&db, &q, &[s, v], &[s], &MPoly::var(v), Aggregate::Avg).unwrap();
    for (key, avg) in &rows {
        println!("  station {} → AVG = {}", key[0], avg);
    }
    let counts = group_aggregate(&db, &q, &[s, v], &[s], &MPoly::var(v), Aggregate::Count).unwrap();
    println!(
        "  (station 3's out-of-range reading is filtered: groups = {:?})",
        counts
            .iter()
            .map(|(k, c)| (k[0].to_string(), c.to_string()))
            .collect::<Vec<_>>()
    );

    // --- Exact integrals over a semi-linear region -------------------------
    // Pollution model p(x, y) = x + 2y over the triangular district
    // {x ≥ 0, y ≥ 0, x + y ≤ 2}.
    let mut vars = VarMap::new();
    let x = vars.intern("x");
    let y = vars.intern("y");
    let district = parse_formula_with("x >= 0 & y >= 0 & x + y <= 2", &mut vars).unwrap();
    let p = MPoly::var(x) + MPoly::var(y).scale(&rat(2, 1));

    let total = integral_over_2d(&district, x, y, &p).unwrap();
    let mean = average_over_2d(&district, x, y, &p).unwrap();
    println!("\ndistrict: triangle with legs 2 (area 2)");
    println!("∫∫ (x + 2y) dA = {total} (exact rational)");
    println!("average pollution = {mean} (= total / area)");

    // Centroid: averages of the coordinate functions.
    let cx = average_over_2d(&district, x, y, &MPoly::var(x)).unwrap();
    let cy = average_over_2d(&district, x, y, &MPoly::var(y)).unwrap();
    println!("centroid = ({cx}, {cy})  — the classic (b/3, h/3)");

    // Second moment about the origin, over a region with a hole.
    let holed = parse_formula_with(
        "0 <= x & x <= 2 & 0 <= y & y <= 2 & !(0.5 <= x & x <= 1.5 & 0.5 <= y & y <= 1.5)",
        &mut vars,
    )
    .unwrap();
    let r2 = MPoly::var(x).pow(2) + MPoly::var(y).pow(2);
    let moment = integral_over_2d(&holed, x, y, &r2).unwrap();
    println!("\nsquare [0,2]² minus centered hole: ∫∫ (x²+y²) dA = {moment}");
    // Sanity: big square moment 2·(8/3)·2 = 32/3·... verified in tests; here
    // we just show exactness.
    assert!(moment.is_positive());
}
