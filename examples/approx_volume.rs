//! Approximate volume of semi-algebraic sets — the Sections 3/4/6.2 story:
//!
//! 1. the exact semi-linear engine *refuses* polynomial constraints
//!    (non-closure is real: the answer can be transcendental);
//! 2. the Theorem-4 Monte Carlo estimator answers with a uniform
//!    ε-guarantee over all parameters from a single witness sample;
//! 3. the trivial ε ≥ 1/2 approximator (Proposition 4) is the best a
//!    first-order constraint language can do by itself (Theorem 2);
//! 4. the derandomized Karpinski–Macintyre construction exists but its
//!    formulas are astronomically large (the Section-3 example).
//!
//! ```text
//! cargo run --release --example approx_volume
//! ```

use constraint_agg::approx::km::paper_example_cost;
use constraint_agg::approx::mc::UniformVolumeEstimator;
use constraint_agg::approx::sample::{sample_size, Witness};
use constraint_agg::approx::trivial::trivial_volume_approximation;
use constraint_agg::core::Database;
use constraint_agg::geom::volume_in_unit_box;
use constraint_agg::logic::parse_formula_with;
use constraint_agg::prelude::*;

fn main() {
    let mut db = Database::new();
    // A parametric family of disks: φ(r; x, y) ≡ (x−½)² + (y−½)² ≤ r².
    db.define(
        "Disk",
        &["r", "x", "y"],
        "(x - 0.5)*(x - 0.5) + (y - 0.5)*(y - 0.5) <= r*r",
    )
    .unwrap();
    let r = db.vars_mut().get("r").unwrap();
    let x = db.vars_mut().get("x").unwrap();
    let y = db.vars_mut().get("y").unwrap();
    let phi = parse_formula_with("Disk(r, x, y)", db.vars_mut()).unwrap();

    // 1. Exact engine refuses: the volume πr² is not rational.
    let refusal = volume_in_unit_box(&db.expand(&phi).unwrap(), &[r, x, y]);
    println!("exact semi-linear engine on the disk family: {refusal:?}");

    // 2. Theorem 4: one sample, uniform accuracy across all radii.
    let (eps, delta, d) = (0.05, 0.1, 4.0);
    let m = sample_size(eps, delta, d);
    println!("\nTheorem 4 estimator: M(ε={eps}, δ={delta}, d={d}) = {m} witness points");
    let mut w = Witness::new(2718);
    let est = UniformVolumeEstimator::new(&db, &phi, &[r], &[x, y], eps, delta, d, &mut w)
        .expect("Cohen–Hörmander handles the polynomial atoms");
    println!(
        "  {:>6} {:>10} {:>10} {:>8}",
        "radius", "estimate", "πr²", "error"
    );
    for k in 1..=4 {
        let radius = rat(k, 10);
        let truth = std::f64::consts::PI * radius.to_f64().powi(2);
        let got = est
            .estimate(std::slice::from_ref(&radius))
            .expect("parameter arity matches")
            .to_f64();
        println!(
            "  {:>6} {:>10.4} {:>10.4} {:>8.4}",
            radius.to_string(),
            got,
            truth,
            (got - truth).abs()
        );
    }

    // 3. The trivial approximator: valid for ε ≥ 1/2 and definable in
    //    FO+LIN — and Theorem 2 says you cannot beat it uniformly.
    let mut vars2 = constraint_agg::logic::VarMap::new();
    let xs: Vec<_> = ["x", "y"].iter().map(|n| vars2.intern(n)).collect();
    for src in ["x + y <= 1", "x >= 0.99", "false"] {
        let f = parse_formula_with(src, &mut vars2).unwrap();
        let t = trivial_volume_approximation(&f, &xs).unwrap();
        println!("trivial approx of VOL_I({src}) = {t}");
    }

    // 4. Why not derandomize? The Karpinski–Macintyre formula sizes.
    println!("\nKarpinski–Macintyre construction at ε = 1/10 (lower-bound model):");
    for n in [8usize, 32] {
        let c = paper_example_cost(n, 0.1);
        println!(
            "  |U| = {n:>3}: sample {} pts, {:.2e} atoms, {:.2e} quantifiers",
            c.sample_size, c.atoms, c.quantifiers
        );
    }
    println!("  — as the paper puts it: infeasible in the constraint database context.");
}
