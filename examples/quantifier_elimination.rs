//! A tour of the quantifier-elimination engines — the algorithmic heart of
//! the constraint-database closure property.
//!
//! ```text
//! cargo run --release --example quantifier_elimination
//! ```

use constraint_agg::logic::{display_formula, parse_formula, parse_formula_with, VarMap};
use constraint_agg::qe::{
    decide_sentence, eliminate, equivalent, fourier_motzkin, hoermander, loos_weispfenning,
};

fn main() {
    // Linear elimination two ways.
    let mut vars = VarMap::new();
    let q = parse_formula_with("exists y. x < 2*y & 3*y < z & y != 1", &mut vars).unwrap();
    let fm = fourier_motzkin(&q).unwrap();
    let lw = loos_weispfenning(&q).unwrap();
    println!("query: ∃y. x < 2y ∧ 3y < z ∧ y ≠ 1");
    println!("  Fourier–Motzkin    → {}", display_formula(&fm, &vars));
    println!("  Loos–Weispfenning  → {}", display_formula(&lw, &vars));
    println!("  equivalent? {}", equivalent(&fm, &lw).unwrap());

    // Polynomial elimination: the discriminant emerges from the algebra.
    let mut vars2 = VarMap::new();
    let qp = parse_formula_with("exists x. x*x + b*x + 1 = 0", &mut vars2).unwrap();
    let qf = hoermander(&qp).unwrap();
    println!("\n∃x. x² + bx + 1 = 0   (Cohen–Hörmander)");
    println!("  → {}", display_formula(&qf, &vars2));
    println!("  (semantically: b ≤ −2 ∨ b ≥ 2, i.e. b² − 4 ≥ 0)");

    // Sentences: Tarski decidability in action.
    println!("\ndecisions over the real field:");
    for src in [
        "forall x. x*x >= 0",
        "exists x. x*x = 2",
        "forall a, b, c. (a != 0 & b*b - 4*a*c >= 0) -> exists x. a*x*x + b*x + c = 0",
        "forall x. exists y. y > x*x",
        "exists y. forall x. y > x*x",
    ] {
        let (f, _) = parse_formula(src).unwrap();
        println!("  {:<74} {}", src, decide_sentence(&f).unwrap());
    }

    // The dispatcher picks the right engine by constraint class.
    let (lin, linv) = parse_formula("exists u. x <= u & u <= y").unwrap();
    let (pol, polv) = parse_formula("exists u. u*u <= x").unwrap();
    println!("\ndispatcher:");
    println!(
        "  linear     → {}",
        display_formula(&eliminate(&lin).unwrap(), &linv)
    );
    println!(
        "  polynomial → {}",
        display_formula(&eliminate(&pol).unwrap(), &polv)
    );
}
