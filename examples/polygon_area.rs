//! The paper's Section-5 worked example: computing the area of a convex
//! polygon with the FO+POLY+SUM machinery — a fan triangulation produced
//! by a range-restricted query and a deterministic triangle-area formula,
//! summed.
//!
//! ```text
//! cargo run --example polygon_area
//! ```

use constraint_agg::agg::{polygon_area_sum_term, polygon_area_via_language};
use constraint_agg::geom::{convex_hull, polygon_area, triangulate_fan};
use constraint_agg::prelude::*;

fn main() {
    // A convex polygon given as a point cloud (interior points included —
    // the FO+POLY vertex test "a ∉ conv(P − {a})" filters them).
    let cloud = vec![
        (rat(0, 1), rat(0, 1)),
        (rat(4, 1), rat(0, 1)),
        (rat(6, 1), rat(3, 1)),
        (rat(4, 1), rat(6, 1)),
        (rat(0, 1), rat(5, 1)),
        (rat(2, 1), rat(2, 1)), // interior
        (rat(3, 1), rat(1, 1)), // interior
    ];

    let hull = convex_hull(&cloud);
    println!("vertices of P ({}):", hull.len());
    for (x, y) in &hull {
        println!("  ({x}, {y})");
    }

    let tris = triangulate_fan(&hull);
    println!(
        "\nρ output — the fan triangulation ({} triangles):",
        tris.len()
    );
    for [a, b, c] in &tris {
        println!("  ({}, {}) ({}, {}) ({}, {})", a.0, a.1, b.0, b.1, c.0, c.1);
    }

    let by_sum = polygon_area_sum_term(&cloud);
    let by_lang = polygon_area_via_language(&cloud).unwrap();
    let by_shoelace = polygon_area(&hull);
    println!("\narea via Σ_ρ γ (direct determinants) = {by_sum}");
    println!("area via Σ_ρ γ (γ evaluated as a deterministic FO+POLY formula) = {by_lang}");
    println!("area via shoelace (reference)        = {by_shoelace}");
    assert_eq!(by_sum, by_shoelace);
    assert_eq!(by_lang, by_shoelace);
    println!("\nall three agree exactly — 'the above method codes a standard computation");
    println!("of area used in computational geometry … in fact used in GISs' (§5).");
}
