//! A GIS-flavoured scenario — the application domain that motivates the
//! paper's introduction: land-use zones as semi-linear sets, spatial
//! queries, and *aggregation* (areas, counts, averages) over them.
//!
//! ```text
//! cargo run --example gis_zoning
//! ```

use constraint_agg::agg::{aggregate, semilinear_volume, Aggregate};
use constraint_agg::core::Database;
use constraint_agg::logic::parse_formula_with;
use constraint_agg::poly::MPoly;
use constraint_agg::prelude::*;

fn main() {
    let mut db = Database::new();

    // A town plan on the [0,10]² map, as linear-constraint zones.
    db.define(
        "Residential",
        &["x", "y"],
        "0 <= x & x <= 6 & 0 <= y & y <= 4",
    )
    .unwrap();
    db.define(
        "Park",
        &["x", "y"],
        // A triangular park overlapping the residential zone.
        "x >= 4 & y >= 2 & x + y <= 10",
    )
    .unwrap();
    db.define(
        "FloodPlain",
        &["x", "y"],
        // A diagonal strip along the river y = x.
        "y - x <= 1 & x - y <= 1 & 0 <= x & x <= 10 & 0 <= y & y <= 10",
    )
    .unwrap();
    // Wells: a classical finite relation (point data).
    db.add_finite_relation(
        "Well",
        vec![
            vec![rat(1, 1), rat(1, 1)],
            vec![rat(5, 1), rat(3, 1)],
            vec![rat(9, 1), rat(9, 1)],
            vec![rat(2, 1), rat(4, 1)],
        ],
    )
    .unwrap();

    // Exact zone areas (Theorem 3: FO+POLY+SUM computes these).
    for zone in ["Residential", "Park", "FloodPlain"] {
        let a = semilinear_volume(&db, zone).unwrap();
        println!("area({zone:<12}) = {a} ≈ {:.2}", a.to_f64());
    }

    // Spatial join: the residential area at flood risk — a first-order
    // query whose output is again a constraint relation; then its area.
    let risk = db
        .query(&["x", "y"], "Residential(x, y) & FloodPlain(x, y)")
        .unwrap();
    let constraint_agg::core::Relation::FinitelyRepresentable { params, formula } = &risk else {
        unreachable!()
    };
    let risk_area = constraint_agg::geom::volume(formula, params).unwrap();
    println!(
        "area(Residential ∩ FloodPlain) = {risk_area} ≈ {:.2}",
        risk_area.to_f64()
    );

    // Padding-style query with arithmetic in arguments: a 1-unit safety
    // buffer translated zone (constraint languages compose with terms).
    let buffered = db.query(&["x", "y"], "Park(x + 1, y)").unwrap();
    println!(
        "park shifted one unit west contains (4,3)? {}",
        buffered.contains(&[rat(4, 1), rat(3, 1)])
    );

    // Classical aggregation over point data with spatial predicates:
    // how many wells are in residential-but-not-flood areas, and their
    // average x-coordinate.
    let x = db.vars_mut().intern("x");
    let y = db.vars_mut().intern("y");
    let q = parse_formula_with(
        "Well(x, y) & Residential(x, y) & !FloodPlain(x, y)",
        db.vars_mut(),
    )
    .unwrap();
    let n = aggregate(&db, &q, &[x, y], &MPoly::var(x), Aggregate::Count).unwrap();
    println!("safe residential wells: {n}");
    if !n.is_zero() {
        let ax = aggregate(&db, &q, &[x, y], &MPoly::var(x), Aggregate::Avg).unwrap();
        println!("  average x-coordinate: {ax}");
    }

    // The fraction of the residential zone that is parkland within reach —
    // exact rational arithmetic end to end.
    let park_in_res = db
        .query(&["x", "y"], "Residential(x, y) & Park(x, y)")
        .unwrap();
    let constraint_agg::core::Relation::FinitelyRepresentable { params, formula } = &park_in_res
    else {
        unreachable!()
    };
    let a = constraint_agg::geom::volume(formula, params).unwrap();
    let res_area = semilinear_volume(&db, "Residential").unwrap();
    println!(
        "share of residential land that is park: {} (exact)",
        &a / &res_area
    );
}
