//! Quickstart: constraint databases, closed querying, exact volume, and
//! SQL aggregation in five minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use constraint_agg::agg::{aggregate, semilinear_volume, Aggregate};
use constraint_agg::core::{Database, Relation};
use constraint_agg::logic::{display_formula, parse_formula_with};
use constraint_agg::poly::MPoly;
use constraint_agg::prelude::*;

fn main() {
    // 1. A constraint database: relations are *formulas*, not tuples.
    let mut db = Database::new();
    db.define("Triangle", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
        .unwrap();
    db.add_finite_relation(
        "Sensor",
        vec![
            vec![rat(1, 10), rat(2, 10)],
            vec![rat(3, 10), rat(3, 10)],
            vec![rat(8, 10), rat(9, 10)],
        ],
    )
    .unwrap();
    println!("relations: {:?}", db.relation_names().collect::<Vec<_>>());

    // 2. First-order querying with closure: the output of a query is again
    //    a quantifier-free constraint relation.
    let proj = db.query(&["x"], "exists y. Triangle(x, y)").unwrap();
    if let Relation::FinitelyRepresentable { formula, .. } = &proj {
        println!(
            "π_x(Triangle) = {}  (quantifier-free: {})",
            display_formula(formula, db.vars()),
            formula.is_quantifier_free()
        );
    }
    println!(
        "  1/2 ∈ π_x(Triangle)? {}   3/2? {}",
        proj.contains(&[rat(1, 2)]),
        proj.contains(&[rat(3, 2)])
    );

    // 3. Exact volume of a semi-linear relation (Theorem 3).
    let area = semilinear_volume(&db, "Triangle").unwrap();
    println!("VOLUME(Triangle) = {area} (exactly 1/2)");

    // 4. Classical aggregates over safe (finite) query outputs.
    let x = db.vars_mut().intern("x");
    let y = db.vars_mut().intern("y");
    let q = parse_formula_with("Sensor(x, y) & Triangle(x, y)", db.vars_mut()).unwrap();
    let count = aggregate(&db, &q, &[x, y], &MPoly::var(x), Aggregate::Count).unwrap();
    let avg_x = aggregate(&db, &q, &[x, y], &MPoly::var(x), Aggregate::Avg).unwrap();
    println!("sensors inside the triangle: {count}, average x-coordinate {avg_x}");

    // 5. Exact rational arithmetic underneath it all.
    let a = rat(1, 3) + rat(1, 6);
    assert_eq!(a, rat(1, 2));
    println!("1/3 + 1/6 = {a} — no floating point was harmed");
}
