#!/usr/bin/env bash
# Tier-1 gate plus kernel checks. Offline by construction: rand, proptest
# and criterion are vendored as path crates under crates/, so no registry
# or network access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

# Every test phase runs under a wall-clock cap: a hang (the failure mode
# the budget subsystem exists to prevent) fails CI instead of wedging it.
TEST_TIMEOUT="${TEST_TIMEOUT:-900}"
run_capped() { timeout --signal=KILL "$TEST_TIMEOUT" "$@"; }

echo "== format =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tier-1 tests =="
run_capped cargo test -q --offline

echo "== workspace tests =="
run_capped cargo test -q --workspace --offline

echo "== kernel/oracle parity =="
run_capped cargo test -q --offline -p cqa-logic --test compile_props

echo "== thread-count determinism =="
run_capped cargo test -q --offline -p cqa-approx --test thread_determinism

echo "== static analysis demos =="
cargo run -q --offline -p cqa-bench --bin cqa-lint -- \
  --max-atoms inf --max-quantifiers inf examples/lint/endpoints.cqa
if cargo run -q --offline -p cqa-bench --bin cqa-lint -- examples/lint/broken.cqa; then
  echo "cqa-lint should have failed on broken.cqa" >&2
  exit 1
fi

echo "== budget smoke check (blow-up query must trip, fast) =="
# A combinatorially explosive query under a 10 ms budget: the dynamic pass
# must exit non-zero with a budget diagnostic *promptly* — the 30 s cap is
# the hang detector, not the expected runtime.
if timeout --signal=KILL 30 \
    cargo run -q --offline -p cqa-bench --bin cqa-lint -- \
    --timeout-ms 10 examples/lint/blowup.cqa; then
  echo "cqa-lint --timeout-ms 10 should have tripped on blowup.cqa" >&2
  exit 1
fi

echo "CI OK"
