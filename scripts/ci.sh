#!/usr/bin/env bash
# Tier-1 gate plus kernel checks. Offline by construction: rand, proptest
# and criterion are vendored as path crates under crates/, so no registry
# or network access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

# Every test phase runs under a wall-clock cap: a hang (the failure mode
# the budget subsystem exists to prevent) fails CI instead of wedging it.
TEST_TIMEOUT="${TEST_TIMEOUT:-900}"
run_capped() { timeout --signal=KILL "$TEST_TIMEOUT" "$@"; }

echo "== format =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tier-1 tests =="
run_capped cargo test -q --offline

echo "== workspace tests =="
run_capped cargo test -q --workspace --offline

echo "== kernel/oracle parity =="
run_capped cargo test -q --offline -p cqa-logic --test compile_props

echo "== batch kernel parity (SoA sweep vs per-point eval) =="
run_capped cargo test -q --offline -p cqa-logic --test batch_parity

echo "== thread-count determinism =="
run_capped cargo test -q --offline -p cqa-approx --test thread_determinism

echo "== IR parity (boxed tree vs hash-consed arena) =="
run_capped cargo test -q --offline -p cqa-qe --test ir_parity

echo "== absint soundness (verdicts vs QE oracle, box containment) =="
run_capped cargo test -q --offline -p cqa-analyze --test absint_soundness

echo "== planner parity (planned vs fixed QE, subplan-hit determinism) =="
run_capped cargo test -q --offline -p cqa-qe --test plan_parity

echo "== storage durability (kill-and-replay, torn tail, crash-point sweep) =="
run_capped cargo test -q --offline -p cqa-engine --test storage

echo "== serving layer (pipelining order/parity, shard bit-identity, idle sessions, busy path, body caps) =="
run_capped cargo test -q --offline -p cqa-engine --test serving

echo "== E16 smoke (FM dedup ratio; >= 2x key-cost floor asserted inside) =="
run_capped ./target/release/report e16

echo "== E17 smoke (batched kernel; >= 2x floor + bit-identity asserted inside) =="
run_capped ./target/release/report e17

echo "== E18 smoke (absint; >= 10x statically-empty floor + bit-identity asserted inside) =="
run_capped ./target/release/report e18

echo "== E19 smoke (QE planner; >= 2x planned+shared floor + bit-identity asserted inside) =="
run_capped ./target/release/report e19

echo "== E20 smoke (durable storage; >= 5x recovered-boot floor + bit-identity asserted inside) =="
run_capped ./target/release/report e20

echo "== E21 smoke (serving layer; >= 2x reactor-throughput floor + bit-identity asserted inside) =="
run_capped ./target/release/report e21

echo "== static analysis demos =="
cargo run -q --offline -p cqa-bench --bin cqa-lint -- \
  --max-atoms inf --max-quantifiers inf examples/lint/endpoints.cqa
if cargo run -q --offline -p cqa-bench --bin cqa-lint -- examples/lint/broken.cqa; then
  echo "cqa-lint should have failed on broken.cqa" >&2
  exit 1
fi
# The diagnostic catalog is addressable at runtime. (Plain grep, not -q:
# early pipe close would hit the linter with SIGPIPE/EPIPE.)
cargo run -q --offline -p cqa-bench --bin cqa-lint -- --explain CQA011 \
  | grep "statically" > /dev/null
if cargo run -q --offline -p cqa-bench --bin cqa-lint -- --explain CQA999; then
  echo "cqa-lint --explain should have failed on an unknown code" >&2
  exit 1
fi

echo "== rustdoc (deny warnings; vendored crates excluded) =="
RUSTDOCFLAGS="-D warnings" run_capped cargo doc --no-deps --workspace --offline \
  --exclude proptest --exclude rand --exclude criterion

echo "== budget smoke check (blow-up query must trip, fast) =="
# A combinatorially explosive query under a 10 ms budget: the dynamic pass
# must exit non-zero with a budget diagnostic *promptly* — the 30 s cap is
# the hang detector, not the expected runtime.
if timeout --signal=KILL 30 \
    cargo run -q --offline -p cqa-bench --bin cqa-lint -- \
    --timeout-ms 10 examples/lint/blowup.cqa; then
  echo "cqa-lint --timeout-ms 10 should have tripped on blowup.cqa" >&2
  exit 1
fi

echo "== server smoke test (cqa-serve / cqa-shell over TCP) =="
# Ephemeral port; the whole round-trip runs under the hang-detector cap.
# Asserts an exact answer, an (ε,δ)-tagged degraded answer, a CQA-diagnostic
# rejection over the wire, and a clean SHUTDOWN (both exit codes 0).
SERVE_LOG="$(mktemp)"
SHELL_LOG="$(mktemp)"
DATA_DIR="$(mktemp -d)"
trap 'rm -f "$SERVE_LOG" "$SHELL_LOG"; rm -rf "$DATA_DIR"' EXIT
./target/release/cqa-serve --workers 2 --timeout-ms 2000 \
  --preload examples/lint/endpoints.cqa > "$SERVE_LOG" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's/^LISTENING //p' "$SERVE_LOG")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "cqa-serve did not print LISTENING" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
run_capped ./target/release/cqa-shell "$ADDR" > "$SHELL_LOG" <<'EOF'
PREPARE above S(x) & x >= 0.5
EXEC above
EXEC above
VOLUME x*x + y*y <= 1
PREPARE bad Missing(q) & q > 0
STATS
@t7 EXEC above
BATCH
above
above 0.2 0.1
.
SHUTDOWN
EOF
cat "$SHELL_LOG"
# Exact answer (S ∩ [1/2, 1] has length 1/4), served from QE then the cache.
grep -q "status=exact value=1/4 cache=miss" "$SHELL_LOG"
grep -q "status=exact value=1/4 cache=hit" "$SHELL_LOG"
# Degraded answer must carry its (ε, δ) contract.
grep -q "status=approx .*eps=0.05 delta=0.05" "$SHELL_LOG"
# Lint rejection travels over the wire with the real diagnostic.
grep -q "^ERR lint" "$SHELL_LOG"
grep -q "error\[CQA004\]: unknown relation" "$SHELL_LOG"
# STATS shows the cache did its job.
grep -q "hits=1" "$SHELL_LOG"
# Pipelining surface: a tagged request echoes its tag on the response, and
# a dot-terminated BATCH body answers one inner EXEC header per spec.
grep -q "^@t7 OK EXEC above" "$SHELL_LOG"
grep -q "^OK BATCH n=2 errors=0" "$SHELL_LOG"
# Clean shutdown: the server process exits 0 (workers joined, no leak).
run_capped tail --pid="$SERVE_PID" -f /dev/null
wait "$SERVE_PID"

echo "== threaded-baseline smoke (cqa-serve --threaded parity oracle) =="
: > "$SERVE_LOG"
./target/release/cqa-serve --threaded --workers 2 --timeout-ms 2000 \
  --preload examples/lint/endpoints.cqa > "$SERVE_LOG" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's/^LISTENING //p' "$SERVE_LOG")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "cqa-serve --threaded did not print LISTENING" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
run_capped ./target/release/cqa-shell "$ADDR" > "$SHELL_LOG" <<'EOF'
PREPARE above S(x) & x >= 0.5
@t1 EXEC above
BATCH
above
.
SHUTDOWN
EOF
cat "$SHELL_LOG"
# Same protocol surface as the reactor front end.
grep -q "^@t1 OK EXEC above status=exact value=1/4" "$SHELL_LOG"
grep -q "^OK BATCH n=1 errors=0" "$SHELL_LOG"
run_capped tail --pid="$SERVE_PID" -f /dev/null
wait "$SERVE_PID"

echo "== crash-recovery smoke (cqa-serve --data-dir, SIGKILL, recovered boot) =="
# Session 1: attach a durable database, load, prepare, run cold. Then the
# server is killed with SIGKILL — no shutdown, no flush. The restarted
# server must replay the WAL and serve the same answer from the persisted
# warm cache.
start_durable_serve() {
  : > "$SERVE_LOG"
  ./target/release/cqa-serve --workers 2 --timeout-ms 5000 \
    --data-dir "$DATA_DIR" > "$SERVE_LOG" &
  SERVE_PID=$!
  ADDR=""
  for _ in $(seq 1 50); do
    ADDR="$(sed -n 's/^LISTENING //p' "$SERVE_LOG")"
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "cqa-serve --data-dir did not print LISTENING" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
}
start_durable_serve
run_capped ./target/release/cqa-shell "$ADDR" > "$SHELL_LOG" <<'EOF'
PERSIST main
LOAD rel S(y) := (0 <= y & y <= 1/2) | (3/4 <= y & y <= 2)
PREPARE band S(x) & x <= 1
EXEC band
CLOSE
EOF
cat "$SHELL_LOG"
grep -q "OK PERSIST main statements=0" "$SHELL_LOG"
grep -q "status=exact value=3/4 cache=miss" "$SHELL_LOG"
# SIGKILL: the only durability that counts is what is already fsynced.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
# Session 2, after the recovered boot: the database replays from the WAL
# (statements=1) and the prepared query is answered bit-identically from
# the warm-started cache, with the recovery counters visible in STATS.
start_durable_serve
run_capped ./target/release/cqa-shell "$ADDR" > "$SHELL_LOG" <<'EOF'
PERSIST main
PREPARE band S(x) & x <= 1
EXEC band
STATS
SHUTDOWN
EOF
cat "$SHELL_LOG"
grep -q "OK PERSIST main statements=1" "$SHELL_LOG"
grep -q "status=exact value=3/4 cache=hit" "$SHELL_LOG"
grep -q "wal records=" "$SHELL_LOG"
grep -q "warm loaded=" "$SHELL_LOG"
run_capped tail --pid="$SERVE_PID" -f /dev/null
wait "$SERVE_PID"

echo "CI OK"
