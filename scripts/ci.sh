#!/usr/bin/env bash
# Tier-1 gate plus kernel checks. Offline by construction: rand, proptest
# and criterion are vendored as path crates under crates/, so no registry
# or network access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== format =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tier-1 tests =="
cargo test -q --offline

echo "== workspace tests =="
cargo test -q --workspace --offline

echo "== kernel/oracle parity =="
cargo test -q --offline -p cqa-logic --test compile_props

echo "== thread-count determinism =="
cargo test -q --offline -p cqa-approx --test thread_determinism

echo "== static analysis demos =="
cargo run -q --offline -p cqa-bench --bin cqa-lint -- \
  --max-atoms inf --max-quantifiers inf examples/lint/endpoints.cqa
if cargo run -q --offline -p cqa-bench --bin cqa-lint -- examples/lint/broken.cqa; then
  echo "cqa-lint should have failed on broken.cqa" >&2
  exit 1
fi

echo "CI OK"
