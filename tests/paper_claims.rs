//! The paper's quantitative claims, as assertions.
//!
//! Each test pins down a number or behaviour the paper states. The heavier
//! statistical experiments (E1, E3, E11) run in full from the `report`
//! binary; here we run their fast counterparts plus every exactly-checkable
//! claim.

use constraint_agg::approx::km::paper_example_cost;
use constraint_agg::approx::sample::sample_size;
use constraint_agg::approx::separating::{
    find_separating_sentence, good_instance_volumes, GoodInstance,
};
use constraint_agg::approx::trivial::trivial_volume_approximation;
use constraint_agg::approx::vc::{bit_test_database, bit_test_shatters};
use constraint_agg::core::Database;
use constraint_agg::geom::{volume, volume_in_unit_box};
use constraint_agg::logic::{parse_formula_with, VarMap};
use constraint_agg::poly::Var;
use constraint_agg::prelude::*;

/// §3 worked example: `VOL_I(φ(a, b, U)) = (b² − a²)/2`.
#[test]
fn section3_example_volume_formula() {
    for (a, b) in [(0i64, 1i64), (1, 2), (1, 3)] {
        let mut vars = VarMap::new();
        let y1 = vars.intern("y1");
        let y2 = vars.intern("y2");
        let src = format!("{a}/4 < y1 & y1 < {b}/4 & 0 <= y2 & y2 <= y1");
        let f = parse_formula_with(&src, &mut vars).unwrap();
        let v = volume_in_unit_box(&f, &[y1, y2]).unwrap();
        let expect = (rat(b, 4).pow(2) - rat(a, 4).pow(2)) / rat(2, 1);
        assert_eq!(v, expect, "a={a}/4 b={b}/4");
    }
}

/// §3: the Karpinski–Macintyre construction needs ≥ 10⁹ atoms and ≥ 10¹¹
/// quantifiers at ε = 1/10 (our cost model under-approximates the real
/// construction and still exceeds both bounds).
#[test]
fn section3_blowup_numbers() {
    let c = paper_example_cost(16, 0.1);
    assert!(c.atoms >= 1e9);
    assert!(c.quantifiers >= 1e11);
}

/// §2: FO+LIN and FO+POLY are not closed under VOL_I — the arctan set.
/// Our exact engine refuses polynomial inputs; and indeed the true value
/// π/4 is irrational, so no exact rational answer exists.
#[test]
fn non_closure_arctan() {
    let mut vars = VarMap::new();
    let y = vars.intern("y");
    let z = vars.intern("z");
    let f = parse_formula_with("0 <= y & y <= 1 & 0 <= z & z + z*y*y <= 1", &mut vars).unwrap();
    assert!(volume(&f, &[y, z]).is_err());
}

/// Proposition 4: the trivial approximator achieves error ≤ 1/2 on every
/// instance, resolving volume-0 and volume-1 cases exactly.
#[test]
fn proposition4_trivial_approximation() {
    let mut vars = VarMap::new();
    let vs: Vec<Var> = ["x", "y"].iter().map(|n| vars.intern(n)).collect();
    for src in [
        "x <= y",
        "x >= 1",
        "true",
        "x = 0.25",
        "x >= 0.125 & y <= 0.875",
    ] {
        let f = parse_formula_with(src, &mut vars).unwrap();
        let est = trivial_volume_approximation(&f, &vs).unwrap();
        let truth = volume_in_unit_box(&f, &vs).unwrap();
        assert!((est - truth).abs() <= rat(1, 2), "{src}");
    }
}

/// Proposition 1 (empirical shadow): no candidate in the bounded FO_act
/// template family is a (2,2)-separating sentence.
#[test]
fn proposition1_no_separating_sentence() {
    assert!(find_separating_sentence(2.0, 2.0, 10).is_empty());
}

/// Theorem 2's reduction: good instances map to interval families whose
/// volumes encode the cardinality ratio exactly.
#[test]
fn theorem2_reduction_encodes_ratio() {
    let inst = GoodInstance::new(10, (0..10).map(|i| i % 3 == 0).collect()).unwrap();
    let (vx, vy) = good_instance_volumes(&inst);
    assert_eq!(&vx + &vy, Rat::one());
    assert!(vx.is_positive());
}

/// Proposition 5: the bit-test family shatters a log-size set.
#[test]
fn proposition5_vc_lower_bound() {
    for k in 1..=5u32 {
        assert!(bit_test_shatters(k));
        let (_, size) = bit_test_database(k);
        assert_eq!(size, (k as usize) << (k - 1));
    }
}

/// §3 sample bound: the BEHW formula is monotone the right way around and
/// matches the stated max form.
#[test]
fn sample_bound_shape() {
    let m1 = sample_size(0.1, 0.1, 4.0);
    let m2 = sample_size(0.1, 0.1, 8.0);
    assert!(m2 >= 2 * m1 - 2, "linear growth in d");
    let tiny_d = sample_size(0.25, 0.25, 0.0);
    let expect = ((4.0 / 0.25) * (2.0f64 / 0.25).log2()).ceil() as usize + 1;
    assert_eq!(tiny_d, expect);
}

/// Theorem 3 sanity on a database of the paper's own favourite shape: the
/// area of a union of two overlapping boxes through the language pipeline.
#[test]
fn theorem3_union_volume() {
    let mut db = Database::new();
    db.define(
        "U",
        &["x", "y"],
        "(0 <= x & x <= 2 & 0 <= y & y <= 2) | (1 <= x & x <= 3 & 1 <= y & y <= 3)",
    )
    .unwrap();
    assert_eq!(
        constraint_agg::agg::semilinear_volume(&db, "U").unwrap(),
        rat(7, 1)
    );
}

/// The fast experiment suite (assertions embedded in each table builder).
#[test]
fn experiment_tables_fast_subset() {
    for id in ["e2", "e4", "e6", "e7", "e8", "e12"] {
        let table = cqa_bench::run_one(id).expect("known experiment");
        assert!(!table.is_empty(), "{id} produced no output");
    }
}
