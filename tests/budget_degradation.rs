//! End-to-end contract of the budget subsystem: a blow-up query under a
//! deadline returns a typed `BudgetExceeded` *promptly*, and
//! `volume_with_fallback` degrades a budget-tripping volume query to a
//! Monte Carlo estimate tagged with its (ε, δ) guarantee instead of
//! failing.
//!
//! Two distinct blow-ups are exercised, matching where degradation can and
//! cannot help. A *QE* blow-up (the `explosive` query) trips the budget
//! typed and fast, but no estimator can rescue it — Monte Carlo membership
//! tests need the same elimination the budget just cancelled. An *exact
//! volume* blow-up (`overlapping_squares`: quantifier-free, but 2¹⁶ − 1
//! inclusion–exclusion intersections) is exactly where the fallback earns
//! its keep: sampling the quantifier-free matrix is cheap.

use constraint_agg::agg::{volume_with_fallback, VolumeOutcome, FALLBACK_DELTA};
use constraint_agg::arith::{rat, Rat};
use constraint_agg::core::Database;
use constraint_agg::logic::budget::{BudgetResource, EvalBudget};
use constraint_agg::logic::{parse_formula_with, Atom, Formula, Rel};
use constraint_agg::poly::{MPoly, Var};
use constraint_agg::qe::{eliminate_with_budget, QeError};
use std::time::{Duration, Instant};

/// Four existential quantifiers over degree-2/3 polynomial atoms: the
/// Cohen–Hörmander case split on this takes far longer than any test
/// deadline (the same query as `examples/lint/blowup.cqa`).
fn explosive(db: &mut Database) -> (constraint_agg::logic::Formula, Vec<Var>) {
    let x = db.vars_mut().intern("x");
    let f = parse_formula_with(
        "exists a. exists b. exists c. exists d. \
         (a*a + b*b + c*c + d*d <= x & a*b + b*c + c*d >= x*x \
          & a + b + c + d = x & a*a*b <= c + d)",
        db.vars_mut(),
    )
    .unwrap();
    (f, vec![x])
}

#[test]
fn explosive_qe_returns_budget_error_within_deadline() {
    let mut db = Database::new();
    let (f, _) = explosive(&mut db);
    let deadline = Duration::from_millis(50);
    let budget = EvalBudget::unlimited().with_deadline(deadline);
    let start = Instant::now();
    let r = eliminate_with_budget(&f, &budget);
    let elapsed = start.elapsed();
    match r {
        Err(QeError::Budget(b)) => {
            assert_eq!(b.resource, BudgetResource::Deadline);
            assert!(b.steps > 0, "checks must have been exercised");
        }
        other => panic!("expected a budget trip, got {other:?}"),
    }
    // Cooperative cancellation is coarse (the clock is probed every
    // CLOCK_PERIOD steps), but must still be responsive: well under a
    // second for a 50 ms deadline even on a slow machine.
    assert!(
        elapsed < Duration::from_secs(5),
        "budget trip took {elapsed:?}"
    );
}

#[test]
fn explosive_max_steps_trips_as_steps_resource() {
    let mut db = Database::new();
    let (f, _) = explosive(&mut db);
    let budget = EvalBudget::unlimited().with_max_steps(100);
    match eliminate_with_budget(&f, &budget) {
        Err(QeError::Budget(b)) => assert_eq!(b.resource, BudgetResource::Steps),
        other => panic!("expected a step-budget trip, got {other:?}"),
    }
}

/// A quantifier-free union of 16 pairwise-overlapping squares inside the
/// unit box. QE is a no-op, so the *exact volume engine* is where the work
/// is: inclusion–exclusion enumerates 2¹⁶ − 1 = 65535 cell intersections,
/// each with a satisfiability probe — far beyond a 30 ms deadline. The
/// Monte Carlo fallback only evaluates the quantifier-free matrix at
/// sample points, which is cheap.
fn overlapping_squares(db: &mut Database) -> (Formula, Vec<Var>) {
    let x = db.vars_mut().intern("x");
    let y = db.vars_mut().intern("y");
    let le = |p: MPoly| Formula::Atom(Atom::new(p, Rel::Le));
    let mut f = Formula::False;
    for i in 0..16i64 {
        let lo = Rat::new(i.into(), 32i64.into());
        let hi = &lo + &rat(1, 2);
        let cell = le(MPoly::constant(lo.clone()) - MPoly::var(x))
            .and(le(MPoly::var(x) - MPoly::constant(hi.clone())))
            .and(le(MPoly::constant(lo) - MPoly::var(y)))
            .and(le(MPoly::var(y) - MPoly::constant(hi)));
        f = f.or(cell);
    }
    (f, vec![x, y])
}

#[test]
fn volume_with_fallback_degrades_to_tagged_mc_estimate() {
    let mut db = Database::new();
    let (f, vars) = overlapping_squares(&mut db);
    let budget = EvalBudget::unlimited().with_deadline(Duration::from_millis(30));
    let eps = 0.1;
    let outcome = volume_with_fallback(&db, &f, &vars, &budget, eps).unwrap();
    match outcome {
        VolumeOutcome::Approximate {
            estimate,
            eps: tag_eps,
            delta,
            samples,
        } => {
            assert_eq!(tag_eps, eps);
            assert_eq!(delta, FALLBACK_DELTA);
            // Hoeffding count for a single fixed set.
            let expect = ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as usize + 1;
            assert_eq!(samples, expect);
            // A volume estimate over the unit box lies in [0, 1].
            let v = estimate.to_f64();
            assert!((0.0..=1.0).contains(&v), "estimate {v}");
        }
        VolumeOutcome::Exact(v) => panic!("expected degradation, got exact {v:?}"),
    }
}

#[test]
fn volume_with_fallback_stays_exact_when_budget_allows() {
    let mut db = Database::new();
    let x = db.vars_mut().intern("x");
    let y = db.vars_mut().intern("y");
    let f = parse_formula_with("x >= 0 & y >= 0 & x + y <= 1", db.vars_mut()).unwrap();
    let outcome = volume_with_fallback(&db, &f, &[x, y], &EvalBudget::unlimited(), 0.1).unwrap();
    assert!(outcome.is_exact());
    assert_eq!(*outcome.value(), constraint_agg::arith::rat(1, 2));
}

#[test]
fn volume_with_fallback_rejects_bad_eps() {
    let mut db = Database::new();
    let x = db.vars_mut().intern("x");
    let f = parse_formula_with("0 <= x & x <= 1", db.vars_mut()).unwrap();
    assert!(volume_with_fallback(&db, &f, &[x], &EvalBudget::unlimited(), 0.0).is_err());
    assert!(volume_with_fallback(&db, &f, &[x], &EvalBudget::unlimited(), 1.5).is_err());
}
