//! Property tests for the headline closure invariants, across crates.

use constraint_agg::core::{Database, Relation};
use constraint_agg::geom::volume;
use constraint_agg::logic::{Formula, VarMap};
use constraint_agg::poly::{MPoly, Var};
use constraint_agg::prelude::*;
use proptest::prelude::*;

/// Random conjunctions of half-planes through integer points.
fn halfplane_conj() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    prop::collection::vec((-3i64..=3, -3i64..=3, -6i64..=6), 1..6)
}

fn formula_of(rows: &[(i64, i64, i64)], x: Var, y: Var) -> Formula {
    let mut f = Formula::True;
    for &(a, b, c) in rows {
        if a == 0 && b == 0 {
            continue;
        }
        let poly = MPoly::var(x).scale(&Rat::from(a))
            + MPoly::var(y).scale(&Rat::from(b))
            + MPoly::constant(Rat::from(c));
        f = f.and(Formula::Atom(constraint_agg::logic::Atom::new(
            poly,
            constraint_agg::logic::Rel::Le,
        )));
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Closure: every projection query output is quantifier-free,
    /// relation-free, and linear — i.e. a semi-linear relation again.
    #[test]
    fn projection_outputs_are_semilinear(rows in halfplane_conj()) {
        let mut db = Database::new();
        let x = db.vars_mut().intern("x");
        let y = db.vars_mut().intern("y");
        let f = formula_of(&rows, x, y);
        db.add_fr_relation("R", vec![x, y], f).unwrap();
        let q = Formula::exists(
            vec![y],
            Formula::Rel { name: "R".into(), args: vec![MPoly::var(x), MPoly::var(y)] },
        );
        let out = db.eval(&q, &[x]).unwrap();
        let Relation::FinitelyRepresentable { formula, .. } = out else { panic!() };
        prop_assert!(formula.is_quantifier_free());
        prop_assert!(formula.is_relation_free());
        prop_assert!(formula.class() <= constraint_agg::logic::ConstraintClass::Linear);
    }

    /// Projection semantics: x is in the projection iff some y-witness on a
    /// fine grid exists — one direction (witness implies membership) must
    /// hold exactly.
    #[test]
    fn projection_soundness(rows in halfplane_conj()) {
        let mut db = Database::new();
        let x = db.vars_mut().intern("x");
        let y = db.vars_mut().intern("y");
        let f = formula_of(&rows, x, y);
        db.add_fr_relation("R", vec![x, y], f.clone()).unwrap();
        let q = Formula::exists(
            vec![y],
            Formula::Rel { name: "R".into(), args: vec![MPoly::var(x), MPoly::var(y)] },
        );
        let out = db.eval(&q, &[x]).unwrap();
        for xv in -4..=4i64 {
            for yv in -4..=4i64 {
                let asg = |v: Var| if v == x { rat(xv, 1) } else { rat(yv, 1) };
                if f.eval(&asg, &[]).unwrap() {
                    prop_assert!(out.contains(&[rat(xv, 1)]),
                        "witness ({xv},{yv}) exists but projection rejects {xv}");
                }
            }
        }
    }

    /// Volume is monotone under adding constraints and under union.
    #[test]
    fn volume_monotonicity(rows in halfplane_conj(), extra in (-3i64..=3, -3i64..=3, -6i64..=6)) {
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let base = formula_of(&rows, x, y);
        let tightened = base.clone().and(formula_of(&[extra], x, y));
        // Clip to a box so volumes are finite.
        let boxf = formula_of(&[(1, 0, -5), (-1, 0, -5), (0, 1, -5), (0, -1, -5)], x, y);
        let v_base = volume(&base.clone().and(boxf.clone()), &[x, y]).unwrap();
        let v_tight = volume(&tightened.and(boxf), &[x, y]).unwrap();
        prop_assert!(v_tight <= v_base);
    }

    /// The exact volume engine agrees with brute-force grid counting to
    /// within the grid resolution.
    #[test]
    fn volume_close_to_grid_count(rows in halfplane_conj()) {
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let boxf = formula_of(&[(1, 0, -3), (-1, 0, -3), (0, 1, -3), (0, -1, -3)], x, y);
        let f = formula_of(&rows, x, y).and(boxf);
        let v = volume(&f, &[x, y]).unwrap().to_f64();
        // 60×60 grid over [-3,3]².
        let n = 60;
        let mut hits = 0usize;
        for i in 0..n {
            for j in 0..n {
                let xv = rat(-3, 1) + rat(6, 1) * rat(2 * i as i64 + 1, 2 * n as i64);
                let yv = rat(-3, 1) + rat(6, 1) * rat(2 * j as i64 + 1, 2 * n as i64);
                let asg = |v: Var| if v == x { xv.clone() } else { yv.clone() };
                if f.eval(&asg, &[]).unwrap() {
                    hits += 1;
                }
            }
        }
        let approx = 36.0 * hits as f64 / (n * n) as f64;
        // Perimeter error bound: cells cut by up to 5 lines of length ≤ 6√2.
        prop_assert!((v - approx).abs() < 6.0, "exact {v} vs grid {approx}");
    }
}
