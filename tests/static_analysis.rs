//! Integration tests for the `cqa-analyze` static checker: the demo
//! programs under `examples/lint/`, the acceptance lints (unbound Σ-range
//! variable, non-deterministic γ, out-of-arity relation atom, KM blow-up),
//! and the guarantee that well-formed queries used across the test suite
//! lint clean.

use constraint_agg::analyze::{
    analyze_formula, analyze_source, AnalyzerConfig, Code, GammaStatus, Schema, Statement,
};
use constraint_agg::approx::km::KmBudget;
use constraint_agg::prelude::*;

fn example(name: &str) -> String {
    let path = format!("{}/examples/lint/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn permissive() -> AnalyzerConfig {
    let mut cfg = AnalyzerConfig::default();
    cfg.cost.budget = KmBudget {
        max_atoms: f64::INFINITY,
        max_quantifiers: f64::INFINITY,
    };
    cfg
}

#[test]
fn endpoints_demo_lints_clean_and_evaluates() {
    let src = example("endpoints.cqa");
    let (prog, analysis) = analyze_source(&src, &permissive());
    assert!(
        analysis.diagnostics.is_empty(),
        "{}",
        analysis.render(&src, "endpoints.cqa")
    );
    // Both Σ-terms are certified: evaluation skips the semantic QE check.
    let sums: Vec<_> = analysis
        .reports
        .iter()
        .filter(|r| r.kind == "sum")
        .collect();
    assert_eq!(sums.len(), 2);
    assert!(sums.iter().all(|r| r.gamma == Some(GammaStatus::Certified)));
    // And the program actually evaluates: endpoints 0, 1/2, 3/4, 2 → 13/4.
    let db = prog.to_database().unwrap();
    let Some(Statement::Sum(s)) = prog.statements.iter().find(|s| s.name() == "EndpointSum") else {
        panic!("EndpointSum missing")
    };
    assert_eq!(s.to_sum_term().eval(&db).unwrap(), rat(13, 4));
}

#[test]
fn broken_demo_raises_every_advertised_lint() {
    let src = example("broken.cqa");
    let (_, analysis) = analyze_source(&src, &permissive());
    let codes: Vec<Code> = analysis.diagnostics.iter().map(|d| d.code).collect();
    for expected in [
        Code::UnboundVariable,       // CQA001
        Code::ShadowedBinder,        // CQA002
        Code::UnusedBinder,          // CQA003
        Code::UnknownRelation,       // CQA004
        Code::ArityMismatch,         // CQA005
        Code::SigmaRangeUnbound,     // CQA006
        Code::GammaNotCertified,     // CQA007
        Code::StaticallyEmpty,       // CQA011
        Code::StaticallyTrivial,     // CQA012
        Code::UnboundedFreeVariable, // CQA013
    ] {
        assert!(
            codes.contains(&expected),
            "missing {expected:?} in {codes:?}"
        );
    }
    assert!(analysis.has_errors());
    // Every finding carries a real span into the source.
    for d in &analysis.diagnostics {
        assert!(d.span.end > d.span.start, "empty span on {:?}", d.code);
        assert!(d.span.end <= src.len());
    }
    // Spot-check one span: the CQA006 points at the leaking filter atom.
    let leak = analysis
        .diagnostics
        .iter()
        .find(|d| d.code == Code::SigmaRangeUnbound)
        .unwrap();
    assert_eq!(&src[leak.span.start..leak.span.end], "w > u");
}

#[test]
fn km_blowup_lint_reproduces_the_section3_example() {
    // The §3 worked example at ε = 1/10: the analyzer predicts ≥ 10⁹ atoms
    // and ≥ 10¹¹ quantifiers and raises CQA008 under the default budget.
    let src = "\
rel U(u) := u = 0 | u = 1
query Phi(x1, x2) := U(x1) & U(x2) & exists y1 y2. x1 < y1 & y1 < x2 & 0 <= y2 & y2 <= y1
";
    let mut cfg = AnalyzerConfig::default();
    cfg.cost.eps = 0.1;
    cfg.cost.db_size = 16;
    let (_, analysis) = analyze_source(src, &cfg);
    let blow = analysis
        .diagnostics
        .iter()
        .find(|d| d.code == Code::KmBlowup)
        .expect("CQA008 expected");
    assert_eq!(&src[blow.span.start..blow.span.end], "Phi");
    let cost = analysis
        .reports
        .iter()
        .find(|r| r.name == "Phi")
        .and_then(|r| r.cost)
        .unwrap();
    assert!(cost.km.atoms >= 1e9, "atoms = {:.3e}", cost.km.atoms);
    assert!(
        cost.km.quantifiers >= 1e11,
        "quantifiers = {:.3e}",
        cost.km.quantifiers
    );
}

#[test]
fn representative_wellformed_queries_lint_clean() {
    // Queries of the shapes used across tests/ (zoning, spatial analytics,
    // closure properties): all well-formed, all error-free under analysis.
    let mut db = Database::new();
    db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
        .unwrap();
    db.define("Zone", &["x", "y"], "0 <= x & x <= 2 & 0 <= y & y <= 2")
        .unwrap();
    let schema: Schema = [("T".to_string(), 2), ("Zone".to_string(), 2)].into();
    for (src, params) in [
        ("exists y. T(x, y)", vec!["x"]),
        ("T(x, y) & Zone(x, y)", vec!["x", "y"]),
        ("forall u. Zone(u, y) | u > 2", vec!["y"]),
        ("exists u v. T(u, v) & x = u + v", vec!["x"]),
    ] {
        let mut vars = db.vars().clone();
        let ps: Vec<_> = params.iter().map(|p| vars.intern(p)).collect();
        let f = parse_formula_with(src, &mut vars).unwrap();
        let a = analyze_formula(&f, &ps, &schema, &vars, &permissive());
        assert!(!a.has_errors(), "`{src}`: {:?}", a.diagnostics);
    }
}

#[test]
fn certified_sum_skips_semantic_determinism_check() {
    // γ mentions a relation, so the semantic `is_deterministic` would
    // reject it (conservatively); the syntactic certificate lets it
    // evaluate anyway — proof that certified programs bypass the QE check.
    let src = "\
rel S(y) := y = 1 | y = 4
sum T(w) := true | END[y. S(y)] ; xout . xout = 2*w & S(w)
";
    let (prog, analysis) = analyze_source(src, &permissive());
    assert!(!analysis.has_errors(), "{}", analysis.render(src, "t.cqa"));
    assert_eq!(analysis.reports[1].gamma, Some(GammaStatus::Certified));
    let db = prog.to_database().unwrap();
    let Some(Statement::Sum(s)) = prog.statements.iter().find(|s| s.name() == "T") else {
        panic!()
    };
    let term = s.to_sum_term();
    assert!(!constraint_agg::agg::is_deterministic(&term.gamma).unwrap());
    assert_eq!(term.eval(&db).unwrap(), rat(10, 1));
}
