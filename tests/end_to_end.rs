//! Cross-crate integration tests: the full constraint-database pipeline
//! from parsing through querying, safety, aggregation and volume.

use constraint_agg::agg::{aggregate, semilinear_volume, Aggregate, SumTerm};
use constraint_agg::agg::{Deterministic, RangeRestricted};
use constraint_agg::core::{enumerate_finite, Database, Relation};
use constraint_agg::geom::{volume, volume_in_unit_box};
use constraint_agg::logic::{parse_formula_with, Formula};
use constraint_agg::poly::MPoly;
use constraint_agg::prelude::*;

#[test]
fn query_then_volume_pipeline() {
    let mut db = Database::new();
    db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
        .unwrap();
    db.define("Band", &["x", "y"], "y >= 0.25 & y <= 0.75")
        .unwrap();
    // The part of the triangle inside the band: a first-order join whose
    // output feeds the exact volume engine.
    let out = db.query(&["x", "y"], "T(x, y) & Band(x, y)").unwrap();
    let Relation::FinitelyRepresentable { params, formula } = &out else {
        panic!("expected constraint output");
    };
    let v = volume(formula, params).unwrap();
    // Area between y = 1/4 and y = 3/4 inside the unit right triangle:
    // ∫_{1/4}^{3/4} (1 − y) dy = [y − y²/2] = (3/4 − 9/32) − (1/4 − 1/32) = 1/4.
    assert_eq!(v, rat(1, 4));
}

#[test]
fn closure_composes_across_queries() {
    let mut db = Database::new();
    db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
        .unwrap();
    let first = db.query(&["x"], "exists y. T(x, y) & y >= 0.5").unwrap();
    let Relation::FinitelyRepresentable { params, formula } = first else {
        panic!()
    };
    assert!(formula.is_quantifier_free());
    db.add_fr_relation("Proj", params, formula).unwrap();
    let second = db.query(&["x"], "Proj(x) & Proj(x + 0.25)").unwrap();
    assert!(second.contains(&[rat(1, 8)]));
    assert!(!second.contains(&[rat(2, 5)])); // 2/5 + 1/4 = 13/20 > 1/2
}

#[test]
fn polynomial_pipeline_through_hoermander() {
    let mut db = Database::new();
    db.define("Disk", &["x", "y"], "x*x + y*y <= 1").unwrap();
    // Width of the disk at height y: the projection is [-1, 1] at y = 0.
    let out = db.query(&["x"], "Disk(x, 0.6)").unwrap();
    // At y = 3/5: x² ≤ 1 − 9/25 = 16/25, so |x| ≤ 4/5.
    assert!(out.contains(&[rat(4, 5)]));
    assert!(out.contains(&[rat(-4, 5)]));
    assert!(!out.contains(&[rat(9, 10)]));
}

#[test]
fn safety_gate_rejects_infinite_aggregation() {
    let mut db = Database::new();
    db.define("S", &["x"], "0 <= x & x <= 1").unwrap();
    let x = db.vars_mut().get("x").unwrap();
    let q = parse_formula_with("S(x)", db.vars_mut()).unwrap();
    assert!(aggregate(&db, &q, &[x], &MPoly::var(x), Aggregate::Sum).is_err());
    // But a finite subset aggregates fine.
    let q2 = parse_formula_with("S(x) & (x = 0.25 | x = 0.75)", db.vars_mut()).unwrap();
    assert_eq!(
        aggregate(&db, &q2, &[x], &MPoly::var(x), Aggregate::Sum).unwrap(),
        rat(1, 1)
    );
}

#[test]
fn sum_term_full_language_flow() {
    // Σ over pairs of endpoints of a projection, with a filter and a
    // non-trivial deterministic summand — every layer involved.
    let mut db = Database::new();
    db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
        .unwrap();
    let y = db.vars_mut().intern("yy");
    let w1 = db.vars_mut().intern("w1");
    let w2 = db.vars_mut().intern("w2");
    let v = db.vars_mut().intern("vout");
    let term = SumTerm {
        range: RangeRestricted {
            filter: parse_formula_with("w1 < w2", db.vars_mut()).unwrap(),
            tuple_vars: vec![w1, w2],
            end_var: y,
            end_formula: parse_formula_with("exists x. T(x, yy)", db.vars_mut()).unwrap(),
        },
        gamma: Deterministic {
            out_var: v,
            in_vars: vec![w1, w2],
            formula: parse_formula_with("vout = (w2 - w1) * (w2 - w1)", db.vars_mut()).unwrap(),
        },
    };
    // Endpoints of π_y(T) = [0,1]: {0, 1}; single pair (0,1): (1−0)² = 1.
    assert_eq!(term.eval(&db).unwrap(), rat(1, 1));
}

#[test]
fn finite_enumeration_through_database() {
    let mut db = Database::new();
    db.define("Q", &["x"], "x*x - 3*x + 2 = 0").unwrap();
    let x = db.vars_mut().get("x").unwrap();
    let q = parse_formula_with("Q(x)", db.vars_mut()).unwrap();
    let expanded = db.expand(&q).unwrap();
    let qf = constraint_agg::qe::eliminate(&expanded).unwrap();
    let tuples = enumerate_finite(&qf, &[x]).unwrap();
    assert_eq!(tuples, vec![vec![rat(1, 1)], vec![rat(2, 1)]]);
}

#[test]
fn volume_operators_match_paper_notation() {
    // VOL vs VOL_I on the same set: a half-plane is unbounded for VOL but
    // fine for VOL_I.
    let mut db = Database::new();
    db.define("H", &["x", "y"], "x + y <= 1").unwrap();
    let x = db.vars_mut().get("x").unwrap();
    let yv = db.vars_mut().get("y").unwrap();
    let q = parse_formula_with("H(x, y)", db.vars_mut()).unwrap();
    let f = db.expand(&q).unwrap();
    assert!(volume(&f, &[x, yv]).is_err());
    assert_eq!(volume_in_unit_box(&f, &[x, yv]).unwrap(), rat(1, 2));
}

#[test]
fn theorem3_volume_every_dimension() {
    for (dim, expect) in [
        (1usize, rat(1, 1)),
        (2, rat(1, 2)),
        (3, rat(1, 6)),
        (4, rat(1, 24)),
    ] {
        let mut db = Database::new();
        let names: Vec<String> = (0..dim).map(|i| format!("x{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let src = if dim == 1 {
            "x0 >= 0 & x0 <= 1".to_string()
        } else {
            let mut parts: Vec<String> = names.iter().map(|n| format!("{n} >= 0")).collect();
            parts.push(format!("{} <= 1", names.join(" + ")));
            parts.join(" & ")
        };
        db.define("S", &name_refs, &src).unwrap();
        assert_eq!(semilinear_volume(&db, "S").unwrap(), expect, "dim {dim}");
    }
}

#[test]
fn active_domain_and_fr_relations_mix() {
    let mut db = Database::new();
    db.define("Zone", &["x"], "0 <= x & x <= 10").unwrap();
    db.add_finite_relation(
        "P",
        vec![vec![rat(2, 1)], vec![rat(5, 1)], vec![rat(12, 1)]],
    )
    .unwrap();
    // Points inside the zone such that every active-domain element to their
    // left is also in the zone.
    let out = db
        .query(
            &["x"],
            "P(x) & Zone(x) & Aadom u. (P(u) & u < x -> Zone(u))",
        )
        .unwrap();
    assert!(out.contains(&[rat(2, 1)]));
    assert!(out.contains(&[rat(5, 1)]));
    assert!(!out.contains(&[rat(12, 1)]));
}

#[test]
fn formula_roundtrip_through_display() {
    let mut db = Database::new();
    db.define("T", &["x", "y"], "x >= 0 & y >= 0 & 2*x + 3*y <= 6")
        .unwrap();
    let out = db.query(&["x"], "exists y. T(x, y)").unwrap();
    let Relation::FinitelyRepresentable { formula, .. } = &out else {
        panic!()
    };
    let printed = constraint_agg::logic::display_formula(formula, db.vars());
    let mut vars2 = db.vars().clone();
    let reparsed = parse_formula_with(&printed, &mut vars2).unwrap();
    assert_eq!(&reparsed, formula);
}

#[test]
fn mixed_class_queries_dispatch_correctly() {
    let mut db = Database::new();
    db.define("Lin", &["x"], "0 <= x & x <= 4").unwrap();
    db.define("Par", &["x", "y"], "y = x*x").unwrap();
    // Heights of the parabola over the linear domain, at a sample point.
    let out = db
        .query(&["y"], "exists x. Lin(x) & Par(x, y) & x = 1.5")
        .unwrap();
    assert!(out.contains(&[rat(9, 4)]));
    assert!(!out.contains(&[rat(2, 1)]));
}

#[test]
fn relation_free_queries_still_work() {
    let mut db = Database::new();
    let out = db
        .query(&["x"], "exists y. x = 2*y & 0 <= y & y <= 1")
        .unwrap();
    assert!(out.contains(&[rat(2, 1)]));
    assert!(out.contains(&[rat(0, 1)]));
    assert!(!out.contains(&[rat(5, 2)]));
}

#[test]
fn empty_and_trivial_relations() {
    let mut db = Database::new();
    db.define("E", &["x"], "false").unwrap();
    db.define("A", &["x"], "true").unwrap();
    let e = db.query(&["x"], "E(x)").unwrap();
    assert!(!e.contains(&[rat(0, 1)]));
    let a = db.query(&["x"], "A(x)").unwrap();
    assert!(a.contains(&[rat(123, 1)]));
    assert_eq!(semilinear_volume(&db, "E").unwrap(), Rat::zero());
}

#[test]
fn formula_built_programmatically() {
    // Build T(x,y) ≡ 0 ≤ x ≤ 1 ∧ 0 ≤ y ≤ x without the parser.
    let mut db = Database::new();
    let x = db.vars_mut().intern("x");
    let y = db.vars_mut().intern("y");
    let f = Formula::le(MPoly::zero(), MPoly::var(x))
        .and(Formula::le(MPoly::var(x), MPoly::one()))
        .and(Formula::le(MPoly::zero(), MPoly::var(y)))
        .and(Formula::le(MPoly::var(y), MPoly::var(x)));
    db.add_fr_relation("T", vec![x, y], f).unwrap();
    assert_eq!(semilinear_volume(&db, "T").unwrap(), rat(1, 2));
}
