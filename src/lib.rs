//! # constraint-agg
//!
//! A reproduction of **Benedikt & Libkin, "Exact and Approximate Aggregation
//! in Constraint Query Languages" (PODS 1999)** as a production-quality Rust
//! workspace. This facade crate re-exports every sub-crate under a single
//! namespace and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! ## Layered architecture
//!
//! * [`arith`] — exact arbitrary-precision integers and rationals.
//! * [`poly`] — multivariate polynomials, Sturm sequences, real root
//!   isolation, real algebraic numbers.
//! * [`logic`] — first-order formulas over constraint signatures (dense
//!   order, FO+LIN, FO+POLY), normal forms, parser and printer.
//! * [`qe`] — quantifier elimination: Fourier–Motzkin and Loos–Weispfenning
//!   for linear constraints, Cohen–Hörmander for the real field.
//! * [`geom`] — exact polyhedral geometry: vertex enumeration, convex hulls,
//!   triangulation, and exact volumes of semi-linear sets (Theorem 3).
//! * [`core`] — the constraint database model: schemas, finitely
//!   representable instances, and closed FO+LIN / FO+POLY query evaluation.
//! * [`agg`] — the FO+POLY+SUM aggregate language of Section 5.
//! * [`approx`] — VC-dimension machinery, sample bounds, Monte Carlo
//!   ε-approximate volume (Theorem 4), and the paper's baselines.
//! * [`analyze`] — static analysis of FO+POLY+SUM programs: scope and
//!   Σ-discipline lints, fragment classification, and the Lemma-1 /
//!   Proposition-6 cost and VC estimators, with compiler-style
//!   diagnostics (`cqa-lint`).
//!
//! ## Quickstart
//!
//! ```
//! use constraint_agg::prelude::*;
//!
//! // A triangle as a linear-constraint relation: x ≥ 0, y ≥ 0, x + y ≤ 1.
//! let mut db = Database::new();
//! db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1").unwrap();
//!
//! // Closed querying: the projection is again a constraint relation.
//! let proj = db.query(&["x"], "exists y. T(x, y)").unwrap();
//! assert!(proj.contains(&[rat(1, 2)]));
//!
//! // Exact volume (area) via the Theorem-3 algorithm: 1/2.
//! let vol = semilinear_volume(&db, "T").unwrap();
//! assert_eq!(vol, rat(1, 2));
//! ```

#![forbid(unsafe_code)]

pub use cqa_agg as agg;
pub use cqa_analyze as analyze;
pub use cqa_approx as approx;
pub use cqa_arith as arith;
pub use cqa_core as core;
pub use cqa_geom as geom;
pub use cqa_logic as logic;
pub use cqa_poly as poly;
pub use cqa_qe as qe;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use cqa_agg::{aggregate, semilinear_volume, Aggregate};
    pub use cqa_analyze::{analyze_source, AnalyzerConfig};
    pub use cqa_arith::{rat, rint, Int, Rat};
    pub use cqa_core::{Database, Relation};
    pub use cqa_geom::{volume, volume_in_unit_box};
    pub use cqa_logic::{parse_formula, parse_formula_with, Formula, VarMap};
    pub use cqa_qe::{decide_sentence, eliminate};
}
