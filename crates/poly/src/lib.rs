//! Polynomial arithmetic and real-root machinery for constraint databases.
//!
//! FO+POLY atoms are sign conditions on multivariate polynomials over ℚ;
//! quantifier elimination (Cohen–Hörmander, in `cqa-qe`) views them as
//! univariate polynomials in the innermost quantified variable with
//! polynomial coefficients, and the `END` operator of FO+POLY+SUM needs the
//! endpoints of the intervals composing a one-dimensional definable set —
//! which are *real algebraic numbers*. This crate supplies all three layers:
//!
//! * [`UPoly`] — dense univariate polynomials over [`Rat`](cqa_arith::Rat):
//!   Euclidean division, GCD, derivatives, Sturm sequences, exact real-root
//!   isolation and refinement.
//! * [`MPoly`] — sparse multivariate polynomials: ring operations,
//!   evaluation, substitution, and the "univariate view" used by QE.
//! * [`RealAlg`] — real algebraic numbers as (square-free polynomial,
//!   isolating interval) pairs, with exact comparison, rational-offset
//!   arithmetic and arbitrary-precision approximation.

#![forbid(unsafe_code)]

mod mpoly;
mod realalg;
mod upoly;

pub use mpoly::{MPoly, Var};
pub use realalg::RealAlg;
pub use upoly::{clear_denominators, isolate_real_roots, refine_root, RootInterval, UPoly};
