//! Sparse multivariate polynomials over ℚ.

use cqa_arith::Rat;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::upoly::UPoly;

/// A polynomial variable, identified by a small index.
///
/// The constraint-logic layer maintains the mapping from variable names to
/// indices; within `cqa-poly` variables are anonymous.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A monomial: sorted `(variable, exponent)` pairs with positive exponents.
type Monomial = Vec<(Var, u32)>;

fn mono_mul(a: &Monomial, b: &Monomial) -> Monomial {
    let mut out: Monomial = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// A sparse multivariate polynomial with rational coefficients.
///
/// Invariant: no stored coefficient is zero, so the representation is
/// canonical and derived equality is mathematical equality.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct MPoly {
    terms: BTreeMap<Monomial, Rat>,
}

impl MPoly {
    /// The zero polynomial.
    pub fn zero() -> MPoly {
        MPoly {
            terms: BTreeMap::new(),
        }
    }

    /// The constant one.
    pub fn one() -> MPoly {
        MPoly::constant(Rat::one())
    }

    /// A constant polynomial.
    pub fn constant(c: Rat) -> MPoly {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Vec::new(), c);
        }
        MPoly { terms }
    }

    /// The polynomial `v`.
    pub fn var(v: Var) -> MPoly {
        let mut terms = BTreeMap::new();
        terms.insert(vec![(v, 1)], Rat::one());
        MPoly { terms }
    }

    /// An integer constant.
    pub fn from_i64(c: i64) -> MPoly {
        MPoly::constant(Rat::from(c))
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the constant value if the polynomial is constant.
    pub fn as_constant(&self) -> Option<Rat> {
        match self.terms.len() {
            0 => Some(Rat::zero()),
            1 => {
                let (m, c) = self.terms.iter().next().unwrap();
                if m.is_empty() {
                    Some(c.clone())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The set of variables occurring with non-zero exponent.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.terms
            .keys()
            .flat_map(|m| m.iter().map(|&(v, _)| v))
            .collect()
    }

    /// Degree in variable `v` (0 for polynomials not mentioning `v`,
    /// including the zero polynomial).
    pub fn degree_in(&self, v: Var) -> u32 {
        self.terms
            .keys()
            .map(|m| m.iter().find(|&&(w, _)| w == v).map_or(0, |&(_, e)| e))
            .max()
            .unwrap_or(0)
    }

    /// Total degree (`None` for zero).
    pub fn total_degree(&self) -> Option<u32> {
        self.terms
            .keys()
            .map(|m| m.iter().map(|&(_, e)| e).sum())
            .max()
    }

    fn add_term(&mut self, m: Monomial, c: Rat) {
        if c.is_zero() {
            return;
        }
        match self.terms.entry(m) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(c);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let s = e.get() + &c;
                if s.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = s;
                }
            }
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: &Rat) -> MPoly {
        if s.is_zero() {
            return MPoly::zero();
        }
        MPoly {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), c * s)).collect(),
        }
    }

    /// Integer power.
    pub fn pow(&self, exp: u32) -> MPoly {
        let mut acc = MPoly::one();
        for _ in 0..exp {
            acc = &acc * self;
        }
        acc
    }

    /// Full evaluation; every variable of the polynomial must be assigned.
    ///
    /// # Panics
    /// Panics if a variable is missing from `assignment`.
    pub fn eval(&self, assignment: &dyn Fn(Var) -> Rat) -> Rat {
        let mut acc = Rat::zero();
        for (m, c) in &self.terms {
            let mut t = c.clone();
            for &(v, e) in m {
                t = t * assignment(v).pow(e as i32);
            }
            acc += t;
        }
        acc
    }

    /// Evaluates with a slice of values indexed by variable number.
    pub fn eval_slice(&self, values: &[Rat]) -> Rat {
        self.eval(&|v: Var| values[v.0 as usize].clone())
    }

    /// Substitutes `v := value` (partial evaluation), returning a polynomial
    /// in the remaining variables.
    pub fn subst_rat(&self, v: Var, value: &Rat) -> MPoly {
        let mut out = MPoly::zero();
        for (m, c) in &self.terms {
            let mut coeff = c.clone();
            let mut rest: Monomial = Vec::with_capacity(m.len());
            for &(w, e) in m {
                if w == v {
                    coeff = coeff * value.pow(e as i32);
                } else {
                    rest.push((w, e));
                }
            }
            out.add_term(rest, coeff);
        }
        out
    }

    /// Substitutes `v := p` for a polynomial `p`.
    pub fn subst_poly(&self, v: Var, p: &MPoly) -> MPoly {
        let mut out = MPoly::zero();
        for (m, c) in &self.terms {
            let mut t = MPoly::constant(c.clone());
            for &(w, e) in m {
                if w == v {
                    t = &t * &p.pow(e);
                } else {
                    let mut mono = MPoly::zero();
                    mono.add_term(vec![(w, e)], Rat::one());
                    t = &t * &mono;
                }
            }
            out = &out + &t;
        }
        out
    }

    /// Partial derivative with respect to `v`.
    pub fn derivative(&self, v: Var) -> MPoly {
        let mut out = MPoly::zero();
        for (m, c) in &self.terms {
            if let Some(pos) = m.iter().position(|&(w, _)| w == v) {
                let e = m[pos].1;
                let mut rest = m.clone();
                if e == 1 {
                    rest.remove(pos);
                } else {
                    rest[pos].1 = e - 1;
                }
                out.add_term(rest, c * Rat::from(i64::from(e)));
            }
        }
        out
    }

    /// Views the polynomial as univariate in `v`: returns coefficients
    /// (polynomials in the other variables) in ascending degree, trimmed.
    pub fn as_univariate_in(&self, v: Var) -> Vec<MPoly> {
        let d = self.degree_in(v) as usize;
        let mut coeffs = vec![MPoly::zero(); d + 1];
        for (m, c) in &self.terms {
            let mut e = 0usize;
            let mut rest: Monomial = Vec::with_capacity(m.len());
            for &(w, k) in m {
                if w == v {
                    e = k as usize;
                } else {
                    rest.push((w, k));
                }
            }
            coeffs[e].add_term(rest, c.clone());
        }
        while coeffs.last().is_some_and(MPoly::is_zero) && coeffs.len() > 1 {
            coeffs.pop();
        }
        if coeffs.len() == 1 && coeffs[0].is_zero() {
            coeffs.clear();
        }
        coeffs
    }

    /// Rebuilds a polynomial from univariate-in-`v` coefficients.
    pub fn from_univariate_in(v: Var, coeffs: &[MPoly]) -> MPoly {
        let mut out = MPoly::zero();
        let xv = MPoly::var(v);
        for (e, c) in coeffs.iter().enumerate() {
            out = &out + &(c * &xv.pow(e as u32));
        }
        out
    }

    /// Converts to a dense [`UPoly`] if the polynomial involves no variable
    /// other than `v`.
    pub fn to_upoly(&self, v: Var) -> Option<UPoly> {
        let coeffs = self.as_univariate_in(v);
        let mut out = Vec::with_capacity(coeffs.len());
        for c in coeffs {
            out.push(c.as_constant()?);
        }
        Some(UPoly::from_coeffs(out))
    }

    /// Builds from a dense univariate polynomial in variable `v`.
    pub fn from_upoly(v: Var, p: &UPoly) -> MPoly {
        let mut out = MPoly::zero();
        for (e, c) in p.coeffs().iter().enumerate() {
            if e == 0 {
                out.add_term(Vec::new(), c.clone());
            } else {
                out.add_term(vec![(v, e as u32)], c.clone());
            }
        }
        out
    }

    /// Iterates over `(monomial, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&[(Var, u32)], &Rat)> {
        self.terms.iter().map(|(m, c)| (m.as_slice(), c))
    }

    /// `true` iff the polynomial has degree ≤ 1 in every variable jointly
    /// (i.e. is an affine/linear expression).
    pub fn is_affine(&self) -> bool {
        self.terms
            .keys()
            .all(|m| m.iter().map(|&(_, e)| e).sum::<u32>() <= 1)
    }
}

impl Neg for &MPoly {
    type Output = MPoly;
    fn neg(self) -> MPoly {
        MPoly {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), -c)).collect(),
        }
    }
}
impl Neg for MPoly {
    type Output = MPoly;
    fn neg(self) -> MPoly {
        -&self
    }
}

impl Add for &MPoly {
    type Output = MPoly;
    fn add(self, other: &MPoly) -> MPoly {
        let mut out = self.clone();
        for (m, c) in &other.terms {
            out.add_term(m.clone(), c.clone());
        }
        out
    }
}

impl Sub for &MPoly {
    type Output = MPoly;
    fn sub(self, other: &MPoly) -> MPoly {
        self + &(-other)
    }
}

impl Mul for &MPoly {
    type Output = MPoly;
    fn mul(self, other: &MPoly) -> MPoly {
        let mut out = MPoly::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                out.add_term(mono_mul(ma, mb), ca * cb);
            }
        }
        out
    }
}

macro_rules! forward_mpoly_binop {
    ($tr:ident, $m:ident) => {
        impl $tr for MPoly {
            type Output = MPoly;
            fn $m(self, other: MPoly) -> MPoly {
                (&self).$m(&other)
            }
        }
        impl $tr<&MPoly> for MPoly {
            type Output = MPoly;
            fn $m(self, other: &MPoly) -> MPoly {
                (&self).$m(other)
            }
        }
        impl $tr<MPoly> for &MPoly {
            type Output = MPoly;
            fn $m(self, other: MPoly) -> MPoly {
                self.$m(&other)
            }
        }
    };
}
forward_mpoly_binop!(Add, add);
forward_mpoly_binop!(Sub, sub);
forward_mpoly_binop!(Mul, mul);

impl fmt::Display for MPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut first = true;
        // Display highest monomials first for readability.
        for (m, c) in self.terms.iter().rev() {
            if !first {
                f.write_str(if c.is_negative() { " - " } else { " + " })?;
            } else if c.is_negative() {
                f.write_str("-")?;
            }
            first = false;
            let a = c.abs();
            if m.is_empty() {
                write!(f, "{a}")?;
            } else {
                if !a.is_one() {
                    write!(f, "{a}*")?;
                }
                let mut firstv = true;
                for &(v, e) in m {
                    if !firstv {
                        f.write_str("*")?;
                    }
                    firstv = false;
                    if e == 1 {
                        write!(f, "{v}")?;
                    } else {
                        write!(f, "{v}^{e}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;

    fn x() -> MPoly {
        MPoly::var(Var(0))
    }
    fn y() -> MPoly {
        MPoly::var(Var(1))
    }

    #[test]
    fn ring_ops() {
        let p = &x() + &y(); // x + y
        let q = &x() - &y(); // x - y
        let prod = &p * &q; // x^2 - y^2
        let expect = &x().pow(2) - &y().pow(2);
        assert_eq!(prod, expect);
        assert_eq!(&p + &(-&p), MPoly::zero());
    }

    #[test]
    fn canonical_zero() {
        let p = &x() - &x();
        assert!(p.is_zero());
        assert_eq!(p.num_terms(), 0);
    }

    #[test]
    fn eval() {
        // 2x^2y + 3
        let p = &MPoly::from_i64(2) * &(&x().pow(2) * &y()) + MPoly::from_i64(3);
        let v = p.eval_slice(&[rat(2, 1), rat(5, 1)]);
        assert_eq!(v, rat(43, 1));
    }

    #[test]
    fn subst_rat_partial() {
        // x*y + y^2 with y := 3 -> 3x + 9
        let p = &(&x() * &y()) + &y().pow(2);
        let q = p.subst_rat(Var(1), &rat(3, 1));
        let expect = &x().scale(&rat(3, 1)) + &MPoly::from_i64(9);
        assert_eq!(q, expect);
    }

    #[test]
    fn subst_poly() {
        // x^2 with x := y+1 -> y^2 + 2y + 1
        let p = x().pow(2);
        let q = p.subst_poly(Var(0), &(&y() + &MPoly::one()));
        let expect = &(&y().pow(2) + &y().scale(&rat(2, 1))) + &MPoly::one();
        assert_eq!(q, expect);
    }

    #[test]
    fn degrees_and_vars() {
        let p = &(&x().pow(3) * &y()) + &y().pow(2);
        assert_eq!(p.degree_in(Var(0)), 3);
        assert_eq!(p.degree_in(Var(1)), 2);
        assert_eq!(p.total_degree(), Some(4));
        assert_eq!(p.vars().len(), 2);
        assert!(MPoly::zero().total_degree().is_none());
    }

    #[test]
    fn univariate_view_roundtrip() {
        // y^2*x^2 + (y+1)*x + 7, viewed in x.
        let p = &(&(&y().pow(2) * &x().pow(2)) + &(&(&y() + &MPoly::one()) * &x()))
            + &MPoly::from_i64(7);
        let coeffs = p.as_univariate_in(Var(0));
        assert_eq!(coeffs.len(), 3);
        assert_eq!(coeffs[0], MPoly::from_i64(7));
        assert_eq!(coeffs[1], &y() + &MPoly::one());
        assert_eq!(coeffs[2], y().pow(2));
        assert_eq!(MPoly::from_univariate_in(Var(0), &coeffs), p);
    }

    #[test]
    fn derivative() {
        // d/dx (x^2 y + x) = 2xy + 1
        let p = &(&x().pow(2) * &y()) + &x();
        let d = p.derivative(Var(0));
        let expect = &(&x() * &y()).scale(&rat(2, 1)) + &MPoly::one();
        assert_eq!(d, expect);
        assert_eq!(MPoly::one().derivative(Var(0)), MPoly::zero());
    }

    #[test]
    fn upoly_conversion() {
        let p = &x().pow(2) + &MPoly::from_i64(-2);
        let u = p.to_upoly(Var(0)).unwrap();
        assert_eq!(u, UPoly::from_ints(&[-2, 0, 1]));
        assert_eq!(MPoly::from_upoly(Var(0), &u), p);
        // Mentions y: not univariate in x.
        assert!((&x() + &y()).to_upoly(Var(0)).is_none());
    }

    #[test]
    fn affine_detection() {
        assert!((&x() + &y().scale(&rat(3, 1))).is_affine());
        assert!(MPoly::from_i64(5).is_affine());
        assert!(!x().pow(2).is_affine());
        assert!(!(&x() * &y()).is_affine());
    }

    #[test]
    fn display() {
        let p = &(&x().pow(2) - &(&x() * &y()).scale(&rat(2, 1))) + &MPoly::from_i64(1);
        let s = p.to_string();
        assert!(s.contains("x0^2"));
        assert!(s.contains("2*x0*x1"));
    }
}
