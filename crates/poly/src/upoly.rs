//! Dense univariate polynomials over ℚ with exact real-root isolation.

use cqa_arith::{Int, Rat};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};

/// A univariate polynomial with rational coefficients, stored densely in
/// ascending degree order with no trailing zero coefficients.
///
/// The zero polynomial is the empty coefficient vector, making the
/// representation canonical; structural equality equals mathematical
/// equality.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct UPoly {
    coeffs: Vec<Rat>,
}

impl UPoly {
    /// The zero polynomial.
    pub fn zero() -> UPoly {
        UPoly { coeffs: Vec::new() }
    }

    /// The constant polynomial one.
    pub fn one() -> UPoly {
        UPoly::constant(Rat::one())
    }

    /// The identity polynomial `x`.
    pub fn x() -> UPoly {
        UPoly::from_coeffs(vec![Rat::zero(), Rat::one()])
    }

    /// A constant polynomial.
    pub fn constant(c: Rat) -> UPoly {
        UPoly::from_coeffs(vec![c])
    }

    /// Builds a polynomial from ascending-degree coefficients, trimming
    /// trailing zeros.
    pub fn from_coeffs(mut coeffs: Vec<Rat>) -> UPoly {
        while coeffs.last().is_some_and(Rat::is_zero) {
            coeffs.pop();
        }
        UPoly { coeffs }
    }

    /// Builds from integer coefficients, ascending degree: `[a0, a1, ...]`.
    pub fn from_ints(coeffs: &[i64]) -> UPoly {
        UPoly::from_coeffs(coeffs.iter().map(|&c| Rat::from(c)).collect())
    }

    /// The coefficients in ascending degree order (no trailing zeros).
    pub fn coeffs(&self) -> &[Rat] {
        &self.coeffs
    }

    /// `true` iff the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// `true` iff a (possibly zero) constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.len() <= 1
    }

    /// Degree; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Leading coefficient; zero for the zero polynomial.
    pub fn leading(&self) -> Rat {
        self.coeffs.last().cloned().unwrap_or_else(Rat::zero)
    }

    /// Coefficient of `x^k` (zero if beyond the degree).
    pub fn coeff(&self, k: usize) -> Rat {
        self.coeffs.get(k).cloned().unwrap_or_else(Rat::zero)
    }

    /// Evaluates at a rational point by Horner's rule.
    pub fn eval(&self, x: &Rat) -> Rat {
        let mut acc = Rat::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// The sign of the value at `x`: `-1`, `0` or `1`.
    pub fn sign_at(&self, x: &Rat) -> i32 {
        self.eval(x).signum()
    }

    /// Sign of the polynomial at `+∞` (sign of the leading coefficient).
    pub fn sign_at_pos_inf(&self) -> i32 {
        self.leading().signum()
    }

    /// Sign at `-∞`.
    pub fn sign_at_neg_inf(&self) -> i32 {
        match self.degree() {
            None => 0,
            Some(d) => {
                let s = self.leading().signum();
                if d % 2 == 0 {
                    s
                } else {
                    -s
                }
            }
        }
    }

    /// Formal derivative.
    pub fn derivative(&self) -> UPoly {
        if self.coeffs.len() <= 1 {
            return UPoly::zero();
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, c)| c * Rat::from(i as i64))
            .collect();
        UPoly::from_coeffs(coeffs)
    }

    /// Multiplies every coefficient by a rational scalar.
    pub fn scale(&self, s: &Rat) -> UPoly {
        if s.is_zero() {
            return UPoly::zero();
        }
        UPoly {
            coeffs: self.coeffs.iter().map(|c| c * s).collect(),
        }
    }

    /// Euclidean division: returns `(q, r)` with `self = q*div + r` and
    /// `deg r < deg div`.
    ///
    /// # Panics
    /// Panics if `div` is zero.
    pub fn div_rem(&self, div: &UPoly) -> (UPoly, UPoly) {
        assert!(!div.is_zero(), "UPoly division by zero polynomial");
        let dd = div.degree().unwrap();
        if self.coeffs.len() < div.coeffs.len() {
            return (UPoly::zero(), self.clone());
        }
        let mut rem = self.coeffs.clone();
        let mut quot = vec![Rat::zero(); self.coeffs.len() - dd];
        let lead = div.leading();
        for k in (dd..rem.len()).rev() {
            let factor = &rem[k] / &lead;
            if factor.is_zero() {
                continue;
            }
            quot[k - dd] = factor.clone();
            for (j, c) in div.coeffs.iter().enumerate() {
                let idx = k - dd + j;
                rem[idx] = &rem[idx] - &(c * &factor);
            }
        }
        (
            UPoly::from_coeffs(quot),
            UPoly::from_coeffs(rem[..dd.min(rem.len())].to_vec()),
        )
    }

    /// Monic form (leading coefficient 1); zero stays zero.
    pub fn monic(&self) -> UPoly {
        if self.is_zero() {
            return UPoly::zero();
        }
        self.scale(&self.leading().recip())
    }

    /// Polynomial GCD (monic).
    pub fn gcd(&self, other: &UPoly) -> UPoly {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r;
        }
        a.monic()
    }

    /// Square-free part: `self / gcd(self, self')`.
    pub fn squarefree(&self) -> UPoly {
        if self.is_zero() || self.degree() == Some(0) {
            return self.clone();
        }
        let g = self.gcd(&self.derivative());
        if g.degree() == Some(0) {
            self.clone()
        } else {
            self.div_rem(&g).0
        }
    }

    /// The Sturm sequence of the polynomial.
    pub fn sturm_sequence(&self) -> Vec<UPoly> {
        let mut seq = Vec::new();
        if self.is_zero() {
            return seq;
        }
        seq.push(self.clone());
        let d = self.derivative();
        if d.is_zero() {
            return seq;
        }
        seq.push(d);
        loop {
            let n = seq.len();
            let r = seq[n - 2].div_rem(&seq[n - 1]).1;
            if r.is_zero() {
                break;
            }
            seq.push(-r);
        }
        seq
    }

    /// Counts distinct real roots in the half-open interval `(lo, hi]` using
    /// a precomputed Sturm sequence. The polynomial must be non-zero.
    pub fn count_roots_between(seq: &[UPoly], lo: &Rat, hi: &Rat) -> usize {
        debug_assert!(lo <= hi);
        let v_lo = sign_variations(seq.iter().map(|p| p.sign_at(lo)));
        let v_hi = sign_variations(seq.iter().map(|p| p.sign_at(hi)));
        v_lo.saturating_sub(v_hi)
    }

    /// A bound `B` such that all real roots lie in `(-B, B)` (Cauchy bound).
    pub fn root_bound(&self) -> Rat {
        match self.degree() {
            None | Some(0) => Rat::one(),
            Some(_) => {
                let lead = self.leading().abs();
                let max = self
                    .coeffs
                    .iter()
                    .take(self.coeffs.len() - 1)
                    .map(Rat::abs)
                    .max()
                    .unwrap_or_else(Rat::zero);
                Rat::one() + max / lead
            }
        }
    }

    /// Composes with a linear substitution `x ↦ a·x + b`.
    pub fn compose_linear(&self, a: &Rat, b: &Rat) -> UPoly {
        // Horner on the polynomial ring.
        let lin = UPoly::from_coeffs(vec![b.clone(), a.clone()]);
        let mut acc = UPoly::zero();
        for c in self.coeffs.iter().rev() {
            acc = &(&acc * &lin) + &UPoly::constant(c.clone());
        }
        acc
    }

    /// Integral from `lo` to `hi` of the polynomial (exact antiderivative).
    pub fn integrate_between(&self, lo: &Rat, hi: &Rat) -> Rat {
        let anti = UPoly::from_coeffs(
            std::iter::once(Rat::zero())
                .chain(
                    self.coeffs
                        .iter()
                        .enumerate()
                        .map(|(i, c)| c / Rat::from((i + 1) as i64)),
                )
                .collect(),
        );
        anti.eval(hi) - anti.eval(lo)
    }
}

/// Number of sign variations in a sequence, ignoring zeros.
pub(crate) fn sign_variations<I: IntoIterator<Item = i32>>(signs: I) -> usize {
    let mut count = 0;
    let mut last = 0i32;
    for s in signs {
        if s != 0 {
            if last != 0 && s != last {
                count += 1;
            }
            last = s;
        }
    }
    count
}

impl Neg for UPoly {
    type Output = UPoly;
    fn neg(self) -> UPoly {
        UPoly {
            coeffs: self.coeffs.into_iter().map(|c| -c).collect(),
        }
    }
}
impl Neg for &UPoly {
    type Output = UPoly;
    fn neg(self) -> UPoly {
        UPoly {
            coeffs: self.coeffs.iter().map(|c| -c).collect(),
        }
    }
}

impl Add for &UPoly {
    type Output = UPoly;
    fn add(self, other: &UPoly) -> UPoly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).cloned().unwrap_or_else(Rat::zero);
            let b = other.coeffs.get(i).cloned().unwrap_or_else(Rat::zero);
            out.push(a + b);
        }
        UPoly::from_coeffs(out)
    }
}

impl Sub for &UPoly {
    type Output = UPoly;
    fn sub(self, other: &UPoly) -> UPoly {
        self + &(-other)
    }
}

impl Mul for &UPoly {
    type Output = UPoly;
    fn mul(self, other: &UPoly) -> UPoly {
        if self.is_zero() || other.is_zero() {
            return UPoly::zero();
        }
        let mut out = vec![Rat::zero(); self.coeffs.len() + other.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in other.coeffs.iter().enumerate() {
                out[i + j] = &out[i + j] + &(a * b);
            }
        }
        UPoly::from_coeffs(out)
    }
}

impl Div for &UPoly {
    type Output = UPoly;
    fn div(self, other: &UPoly) -> UPoly {
        self.div_rem(other).0
    }
}

impl Rem for &UPoly {
    type Output = UPoly;
    fn rem(self, other: &UPoly) -> UPoly {
        self.div_rem(other).1
    }
}

macro_rules! forward_upoly_binop {
    ($tr:ident, $m:ident) => {
        impl $tr for UPoly {
            type Output = UPoly;
            fn $m(self, other: UPoly) -> UPoly {
                (&self).$m(&other)
            }
        }
    };
}
forward_upoly_binop!(Add, add);
forward_upoly_binop!(Sub, sub);
forward_upoly_binop!(Mul, mul);
forward_upoly_binop!(Div, div);
forward_upoly_binop!(Rem, rem);

impl fmt::Display for UPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() {
                continue;
            }
            if !first {
                f.write_str(if c.is_negative() { " - " } else { " + " })?;
            } else if c.is_negative() {
                f.write_str("-")?;
            }
            first = false;
            let a = c.abs();
            match i {
                0 => write!(f, "{a}")?,
                1 if a.is_one() => f.write_str("x")?,
                1 => write!(f, "{a}*x")?,
                _ if a.is_one() => write!(f, "x^{i}")?,
                _ => write!(f, "{a}*x^{i}")?,
            }
        }
        Ok(())
    }
}

/// An isolating interval for a single real root of a square-free polynomial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootInterval {
    /// Lower endpoint. If `lo == hi` the root is exactly this rational.
    pub lo: Rat,
    /// Upper endpoint.
    pub hi: Rat,
}

impl RootInterval {
    /// `true` iff the root is known exactly (a rational root).
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// Interval width.
    pub fn width(&self) -> Rat {
        &self.hi - &self.lo
    }
}

/// Exact integer square root if `n` is a perfect square (requires `n ≥ 0`).
fn int_sqrt_exact(n: &Int) -> Option<Int> {
    if n.is_negative() {
        return None;
    }
    if n.is_zero() {
        return Some(Int::zero());
    }
    // Newton iteration from a power-of-two overestimate.
    let mut x = Int::one().shl((n.bits() as u32).div_ceil(2));
    loop {
        let next = (&x + n / &x).div_rem(&Int::from(2i64)).0;
        if next >= x {
            break;
        }
        x = next;
    }
    if &(&x * &x) == n {
        Some(x)
    } else {
        None
    }
}

/// Exact rational square root if `r` is a perfect square.
fn rat_sqrt_exact(r: &Rat) -> Option<Rat> {
    let n = int_sqrt_exact(r.numer())?;
    let d = int_sqrt_exact(r.denom())?;
    Some(Rat::new(n, d))
}

/// All divisors of `n > 0`, or `None` if `n` is too large to factor cheaply.
fn divisors_u64(n: u64) -> Option<Vec<u64>> {
    const FACTOR_CAP: u64 = 1 << 44;
    if n > FACTOR_CAP {
        return None;
    }
    let mut factors: Vec<(u64, u32)> = Vec::new();
    let mut m = n;
    let mut d = 2u64;
    while d * d <= m {
        if m.is_multiple_of(d) {
            let mut e = 0;
            while m.is_multiple_of(d) {
                m /= d;
                e += 1;
            }
            factors.push((d, e));
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if m > 1 {
        factors.push((m, 1));
    }
    let mut divs = vec![1u64];
    for (p, e) in factors {
        let len = divs.len();
        let mut pe = 1u64;
        for _ in 0..e {
            pe *= p;
            for i in 0..len {
                divs.push(divs[i] * pe);
            }
        }
    }
    Some(divs)
}

/// Finds rational roots of a square-free polynomial exactly, returning the
/// sorted roots and the deflated polynomial (with those roots divided out).
///
/// Detection is complete for degree ≤ 2 and, for higher degrees, whenever
/// the integer-cleared constant and leading coefficients fit under 2⁴⁴
/// (rational-root theorem with trial-division factoring). Beyond that the
/// function degrades gracefully: undetected rational roots are simply
/// reported by the caller as isolating intervals, which remains correct.
fn rational_roots(q: &UPoly) -> (Vec<Rat>, UPoly) {
    let mut roots: Vec<Rat> = Vec::new();
    let mut rem = q.clone();

    // Peel off roots at zero.
    while !rem.is_zero() && rem.coeff(0).is_zero() && rem.degree() > Some(0) {
        roots.push(Rat::zero());
        rem = rem.div_rem(&UPoly::x()).0;
    }

    loop {
        match rem.degree() {
            None | Some(0) => break,
            Some(1) => {
                roots.push(-(rem.coeff(0) / rem.coeff(1)));
                rem = UPoly::constant(rem.leading());
                break;
            }
            Some(2) => {
                let (a, b, c) = (rem.coeff(2), rem.coeff(1), rem.coeff(0));
                let disc = &b * &b - Rat::from(4i64) * &a * &c;
                if let Some(s) = rat_sqrt_exact(&disc) {
                    let two_a = Rat::from(2i64) * &a;
                    roots.push((-&b - &s) / &two_a);
                    if !s.is_zero() {
                        roots.push((-&b + &s) / &two_a);
                    }
                    rem = UPoly::constant(a);
                }
                break;
            }
            Some(_) => {
                // Rational-root theorem on the integer-cleared polynomial.
                let (ints, _) = clear_denominators(&rem);
                let content = ints.iter().fold(Int::zero(), |acc, c| acc.gcd(c));
                let ints: Vec<Int> = ints.iter().map(|c| c / &content).collect();
                let a0 = ints.first().unwrap().abs();
                let an = ints.last().unwrap().abs();
                let (Some(a0), Some(an)) = (a0.to_i64(), an.to_i64()) else {
                    break;
                };
                let (Some(dp), Some(dq)) = (
                    divisors_u64(a0.unsigned_abs()),
                    divisors_u64(an.unsigned_abs()),
                ) else {
                    break;
                };
                let mut found = false;
                'search: for &p in &dp {
                    for &qd in &dq {
                        for sign in [1i64, -1] {
                            let cand = Rat::new(Int::from(sign) * Int::from(p), Int::from(qd));
                            if rem.sign_at(&cand) == 0 {
                                roots.push(cand.clone());
                                let factor = UPoly::from_coeffs(vec![-cand, Rat::one()]);
                                rem = rem.div_rem(&factor).0;
                                found = true;
                                break 'search;
                            }
                        }
                    }
                }
                if !found {
                    break;
                }
            }
        }
    }
    roots.sort();
    (roots, rem)
}

/// Shrinks an isolating interval of `q` until it contains none of `pts` in
/// its interior (the interval's root is irrational w.r.t. the given points).
fn exclude_points(q: &UPoly, iv: &mut RootInterval, pts: &[Rat]) {
    if iv.is_exact() {
        return;
    }
    let sign_hi = q.sign_at(&iv.hi);
    // Exclude points from the *closed* interval: an endpoint equal to a
    // rational root of the original polynomial would break the "endpoints
    // are not roots" invariant consumers (e.g. RealAlg) rely on.
    while pts.iter().any(|r| *r >= iv.lo && *r <= iv.hi) {
        let mid = iv.lo.midpoint(&iv.hi);
        let sm = q.sign_at(&mid);
        if sm == 0 {
            iv.lo = mid.clone();
            iv.hi = mid;
            return;
        }
        if sm == sign_hi {
            iv.hi = mid;
        } else {
            iv.lo = mid;
        }
    }
}

/// Isolates all distinct real roots of `p`, returning disjoint intervals in
/// increasing order. Rational roots are returned as exact point intervals
/// (complete for degree ≤ 2 and for moderate coefficient sizes, via the
/// rational-root sieve); irrational roots as open intervals `(lo, hi)` whose
/// endpoints are not roots and which contain exactly one root of the
/// square-free part of `p`.
///
/// Returns an empty vector for constant polynomials (including zero, whose
/// "roots" are everywhere and are not isolatable).
pub fn isolate_real_roots(p: &UPoly) -> Vec<RootInterval> {
    if p.is_constant() {
        return Vec::new();
    }
    let q = p.squarefree();
    let (rats, qirr) = rational_roots(&q);
    let mut out: Vec<RootInterval> = rats
        .iter()
        .map(|r| RootInterval {
            lo: r.clone(),
            hi: r.clone(),
        })
        .collect();
    if qirr.degree().unwrap_or(0) >= 1 {
        let seq = qirr.sturm_sequence();
        let bound = qirr.root_bound();
        let total = UPoly::count_roots_between(&seq, &(-bound.clone()), &bound);
        let mut ivs = Vec::with_capacity(total);
        if total > 0 {
            isolate_rec(&qirr, &seq, -bound.clone(), bound, total, &mut ivs);
        }
        for mut iv in ivs {
            // Ensure the interval isolates a root of the *full* square-free
            // polynomial: shrink it past any exact rational roots of q.
            exclude_points(&qirr, &mut iv, &rats);
            out.push(iv);
        }
    }
    out.sort_by(|a, b| a.lo.cmp(&b.lo).then_with(|| a.hi.cmp(&b.hi)));
    out
}

fn isolate_rec(
    q: &UPoly,
    seq: &[UPoly],
    lo: Rat,
    hi: Rat,
    count: usize,
    out: &mut Vec<RootInterval>,
) {
    debug_assert!(count > 0);
    if count == 1 {
        // Tighten: endpoints that are themselves roots make the interval
        // exact; otherwise shrink until the left endpoint is sign-definite.
        if q.sign_at(&hi) == 0 {
            out.push(RootInterval { lo: hi.clone(), hi });
            return;
        }
        let mut lo = lo;
        // Make the interval open at a non-root left endpoint: since the count
        // for (lo, hi] is 1 and hi is not a root, any point strictly between
        // the root and lo works. Check lo itself first.
        if q.sign_at(&lo) == 0 {
            // lo is a root of q but the counted root is in (lo, hi]; nudge.
            let mut mid = lo.midpoint(&hi);
            while q.sign_at(&mid) == 0 || UPoly::count_roots_between(seq, &mid, &hi) != 1 {
                mid = lo.midpoint(&mid);
            }
            lo = mid;
        }
        out.push(RootInterval { lo, hi });
        return;
    }
    let mid = lo.midpoint(&hi);
    if q.sign_at(&mid) == 0 {
        out_root_and_split(q, seq, lo, mid, hi, count, out);
        return;
    }
    let left = UPoly::count_roots_between(seq, &lo, &mid);
    let right = count - left;
    if left > 0 {
        isolate_rec(q, seq, lo, mid.clone(), left, out);
    }
    if right > 0 {
        isolate_rec(q, seq, mid, hi, right, out);
    }
}

fn out_root_and_split(
    q: &UPoly,
    seq: &[UPoly],
    lo: Rat,
    mid: Rat,
    hi: Rat,
    count: usize,
    out: &mut Vec<RootInterval>,
) {
    // mid is an exact rational root; roots left of it, itself, roots right.
    let left = UPoly::count_roots_between(seq, &lo, &mid) - 1;
    let right = count - left - 1;
    if left > 0 {
        // Shrink the right endpoint below mid until it excludes mid but keeps
        // all `left` roots.
        let mut r = lo.midpoint(&mid);
        while q.sign_at(&r) == 0 || UPoly::count_roots_between(seq, &lo, &r) != left {
            r = r.midpoint(&mid);
        }
        isolate_rec(q, seq, lo, r, left, out);
    }
    out.push(RootInterval {
        lo: mid.clone(),
        hi: mid.clone(),
    });
    if right > 0 {
        let mut l = mid.midpoint(&hi);
        while q.sign_at(&l) == 0 || UPoly::count_roots_between(seq, &l, &hi) != right {
            l = mid.midpoint(&l);
        }
        isolate_rec(q, seq, l, hi, right, out);
    }
}

/// Refines an isolating interval for a root of square-free `q` until its
/// width is at most `eps` (no-op for exact roots).
pub fn refine_root(q: &UPoly, iv: &mut RootInterval, eps: &Rat) {
    if iv.is_exact() {
        return;
    }
    let sign_hi = q.sign_at(&iv.hi);
    debug_assert!(sign_hi != 0 && q.sign_at(&iv.lo) != 0);
    while iv.width() > *eps {
        let mid = iv.lo.midpoint(&iv.hi);
        let sm = q.sign_at(&mid);
        if sm == 0 {
            iv.lo = mid.clone();
            iv.hi = mid;
            return;
        }
        if sm == sign_hi {
            iv.hi = mid;
        } else {
            iv.lo = mid;
        }
    }
}

/// Converts a rational to an integer polynomial multiple (clears
/// denominators), useful for display and hashing stability.
pub fn clear_denominators(p: &UPoly) -> (Vec<Int>, Int) {
    let mut lcm = Int::one();
    for c in p.coeffs() {
        lcm = lcm.lcm(c.denom());
    }
    let ints = p
        .coeffs()
        .iter()
        .map(|c| c.numer() * &(&lcm / c.denom()))
        .collect();
    (ints, lcm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;

    fn p(coeffs: &[i64]) -> UPoly {
        UPoly::from_ints(coeffs)
    }

    #[test]
    fn construction_trims() {
        assert!(p(&[0, 0]).is_zero());
        assert_eq!(p(&[1, 2, 0]).degree(), Some(1));
        assert_eq!(UPoly::zero().degree(), None);
    }

    #[test]
    fn eval_horner() {
        let q = p(&[1, -3, 2]); // 2x^2 - 3x + 1 = (2x-1)(x-1)
        assert_eq!(q.eval(&rat(1, 1)), Rat::zero());
        assert_eq!(q.eval(&rat(1, 2)), Rat::zero());
        assert_eq!(q.eval(&rat(0, 1)), Rat::one());
        assert_eq!(q.eval(&rat(2, 1)), rat(3, 1));
    }

    #[test]
    fn arithmetic() {
        let a = p(&[1, 1]); // 1 + x
        let b = p(&[-1, 1]); // -1 + x
        assert_eq!(&a * &b, p(&[-1, 0, 1]));
        assert_eq!(&a + &b, p(&[0, 2]));
        assert_eq!(&a - &b, p(&[2]));
    }

    #[test]
    fn division_identity() {
        let a = p(&[2, -3, 1, 4]); // 4x^3 + x^2 - 3x + 2
        let b = p(&[1, 2]); // 2x + 1
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r.degree() < b.degree());
    }

    #[test]
    fn gcd_of_shared_factor() {
        let common = p(&[-1, 1]); // x - 1
        let a = &common * &p(&[1, 1]);
        let b = &common * &p(&[2, 3]);
        assert_eq!(a.gcd(&b), common.monic());
        // Coprime case: gcd is 1.
        assert_eq!(p(&[1, 1]).gcd(&p(&[2, 1])).degree(), Some(0));
    }

    #[test]
    fn squarefree_part() {
        let sq = &p(&[-1, 1]) * &p(&[-1, 1]); // (x-1)^2
        let s = sq.squarefree();
        assert_eq!(s.monic(), p(&[-1, 1]).monic());
    }

    #[test]
    fn derivative() {
        assert_eq!(p(&[5, 3, 2]).derivative(), p(&[3, 4]));
        assert_eq!(p(&[7]).derivative(), UPoly::zero());
    }

    #[test]
    fn sturm_counts_roots() {
        // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
        let q = p(&[-6, 11, -6, 1]);
        let seq = q.sturm_sequence();
        assert_eq!(UPoly::count_roots_between(&seq, &rat(0, 1), &rat(4, 1)), 3);
        assert_eq!(UPoly::count_roots_between(&seq, &rat(0, 1), &rat(1, 1)), 1);
        assert_eq!(UPoly::count_roots_between(&seq, &rat(3, 2), &rat(5, 2)), 1);
        assert_eq!(UPoly::count_roots_between(&seq, &rat(4, 1), &rat(9, 1)), 0);
    }

    #[test]
    fn isolate_simple_roots() {
        // x^2 - 2: roots ±√2.
        let q = p(&[-2, 0, 1]);
        let roots = isolate_real_roots(&q);
        assert_eq!(roots.len(), 2);
        // Open isolating intervals may share a (non-root) endpoint.
        assert!(roots[0].hi <= roots[1].lo);
        // √2 ∈ (1, 2)
        assert!(roots[1].lo >= rat(-3, 1) && roots[1].hi <= rat(3, 1));
        let mut iv = roots[1].clone();
        refine_root(&q.squarefree(), &mut iv, &rat(1, 1_000_000));
        let mid = iv.lo.midpoint(&iv.hi).to_f64();
        assert!((mid - std::f64::consts::SQRT_2).abs() < 1e-5);
    }

    #[test]
    fn isolate_rational_roots_exact() {
        // (x-1)(x-1/2)
        let q = &p(&[-1, 1]) * &UPoly::from_coeffs(vec![rat(-1, 2), Rat::one()]);
        let roots = isolate_real_roots(&q);
        assert_eq!(roots.len(), 2);
        assert!(roots.iter().all(RootInterval::is_exact));
        assert_eq!(roots[0].lo, rat(1, 2));
        assert_eq!(roots[1].lo, rat(1, 1));
    }

    #[test]
    fn isolate_no_real_roots() {
        assert!(isolate_real_roots(&p(&[1, 0, 1])).is_empty()); // x^2+1
        assert!(isolate_real_roots(&p(&[5])).is_empty());
    }

    #[test]
    fn isolate_with_multiplicity() {
        // (x-2)^3 (x+1): distinct roots 2 and -1.
        let f = &(&(&p(&[-2, 1]) * &p(&[-2, 1])) * &p(&[-2, 1])) * &p(&[1, 1]);
        let roots = isolate_real_roots(&f);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].lo, rat(-1, 1));
        assert_eq!(roots[1].lo, rat(2, 1));
    }

    #[test]
    fn isolate_close_roots() {
        // (x - 1/1000)(x - 2/1000)
        let a = UPoly::from_coeffs(vec![rat(-1, 1000), Rat::one()]);
        let b = UPoly::from_coeffs(vec![rat(-2, 1000), Rat::one()]);
        let roots = isolate_real_roots(&(&a * &b));
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].lo, rat(1, 1000));
        assert_eq!(roots[1].lo, rat(2, 1000));
    }

    #[test]
    fn signs_at_infinity() {
        let q = p(&[0, 0, 0, -2]); // -2x^3
        assert_eq!(q.sign_at_pos_inf(), -1);
        assert_eq!(q.sign_at_neg_inf(), 1);
        let e = p(&[0, 0, 3]); // 3x^2
        assert_eq!(e.sign_at_neg_inf(), 1);
    }

    #[test]
    fn compose_linear_shifts() {
        let q = p(&[0, 0, 1]); // x^2
        let shifted = q.compose_linear(&Rat::one(), &rat(3, 1)); // (x+3)^2
        assert_eq!(shifted, p(&[9, 6, 1]));
        let scaled = q.compose_linear(&rat(2, 1), &Rat::zero()); // (2x)^2
        assert_eq!(scaled, p(&[0, 0, 4]));
    }

    #[test]
    fn integrate() {
        // ∫₀¹ x² dx = 1/3
        assert_eq!(
            p(&[0, 0, 1]).integrate_between(&rat(0, 1), &rat(1, 1)),
            rat(1, 3)
        );
        // ∫₁³ (2x+1) dx = (x²+x)|₁³ = 12 - 2 = 10
        assert_eq!(
            p(&[1, 2]).integrate_between(&rat(1, 1), &rat(3, 1)),
            rat(10, 1)
        );
    }

    #[test]
    fn root_bound_contains_roots() {
        let q = p(&[-100, 0, 1]); // roots ±10
        let b = q.root_bound();
        assert!(b > rat(10, 1));
    }

    #[test]
    fn display() {
        assert_eq!(p(&[-6, 11, -6, 1]).to_string(), "x^3 - 6*x^2 + 11*x - 6");
        assert_eq!(p(&[0, 1]).to_string(), "x");
        assert_eq!(UPoly::zero().to_string(), "0");
        assert_eq!(p(&[0, -1]).to_string(), "-x");
    }
}
