//! Real algebraic numbers.
//!
//! The `END` operator of FO+POLY+SUM (Section 5 of the paper) returns the
//! endpoints of the maximal intervals composing a one-dimensional definable
//! set. For semi-linear sets these endpoints are rational; for semi-algebraic
//! sets they are roots of univariate polynomials — *real algebraic numbers*.
//! This module represents them exactly as a square-free defining polynomial
//! plus an isolating interval, supporting exact comparison and
//! arbitrary-precision approximation.

use crate::upoly::{isolate_real_roots, refine_root, RootInterval, UPoly};
use cqa_arith::Rat;
use std::cmp::Ordering;
use std::fmt;

/// An exactly-represented real algebraic number.
#[derive(Clone, Debug)]
pub enum RealAlg {
    /// A rational number.
    Rational(Rat),
    /// The unique root of `poly` (square-free) in the open interval
    /// `(iv.lo, iv.hi)`; the endpoints are not roots.
    Algebraic {
        /// Square-free defining polynomial with a single root in the interval.
        poly: UPoly,
        /// Isolating interval.
        iv: RootInterval,
    },
}

impl RealAlg {
    /// Wraps a rational.
    pub fn from_rat(r: Rat) -> RealAlg {
        RealAlg::Rational(r)
    }

    /// All real roots of `p` as algebraic numbers, in increasing order.
    pub fn roots_of(p: &UPoly) -> Vec<RealAlg> {
        let q = p.squarefree();
        isolate_real_roots(p)
            .into_iter()
            .map(|iv| {
                if iv.is_exact() {
                    RealAlg::Rational(iv.lo)
                } else {
                    RealAlg::Algebraic {
                        poly: q.clone(),
                        iv,
                    }
                }
            })
            .collect()
    }

    /// Returns the rational value if this number is rational.
    pub fn as_rational(&self) -> Option<&Rat> {
        match self {
            RealAlg::Rational(r) => Some(r),
            RealAlg::Algebraic { .. } => None,
        }
    }

    /// A rational approximation within `eps` of the true value.
    pub fn approximate(&self, eps: &Rat) -> Rat {
        match self {
            RealAlg::Rational(r) => r.clone(),
            RealAlg::Algebraic { poly, iv } => {
                let mut iv = iv.clone();
                refine_root(poly, &mut iv, eps);
                iv.lo.midpoint(&iv.hi)
            }
        }
    }

    /// Approximate conversion to `f64` (error below ~1e-15 of an interval
    /// refinement).
    pub fn to_f64(&self) -> f64 {
        self.approximate(&Rat::new(1i64.into(), 1_000_000_000_000_000i64.into()))
            .to_f64()
    }

    /// A lower rational bound (strict for algebraic values).
    pub fn lower_bound(&self) -> Rat {
        match self {
            RealAlg::Rational(r) => r.clone(),
            RealAlg::Algebraic { iv, .. } => iv.lo.clone(),
        }
    }

    /// An upper rational bound (strict for algebraic values).
    pub fn upper_bound(&self) -> Rat {
        match self {
            RealAlg::Rational(r) => r.clone(),
            RealAlg::Algebraic { iv, .. } => iv.hi.clone(),
        }
    }

    /// Sign of the number.
    pub fn signum(&self) -> i32 {
        match self {
            RealAlg::Rational(r) => r.signum(),
            RealAlg::Algebraic { poly, iv } => {
                if iv.lo.signum() == iv.hi.signum() {
                    return iv.lo.signum();
                }
                // Interval straddles 0; refine around it. 0 cannot be the
                // root unless poly(0) == 0, which we can check exactly.
                if poly.sign_at(&Rat::zero()) == 0 {
                    // The isolated root might still not be the zero root;
                    // compare against the exact rational 0.
                    match self.cmp_rat(&Rat::zero()) {
                        Ordering::Less => -1,
                        Ordering::Equal => 0,
                        Ordering::Greater => 1,
                    }
                } else {
                    match self.cmp_rat(&Rat::zero()) {
                        Ordering::Less => -1,
                        Ordering::Equal => 0,
                        Ordering::Greater => 1,
                    }
                }
            }
        }
    }

    /// Exact comparison against a rational.
    pub fn cmp_rat(&self, r: &Rat) -> Ordering {
        match self {
            RealAlg::Rational(s) => s.cmp(r),
            RealAlg::Algebraic { poly, iv } => {
                if *r <= iv.lo {
                    return Ordering::Greater;
                }
                if *r >= iv.hi {
                    return Ordering::Less;
                }
                // r is inside the isolating interval.
                let sr = poly.sign_at(r);
                if sr == 0 {
                    return Ordering::Equal;
                }
                // The root alpha satisfies sign(poly) flips across it; compare
                // sign at r with sign at hi (a non-root).
                let shi = poly.sign_at(&iv.hi);
                if sr == shi {
                    // No sign change between r and hi => root is below r.
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
        }
    }

    /// Adds a rational offset.
    pub fn add_rat(&self, r: &Rat) -> RealAlg {
        match self {
            RealAlg::Rational(s) => RealAlg::Rational(s + r),
            RealAlg::Algebraic { poly, iv } => RealAlg::Algebraic {
                // root of p(x - r) is alpha + r
                poly: poly.compose_linear(&Rat::one(), &-r.clone()),
                iv: RootInterval {
                    lo: &iv.lo + r,
                    hi: &iv.hi + r,
                },
            },
        }
    }

    /// Multiplies by a non-zero rational.
    pub fn mul_rat(&self, r: &Rat) -> RealAlg {
        if r.is_zero() {
            return RealAlg::Rational(Rat::zero());
        }
        match self {
            RealAlg::Rational(s) => RealAlg::Rational(s * r),
            RealAlg::Algebraic { poly, iv } => {
                // root of p(x / r) is alpha * r
                let comp = poly.compose_linear(&r.recip(), &Rat::zero());
                let (lo, hi) = if r.is_positive() {
                    (&iv.lo * r, &iv.hi * r)
                } else {
                    (&iv.hi * r, &iv.lo * r)
                };
                RealAlg::Algebraic {
                    poly: comp,
                    iv: RootInterval { lo, hi },
                }
            }
        }
    }

    /// Negation.
    pub fn neg(&self) -> RealAlg {
        self.mul_rat(&-Rat::one())
    }

    /// The exact sign of `p(α)` for this algebraic number `α`.
    ///
    /// Decided by exact arithmetic: `p(α) = 0` iff `gcd(p, defpoly)` has a
    /// root in the isolating interval; otherwise the interval is refined
    /// until `p` is sign-definite on it.
    pub fn sign_of(&self, p: &UPoly) -> i32 {
        match self {
            RealAlg::Rational(r) => p.sign_at(r),
            RealAlg::Algebraic { poly, iv } => {
                if p.is_zero() {
                    return 0;
                }
                let g = poly.gcd(p);
                if !g.is_constant() {
                    // α is a root of p iff g vanishes on the isolating
                    // interval (α is the only root of `poly` there).
                    let seq = g.sturm_sequence();
                    if UPoly::count_roots_between(&seq, &iv.lo, &iv.hi) >= 1
                        || g.sign_at(&iv.lo) == 0
                    {
                        return 0;
                    }
                }
                // p(α) ≠ 0: refine until p has no root inside the closed
                // interval, then any interior point has the sign of p(α).
                let mut iv = iv.clone();
                let seq = p.squarefree().sturm_sequence();
                loop {
                    let root_free = UPoly::count_roots_between(&seq, &iv.lo, &iv.hi) == 0
                        && p.sign_at(&iv.lo) != 0;
                    if root_free {
                        let mid = iv.lo.midpoint(&iv.hi);
                        let s = p.sign_at(&mid);
                        debug_assert!(s != 0);
                        return s;
                    }
                    let w = iv.width() * Rat::new(1i64.into(), 4i64.into());
                    refine_root(poly, &mut iv, &w);
                }
            }
        }
    }

    fn refined(&self, eps: &Rat) -> (Rat, Rat) {
        match self {
            RealAlg::Rational(r) => (r.clone(), r.clone()),
            RealAlg::Algebraic { poly, iv } => {
                let mut iv = iv.clone();
                refine_root(poly, &mut iv, eps);
                (iv.lo, iv.hi)
            }
        }
    }
}

impl PartialEq for RealAlg {
    fn eq(&self, other: &RealAlg) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for RealAlg {}

impl PartialOrd for RealAlg {
    fn partial_cmp(&self, other: &RealAlg) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RealAlg {
    fn cmp(&self, other: &RealAlg) -> Ordering {
        match (self, other) {
            (RealAlg::Rational(a), RealAlg::Rational(b)) => a.cmp(b),
            (a, RealAlg::Rational(r)) => a.cmp_rat(r),
            (RealAlg::Rational(r), b) => b.cmp_rat(r).reverse(),
            (a @ RealAlg::Algebraic { poly: pa, .. }, b @ RealAlg::Algebraic { poly: pb, .. }) => {
                // Refine until the intervals separate, or prove equality via
                // a shared root of gcd(pa, pb).
                let mut eps = Rat::new(1i64.into(), 16i64.into());
                let g = pa.gcd(pb);
                loop {
                    let (alo, ahi) = a.refined(&eps);
                    let (blo, bhi) = b.refined(&eps);
                    if ahi < blo {
                        return Ordering::Less;
                    }
                    if bhi < alo {
                        return Ordering::Greater;
                    }
                    // Overlapping. If the gcd has a root in the overlap, both
                    // numbers equal that root.
                    if !g.is_constant() {
                        let olo = alo.clone().max(blo.clone());
                        let ohi = ahi.clone().min(bhi.clone());
                        let seq = g.sturm_sequence();
                        // Count on a slightly widened closed interval.
                        if UPoly::count_roots_between(&seq, &olo, &ohi) >= 1 || g.sign_at(&olo) == 0
                        {
                            // Both isolating intervals contain exactly one
                            // root of their polynomial; the shared gcd root
                            // lies in both, hence both equal it.
                            return Ordering::Equal;
                        }
                    }
                    eps = eps * Rat::new(1i64.into(), 16i64.into());
                }
            }
        }
    }
}

impl fmt::Display for RealAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RealAlg::Rational(r) => write!(f, "{r}"),
            RealAlg::Algebraic { poly, iv } => {
                write!(f, "root of {} in ({}, {})", poly, iv.lo, iv.hi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;

    fn sqrt2() -> RealAlg {
        let roots = RealAlg::roots_of(&UPoly::from_ints(&[-2, 0, 1]));
        roots.into_iter().last().unwrap()
    }

    fn sqrt3() -> RealAlg {
        let roots = RealAlg::roots_of(&UPoly::from_ints(&[-3, 0, 1]));
        roots.into_iter().last().unwrap()
    }

    #[test]
    fn roots_sorted_and_typed() {
        // (x^2 - 2)(x - 1): roots -√2, 1, √2
        let p = &UPoly::from_ints(&[-2, 0, 1]) * &UPoly::from_ints(&[-1, 1]);
        let roots = RealAlg::roots_of(&p);
        assert_eq!(roots.len(), 3);
        assert!(roots[0].signum() < 0);
        assert_eq!(roots[1].as_rational(), Some(&rat(1, 1)));
        assert!(roots[2].as_rational().is_none());
        assert!(roots[0] < roots[1] && roots[1] < roots[2]);
    }

    #[test]
    fn compare_algebraic_to_rational() {
        let s2 = sqrt2();
        assert_eq!(s2.cmp_rat(&rat(1, 1)), Ordering::Greater);
        assert_eq!(s2.cmp_rat(&rat(2, 1)), Ordering::Less);
        assert_eq!(s2.cmp_rat(&rat(3, 2)), Ordering::Less);
        assert_eq!(s2.cmp_rat(&rat(7, 5)), Ordering::Greater);
    }

    #[test]
    fn compare_two_algebraics() {
        assert!(sqrt2() < sqrt3());
        assert_eq!(sqrt2().cmp(&sqrt2()), Ordering::Equal);
    }

    #[test]
    fn equality_through_different_polys() {
        // √2 as root of x^2-2 and of (x^2-2)(x^2-3).
        let p = &UPoly::from_ints(&[-2, 0, 1]) * &UPoly::from_ints(&[-3, 0, 1]);
        let roots = RealAlg::roots_of(&p);
        // roots: -√3, -√2, √2, √3
        assert_eq!(roots.len(), 4);
        assert_eq!(roots[2], sqrt2());
        assert_ne!(roots[3], sqrt2());
    }

    #[test]
    fn approximation() {
        let a = sqrt2().approximate(&rat(1, 1_000_000));
        assert!((a.to_f64() - std::f64::consts::SQRT_2).abs() < 1e-6);
        assert!((sqrt2().to_f64() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn rational_offset_arithmetic() {
        // √2 + 1 ≈ 2.414...
        let v = sqrt2().add_rat(&rat(1, 1));
        assert!((v.to_f64() - (std::f64::consts::SQRT_2 + 1.0)).abs() < 1e-12);
        // 2√2 ≈ 2.828...
        let w = sqrt2().mul_rat(&rat(2, 1));
        assert!((w.to_f64() - 2.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
        // -√2 < 0
        assert!(sqrt2().neg().signum() < 0);
        assert_eq!(
            sqrt2().mul_rat(&Rat::zero()).as_rational(),
            Some(&Rat::zero())
        );
    }

    #[test]
    fn signum() {
        assert_eq!(sqrt2().signum(), 1);
        assert_eq!(sqrt2().neg().signum(), -1);
        assert_eq!(RealAlg::from_rat(Rat::zero()).signum(), 0);
    }

    #[test]
    fn sign_of_polynomials_at_algebraic_points() {
        let s2 = sqrt2();
        // x² - 2 vanishes at √2.
        assert_eq!(s2.sign_of(&UPoly::from_ints(&[-2, 0, 1])), 0);
        // x - 1 is positive at √2, x - 2 negative.
        assert_eq!(s2.sign_of(&UPoly::from_ints(&[-1, 1])), 1);
        assert_eq!(s2.sign_of(&UPoly::from_ints(&[-2, 1])), -1);
        // (x²-2)(x²-3) vanishes at √2 too (shared factor).
        let prod = &UPoly::from_ints(&[-2, 0, 1]) * &UPoly::from_ints(&[-3, 0, 1]);
        assert_eq!(s2.sign_of(&prod), 0);
        // x² - 3 alone is negative at √2.
        assert_eq!(s2.sign_of(&UPoly::from_ints(&[-3, 0, 1])), -1);
        // Rational point.
        assert_eq!(
            RealAlg::from_rat(rat(2, 1)).sign_of(&UPoly::from_ints(&[-1, 1])),
            1
        );
        // Zero polynomial.
        assert_eq!(s2.sign_of(&UPoly::zero()), 0);
    }

    #[test]
    fn ordering_mixed() {
        let xs = vec![
            RealAlg::from_rat(rat(3, 2)),
            sqrt2(),
            RealAlg::from_rat(rat(1, 1)),
            sqrt3(),
        ];
        let mut sorted = xs.clone();
        sorted.sort();
        assert_eq!(sorted[0].as_rational(), Some(&rat(1, 1)));
        assert_eq!(sorted[1], sqrt2());
        assert_eq!(sorted[2].as_rational(), Some(&rat(3, 2)));
        assert_eq!(sorted[3], sqrt3());
    }
}
