//! Property-based tests for polynomial arithmetic and root isolation.

use cqa_arith::{rat, Rat};
use cqa_poly::{isolate_real_roots, MPoly, UPoly, Var};
use proptest::prelude::*;

fn upoly_strategy() -> impl Strategy<Value = UPoly> {
    prop::collection::vec(-20i64..=20, 0..6).prop_map(|cs| UPoly::from_ints(&cs))
}

fn small_rat() -> impl Strategy<Value = Rat> {
    (-50i64..=50, 1i64..=10).prop_map(|(n, d)| rat(n, d))
}

proptest! {
    #[test]
    fn upoly_ring_axioms(a in upoly_strategy(), b in upoly_strategy(), c in upoly_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) * &c, &(&a * &c) + &(&b * &c));
    }

    #[test]
    fn upoly_div_rem_identity(a in upoly_strategy(), b in upoly_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a);
        prop_assert!(r.degree() < b.degree() || r.is_zero());
    }

    #[test]
    fn upoly_eval_homomorphism(a in upoly_strategy(), b in upoly_strategy(), x in small_rat()) {
        prop_assert_eq!((&a * &b).eval(&x), a.eval(&x) * b.eval(&x));
        prop_assert_eq!((&a + &b).eval(&x), a.eval(&x) + b.eval(&x));
    }

    #[test]
    fn gcd_divides(a in upoly_strategy(), b in upoly_strategy()) {
        prop_assume!(!a.is_zero() || !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.div_rem(&g).1.is_zero());
        prop_assert!(b.div_rem(&g).1.is_zero());
    }

    #[test]
    fn isolated_roots_are_roots(a in upoly_strategy()) {
        prop_assume!(!a.is_zero());
        let sf = a.squarefree();
        let roots = isolate_real_roots(&a);
        // Intervals sorted, disjoint interiors, and each bracketing a sign
        // change (or an exact rational root).
        for w in roots.windows(2) {
            prop_assert!(w[0].hi <= w[1].lo);
        }
        for iv in &roots {
            if iv.is_exact() {
                prop_assert_eq!(a.sign_at(&iv.lo), 0);
            } else {
                let slo = sf.sign_at(&iv.lo);
                let shi = sf.sign_at(&iv.hi);
                prop_assert!(slo != 0 && shi != 0 && slo != shi);
            }
        }
        // Every integer sign change of the square-free part is captured.
        let mut covered = 0usize;
        let b = sf.root_bound();
        let lo = b.clone().floor();
        let seq = sf.sturm_sequence();
        let total = UPoly::count_roots_between(
            &seq,
            &Rat::from_int(-(lo.clone()) - cqa_arith::Int::one()),
            &Rat::from_int(lo + cqa_arith::Int::one()),
        );
        covered += roots.len();
        prop_assert_eq!(covered, total);
    }

    #[test]
    fn integrate_linearity(a in upoly_strategy(), b in upoly_strategy(), lo in small_rat(), hi in small_rat()) {
        prop_assume!(lo <= hi);
        let s = (&a + &b).integrate_between(&lo, &hi);
        let parts = a.integrate_between(&lo, &hi) + b.integrate_between(&lo, &hi);
        prop_assert_eq!(s, parts);
    }

    #[test]
    fn mpoly_subst_matches_eval(c0 in -9i64..9, c1 in -9i64..9, c2 in -9i64..9, x in small_rat(), y in small_rat()) {
        // p = c0 + c1*x + c2*x*y
        let p = MPoly::from_i64(c0)
            + MPoly::var(Var(0)).scale(&Rat::from(c1))
            + (MPoly::var(Var(0)) * MPoly::var(Var(1))).scale(&Rat::from(c2));
        let direct = p.eval_slice(&[x.clone(), y.clone()]);
        let staged = p.subst_rat(Var(0), &x).subst_rat(Var(1), &y).as_constant().unwrap();
        prop_assert_eq!(direct, staged);
    }

    #[test]
    fn mpoly_univariate_view_roundtrip(c in prop::collection::vec((-9i64..9, 0u32..3, 0u32..3), 0..6)) {
        let mut p = MPoly::zero();
        for (k, ex, ey) in c {
            let term = MPoly::var(Var(0)).pow(ex) * MPoly::var(Var(1)).pow(ey);
            p = p + term.scale(&Rat::from(k));
        }
        let coeffs = p.as_univariate_in(Var(0));
        prop_assert_eq!(MPoly::from_univariate_in(Var(0), &coeffs), p);
    }
}
