//! Quantifier elimination for constraint query languages.
//!
//! The closure property of FO+LIN and FO+POLY (Section 2 of Benedikt &
//! Libkin, PODS 1999) — *the output of a first-order query on a constraint
//! database is again a constraint database* — is algorithmic: it rests on
//! quantifier elimination for `⟨ℝ, +, -, 0, 1, <⟩` (Fourier–Motzkin /
//! Loos–Weispfenning) and for the real field `⟨ℝ, +, ·, 0, 1, <⟩`
//! (Tarski; here implemented via the Cohen–Hörmander sign-matrix
//! procedure). This crate provides:
//!
//! * [`fourier_motzkin`] — DNF-based elimination for linear formulas.
//! * [`loos_weispfenning`] — virtual-term-substitution elimination for
//!   linear formulas (no DNF blow-up; cross-checked against FM in tests).
//! * [`hoermander`] — complete real quantifier elimination for FO+POLY,
//!   with parametric coefficients handled by sign case-splitting.
//! * [`eliminate`] — a dispatcher choosing the cheapest applicable method.
//! * Decision utilities: [`decide_sentence`], [`is_satisfiable`],
//!   [`is_valid`], [`equivalent`], and [`simplify`].
//!
//! All algorithms are exact (rational arithmetic); costs are the honest
//! worst-case costs the paper discusses in Section 3 — the `cqa-bench`
//! crate quantifies them.

#![forbid(unsafe_code)]

mod fm;
mod hoermander;
mod lw;
pub mod plan;
mod simplify;

pub use fm::{
    clause_obviously_empty, fm_eliminate_exists, fourier_motzkin, fourier_motzkin_with_arena,
    fourier_motzkin_with_budget, sample_between,
};
pub use hoermander::{hoermander, hoermander_with_budget};
pub use lw::{
    eliminate_exists_lw, loos_weispfenning, loos_weispfenning_with_arena,
    loos_weispfenning_with_budget,
};
pub use simplify::{simplify, simplify_id, SimplifyMemo};

use cqa_logic::budget::{BudgetExceeded, EvalBudget};
use cqa_logic::{ConstraintClass, Formula};

/// Errors from quantifier elimination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QeError {
    /// A linear-only method was applied to a formula that is not linear in
    /// an eliminated variable.
    NonLinear(String),
    /// The formula mentions schema relations; substitute database relation
    /// definitions first (see `cqa-core`).
    HasRelations,
    /// Active-domain quantifiers cannot be eliminated symbolically; they are
    /// evaluated against a finite instance instead.
    ActiveDomain,
    /// An eliminated matrix still contained a construct that cannot be
    /// evaluated (reported when compiling it for point evaluation, instead
    /// of silently treating unevaluable points as misses).
    Residual(String),
    /// A sentence-level decision was requested on a formula with free
    /// variables.
    NotASentence,
    /// The evaluation budget was exhausted mid-elimination; the work was
    /// cancelled cooperatively (see [`cqa_logic::budget`]).
    Budget(BudgetExceeded),
}

impl std::fmt::Display for QeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QeError::NonLinear(what) => write!(f, "formula is not linear: {what}"),
            QeError::HasRelations => write!(f, "formula mentions schema relations"),
            QeError::ActiveDomain => write!(f, "active-domain quantifier in symbolic QE"),
            QeError::Residual(what) => {
                write!(f, "eliminated matrix is not evaluable: {what}")
            }
            QeError::NotASentence => {
                write!(f, "sentence decision on a formula with free variables")
            }
            QeError::Budget(b) => write!(f, "{b}"),
        }
    }
}
impl std::error::Error for QeError {}

impl From<BudgetExceeded> for QeError {
    fn from(b: BudgetExceeded) -> QeError {
        QeError::Budget(b)
    }
}

fn check_input(f: &Formula) -> Result<(), QeError> {
    if !f.is_relation_free() {
        return Err(QeError::HasRelations);
    }
    let mut adom = false;
    f.visit(&mut |g| {
        if matches!(g, Formula::ExistsAdom(..) | Formula::ForallAdom(..)) {
            adom = true;
        }
    });
    if adom {
        return Err(QeError::ActiveDomain);
    }
    Ok(())
}

/// Eliminates all quantifiers, choosing the method by constraint class:
/// Loos–Weispfenning for dense-order and linear formulas, Cohen–Hörmander
/// for polynomial ones. Returns an equivalent quantifier-free formula.
pub fn eliminate(f: &Formula) -> Result<Formula, QeError> {
    eliminate_with_budget(f, &EvalBudget::unlimited())
}

/// [`eliminate`] under a cooperative [`EvalBudget`]: the chosen method
/// checks the budget in its hot loops and aborts with [`QeError::Budget`]
/// when it is exhausted. When the budget is not hit, the result is
/// bit-identical to [`eliminate`].
pub fn eliminate_with_budget(f: &Formula, budget: &EvalBudget) -> Result<Formula, QeError> {
    check_input(f)?;
    match f.class() {
        ConstraintClass::DenseOrder | ConstraintClass::Linear => {
            loos_weispfenning_with_budget(f, budget)
        }
        ConstraintClass::Polynomial => hoermander_with_budget(f, budget),
    }
}

/// Decides a sentence (no free variables). Returns its truth value, or
/// [`QeError::NotASentence`] if the formula has free variables.
pub fn decide_sentence(f: &Formula) -> Result<bool, QeError> {
    decide_sentence_with_budget(f, &EvalBudget::unlimited())
}

/// [`decide_sentence`] under a cooperative [`EvalBudget`].
pub fn decide_sentence_with_budget(f: &Formula, budget: &EvalBudget) -> Result<bool, QeError> {
    if !f.free_vars().is_empty() {
        return Err(QeError::NotASentence);
    }
    let qf = eliminate_with_budget(f, budget)?;
    match simplify(&qf) {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        other => match fold_ground(&other) {
            Some(truth) => Ok(truth),
            None => Err(QeError::Residual(format!(
                "ground formula did not fold to a constant: {other:?}"
            ))),
        },
    }
}

/// Exactly folds a ground (variable-free), relation-free quantifier-free
/// formula to its truth value via `Rat` arithmetic. The simplifier folds
/// most constant atoms structurally, but a sentence decision must not
/// depend on simplifier coverage: any residue it leaves — e.g. a constant
/// nonlinear atom like `(3/2)² < 9/4` surviving in a shape the rewrite
/// rules miss — is decided here by direct exact evaluation instead of
/// surfacing as a spurious [`QeError::Residual`]. Returns `None` when the
/// formula is not ground or contains an unevaluable construct.
fn fold_ground(qf: &Formula) -> Option<bool> {
    if !qf.free_vars().is_empty() {
        return None;
    }
    // A ground formula evaluates under any assignment; `eval` returns
    // `None` only for schema relations and natural quantifiers, which
    // genuinely cannot be folded.
    qf.eval(&|_| cqa_arith::Rat::zero(), &[])
}

/// Is the formula satisfiable over ℝ (free variables read existentially)?
pub fn is_satisfiable(f: &Formula) -> Result<bool, QeError> {
    is_satisfiable_with_budget(f, &EvalBudget::unlimited())
}

/// [`is_satisfiable`] under a cooperative [`EvalBudget`].
pub fn is_satisfiable_with_budget(f: &Formula, budget: &EvalBudget) -> Result<bool, QeError> {
    let vars: Vec<_> = f.free_vars().into_iter().collect();
    decide_sentence_with_budget(&Formula::exists(vars, f.clone()), budget)
}

/// Is the formula valid over ℝ (free variables read universally)?
pub fn is_valid(f: &Formula) -> Result<bool, QeError> {
    is_valid_with_budget(f, &EvalBudget::unlimited())
}

/// [`is_valid`] under a cooperative [`EvalBudget`].
pub fn is_valid_with_budget(f: &Formula, budget: &EvalBudget) -> Result<bool, QeError> {
    let vars: Vec<_> = f.free_vars().into_iter().collect();
    decide_sentence_with_budget(&Formula::forall(vars, f.clone()), budget)
}

/// Are two formulas equivalent over ℝ (free variables read universally)?
pub fn equivalent(f: &Formula, g: &Formula) -> Result<bool, QeError> {
    let iff = f
        .clone()
        .implies(g.clone())
        .and(g.clone().implies(f.clone()));
    is_valid(&iff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_logic::parse_formula;

    fn f(src: &str) -> Formula {
        parse_formula(src).unwrap().0
    }

    #[test]
    fn dispatcher_picks_methods() {
        // Linear: ∃y. x < y ∧ y < 1  ⇔  x < 1 (shared VarMap for identity).
        let mut vars = cqa_logic::VarMap::new();
        let q = cqa_logic::parse_formula_with("exists y. x < y & y < 1", &mut vars).unwrap();
        let e = cqa_logic::parse_formula_with("x < 1", &mut vars).unwrap();
        let g = eliminate(&q).unwrap();
        assert!(equivalent(&g, &e).unwrap());
        // Polynomial: ∃x. x² = 2 is true
        assert!(decide_sentence(&f("exists x. x*x = 2")).unwrap());
    }

    #[test]
    fn sentence_decisions() {
        assert!(decide_sentence(&f("forall x. x*x >= 0")).unwrap());
        assert!(!decide_sentence(&f("exists x. x*x < 0")).unwrap());
        assert!(decide_sentence(&f("exists x. 2*x = 1")).unwrap());
        assert!(decide_sentence(&f("forall x. exists y. y > x")).unwrap());
        assert!(!decide_sentence(&f("exists y. forall x. y > x")).unwrap());
    }

    #[test]
    fn satisfiability_and_validity() {
        assert!(is_satisfiable(&f("x > 0 & x < 1")).unwrap());
        assert!(!is_satisfiable(&f("x > 1 & x < 0")).unwrap());
        assert!(is_valid(&f("x <= x")).unwrap());
        assert!(!is_valid(&f("x < 1")).unwrap());
    }

    #[test]
    fn ground_nonlinear_residues_fold_exactly() {
        // (3/2)²-style sentences: Hörmander + simplify normally fold these,
        // but the decision must hold even when a constant nonlinear residue
        // survives simplification — exact Rat evaluation, not an error.
        assert!(!decide_sentence(&f("exists x. x = 3/2 & x*x < 9/4")).unwrap());
        assert!(decide_sentence(&f("exists x. x = 3/2 & x*x <= 9/4")).unwrap());
        assert!(decide_sentence(&f("exists x. x = 3/2 & x*x*x > 27/8 - 1/1000")).unwrap());
        assert!(!decide_sentence(&f("forall x. x*x != 9/4 | x = 3/2")).unwrap());
    }

    #[test]
    fn fold_ground_decides_unsimplified_residues() {
        use cqa_arith::Rat;
        use cqa_logic::{Atom, Rel};
        use cqa_poly::MPoly;
        // Hand-built ground tree the simplifier never saw: ¬((3/2)² < 9/4 ∧ ⊤).
        let nine_quarters = MPoly::constant(Rat::new(9i64.into(), 4i64.into()));
        let lt = Formula::Atom(Atom::new(
            MPoly::constant(Rat::new(9i64.into(), 4i64.into())) - nine_quarters,
            Rel::Lt,
        ));
        let tree = Formula::Not(Box::new(Formula::And(vec![lt, Formula::True])));
        assert_eq!(fold_ground(&tree), Some(true));
        // Non-ground input is refused, not guessed.
        let free = f("x < 1");
        assert_eq!(fold_ground(&free), None);
    }

    #[test]
    fn relations_are_rejected() {
        assert_eq!(eliminate(&f("exists x. U(x)")), Err(QeError::HasRelations));
    }

    #[test]
    fn adom_rejected() {
        assert_eq!(eliminate(&f("Eadom x. x < 1")), Err(QeError::ActiveDomain));
    }
}
