//! Cohen–Hörmander quantifier elimination for the real field.
//!
//! Tarski's theorem says `⟨ℝ, +, ·, 0, 1, <⟩` admits quantifier
//! elimination; this module implements the Cohen–Hörmander *sign matrix*
//! procedure (following the presentation in Harrison, *Handbook of
//! Practical Logic and Automated Reasoning*, §5.9), which is the simplest
//! complete algorithm: to eliminate `∃x` from a boolean combination of sign
//! conditions on polynomials `p₁ … p_s` in `x`, recursively compute the
//! complete **sign matrix** of the family — the signs of every `pᵢ` on
//! every root of every `pⱼ` and on the open intervals between them — and
//! check whether some row satisfies the body.
//!
//! The key recursion: the sign of `p` at a root of `q` equals the sign of
//! the (sign-corrected pseudo-)remainder `p mod q` there, so the matrix for
//! `{p, q₁ … }` with `p` of maximal degree reduces to the matrix for
//! `{p', q₁ …} ∪ {p mod p', p mod q₁ …}`, a family of smaller degree
//! multiset; the roots of `p` are then interpolated between sign changes
//! using the derivative `p'`.
//!
//! Coefficients of the eliminated variable are polynomials in the remaining
//! (parameter) variables; whenever a sign decision on such a coefficient is
//! needed, the algorithm **case-splits**, emitting the sign condition into
//! the output formula and continuing under the corresponding assumption.
//! This is what makes the procedure a genuine *parametric* QE rather than
//! just a decision procedure — the closure property of FO+POLY made
//! executable.
//!
//! Complexity is non-elementary in the worst case; the paper (Section 3)
//! leans on exactly this cost when arguing that QE-based approximate volume
//! operators are impractical, and the `qe_poly` bench measures it.

use crate::simplify::simplify;
use crate::QeError;
use cqa_logic::budget::EvalBudget;
use cqa_logic::{nnf, prenex, Atom, Formula, Rel};
use cqa_poly::{MPoly, Var};

/// A polynomial in the eliminated variable: coefficients (ascending degree)
/// are polynomials in the parameters.
type XPoly = Vec<MPoly>;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Sign {
    Zero,
    Pos,
    Neg,
}

impl Sign {
    fn as_i8(self) -> i8 {
        match self {
            Sign::Zero => 0,
            Sign::Pos => 1,
            Sign::Neg => -1,
        }
    }
    fn flip_if(self, negative: bool) -> Sign {
        if !negative {
            return self;
        }
        match self {
            Sign::Zero => Sign::Zero,
            Sign::Pos => Sign::Neg,
            Sign::Neg => Sign::Pos,
        }
    }
}

/// A context of sign assumptions on parameter polynomials, normalized to
/// monic form so that positive scalings share one entry.
#[derive(Clone, Default)]
struct Ctx {
    entries: Vec<(MPoly, Sign)>,
}

/// Normalizes `p = c·q` with `q` monic in the term order; returns
/// `(q, c_is_negative)`, or `None` for the zero polynomial (which has no
/// leading coefficient — callers treat it as the constant 0).
fn normalize(p: &MPoly) -> Option<(MPoly, bool)> {
    let c = p.terms().last().map(|(_, c)| c.clone())?;
    Some((p.scale(&c.recip()), c.is_negative()))
}

impl Ctx {
    fn findsign(&self, p: &MPoly) -> Option<Sign> {
        if let Some(c) = p.as_constant() {
            return Some(match c.signum() {
                0 => Sign::Zero,
                s if s > 0 => Sign::Pos,
                _ => Sign::Neg,
            });
        }
        let Some((q, neg)) = normalize(p) else {
            return Some(Sign::Zero); // structurally zero polynomial
        };
        self.entries
            .iter()
            .find(|(r, _)| *r == q)
            .map(|&(_, s)| s.flip_if(neg))
    }

    fn assert_sign(&self, p: &MPoly, s: Sign) -> Ctx {
        // The zero polynomial already has sign Zero; nothing to record.
        let Some((q, neg)) = normalize(p) else {
            return self.clone();
        };
        let mut next = self.clone();
        next.entries.retain(|(r, _)| *r != q);
        next.entries.push((q, s.flip_if(neg)));
        next
    }
}

/// Inconsistency marker: a branch whose sign assumptions are contradictory
/// produces garbage inferences; such branches contribute `⊥`.
struct Inconsistent;

type Cont<'a> = dyn FnMut(&[Vec<i8>]) -> Formula + 'a;

/// Case-splits on the sign of `head`, invoking `k` once per feasible sign
/// with the extended context, and guarding unknown branches with the
/// corresponding atom.
fn split3(
    ctx: &Ctx,
    head: &MPoly,
    k: &mut dyn FnMut(&Ctx, Sign) -> Result<Formula, QeError>,
) -> Result<Formula, QeError> {
    match ctx.findsign(head) {
        Some(s) => k(ctx, s),
        None => {
            let mut out = Formula::False;
            for (s, rel) in [
                (Sign::Zero, Rel::Eq),
                (Sign::Pos, Rel::Gt),
                (Sign::Neg, Rel::Lt),
            ] {
                let guard = Formula::Atom(Atom::new(head.clone(), rel));
                let branch = k(&ctx.assert_sign(head, s), s)?;
                out = out.or(guard.and(branch));
            }
            Ok(out)
        }
    }
}

fn xtrim(p: &[MPoly]) -> XPoly {
    let mut q = p.to_vec();
    while q.last().is_some_and(MPoly::is_zero) {
        q.pop();
    }
    q
}

fn xderiv(p: &[MPoly]) -> XPoly {
    p.iter()
        .enumerate()
        .skip(1)
        .map(|(i, c)| c.scale(&cqa_arith::Rat::from(i as i64)))
        .collect()
}

fn xneg(p: &[MPoly]) -> XPoly {
    p.iter().map(|c| -c).collect()
}

/// Pseudo-division: computes `(k, r)` with `lc(q)^k · p = Q·q + r` and
/// `deg r < deg q` (structurally).
fn pdivide(p: &[MPoly], q: &[MPoly]) -> (u32, XPoly) {
    let dq = q.len() - 1;
    let lq = q.last().unwrap();
    let mut r = xtrim(p);
    let mut k = 0u32;
    while r.len() > dq {
        let dr = r.len() - 1;
        let lr = r.last().unwrap().clone();
        // r := lq·r - lr·q·x^(dr-dq)
        let mut next: Vec<MPoly> = r.iter().map(|c| c * lq).collect();
        for (j, c) in q.iter().enumerate() {
            let idx = dr - dq + j;
            next[idx] = &next[idx] - &(c * &lr);
        }
        debug_assert!(next.last().unwrap().is_zero());
        next.pop();
        r = xtrim(&next);
        k += 1;
    }
    (k, r)
}

/// The remainder of `p` by `q`, sign-corrected so that at every root of `q`
/// (in any context consistent with `ctx`), `sign(result) = sign(p)`.
fn pdivide_pos(ctx: &Ctx, p: &[MPoly], q: &[MPoly]) -> XPoly {
    let (k, r) = pdivide(p, q);
    if k % 2 == 0 {
        return r;
    }
    match ctx.findsign(q.last().unwrap()) {
        Some(Sign::Pos) => r,
        Some(Sign::Neg) => xneg(&r),
        other => unreachable!("head sign of divisor must be known, got {other:?}"),
    }
}

/// Ensures every polynomial's head coefficient has a known sign in the
/// context: zero heads are beheaded, constants recorded via `delconst`, and
/// non-constants accumulated in `dun` for the matrix computation.
///
/// This is the doubly-exponential blow-up point of the whole procedure, so
/// the cooperative budget is checked at every entry.
fn casesplit(
    ctx: &Ctx,
    dun: &[XPoly],
    todo: &[XPoly],
    budget: &EvalBudget,
    cont: &mut Cont<'_>,
) -> Result<Formula, QeError> {
    budget.check()?;
    let Some((p0, rest)) = todo.split_first() else {
        return matrix_build(ctx, dun, budget, cont);
    };
    let p = xtrim(p0);
    if p.is_empty() {
        return delconst(ctx, dun, 0, rest, budget, cont);
    }
    let head = p.last().unwrap().clone();
    split3(ctx, &head, &mut |ctx2, s| match s {
        Sign::Zero => {
            let mut q = p.clone();
            q.pop();
            let mut todo2 = vec![q];
            todo2.extend_from_slice(rest);
            casesplit(ctx2, dun, &todo2, budget, cont)
        }
        s => {
            if p.len() == 1 {
                delconst(ctx2, dun, s.as_i8(), rest, budget, cont)
            } else {
                let mut dun2 = dun.to_vec();
                dun2.push(p.clone());
                casesplit(ctx2, &dun2, rest, budget, cont)
            }
        }
    })
}

/// Records a (sign-known) constant polynomial: its sign column is inserted
/// into every matrix row at the position the polynomial occupies.
fn delconst(
    ctx: &Ctx,
    dun: &[XPoly],
    sign: i8,
    rest: &[XPoly],
    budget: &EvalBudget,
    cont: &mut Cont<'_>,
) -> Result<Formula, QeError> {
    let idx = dun.len();
    let mut cont2 = |rows: &[Vec<i8>]| {
        let rows2: Vec<Vec<i8>> = rows
            .iter()
            .map(|r| {
                let mut r2 = r.clone();
                r2.insert(idx, sign);
                r2
            })
            .collect();
        cont(&rows2)
    };
    casesplit(ctx, dun, rest, budget, &mut cont2)
}

/// Computes the sign matrix for non-constant polynomials with sign-known
/// non-zero heads, and feeds its rows (alternating interval, point,
/// interval, …) to the continuation.
fn matrix_build(
    ctx: &Ctx,
    pols: &[XPoly],
    budget: &EvalBudget,
    cont: &mut Cont<'_>,
) -> Result<Formula, QeError> {
    if pols.is_empty() {
        return Ok(cont(&[vec![]]));
    }
    // Pick a polynomial of maximal degree.
    let i = (0..pols.len()).max_by_key(|&j| pols[j].len()).unwrap();
    let p = &pols[i];
    let p_prime = xderiv(p);
    let mut qs: Vec<XPoly> = vec![p_prime];
    for (j, q) in pols.iter().enumerate() {
        if j != i {
            qs.push(q.clone());
        }
    }
    let rs: Vec<XPoly> = qs.iter().map(|q| pdivide_pos(ctx, p, q)).collect();
    let l = qs.len();
    let mut cont2 = |rows: &[Vec<i8>]| -> Formula {
        match dedmatrix(rows, l) {
            Err(Inconsistent) => Formula::False,
            Ok(ded) => {
                // ded rows: [p, p', pols-minus-p…]; drop p', reinsert p at i.
                let rows2: Vec<Vec<i8>> = ded
                    .iter()
                    .map(|r| {
                        let mut rest: Vec<i8> = r[2..].to_vec();
                        rest.insert(i, r[0]);
                        rest
                    })
                    .collect();
                cont(&rows2)
            }
        }
    };
    let mut all = qs;
    all.extend(rs);
    casesplit(ctx, &[], &all, budget, &mut cont2)
}

/// Given the sign matrix of `qs ++ rs` (2·l columns, rows alternating
/// interval/point), deduces the matrix of `[p] ++ qs`: the sign of `p` at
/// each root point comes from the matching remainder; its signs on
/// intervals and its own roots are interpolated via `p' = qs[0]`.
fn dedmatrix(rows: &[Vec<i8>], l: usize) -> Result<Vec<Vec<i8>>, Inconsistent> {
    debug_assert!(rows.len() % 2 == 1);
    // Step 1: p's sign at q-root points; drop the remainder columns.
    // (kind: false = interval, true = point)
    struct Row {
        psign: Option<i8>,
        qsigns: Vec<i8>,
    }
    let mut rs1: Vec<Row> = Vec::with_capacity(rows.len());
    for (idx, r) in rows.iter().enumerate() {
        let qsigns = r[..l].to_vec();
        let rsigns = &r[l..2 * l];
        let point = idx % 2 == 1;
        let mut psign = None;
        if point {
            for j in 0..l {
                if qsigns[j] == 0 {
                    match psign {
                        None => psign = Some(rsigns[j]),
                        Some(s) if s != rsigns[j] => return Err(Inconsistent),
                        _ => {}
                    }
                }
            }
        }
        let _ = point;
        rs1.push(Row { psign, qsigns });
    }
    // Step 2: condense — remove point rows that are roots of no q (they were
    // roots only of remainders) and merge the surrounding intervals.
    let mut rs2: Vec<Row> = Vec::with_capacity(rs1.len());
    let mut it = rs1.into_iter();
    rs2.push(it.next().unwrap()); // leading interval
    while let Some(pt) = it.next() {
        let iv = it
            .next()
            .expect("point row must be followed by an interval");
        if pt.psign.is_some() {
            rs2.push(pt);
            rs2.push(iv);
        } else {
            // Merging intervals across a non-root point: signs must agree.
            if rs2.last().unwrap().qsigns != iv.qsigns {
                return Err(Inconsistent);
            }
        }
    }
    // Step 3: interpolate p's signs on intervals, inserting p's own roots.
    // Sign of p at ±∞ from p' (= column 0): sign p(-∞) = -sign p'(-∞),
    // sign p(+∞) = +sign p'(+∞).
    let n = rs2.len();
    let mut out: Vec<Vec<i8>> = Vec::with_capacity(n + 2);
    for k in (0..n).step_by(2) {
        let d = rs2[k].qsigns[0]; // p' sign on this interval
        if d == 0 {
            return Err(Inconsistent);
        }
        let sl = if k == 0 {
            -d
        } else {
            rs2[k - 1].psign.unwrap()
        };
        let sr = if k == n - 1 {
            d
        } else {
            rs2[k + 1].psign.unwrap()
        };
        let qsigns = &rs2[k].qsigns;
        let push_iv = |out: &mut Vec<Vec<i8>>, s: i8| {
            let mut row = Vec::with_capacity(1 + qsigns.len());
            row.push(s);
            row.extend_from_slice(qsigns);
            out.push(row);
        };
        match (sl, sr) {
            (0, 0) => return Err(Inconsistent),
            (0, sr) => {
                // Leaving a root moving right: p takes the sign of p'.
                if sr != d {
                    return Err(Inconsistent);
                }
                push_iv(&mut out, d);
            }
            (sl, 0) => {
                // Approaching a root from the left: p has sign -p'.
                if sl != -d {
                    return Err(Inconsistent);
                }
                push_iv(&mut out, -d);
            }
            (sl, sr) if sl == sr => push_iv(&mut out, sl),
            (sl, sr) => {
                // Sign change: exactly one root of p inside (p monotone).
                push_iv(&mut out, sl);
                let mut root = Vec::with_capacity(1 + qsigns.len());
                root.push(0);
                root.extend_from_slice(qsigns);
                out.push(root);
                push_iv(&mut out, sr);
            }
        }
        if k + 1 < n {
            let pt = &rs2[k + 1];
            let mut row = Vec::with_capacity(1 + pt.qsigns.len());
            row.push(pt.psign.unwrap());
            row.extend_from_slice(&pt.qsigns);
            out.push(row);
        }
    }
    Ok(out)
}

/// Evaluates the (NNF, relation-free, quantifier-free) body under a sign
/// assignment for its atom polynomials.
fn eval_with_signs(f: &Formula, polys: &[MPoly], row: &[i8]) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(a) => {
            let idx = polys
                .iter()
                .position(|p| *p == a.poly)
                .expect("atom polynomial not catalogued");
            a.rel.sign_satisfies(i32::from(row[idx]))
        }
        Formula::And(fs) => fs.iter().all(|g| eval_with_signs(g, polys, row)),
        Formula::Or(fs) => fs.iter().any(|g| eval_with_signs(g, polys, row)),
        other => unreachable!("unexpected connective in CH body: {other:?}"),
    }
}

/// Eliminates `∃v` from a quantifier-free, relation-free formula.
pub(crate) fn eliminate_exists_ch(
    v: Var,
    f: &Formula,
    budget: &EvalBudget,
) -> Result<Formula, QeError> {
    let f = nnf(f);
    let mut polys: Vec<MPoly> = Vec::new();
    let mut bad = false;
    f.visit(&mut |g| match g {
        Formula::Atom(a) if !polys.contains(&a.poly) => {
            polys.push(a.poly.clone());
        }
        Formula::Rel { .. } | Formula::Not(_) => bad = true,
        _ => {}
    });
    if bad {
        return Err(QeError::HasRelations);
    }
    if polys.is_empty() {
        return Ok(f);
    }
    let xpolys: Vec<XPoly> = polys.iter().map(|p| p.as_univariate_in(v)).collect();
    let mut cont = |rows: &[Vec<i8>]| -> Formula {
        if rows.iter().any(|row| eval_with_signs(&f, &polys, row)) {
            Formula::True
        } else {
            Formula::False
        }
    };
    let qf = casesplit(&Ctx::default(), &[], &xpolys, budget, &mut cont)?;
    Ok(simplify(&qf))
}

/// Eliminates all quantifiers from an FO+POLY formula via Cohen–Hörmander,
/// returning an equivalent quantifier-free formula over the free variables.
pub fn hoermander(f: &Formula) -> Result<Formula, QeError> {
    hoermander_with_budget(f, &EvalBudget::unlimited())
}

/// [`hoermander`] under a cooperative [`EvalBudget`]: the budget is checked
/// at every `casesplit` node (the doubly-exponential blow-up point) and each
/// elimination round is gated on the intermediate formula's atom count.
/// Aborts with [`QeError::Budget`] when exhausted; otherwise the result is
/// bit-identical to the unbudgeted run.
pub fn hoermander_with_budget(f: &Formula, budget: &EvalBudget) -> Result<Formula, QeError> {
    crate::check_input(f)?;
    let (blocks, mut matrix) = prenex(f);
    for block in blocks.into_iter().rev() {
        for &v in block.vars.iter().rev() {
            budget.check_atoms(matrix.atom_count() as u64)?;
            if block.exists {
                matrix = eliminate_exists_ch(v, &matrix, budget)?;
            } else {
                matrix = eliminate_exists_ch(v, &matrix.negate(), budget)?.negate();
            }
            matrix = simplify(&matrix);
        }
    }
    Ok(simplify(&matrix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::Rat;
    use cqa_logic::parse_formula;

    fn f(src: &str) -> Formula {
        parse_formula(src).unwrap().0
    }

    fn decide(src: &str) -> bool {
        match hoermander(&f(src)).unwrap() {
            Formula::True => true,
            Formula::False => false,
            other => panic!("not ground: {other:?}"),
        }
    }

    #[test]
    fn univariate_sentences() {
        assert!(decide("exists x. x*x = 2"));
        assert!(!decide("exists x. x*x = -1"));
        assert!(decide("forall x. x*x >= 0"));
        assert!(decide("exists x. x*x*x = -8"));
        assert!(decide("exists x. x*x - 3*x + 2 = 0"));
        assert!(!decide("exists x. x*x - 3*x + 2 = 0 & x > 5"));
        assert!(decide("exists x. x*x - 3*x + 2 = 0 & x > 1.5"));
    }

    #[test]
    fn root_counting_flavours() {
        // (x-1)(x-2)(x-3) has a root in (2.5, 3.5) but none in (3.5, 4).
        assert!(decide(
            "exists x. x*x*x - 6*x*x + 11*x - 6 = 0 & 2.5 < x & x < 3.5"
        ));
        assert!(!decide(
            "exists x. x*x*x - 6*x*x + 11*x - 6 = 0 & 3.5 < x & x < 4"
        ));
    }

    #[test]
    fn alternating_quantifiers() {
        assert!(decide("forall x. exists y. y*y*y = x"));
        assert!(!decide("forall x. exists y. y*y = x"));
        assert!(decide("forall x. exists y. y > x*x"));
        assert!(!decide("exists y. forall x. y > x*x"));
        assert!(decide("exists y. forall x. x*x + 1 > y"));
    }

    #[test]
    fn discriminant_emerges() {
        // ∃x. x² + b·x + 1 = 0 over parameter b ⇔ b² - 4 ≥ 0.
        let g = hoermander(&f("exists x. x*x + b*x + 1 = 0")).unwrap();
        assert!(!g.free_vars().is_empty());
        for (bval, expect) in [
            (-3i64, true),
            (-2, true),
            (0, false),
            (1, false),
            (2, true),
            (5, true),
        ] {
            let asg = |_| Rat::from(bval);
            assert_eq!(g.eval(&asg, &[]), Some(expect), "b = {bval}");
        }
    }

    #[test]
    fn parametric_linear_inside_poly_engine() {
        // ∃x. a·x = 1 ⇔ a ≠ 0.
        let g = hoermander(&f("exists x. a*x = 1")).unwrap();
        for (a, expect) in [(0i64, false), (2, true), (-3, true)] {
            assert_eq!(g.eval(&|_| Rat::from(a), &[]), Some(expect), "a = {a}");
        }
    }

    #[test]
    fn positivstellensatz_like() {
        assert!(decide("forall x. x*x - 2*x + 1 >= 0")); // (x-1)^2
        assert!(!decide("forall x. x*x - 2*x + 1 > 0")); // fails at x=1
        assert!(decide("forall x, y. x*x + y*y >= 2*x*y")); // (x-y)^2 >= 0
    }

    #[test]
    fn mixed_polynomials() {
        // Circle and line intersect: ∃x,y. x²+y²=1 ∧ y=x ⇔ true.
        assert!(decide("exists x, y. x*x + y*y = 1 & y = x"));
        // Circle and far line don't: y = x + 3 misses the unit circle.
        assert!(!decide("exists x, y. x*x + y*y = 1 & y = x + 3"));
    }

    #[test]
    fn structurally_zero_atoms_are_handled() {
        // A constant-folded atom over the zero polynomial (`0 ≤ 0`, `0 < 0`)
        // used to panic in sign normalization; it now has sign Zero and the
        // sentence decides.
        let zero = cqa_poly::MPoly::constant(Rat::from(0i64));
        let mut vars = cqa_logic::VarMap::new();
        let body = cqa_logic::parse_formula_with("x*x = 2", &mut vars).unwrap();
        let x = vars.intern("x");
        let tautology = Formula::Atom(cqa_logic::Atom::new(zero.clone(), cqa_logic::Rel::Le));
        let absurdity = Formula::Atom(cqa_logic::Atom::new(zero, cqa_logic::Rel::Lt));
        let t = Formula::exists(vec![x], tautology.and(body.clone()));
        let f_ = Formula::exists(vec![x], absurdity.and(body));
        assert_eq!(hoermander(&t).unwrap(), Formula::True);
        assert_eq!(hoermander(&f_).unwrap(), Formula::False);
    }

    #[test]
    fn strict_vs_weak() {
        assert!(decide("exists x. x*x < 0.0001"));
        assert!(!decide("exists x. x*x < 0 | x*x + 1 <= 0"));
        assert!(decide("exists x. x*x <= 0"));
    }
}
