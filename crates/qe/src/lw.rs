//! Loos–Weispfenning virtual term substitution for linear real arithmetic.
//!
//! Eliminates `∃x. φ` without converting `φ` to DNF: the satisfying set of
//! `φ` in `x` (for fixed other variables) is a finite union of intervals
//! whose endpoints come from the atoms' bound terms; it is non-empty iff `φ`
//! holds at `-∞` or at one of the *virtual test points* `t` or `t + ε` for
//! an atom bound `t`. Substituting these virtual points yields ordinary
//! linear formulas over the remaining variables.
//!
//! We use the (slightly redundant but simple and evidently complete) test
//! set `{-∞} ∪ {t, t+ε : t a bound term of an atom involving x}`; the bench
//! suite compares its cost against Fourier–Motzkin.

use crate::simplify::simplify;
use crate::QeError;
use cqa_logic::budget::EvalBudget;
use cqa_logic::ir::{Arena, FormulaId};
use cqa_logic::{nnf, prenex, Atom, Formula, Rel};
use cqa_poly::{MPoly, Var};
use std::collections::HashSet;

/// Eliminates all quantifiers from a linear (FO+LIN) formula via
/// Loos–Weispfenning virtual substitution.
pub fn loos_weispfenning(f: &Formula) -> Result<Formula, QeError> {
    loos_weispfenning_with_budget(f, &EvalBudget::unlimited())
}

/// [`loos_weispfenning`] under a cooperative [`EvalBudget`]: checks the
/// budget per virtual test point and gates each elimination round on the
/// intermediate formula's atom count. Aborts with [`QeError::Budget`] when
/// exhausted; otherwise the result is bit-identical to the unbudgeted run.
pub fn loos_weispfenning_with_budget(f: &Formula, budget: &EvalBudget) -> Result<Formula, QeError> {
    loos_weispfenning_with_arena(f, budget, &mut Arena::new())
}

/// [`loos_weispfenning_with_budget`] against a caller-supplied interning
/// [`Arena`]: the disjuncts produced per virtual test point are hash-consed
/// and duplicates dropped by id before they pile up in the output.
pub fn loos_weispfenning_with_arena(
    f: &Formula,
    budget: &EvalBudget,
    arena: &mut Arena,
) -> Result<Formula, QeError> {
    crate::check_input(f)?;
    let (blocks, mut matrix) = prenex(f);
    for block in blocks.into_iter().rev() {
        for &v in block.vars.iter().rev() {
            budget.check_atoms(matrix.atom_count() as u64)?;
            if block.exists {
                matrix = eliminate_exists_lw(v, &matrix, budget, arena)?;
            } else {
                matrix = eliminate_exists_lw(v, &matrix.negate(), budget, arena)?.negate();
            }
            matrix = simplify(&matrix);
        }
    }
    Ok(simplify(&matrix))
}

/// The coefficient `a` and remainder `r` of `poly = a·x + r`, where `a` must
/// be a rational constant (possibly zero).
fn linear_parts(v: Var, poly: &MPoly) -> Result<(cqa_arith::Rat, MPoly), QeError> {
    let coeffs = poly.as_univariate_in(v);
    match coeffs.len() {
        0 => Ok((cqa_arith::Rat::zero(), MPoly::zero())),
        1 => Ok((cqa_arith::Rat::zero(), coeffs[0].clone())),
        2 => {
            let a = coeffs[1].as_constant().ok_or_else(|| {
                QeError::NonLinear("non-constant coefficient of eliminated variable".into())
            })?;
            Ok((a, coeffs[0].clone()))
        }
        _ => Err(QeError::NonLinear("higher-degree occurrence".into())),
    }
}

/// Eliminates `∃v` from a quantifier-free linear formula by virtual
/// substitution. Public as the planner's ([`crate::plan`]) per-variable
/// Loos–Weispfenning entry point.
pub fn eliminate_exists_lw(
    v: Var,
    f: &Formula,
    budget: &EvalBudget,
    arena: &mut Arena,
) -> Result<Formula, QeError> {
    let f = nnf(f);
    // Gather bound terms t = -r/a for all atoms with a ≠ 0.
    let mut bounds: Vec<MPoly> = Vec::new();
    let mut err: Option<QeError> = None;
    f.visit(&mut |g| {
        if let Formula::Atom(a) = g {
            if a.poly.vars().contains(&v) {
                match linear_parts(v, &a.poly) {
                    Ok((c, r)) => {
                        if !c.is_zero() {
                            let t = r.scale(&-c.recip());
                            if !bounds.contains(&t) {
                                bounds.push(t);
                            }
                        }
                    }
                    Err(e) => err = Some(e),
                }
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }

    // Different test points routinely substitute to the same formula;
    // intern each disjunct and keep only the first occurrence.
    let mut seen: HashSet<FormulaId> = HashSet::new();
    let mut out = subst_minus_inf(v, &f)?;
    seen.insert(arena.intern(&out));
    for t in &bounds {
        budget.check()?;
        for cand in [f.subst_poly(v, t), subst_plus_eps(v, &f, t)?] {
            if seen.insert(arena.intern(&cand)) {
                out = out.or(cand);
            }
        }
    }
    Ok(simplify(&out))
}

/// `φ[x := -∞]`: each atom `a·x + r ⋈ 0` becomes its limiting truth value.
fn subst_minus_inf(v: Var, f: &Formula) -> Result<Formula, QeError> {
    transform_atoms(f, &|a| {
        let (c, _r) = linear_parts(v, &a.poly)?;
        if c.is_zero() {
            return Ok(Formula::Atom(a.clone()));
        }
        // As x → -∞, a·x + r → sign(-a)·∞.
        let limit_sign = -c.signum();
        Ok(if a.rel.sign_satisfies(limit_sign) {
            Formula::True
        } else {
            Formula::False
        }
        .clone())
    })
}

/// `φ[x := t + ε]` for infinitesimal ε > 0: each atom `a·x + r ⋈ 0`
/// becomes a condition on `s = a·t + r` and the sign of `a`.
fn subst_plus_eps(v: Var, f: &Formula, t: &MPoly) -> Result<Formula, QeError> {
    transform_atoms(f, &|a| {
        let (c, r) = linear_parts(v, &a.poly)?;
        if c.is_zero() {
            return Ok(Formula::Atom(a.clone()));
        }
        // Value at t + ε: s + c·ε where s = c·t + r.
        let s = &t.scale(&c) + &r;
        let cs = c.signum();
        let atom = |rel: Rel| {
            let at = Atom::new(s.clone(), rel);
            match at.as_const() {
                Some(true) => Formula::True,
                Some(false) => Formula::False,
                None => Formula::Atom(at),
            }
        };
        Ok(match a.rel {
            // s + cε = 0 never (ε infinitesimal, c ≠ 0).
            Rel::Eq => Formula::False,
            Rel::Neq => Formula::True,
            // s + cε < 0 ⇔ s < 0 ∨ (s = 0 ∧ c < 0).
            Rel::Lt => {
                if cs < 0 {
                    atom(Rel::Le)
                } else {
                    atom(Rel::Lt)
                }
            }
            Rel::Le => {
                if cs < 0 {
                    atom(Rel::Le)
                } else {
                    atom(Rel::Lt)
                }
            }
            Rel::Gt => {
                if cs > 0 {
                    atom(Rel::Ge)
                } else {
                    atom(Rel::Gt)
                }
            }
            Rel::Ge => {
                if cs > 0 {
                    atom(Rel::Ge)
                } else {
                    atom(Rel::Gt)
                }
            }
        })
    })
}

/// Rebuilds a formula, replacing each sign-condition atom via `tr`. The
/// input must be quantifier-free and in NNF (no `Not` around atoms).
fn transform_atoms(
    f: &Formula,
    tr: &dyn Fn(&Atom) -> Result<Formula, QeError>,
) -> Result<Formula, QeError> {
    Ok(match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(a) => tr(a)?,
        Formula::Rel { .. } | Formula::Not(_) => return Err(QeError::HasRelations),
        Formula::And(fs) => {
            let mut out = Formula::True;
            for g in fs {
                out = out.and(transform_atoms(g, tr)?);
            }
            out
        }
        Formula::Or(fs) => {
            let mut out = Formula::False;
            for g in fs {
                out = out.or(transform_atoms(g, tr)?);
            }
            out
        }
        _ => unreachable!("quantifier in LW matrix"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fourier_motzkin;
    use cqa_arith::Rat;
    use cqa_logic::parse_formula;

    fn f(src: &str) -> Formula {
        parse_formula(src).unwrap().0
    }

    /// Runs LW on `query` and checks semantic equivalence with `expected`,
    /// parsing both with a shared variable map.
    fn check(query: &str, expected: &str) {
        let mut vars = cqa_logic::VarMap::new();
        let q = cqa_logic::parse_formula_with(query, &mut vars).unwrap();
        let e = cqa_logic::parse_formula_with(expected, &mut vars).unwrap();
        let g = loos_weispfenning(&q).unwrap();
        agree(&g, &e);
    }

    fn agree(a: &Formula, b: &Formula) {
        let vars: Vec<Var> = a.free_vars().union(&b.free_vars()).copied().collect();
        let samples: Vec<Rat> = (-6..=6).map(|n| Rat::new(n.into(), 2i64.into())).collect();
        let mut idx = vec![0usize; vars.len()];
        loop {
            let vals: Vec<Rat> = idx.iter().map(|&i| samples[i].clone()).collect();
            let asg = |v: Var| {
                vars.iter()
                    .position(|&w| w == v)
                    .map(|i| vals[i].clone())
                    .unwrap_or_else(Rat::zero)
            };
            assert_eq!(a.eval(&asg, &[]), b.eval(&asg, &[]), "disagree at {vals:?}");
            let mut k = 0;
            loop {
                if k == idx.len() {
                    return;
                }
                idx[k] += 1;
                if idx[k] < samples.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }

    #[test]
    fn matches_simple_projection() {
        check("exists y. x < y & y < 1", "x < 1");
    }

    #[test]
    fn equalities() {
        check("exists y. y = 2*x & y < 1", "2*x < 1");
    }

    #[test]
    fn disequalities() {
        check("exists y. 0 < y & y < 1 & y != x", "true");
    }

    #[test]
    fn minus_infinity_case() {
        check("exists y. y < x", "true");
        check("exists y. y > x & y < x", "false");
    }

    #[test]
    fn universal_and_alternation() {
        assert_eq!(
            loos_weispfenning(&f("forall x. exists y. y > x")).unwrap(),
            Formula::True
        );
        assert_eq!(
            loos_weispfenning(&f("exists y. forall x. y > x")).unwrap(),
            Formula::False
        );
    }

    #[test]
    fn cross_check_with_fm_on_random_formulas() {
        // A deterministic batch of moderately complex formulas; LW and FM
        // must produce equivalent results.
        let cases = [
            "exists y. (x < y & y < z) | (z < y & y < x)",
            "exists y. x <= 2*y & 3*y <= z & y != 0",
            "forall y. y < x | y >= x",
            "exists y. y = x + z & y > 0",
            "exists y, w. x < y & y < w & w < z",
            "forall y. (y > x -> y >= z)",
            "exists y. 2*y + x <= 1 & y - z >= 0 | y = x",
        ];
        for src in cases {
            let q = f(src);
            let lw = loos_weispfenning(&q).unwrap();
            let fm = fourier_motzkin(&q).unwrap();
            agree(&lw, &fm);
        }
    }

    #[test]
    fn atoms_without_variable_pass_through() {
        check("exists y. y > 0 & x < 3", "x < 3");
    }

    #[test]
    fn rejects_nonlinear() {
        assert!(matches!(
            loos_weispfenning(&f("exists y. y*y < x")),
            Err(QeError::NonLinear(_))
        ));
    }
}
