//! Bottom-up formula simplification: constant folding, duplicate removal,
//! and local contradiction/tautology detection on atoms.

use cqa_logic::{Atom, Formula, Rel};

/// Simplifies a formula bottom-up:
///
/// * folds ground atoms to `⊤`/`⊥`;
/// * removes duplicate conjuncts/disjuncts (structural);
/// * cancels complementary literal pairs (`p < 0 ∧ p ≥ 0` → `⊥`,
///   `p < 0 ∨ p ≥ 0` → `⊤`);
/// * normalizes atoms so the leading coefficient is positive (`-x < 0`
///   becomes `x > 0`), which makes structural duplicate detection effective.
///
/// The result is logically equivalent to the input.
pub fn simplify(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Atom(a) => simplify_atom(a),
        Formula::Rel { .. } => f.clone(),
        Formula::Not(g) => simplify(g).negate(),
        Formula::And(fs) => {
            let mut parts: Vec<Formula> = Vec::with_capacity(fs.len());
            for g in fs {
                match simplify(g) {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    Formula::And(hs) => {
                        for h in hs {
                            push_unique(&mut parts, h);
                        }
                    }
                    h => push_unique(&mut parts, h),
                }
            }
            if has_complementary_pair(&parts) {
                return Formula::False;
            }
            match parts.len() {
                0 => Formula::True,
                1 => parts.pop().unwrap(),
                _ => Formula::And(parts),
            }
        }
        Formula::Or(fs) => {
            let mut parts: Vec<Formula> = Vec::with_capacity(fs.len());
            for g in fs {
                match simplify(g) {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    Formula::Or(hs) => {
                        for h in hs {
                            push_unique(&mut parts, h);
                        }
                    }
                    h => push_unique(&mut parts, h),
                }
            }
            if has_complementary_pair(&parts) {
                return Formula::True;
            }
            match parts.len() {
                0 => Formula::False,
                1 => parts.pop().unwrap(),
                _ => Formula::Or(parts),
            }
        }
        Formula::Exists(vs, g) => match simplify(g) {
            c @ (Formula::True | Formula::False) => c,
            h => {
                let keep: Vec<_> = vs
                    .iter()
                    .copied()
                    .filter(|v| h.free_vars().contains(v))
                    .collect();
                Formula::exists(keep, h)
            }
        },
        Formula::Forall(vs, g) => match simplify(g) {
            c @ (Formula::True | Formula::False) => c,
            h => {
                let keep: Vec<_> = vs
                    .iter()
                    .copied()
                    .filter(|v| h.free_vars().contains(v))
                    .collect();
                Formula::forall(keep, h)
            }
        },
        Formula::ExistsAdom(v, g) => match simplify(g) {
            c @ (Formula::True | Formula::False) => c,
            h => Formula::ExistsAdom(*v, Box::new(h)),
        },
        Formula::ForallAdom(v, g) => match simplify(g) {
            c @ (Formula::True | Formula::False) => c,
            h => Formula::ForallAdom(*v, Box::new(h)),
        },
    }
}

fn simplify_atom(a: &Atom) -> Formula {
    if let Some(truth) = a.as_const() {
        return if truth { Formula::True } else { Formula::False };
    }
    // Normalize: make the coefficient of the leading monomial positive.
    let lead_sign = a.poly.terms().last().map_or(1, |(_, c)| c.signum());
    if lead_sign < 0 {
        Formula::Atom(Atom::new(-&a.poly, a.rel.flip()))
    } else {
        Formula::Atom(a.clone())
    }
}

fn push_unique(parts: &mut Vec<Formula>, f: Formula) {
    if !parts.contains(&f) {
        parts.push(f);
    }
}

fn has_complementary_pair(parts: &[Formula]) -> bool {
    for (i, f) in parts.iter().enumerate() {
        if let Formula::Atom(a) = f {
            for g in &parts[i + 1..] {
                if let Formula::Atom(b) = g {
                    if a.poly == b.poly && b.rel == a.rel.negate() {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// `true` iff the two relations on the same polynomial are jointly
/// unsatisfiable (conservative check used by Fourier–Motzkin clause
/// pruning).
pub(crate) fn rels_contradict(a: Rel, b: Rel) -> bool {
    use Rel::*;
    matches!(
        (a, b),
        (Eq, Neq)
            | (Neq, Eq)
            | (Eq, Lt)
            | (Lt, Eq)
            | (Eq, Gt)
            | (Gt, Eq)
            | (Lt, Gt)
            | (Gt, Lt)
            | (Lt, Ge)
            | (Ge, Lt)
            | (Gt, Le)
            | (Le, Gt)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_logic::parse_formula;

    fn s(src: &str) -> Formula {
        simplify(&parse_formula(src).unwrap().0)
    }

    #[test]
    fn ground_folding() {
        assert_eq!(s("1 < 2"), Formula::True);
        assert_eq!(s("2 < 1"), Formula::False);
        assert_eq!(s("1 < 2 & x < 1"), s("x < 1"));
        assert_eq!(s("2 < 1 | x < 1"), s("x < 1"));
        assert_eq!(s("2 < 1 & x < 1"), Formula::False);
    }

    #[test]
    fn duplicates_removed() {
        let f = s("x < 1 & x < 1 & x < 1");
        assert!(matches!(f, Formula::Atom(_)));
    }

    #[test]
    fn complementary_pairs() {
        assert_eq!(s("x < 1 & x >= 1"), Formula::False);
        assert_eq!(s("x < 1 | x >= 1"), Formula::True);
    }

    #[test]
    fn leading_sign_normalization() {
        // -x < 0 and x > 0 normalize identically.
        assert_eq!(s("0 < x"), s("-x < 0"));
        assert_eq!(s("0 - x < 0 & x > 0"), s("x > 0"));
    }

    #[test]
    fn quantifier_pruning() {
        assert_eq!(s("exists y. 1 < 2"), Formula::True);
        // unused quantified var dropped
        let f = s("exists y, z. y > x");
        match f {
            Formula::Exists(vs, _) => assert_eq!(vs.len(), 1),
            other => panic!("{other:?}"),
        }
    }
}
