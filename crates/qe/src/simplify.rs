//! Bottom-up formula simplification: constant folding, duplicate removal,
//! and local contradiction/tautology detection on atoms.
//!
//! The working representation is the hash-consed IR of [`cqa_logic::ir`]:
//! [`simplify_id`] rewrites interned dags with a [`FormulaId`]-keyed memo
//! table, so a subformula that occurs a thousand times in an FM/Hörmander
//! blow-up is simplified once, and duplicate detection inside `∧`/`∨`
//! degenerates to id comparison instead of O(size) structural equality.
//! The boxed [`simplify`] entry point is a thin wrapper (intern → rewrite →
//! extern) that produces exactly the same output the tree walker used to.

use cqa_logic::ir::{Arena, FormulaId, Node, TermId};
use cqa_logic::{Formula, Rel};
use cqa_poly::Var;
use std::collections::HashMap;

/// A `FormulaId → FormulaId` memo table for [`simplify_id`]. Reusable
/// across calls against the same [`Arena`]; entries stay valid because
/// interned nodes are immutable.
#[derive(Debug, Default)]
pub struct SimplifyMemo {
    map: HashMap<FormulaId, FormulaId>,
}

impl SimplifyMemo {
    /// An empty memo table.
    pub fn new() -> SimplifyMemo {
        SimplifyMemo::default()
    }
}

/// Simplifies a formula bottom-up:
///
/// * folds ground atoms to `⊤`/`⊥`;
/// * removes duplicate conjuncts/disjuncts (structural);
/// * cancels complementary literal pairs (`p < 0 ∧ p ≥ 0` → `⊥`,
///   `p < 0 ∨ p ≥ 0` → `⊤`);
/// * normalizes atoms so the leading coefficient is positive (`-x < 0`
///   becomes `x > 0`), which makes structural duplicate detection effective.
///
/// The result is logically equivalent to the input.
pub fn simplify(f: &Formula) -> Formula {
    let mut arena = Arena::new();
    let mut memo = SimplifyMemo::new();
    let id = arena.intern(f);
    let s = simplify_id(&mut arena, id, &mut memo);
    arena.extern_formula(s)
}

/// [`simplify`] on an interned formula, memoized per node. Calling it twice
/// on the same id (or on any shared subnode) costs one hash lookup.
pub fn simplify_id(arena: &mut Arena, id: FormulaId, memo: &mut SimplifyMemo) -> FormulaId {
    if let Some(&s) = memo.map.get(&id) {
        return s;
    }
    let node = arena.node(id).clone();
    let out = simplify_node(arena, id, node, memo);
    memo.map.insert(id, out);
    out
}

fn simplify_node(
    arena: &mut Arena,
    id: FormulaId,
    node: Node,
    memo: &mut SimplifyMemo,
) -> FormulaId {
    match node {
        Node::True | Node::False => id,
        Node::Atom { poly, rel } => simplify_atom_id(arena, poly, rel),
        // Relation atoms carry no sign condition to fold, but interning has
        // already normalized them: argument polynomials are canonical
        // `MPoly`s deduplicated through the term table, so structurally
        // equal `R(…)` atoms share one id (the boxed walker used to clone
        // them verbatim, keeping every copy distinct).
        Node::Rel { .. } => id,
        Node::Not(g) => {
            let s = simplify_id(arena, g, memo);
            negate_id(arena, s)
        }
        Node::And(fs) => {
            let mut parts: Vec<FormulaId> = Vec::with_capacity(fs.len());
            for g in fs {
                let s = simplify_id(arena, g, memo);
                match arena.node(s) {
                    Node::True => {}
                    Node::False => return arena.intern_node(Node::False),
                    Node::And(hs) => {
                        for h in hs.clone() {
                            push_unique(&mut parts, h);
                        }
                    }
                    _ => push_unique(&mut parts, s),
                }
            }
            if has_complementary_pair(arena, &parts) {
                return arena.intern_node(Node::False);
            }
            match parts.len() {
                0 => arena.intern_node(Node::True),
                1 => parts[0],
                _ => arena.intern_node(Node::And(parts)),
            }
        }
        Node::Or(fs) => {
            let mut parts: Vec<FormulaId> = Vec::with_capacity(fs.len());
            for g in fs {
                let s = simplify_id(arena, g, memo);
                match arena.node(s) {
                    Node::False => {}
                    Node::True => return arena.intern_node(Node::True),
                    Node::Or(hs) => {
                        for h in hs.clone() {
                            push_unique(&mut parts, h);
                        }
                    }
                    _ => push_unique(&mut parts, s),
                }
            }
            if has_complementary_pair(arena, &parts) {
                return arena.intern_node(Node::True);
            }
            match parts.len() {
                0 => arena.intern_node(Node::False),
                1 => parts[0],
                _ => arena.intern_node(Node::Or(parts)),
            }
        }
        Node::Exists(vs, g) => {
            let s = simplify_id(arena, g, memo);
            match arena.node(s) {
                Node::True | Node::False => s,
                _ => {
                    let keep = kept_vars(arena, &vs, s);
                    mk_exists(arena, keep, s)
                }
            }
        }
        Node::Forall(vs, g) => {
            let s = simplify_id(arena, g, memo);
            match arena.node(s) {
                Node::True | Node::False => s,
                _ => {
                    let keep = kept_vars(arena, &vs, s);
                    mk_forall(arena, keep, s)
                }
            }
        }
        Node::ExistsAdom(v, g) => {
            let s = simplify_id(arena, g, memo);
            match arena.node(s) {
                Node::True | Node::False => s,
                _ => arena.intern_node(Node::ExistsAdom(v, s)),
            }
        }
        Node::ForallAdom(v, g) => {
            let s = simplify_id(arena, g, memo);
            match arena.node(s) {
                Node::True | Node::False => s,
                _ => arena.intern_node(Node::ForallAdom(v, s)),
            }
        }
    }
}

/// Quantified variables that still occur free in the (simplified) body —
/// read off the arena's cached metadata instead of re-walking the tree.
fn kept_vars(arena: &Arena, vs: &[Var], body: FormulaId) -> Vec<Var> {
    let fv = &arena.meta(body).free_vars;
    vs.iter()
        .copied()
        .filter(|v| fv.binary_search(v).is_ok())
        .collect()
}

/// Id-world mirror of [`Formula::exists`]: flattens nested blocks, drops
/// empty binders, passes constants through.
fn mk_exists(arena: &mut Arena, vars: Vec<Var>, body: FormulaId) -> FormulaId {
    if vars.is_empty() {
        return body;
    }
    match arena.node(body).clone() {
        Node::Exists(inner, b) => {
            let mut vs = vars;
            vs.extend(inner);
            arena.intern_node(Node::Exists(vs, b))
        }
        Node::True | Node::False => body,
        _ => arena.intern_node(Node::Exists(vars, body)),
    }
}

/// Id-world mirror of [`Formula::forall`].
fn mk_forall(arena: &mut Arena, vars: Vec<Var>, body: FormulaId) -> FormulaId {
    if vars.is_empty() {
        return body;
    }
    match arena.node(body).clone() {
        Node::Forall(inner, b) => {
            let mut vs = vars;
            vs.extend(inner);
            arena.intern_node(Node::Forall(vs, b))
        }
        Node::True | Node::False => body,
        _ => arena.intern_node(Node::Forall(vars, body)),
    }
}

/// Id-world mirror of [`Formula::negate`]: constants invert, double
/// negation cancels, atoms flip their relation.
fn negate_id(arena: &mut Arena, id: FormulaId) -> FormulaId {
    match *arena.node(id) {
        Node::True => arena.intern_node(Node::False),
        Node::False => arena.intern_node(Node::True),
        Node::Not(g) => g,
        Node::Atom { poly, rel } => arena.intern_node(Node::Atom {
            poly,
            rel: rel.negate(),
        }),
        _ => arena.intern_node(Node::Not(id)),
    }
}

fn simplify_atom_id(arena: &mut Arena, poly: TermId, rel: Rel) -> FormulaId {
    let (folded, lead_neg) = {
        let p = arena.term(poly);
        (
            p.as_constant().map(|c| rel.sign_satisfies(c.signum())),
            p.terms().last().map_or(1, |(_, c)| c.signum()) < 0,
        )
    };
    if let Some(truth) = folded {
        return arena.intern_node(if truth { Node::True } else { Node::False });
    }
    // Normalize: make the coefficient of the leading monomial positive.
    if lead_neg {
        let neg = -arena.term(poly);
        let poly = arena.intern_term(&neg);
        arena.intern_node(Node::Atom {
            poly,
            rel: rel.flip(),
        })
    } else {
        arena.intern_node(Node::Atom { poly, rel })
    }
}

fn push_unique(parts: &mut Vec<FormulaId>, f: FormulaId) {
    if !parts.contains(&f) {
        parts.push(f);
    }
}

fn has_complementary_pair(arena: &Arena, parts: &[FormulaId]) -> bool {
    let atoms: Vec<(TermId, Rel)> = parts
        .iter()
        .filter_map(|&p| match arena.node(p) {
            Node::Atom { poly, rel } => Some((*poly, *rel)),
            _ => None,
        })
        .collect();
    for (i, &(p1, r1)) in atoms.iter().enumerate() {
        for &(p2, r2) in &atoms[i + 1..] {
            if p1 == p2 && r2 == r1.negate() {
                return true;
            }
        }
    }
    false
}

/// `true` iff the two relations on the same polynomial are jointly
/// unsatisfiable (conservative check used by Fourier–Motzkin clause
/// pruning).
pub(crate) fn rels_contradict(a: Rel, b: Rel) -> bool {
    use Rel::*;
    matches!(
        (a, b),
        (Eq, Neq)
            | (Neq, Eq)
            | (Eq, Lt)
            | (Lt, Eq)
            | (Eq, Gt)
            | (Gt, Eq)
            | (Lt, Gt)
            | (Gt, Lt)
            | (Lt, Ge)
            | (Ge, Lt)
            | (Gt, Le)
            | (Le, Gt)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_logic::parse_formula;

    fn s(src: &str) -> Formula {
        simplify(&parse_formula(src).unwrap().0)
    }

    #[test]
    fn ground_folding() {
        assert_eq!(s("1 < 2"), Formula::True);
        assert_eq!(s("2 < 1"), Formula::False);
        assert_eq!(s("1 < 2 & x < 1"), s("x < 1"));
        assert_eq!(s("2 < 1 | x < 1"), s("x < 1"));
        assert_eq!(s("2 < 1 & x < 1"), Formula::False);
    }

    #[test]
    fn duplicates_removed() {
        let f = s("x < 1 & x < 1 & x < 1");
        assert!(matches!(f, Formula::Atom(_)));
    }

    #[test]
    fn complementary_pairs() {
        assert_eq!(s("x < 1 & x >= 1"), Formula::False);
        assert_eq!(s("x < 1 | x >= 1"), Formula::True);
    }

    #[test]
    fn leading_sign_normalization() {
        // -x < 0 and x > 0 normalize identically.
        assert_eq!(s("0 < x"), s("-x < 0"));
        assert_eq!(s("0 - x < 0 & x > 0"), s("x > 0"));
    }

    #[test]
    fn quantifier_pruning() {
        assert_eq!(s("exists y. 1 < 2"), Formula::True);
        // unused quantified var dropped
        let f = s("exists y, z. y > x");
        match f {
            Formula::Exists(vs, _) => assert_eq!(vs.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memoized_rewrite_shares_work() {
        // The same subformula appearing many times simplifies through one
        // memo entry, and duplicate conjuncts collapse by id.
        let (f, _) = parse_formula("(0 - x < 0 & x > 0) | (0 - x < 0 & x > 0)").unwrap();
        let mut arena = Arena::new();
        let mut memo = SimplifyMemo::new();
        let id = arena.intern(&f);
        let s = simplify_id(&mut arena, id, &mut memo);
        // Both disjuncts normalize to the single atom x > 0.
        assert!(matches!(arena.node(s), Node::Atom { .. }));
        // Second call is a pure memo hit: the arena does not grow.
        let before = arena.stats().nodes;
        assert_eq!(simplify_id(&mut arena, id, &mut memo), s);
        assert_eq!(arena.stats().nodes, before);
    }

    #[test]
    fn rel_atoms_hash_cons_together() {
        let (f, _) = parse_formula("R(x + x, 1) & R(2*x, 1)").unwrap();
        let mut arena = Arena::new();
        let id = arena.intern(&f);
        // `x + x` and `2*x` are the same canonical MPoly, so the two
        // relation atoms intern to the same node and simplify drops the
        // duplicate conjunct.
        let s = simplify_id(&mut arena, id, &mut SimplifyMemo::new());
        assert!(
            matches!(arena.node(s), Node::Rel { .. }),
            "{:?}",
            arena.node(s)
        );
    }
}
