//! Cost-based quantifier-elimination planning and cross-query subplan
//! sharing.
//!
//! The fixed [`crate::eliminate`] pipeline dispatches on constraint class
//! alone: Loos–Weispfenning for everything linear, Cohen–Hörmander for
//! polynomials — Fourier–Motzkin is never chosen, variables are eliminated
//! in reverse binding order, and every query pays for its own elimination
//! even when two prepared queries differ only in a quantifier-free band
//! around a shared quantified core. This module adds the planner the
//! Giusti–Heintz line of work calls for (see PAPERS.md): per query it
//! chooses
//!
//! * the **elimination method** — FM when the matrix's estimated DNF is
//!   small (conjunctive matrices cost one clause and FM's
//!   equality-substitution and bound cross-combination are then optimal),
//!   LW when the DNF estimate blows past the budget (virtual substitution
//!   never expands to DNF), Hörmander for polynomial formulas (whole
//!   formula, exactly the fixed pipeline — see the parity note below);
//! * the **variable elimination order** inside each quantifier block —
//!   equality-bearing variables first (they substitute away for free),
//!   then ascending `lowers × uppers` product, the classic FM min-growth
//!   heuristic;
//! * **early DNF pruning** — clauses failing the cheap
//!   [`crate::clause_obviously_empty`] contradiction test are dropped
//!   before bound cross-combination.
//!
//! The plan is computed from [`PlanInputs`] — the static analyzer's cost
//! model (atom and quantifier counts, Prop-6 VC bound) refined by the
//! interval abstract interpretation (post-pruning atom count, certified
//! box volume) — so planning costs O(formula), never a trial elimination.
//!
//! **Subplan sharing.** [`eliminate_with_plan`] eliminates innermost
//! quantifier blocks first and memoizes each block's quantifier-free
//! result under the canonical 128-bit hash of the quantified subformula,
//! positional over its free variables in ascending `Var` order (see
//! [`cqa_logic::ir::Arena::subplan_hash`]). A [`SubplanStore`] supplied by
//! the caller (the engine backs it with the shared prepared-query cache)
//! makes the memo cross-query and cross-session: structurally overlapping
//! prepared queries pay for the shared core's elimination once. Equal
//! canonical hashes imply logical equivalence (up to the 2⁻¹²⁸ digest
//! collision), and replacing a quantified subformula by an equivalent
//! quantifier-free one is semantics-preserving, so a hit is sound; the
//! stored result's parameters are renamed positionally onto the
//! requester's (two-phase, through fresh variables, so overlapping
//! from/to sets cannot capture).
//!
//! **Parity contract.** Planned answers must be bit-identical to the
//! fixed pipeline's. For linear formulas every method/order/pruning choice
//! produces a *logically equivalent* quantifier-free formula, and both
//! exact volume (a semantic integral) and Monte Carlo membership (per-point
//! evaluation) are functions of the semantics, not the syntax. Polynomial
//! formulas are the one place a sub-formula-wise elimination could change
//! the *constraint class* of the output (and with it the engine's
//! exact-vs-approximate path), so the plan degenerates to the fixed
//! whole-formula Hörmander run there — no sub-splitting, no sharing.

use crate::simplify::simplify;
use crate::{fm, hoermander_with_budget, lw, QeError};
use cqa_logic::budget::EvalBudget;
use cqa_logic::ir::Arena;
use cqa_logic::{ConstraintClass, Formula, Rel};
use cqa_poly::{MPoly, Var};

/// The elimination method a plan commits to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// DNF-based Fourier–Motzkin: per-variable bound cross-combination.
    FourierMotzkin,
    /// Loos–Weispfenning virtual term substitution (no DNF expansion).
    LoosWeispfenning,
    /// Cohen–Hörmander sign matrices, whole-formula (polynomial inputs).
    Hoermander,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Method::FourierMotzkin => "fm",
            Method::LoosWeispfenning => "lw",
            Method::Hoermander => "ch",
        })
    }
}

/// Planner inputs from the static cost model and the interval analysis.
/// Everything is optional except the raw formula measurements: the planner
/// degrades gracefully to structure-only heuristics when the analyzer did
/// not run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanInputs {
    /// Atom count of the (relation-expanded) formula.
    pub atoms: u64,
    /// Real-quantifier count.
    pub quantifiers: u64,
    /// Atoms surviving interval-certified pruning of statically decided
    /// subformulas (`None` when the absint pass did not run). A survival
    /// ratio below 1 means DNF clauses will collapse, which buys FM a
    /// proportionally larger clause budget.
    pub pruned_atoms: Option<u64>,
    /// Volume of the interval-certified bounding box clamped to the unit
    /// cube (`None` when unavailable). A small box predicts mostly-empty
    /// clauses, favouring early DNF pruning.
    pub box_volume: Option<f64>,
    /// Proposition-6 VC bound from the analyzer's cost report, recorded
    /// for diagnostics (`None` outside the analyzer pipeline).
    pub vc_bound: Option<f64>,
}

impl PlanInputs {
    /// Measures `f` directly — the fallback when no analyzer report is
    /// available (ad-hoc `VOLUME` requests, tests).
    pub fn measure(f: &Formula) -> PlanInputs {
        PlanInputs {
            atoms: f.atom_count() as u64,
            quantifiers: f.quantifier_count() as u64,
            ..PlanInputs::default()
        }
    }
}

/// A committed elimination plan for one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QePlan {
    /// The elimination method.
    pub method: Method,
    /// Whether DNF clauses are pre-filtered through
    /// [`crate::clause_obviously_empty`] (FM only).
    pub prune_dnf: bool,
    /// The estimated DNF clause count that drove the FM-vs-LW choice
    /// (capped at [`CLAUSE_CAP`]).
    pub est_clauses: u64,
    /// Whether sub-formula elimination results are shared through the
    /// [`SubplanStore`] (disabled for polynomial formulas — see the
    /// module-level parity contract).
    pub shared: bool,
}

impl QePlan {
    /// Compact single-token rendering for `PREPARE` responses and logs,
    /// e.g. `fm,clauses=2,prune=on,shared=on`.
    pub fn describe(&self) -> String {
        format!(
            "{},clauses={},prune={},shared={}",
            self.method,
            self.est_clauses,
            if self.prune_dnf { "on" } else { "off" },
            if self.shared { "on" } else { "off" },
        )
    }
}

/// Saturation cap for the DNF clause estimate: past this the estimate only
/// needs to say "way past any FM budget".
pub const CLAUSE_CAP: u64 = 1 << 20;

/// Base FM clause budget: matrices estimated at or below this many DNF
/// clauses take Fourier–Motzkin, larger ones take Loos–Weispfenning. The
/// absint survival ratio scales it (certified pruning collapses clauses
/// before the cross-product pays for them).
pub const FM_CLAUSE_BUDGET: u64 = 8;

/// Estimated DNF clause count: products over `∧`, sums over `∨`, saturating
/// at [`CLAUSE_CAP`]. Negations are counted as their bodies — crude, but
/// the estimate only has to rank matrices, not count cells.
fn est_clauses(f: &Formula) -> u64 {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) | Formula::Rel { .. } => 1,
        Formula::Not(g) => est_clauses(g),
        Formula::And(fs) => fs
            .iter()
            .map(est_clauses)
            .fold(1u64, |a, b| a.saturating_mul(b))
            .min(CLAUSE_CAP),
        Formula::Or(fs) => fs
            .iter()
            .map(est_clauses)
            .fold(0u64, |a, b| a.saturating_add(b))
            .min(CLAUSE_CAP),
        Formula::Exists(_, g)
        | Formula::Forall(_, g)
        | Formula::ExistsAdom(_, g)
        | Formula::ForallAdom(_, g) => est_clauses(g),
    }
}

/// Chooses the elimination plan for `f` from its structure and the
/// analyzer's cost inputs. Pure and cheap: O(|f|), no elimination runs.
pub fn plan(f: &Formula, inputs: &PlanInputs) -> QePlan {
    if f.class() == ConstraintClass::Polynomial {
        // Whole-formula Hörmander, exactly the fixed pipeline: splitting a
        // polynomial formula at quantifier boundaries could change the
        // output's constraint class and with it the caller's
        // exact-vs-approximate path.
        return QePlan {
            method: Method::Hoermander,
            prune_dnf: false,
            est_clauses: est_clauses(f),
            shared: false,
        };
    }
    let est = est_clauses(f);
    // Certified pruning shrinks clauses before FM cross-combines them:
    // scale the clause budget by the (ceiled) inverse survival ratio.
    let survivors = inputs
        .pruned_atoms
        .unwrap_or(inputs.atoms)
        .min(inputs.atoms)
        .max(1);
    let scale = inputs.atoms.max(1).div_ceil(survivors);
    let budget = FM_CLAUSE_BUDGET.saturating_mul(scale.max(1));
    let method = if est <= budget {
        Method::FourierMotzkin
    } else {
        Method::LoosWeispfenning
    };
    // Clause pruning only pays when there is more than one clause to prune
    // — or when the certified box is strictly smaller than the unit cube,
    // which predicts clauses that are empty over the sampled region.
    let prune_dnf =
        method == Method::FourierMotzkin && (est > 1 || inputs.box_volume.is_some_and(|v| v < 1.0));
    QePlan {
        method,
        prune_dnf,
        est_clauses: est,
        shared: true,
    }
}

/// Cross-query memo of quantifier-block elimination results, keyed by the
/// canonical hash of the quantified subformula (positional over its free
/// variables in ascending `Var` order) plus the free-variable count. The
/// engine backs this with its shared prepared-query cache; tests use a
/// `HashMap`. Implementations must be internally synchronized (`&self`
/// methods) — the engine's store is hit from many worker threads.
pub trait SubplanStore {
    /// Returns the stored quantifier-free result and the parameter list it
    /// was stored under, if present.
    fn lookup(&self, hash: u128, dim: u32) -> Option<(Formula, Vec<Var>)>;
    /// Stores an elimination result under its key. Losing a race (another
    /// thread stored first) is fine — both results are equivalent.
    fn store(&self, hash: u128, dim: u32, qf: &Formula, params: &[Var]);
}

/// A [`SubplanStore`] that never hits: planning without sharing.
pub struct NoSharing;

impl SubplanStore for NoSharing {
    fn lookup(&self, _hash: u128, _dim: u32) -> Option<(Formula, Vec<Var>)> {
        None
    }
    fn store(&self, _hash: u128, _dim: u32, _qf: &Formula, _params: &[Var]) {}
}

/// Renames `from[i] ↦ to[i]` in a quantifier-free formula, two-phase
/// through fresh variables so overlapping `from`/`to` sets cannot capture
/// (`[x↦y, y↦x]` must swap, not collapse). Used to re-base a stored
/// subplan result onto the requesting query's variables; positions line up
/// because both sides hash positionally over the same canonical order.
pub fn rename_positional(qf: &Formula, from: &[Var], to: &[Var]) -> Formula {
    debug_assert_eq!(from.len(), to.len());
    if from == to {
        return qf.clone();
    }
    let base = qf
        .all_vars()
        .iter()
        .map(|v| v.0)
        .chain(from.iter().map(|v| v.0))
        .chain(to.iter().map(|v| v.0))
        .max()
        .map_or(0, |m| m + 1);
    let mut g = qf.clone();
    for (i, v) in from.iter().enumerate() {
        g = g.subst_poly(*v, &MPoly::var(Var(base + i as u32)));
    }
    for (i, v) in to.iter().enumerate() {
        g = g.subst_poly(Var(base + i as u32), &MPoly::var(*v));
    }
    g
}

/// Orders a quantifier block for elimination: equality-bearing variables
/// first (substitution removes them without any cross-combination), then
/// ascending `max(1, lowers) × max(1, uppers) + 2·disequalities` — the
/// number of atoms the next FM round can produce. Ties keep the block's
/// original order, so the plan is deterministic.
pub fn order_block(vars: &[Var], matrix: &Formula) -> Vec<Var> {
    let mut scored: Vec<(u64, usize, Var)> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (var_score(v, matrix), i, v))
        .collect();
    scored.sort_by_key(|&(score, i, _)| (score, i));
    scored.into_iter().map(|(_, _, v)| v).collect()
}

/// The FM growth score of eliminating `v` from `matrix` now.
fn var_score(v: Var, matrix: &Formula) -> u64 {
    let (mut lowers, mut uppers, mut eqs, mut neqs) = (0u64, 0u64, 0u64, 0u64);
    let mut opaque = 0u64; // non-affine or parametric occurrences
    matrix.visit(&mut |g| {
        if let Formula::Atom(a) = g {
            if !a.poly.vars().contains(&v) {
                return;
            }
            let coeffs = a.poly.as_univariate_in(v);
            let Some(c) = (coeffs.len() == 2)
                .then(|| coeffs[1].as_constant())
                .flatten()
            else {
                opaque += 1;
                return;
            };
            let rel = if c.is_negative() { a.rel.flip() } else { a.rel };
            match rel {
                Rel::Lt | Rel::Le => uppers += 1,
                Rel::Gt | Rel::Ge => lowers += 1,
                Rel::Eq => eqs += 1,
                Rel::Neq => neqs += 1,
            }
        }
    });
    if eqs > 0 && opaque == 0 {
        0
    } else {
        lowers.max(1) * uppers.max(1) + 2 * neqs + 100 * opaque
    }
}

/// Eliminates all quantifiers from `f` per `plan`, memoizing quantifier
/// blocks through `store`. Equivalent to the fixed pipeline (the `--no-plan`
/// oracle): for every input both produce logically equivalent
/// quantifier-free output, and for polynomial inputs the *identical*
/// output (the plan defers to whole-formula Hörmander there).
pub fn eliminate_with_plan(
    f: &Formula,
    plan: &QePlan,
    budget: &EvalBudget,
    arena: &mut Arena,
    store: &dyn SubplanStore,
) -> Result<Formula, QeError> {
    crate::check_input(f)?;
    match plan.method {
        Method::Hoermander => hoermander_with_budget(f, budget),
        _ => {
            let out = eliminate_rec(f, plan, budget, arena, store)?;
            Ok(simplify(&out))
        }
    }
}

/// Innermost-first recursive elimination: quantifier-free subtrees pass
/// through, boolean connectives rebuild over recursed children, and each
/// quantifier block over a (now) quantifier-free body goes through the
/// subplan store.
fn eliminate_rec(
    f: &Formula,
    plan: &QePlan,
    budget: &EvalBudget,
    arena: &mut Arena,
    store: &dyn SubplanStore,
) -> Result<Formula, QeError> {
    budget.check()?;
    if f.is_quantifier_free() {
        return Ok(f.clone());
    }
    match f {
        Formula::And(fs) => {
            let mut out = Formula::True;
            for g in fs {
                out = out.and(eliminate_rec(g, plan, budget, arena, store)?);
            }
            Ok(out)
        }
        Formula::Or(fs) => {
            let mut out = Formula::False;
            for g in fs {
                out = out.or(eliminate_rec(g, plan, budget, arena, store)?);
            }
            Ok(out)
        }
        Formula::Not(g) => Ok(eliminate_rec(g, plan, budget, arena, store)?.negate()),
        Formula::Exists(vs, body) | Formula::Forall(vs, body) => {
            let exists = matches!(f, Formula::Exists(..));
            let body_qf = eliminate_rec(body, plan, budget, arena, store)?;
            let sub = if exists {
                Formula::exists(vs.clone(), body_qf)
            } else {
                Formula::forall(vs.clone(), body_qf)
            };
            if sub.is_quantifier_free() {
                // The body collapsed to a constant; the quantifier is gone.
                return Ok(sub);
            }
            eliminate_block(&sub, plan, budget, arena, store)
        }
        // True/False/Atom are quantifier-free (handled above); Rel and
        // active-domain quantifiers are rejected by check_input.
        other => Err(QeError::Residual(format!(
            "unplannable node in elimination walk: {other:?}"
        ))),
    }
}

/// Eliminates one quantifier block over a quantifier-free body, consulting
/// the subplan store first.
fn eliminate_block(
    sub: &Formula,
    plan: &QePlan,
    budget: &EvalBudget,
    arena: &mut Arena,
    store: &dyn SubplanStore,
) -> Result<Formula, QeError> {
    let (hash, params) = if plan.shared {
        let sid = arena.intern(sub);
        let (hash, params) = arena.subplan_hash(sid);
        if let Some((qf, stored_params)) = store.lookup(hash, params.len() as u32) {
            if stored_params.len() == params.len() {
                return Ok(rename_positional(&qf, &stored_params, &params));
            }
        }
        (hash, params)
    } else {
        (0, Vec::new())
    };
    let (exists, vars, body) = match sub {
        Formula::Exists(vs, b) => (true, vs, b.as_ref()),
        Formula::Forall(vs, b) => (false, vs, b.as_ref()),
        other => {
            return Err(QeError::Residual(format!(
                "eliminate_block on a non-block: {other:?}"
            )))
        }
    };
    // ∀x⃗. φ ⇔ ¬∃x⃗. ¬φ — negate once around the whole block.
    let mut matrix = if exists {
        body.clone()
    } else {
        body.clone().negate()
    };
    for v in order_block(vars, &matrix) {
        budget.check_atoms(matrix.atom_count() as u64)?;
        matrix = match plan.method {
            Method::FourierMotzkin => {
                fm::fm_eliminate_exists(v, &matrix, budget, arena, plan.prune_dnf)?
            }
            Method::LoosWeispfenning => lw::eliminate_exists_lw(v, &matrix, budget, arena)?,
            Method::Hoermander => unreachable!("Hörmander plans never sub-split"),
        };
        matrix = simplify(&matrix);
    }
    let out = simplify(&if exists { matrix } else { matrix.negate() });
    if plan.shared {
        store.store(hash, params.len() as u32, &out, &params);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::Rat;
    use cqa_logic::parse_formula_with;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// A stored subplan: the eliminated matrix plus its positional params.
    type StoredSubplan = (Formula, Vec<Var>);

    /// An in-memory store with a hit counter, for tests.
    #[derive(Default)]
    struct MapStore {
        map: Mutex<HashMap<(u128, u32), StoredSubplan>>,
        hits: std::sync::atomic::AtomicU64,
    }

    impl SubplanStore for MapStore {
        fn lookup(&self, hash: u128, dim: u32) -> Option<(Formula, Vec<Var>)> {
            let hit = self.map.lock().unwrap().get(&(hash, dim)).cloned();
            if hit.is_some() {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            hit
        }
        fn store(&self, hash: u128, dim: u32, qf: &Formula, params: &[Var]) {
            self.map
                .lock()
                .unwrap()
                .insert((hash, dim), (qf.clone(), params.to_vec()));
        }
    }

    fn planned(src: &str, vars: &mut cqa_logic::VarMap, store: &dyn SubplanStore) -> Formula {
        let f = parse_formula_with(src, vars).unwrap();
        let p = plan(&f, &PlanInputs::measure(&f));
        eliminate_with_plan(&f, &p, &EvalBudget::unlimited(), &mut Arena::new(), store).unwrap()
    }

    /// Grid agreement of two quantifier-free formulas.
    fn agree(a: &Formula, b: &Formula) {
        let vars: Vec<Var> = a.free_vars().union(&b.free_vars()).copied().collect();
        let samples: Vec<Rat> = (-4..=4).map(|n| Rat::new(n.into(), 2i64.into())).collect();
        let mut idx = vec![0usize; vars.len()];
        loop {
            let vals: Vec<Rat> = idx.iter().map(|&i| samples[i].clone()).collect();
            let asg = |v: Var| {
                vars.iter()
                    .position(|&w| w == v)
                    .map(|i| vals[i].clone())
                    .unwrap_or_else(Rat::zero)
            };
            assert_eq!(
                a.eval(&asg, &[]),
                b.eval(&asg, &[]),
                "disagree at {vals:?}\n a={a:?}\n b={b:?}"
            );
            let mut k = 0;
            loop {
                if k == idx.len() {
                    return;
                }
                idx[k] += 1;
                if idx[k] < samples.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }

    #[test]
    fn conjunctive_matrices_take_fm_disjunctive_take_lw() {
        let mut vm = cqa_logic::VarMap::new();
        let conj = parse_formula_with("exists y. x < y & y < 1 & y < z", &mut vm).unwrap();
        let p = plan(&conj, &PlanInputs::measure(&conj));
        assert_eq!(p.method, Method::FourierMotzkin);
        assert!(p.shared);
        // 2^10 clauses blows any FM budget.
        let wide = {
            let parts: Vec<String> = (0..10)
                .map(|i| format!("(x < {i} | x > {})", i + 10))
                .collect();
            format!("exists y. y < x & {}", parts.join(" & "))
        };
        let wide = parse_formula_with(&wide, &mut vm).unwrap();
        let p = plan(&wide, &PlanInputs::measure(&wide));
        assert_eq!(p.method, Method::LoosWeispfenning);
    }

    #[test]
    fn polynomial_plans_defer_to_whole_formula_hoermander() {
        let mut vm = cqa_logic::VarMap::new();
        let f = parse_formula_with("exists y. y*y < x", &mut vm).unwrap();
        let p = plan(&f, &PlanInputs::measure(&f));
        assert_eq!(p.method, Method::Hoermander);
        assert!(!p.shared);
        let planned = eliminate_with_plan(
            &f,
            &p,
            &EvalBudget::unlimited(),
            &mut Arena::new(),
            &NoSharing,
        )
        .unwrap();
        let fixed = crate::eliminate(&f).unwrap();
        assert_eq!(planned, fixed, "polynomial path must be the fixed pipeline");
    }

    #[test]
    fn pruning_certificate_scales_the_fm_budget() {
        let mut vm = cqa_logic::VarMap::new();
        // 2^5 = 32 clauses: over the base budget of 8 ...
        let src = {
            let parts: Vec<String> = (0..5)
                .map(|i| format!("(x < {i} | x > {})", i + 10))
                .collect();
            format!("exists y. y < x & {}", parts.join(" & "))
        };
        let f = parse_formula_with(&src, &mut vm).unwrap();
        assert_eq!(
            plan(&f, &PlanInputs::measure(&f)).method,
            Method::LoosWeispfenning
        );
        // ... but a certificate that pruning keeps 2 of 11 atoms scales the
        // budget past the estimate.
        let inputs = PlanInputs {
            pruned_atoms: Some(2),
            ..PlanInputs::measure(&f)
        };
        assert_eq!(plan(&f, &inputs).method, Method::FourierMotzkin);
    }

    #[test]
    fn planned_matches_fixed_pipeline_semantically() {
        let cases = [
            "exists y. x < y & y < 1",
            "exists y. (x < y & y < z) | (z < y & y < x)",
            "forall y. y > x | y <= x",
            "exists y, w. x < y & y < w & w < z",
            "(exists y. x < y & y < 1) & (exists u. u < x & 0 < u)",
            "forall y. (y > x -> y >= z)",
            "exists y. y = x + z & y > 0",
        ];
        for src in cases {
            // Fresh VarMaps line up: both assign ids in first-appearance
            // order over the same source.
            let mut vm = cqa_logic::VarMap::new();
            let f = parse_formula_with(src, &mut vm).unwrap();
            let fixed = crate::eliminate(&f).unwrap();
            let got = planned(src, &mut cqa_logic::VarMap::new(), &NoSharing);
            agree(&got, &fixed);
        }
    }

    #[test]
    fn overlapping_queries_share_subplans() {
        let store = MapStore::default();
        let mut vm = cqa_logic::VarMap::new();
        let core = "(exists a, b. x < a & a < b & b < x + 1 & 2*a < b + x)";
        let q1 = format!("{core} & 0 <= x & x <= 1/2");
        let q2 = format!("{core} & 1/2 <= x & x <= 1");
        let r1 = planned(&q1, &mut vm, &store);
        assert_eq!(store.hits.load(std::sync::atomic::Ordering::Relaxed), 0);
        let r2 = planned(&q2, &mut vm, &store);
        assert_eq!(
            store.hits.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "second query must reuse the core's elimination"
        );
        // Both agree with the fixed pipeline.
        let f1 = parse_formula_with(&q1, &mut vm).unwrap();
        let f2 = parse_formula_with(&q2, &mut vm).unwrap();
        agree(&r1, &crate::eliminate(&f1).unwrap());
        agree(&r2, &crate::eliminate(&f2).unwrap());
    }

    #[test]
    fn shared_hits_are_deterministic() {
        // Running the same query list twice against fresh stores produces
        // bit-identical formulas — the memo cannot leak nondeterminism.
        let run = || {
            let store = MapStore::default();
            let mut vm = cqa_logic::VarMap::new();
            let core = "(exists a. x < a & a < x + 1 & a < 2)";
            let qs = [
                format!("{core} & 0 <= x"),
                format!("{core} & x <= 1"),
                format!("{core} & 1/4 <= x & x <= 3/4"),
            ];
            qs.iter()
                .map(|q| planned(q, &mut vm, &store))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rename_positional_swaps_without_capture() {
        let mut vm = cqa_logic::VarMap::new();
        let f = parse_formula_with("x < y", &mut vm).unwrap();
        let x = vm.get("x").unwrap();
        let y = vm.get("y").unwrap();
        let swapped = rename_positional(&f, &[x, y], &[y, x]);
        let expect = parse_formula_with("y < x", &mut vm).unwrap();
        agree(&swapped, &expect);
    }

    #[test]
    fn order_block_prefers_equalities_then_low_growth() {
        let mut vm = cqa_logic::VarMap::new();
        let m = parse_formula_with("b = x + 1 & a > 0 & a > x & a < 1 & a < b & c < a", &mut vm)
            .unwrap();
        let a = vm.get("a").unwrap();
        let b = vm.get("b").unwrap();
        let c = vm.get("c").unwrap();
        let order = order_block(&[a, b, c], &m);
        assert_eq!(order[0], b, "equality-bearing variable goes first");
        assert_eq!(order[1], c, "one-sided variable before two-sided");
        assert_eq!(order[2], a);
    }

    #[test]
    fn forall_blocks_eliminate_through_negation() {
        let got = planned(
            "forall y. y > x | y <= x",
            &mut cqa_logic::VarMap::new(),
            &NoSharing,
        );
        assert_eq!(got, Formula::True);
        let got = planned("forall y. y > x", &mut cqa_logic::VarMap::new(), &NoSharing);
        assert_eq!(got, Formula::False);
    }
}
