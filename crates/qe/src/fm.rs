//! Fourier–Motzkin quantifier elimination for linear formulas.
//!
//! Eliminates one real variable at a time from each DNF clause: atoms are
//! solved for the variable into lower/upper bounds (and equalities /
//! disequalities), equalities are substituted, disequalities split, and the
//! surviving bounds cross-combined. Exponential in general — this is the
//! honest cost the paper's Section 3 discussion alludes to, and what the
//! `qe_linear` bench measures — but exact and straightforward to audit.

use crate::simplify::{rels_contradict, simplify};
use crate::QeError;
use cqa_arith::Rat;
use cqa_logic::budget::EvalBudget;
use cqa_logic::ir::{Arena, FormulaId};
use cqa_logic::{dnf, prenex, Atom, Formula, Rel};
use cqa_poly::{MPoly, Var};
use std::collections::HashSet;

/// Eliminates all quantifiers from a linear (FO+LIN) formula via
/// Fourier–Motzkin. Returns an equivalent quantifier-free formula.
///
/// Errors with [`QeError::NonLinear`] if some atom is not affine in an
/// eliminated variable.
pub fn fourier_motzkin(f: &Formula) -> Result<Formula, QeError> {
    fourier_motzkin_with_budget(f, &EvalBudget::unlimited())
}

/// [`fourier_motzkin`] under a cooperative [`EvalBudget`]: checks the budget
/// per eliminated clause and per bound combination, and gates each
/// elimination round on the intermediate formula's atom count. Aborts with
/// [`QeError::Budget`] when exhausted; otherwise the result is bit-identical
/// to the unbudgeted run.
pub fn fourier_motzkin_with_budget(f: &Formula, budget: &EvalBudget) -> Result<Formula, QeError> {
    fourier_motzkin_with_arena(f, budget, &mut Arena::new())
}

/// [`fourier_motzkin_with_budget`] against a caller-supplied interning
/// [`Arena`]. Every DNF clause and every eliminated disjunct is hash-consed
/// through the arena, so the duplicate subformulas the clause cross-product
/// produces are detected by id and eliminated **once**; the caller can read
/// [`Arena::stats`] afterwards to see the dedup ratio (experiment E16 does).
pub fn fourier_motzkin_with_arena(
    f: &Formula,
    budget: &EvalBudget,
    arena: &mut Arena,
) -> Result<Formula, QeError> {
    crate::check_input(f)?;
    let (blocks, mut matrix) = prenex(f);
    for block in blocks.into_iter().rev() {
        for &v in block.vars.iter().rev() {
            budget.check_atoms(matrix.atom_count() as u64)?;
            if block.exists {
                matrix = eliminate_exists(v, &matrix, budget, arena)?;
            } else {
                matrix = eliminate_exists(v, &matrix.negate(), budget, arena)?.negate();
            }
        }
        matrix = simplify(&matrix);
    }
    Ok(simplify(&matrix))
}

/// Eliminates `∃v` from a quantifier-free formula.
pub(crate) fn eliminate_exists(
    v: Var,
    f: &Formula,
    budget: &EvalBudget,
    arena: &mut Arena,
) -> Result<Formula, QeError> {
    fm_eliminate_exists(v, f, budget, arena, false)
}

/// Per-variable Fourier–Motzkin entry point for the planner
/// ([`crate::plan`]): eliminates `∃v` from a quantifier-free formula. With
/// `prune` set, DNF clauses failing the cheap [`clause_obviously_empty`]
/// contradiction test are dropped *before* bound cross-combination —
/// semantics-preserving (an unsatisfiable clause contributes `⊥` to the
/// disjunction) but not necessarily bit-identical to the unpruned run, so
/// the fixed pipeline never sets it.
pub fn fm_eliminate_exists(
    v: Var,
    f: &Formula,
    budget: &EvalBudget,
    arena: &mut Arena,
    prune: bool,
) -> Result<Formula, QeError> {
    let clauses = dnf(&simplify(f));
    // The DNF cross-product repeats literals within a clause and whole
    // clauses across the expansion; intern everything and dedup by id —
    // integer comparisons instead of O(size) structural equality.
    let mut seen_clauses: HashSet<Vec<FormulaId>> = HashSet::new();
    let mut seen_out: HashSet<FormulaId> = HashSet::new();
    let mut out = Formula::False;
    for clause in clauses {
        budget.check()?;
        let mut ids: Vec<FormulaId> = clause.iter().map(|l| arena.intern(l)).collect();
        ids.sort_unstable();
        ids.dedup();
        if !seen_clauses.insert(ids.clone()) {
            continue;
        }
        let lits: Vec<Formula> = ids.iter().map(|&l| arena.extern_formula(l)).collect();
        if prune {
            let atoms: Vec<Atom> = lits
                .iter()
                .filter_map(|l| match l {
                    Formula::Atom(a) => Some(a.clone()),
                    _ => None,
                })
                .collect();
            if clause_obviously_empty(&atoms) {
                continue;
            }
        }
        let e = eliminate_clause(v, lits, budget)?;
        let eid = arena.intern(&e);
        if seen_out.insert(eid) {
            out = out.or(e);
        }
    }
    Ok(out)
}

/// One solved atom: the variable compared against a term.
#[derive(Clone, Debug)]
enum Bound {
    /// `v < t` (strict) or `v ≤ t`.
    Upper(MPoly, bool),
    /// `t < v` (strict) or `t ≤ v`.
    Lower(MPoly, bool),
    /// `v = t`.
    Equal(MPoly),
    /// `v ≠ t`.
    Unequal(MPoly),
}

/// Solves `poly REL 0` for `v`. `poly = a·v + rest` with `a` a non-zero
/// rational constant; result compares `v` against `t = -rest/a`.
fn solve_for(v: Var, atom: &Atom) -> Result<Bound, QeError> {
    let coeffs = atom.poly.as_univariate_in(v);
    if coeffs.len() != 2 {
        return Err(QeError::NonLinear(format!(
            "degree {} in eliminated variable",
            coeffs.len().saturating_sub(1)
        )));
    }
    let Some(a) = coeffs[1].as_constant() else {
        return Err(QeError::NonLinear(
            "non-constant coefficient of eliminated variable".into(),
        ));
    };
    debug_assert!(!a.is_zero());
    let t = coeffs[0].scale(&(-a.recip().clone()));
    // a·v + rest REL 0  ⇔  v REL' t, flipping REL when a < 0.
    let rel = if a.is_negative() {
        atom.rel.flip()
    } else {
        atom.rel
    };
    Ok(match rel {
        Rel::Lt => Bound::Upper(t, true),
        Rel::Le => Bound::Upper(t, false),
        Rel::Gt => Bound::Lower(t, true),
        Rel::Ge => Bound::Lower(t, false),
        Rel::Eq => Bound::Equal(t),
        Rel::Neq => Bound::Unequal(t),
    })
}

fn atom_formula(poly: MPoly, rel: Rel) -> Formula {
    let a = Atom::new(poly, rel);
    match a.as_const() {
        Some(true) => Formula::True,
        Some(false) => Formula::False,
        None => Formula::Atom(a),
    }
}

/// Eliminates `∃v` from a single conjunction of literals.
fn eliminate_clause(v: Var, clause: Vec<Formula>, budget: &EvalBudget) -> Result<Formula, QeError> {
    let mut rest = Formula::True; // conjuncts not mentioning v
    let mut bounds: Vec<Bound> = Vec::new();
    for lit in clause {
        match &lit {
            Formula::Atom(a) if a.poly.vars().contains(&v) => {
                bounds.push(solve_for(v, a)?);
            }
            Formula::Atom(_) | Formula::True => rest = rest.and(lit),
            Formula::False => return Ok(Formula::False),
            Formula::Rel { .. } | Formula::Not(_) => return Err(QeError::HasRelations),
            other => unreachable!("non-literal in DNF clause: {other:?}"),
        }
    }
    if rest == Formula::False {
        return Ok(Formula::False);
    }

    // Equalities: substitute the first into everything else.
    if let Some(pos) = bounds.iter().position(|b| matches!(b, Bound::Equal(_))) {
        let Bound::Equal(t) = bounds.swap_remove(pos) else {
            unreachable!()
        };
        let mut out = rest;
        for b in bounds {
            let conjunct = match b {
                Bound::Upper(u, true) => atom_formula(&t - &u, Rel::Lt),
                Bound::Upper(u, false) => atom_formula(&t - &u, Rel::Le),
                Bound::Lower(l, true) => atom_formula(&l - &t, Rel::Lt),
                Bound::Lower(l, false) => atom_formula(&l - &t, Rel::Le),
                Bound::Equal(t2) => atom_formula(&t - &t2, Rel::Eq),
                Bound::Unequal(t2) => atom_formula(&t - &t2, Rel::Neq),
            };
            out = out.and(conjunct);
            if out == Formula::False {
                return Ok(Formula::False);
            }
        }
        return Ok(out);
    }

    combine_bounds(rest, bounds, budget)
}

/// Cross-combines lower and upper bounds, recursively splitting any
/// remaining disequalities (`v ≠ t` ⇒ `v < t ∨ v > t`).
fn combine_bounds(
    rest: Formula,
    mut bounds: Vec<Bound>,
    budget: &EvalBudget,
) -> Result<Formula, QeError> {
    budget.check()?;
    if let Some(pos) = bounds.iter().position(|b| matches!(b, Bound::Unequal(_))) {
        let Bound::Unequal(t) = bounds.swap_remove(pos) else {
            unreachable!()
        };
        let mut less = bounds.clone();
        less.push(Bound::Upper(t.clone(), true));
        let mut greater = bounds;
        greater.push(Bound::Lower(t, true));
        let a = combine_bounds(rest.clone(), less, budget)?;
        let b = combine_bounds(rest, greater, budget)?;
        return Ok(a.or(b));
    }
    let mut lowers: Vec<(MPoly, bool)> = Vec::new();
    let mut uppers: Vec<(MPoly, bool)> = Vec::new();
    for b in bounds {
        match b {
            Bound::Lower(t, s) => lowers.push((t, s)),
            Bound::Upper(t, s) => uppers.push((t, s)),
            Bound::Equal(_) | Bound::Unequal(_) => {
                unreachable!("equalities handled before bound combination")
            }
        }
    }
    let mut out = rest;
    for (l, ls) in &lowers {
        for (u, us) in &uppers {
            let rel = if *ls || *us { Rel::Lt } else { Rel::Le };
            out = out.and(atom_formula(l - u, rel));
            if out == Formula::False {
                return Ok(Formula::False);
            }
        }
    }
    Ok(out)
}

/// Quick clause-level contradiction check: two atoms on the same polynomial
/// (or its negation) with contradictory relations. Useful as a cheap
/// pre-filter before full satisfiability checking.
pub fn clause_obviously_empty(clause: &[Atom]) -> bool {
    for (i, a) in clause.iter().enumerate() {
        for b in &clause[i + 1..] {
            if a.poly == b.poly && rels_contradict(a.rel, b.rel) {
                return true;
            }
            let zero: MPoly = &a.poly + &b.poly;
            if zero.is_zero() {
                // a.poly = -b.poly: p<0 & -p<0 etc.
                let flipped = b.rel.flip();
                if rels_contradict(a.rel, flipped) {
                    return true;
                }
            }
        }
    }
    false
}

/// Samples a rational witness for `∃v` in a satisfiable conjunction of
/// linear bounds at a given assignment of the other variables — used by the
/// geometry layer for cell sampling. Returns `None` if the bounds are
/// inconsistent at that point.
pub fn sample_between(v: Var, atoms: &[Atom], assign: &dyn Fn(Var) -> Rat) -> Option<Rat> {
    let mut lo: Option<(Rat, bool)> = None; // (value, strict)
    let mut hi: Option<(Rat, bool)> = None;
    let mut avoid: Vec<Rat> = Vec::new();
    for a in atoms {
        if !a.poly.vars().contains(&v) {
            continue;
        }
        let b = solve_for(v, a).ok()?;
        let value = |t: &MPoly| t.eval(assign);
        match b {
            Bound::Upper(t, s) => {
                let tv = value(&t);
                if hi
                    .as_ref()
                    .is_none_or(|(h, hs)| tv < *h || (tv == *h && s && !hs))
                {
                    hi = Some((tv, s));
                }
            }
            Bound::Lower(t, s) => {
                let tv = value(&t);
                if lo
                    .as_ref()
                    .is_none_or(|(l, ls)| tv > *l || (tv == *l && s && !ls))
                {
                    lo = Some((tv, s));
                }
            }
            Bound::Equal(t) => {
                let tv = value(&t);
                lo = Some((tv.clone(), false));
                hi = Some((tv, false));
            }
            Bound::Unequal(t) => avoid.push(value(&t)),
        }
    }
    let candidate = match (&lo, &hi) {
        (None, None) => Rat::zero(),
        (Some((l, _)), None) => l + Rat::one(),
        (None, Some((h, _))) => h - Rat::one(),
        (Some((l, ls)), Some((h, hs))) => {
            if l > h || (l == h && (*ls || *hs)) {
                return None;
            }
            if l == h {
                l.clone()
            } else {
                l.midpoint(h)
            }
        }
    };
    if !avoid.contains(&candidate) {
        return Some(candidate);
    }
    // Nudge toward the upper end until clear of avoided points.
    let upper = hi.map(|(h, _)| h);
    let mut c = candidate;
    loop {
        let next = match &upper {
            Some(h) => c.midpoint(h),
            None => &c + Rat::one(),
        };
        if next == c {
            return None;
        }
        if !avoid.contains(&next) {
            return Some(next);
        }
        c = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_logic::parse_formula;

    fn f(src: &str) -> Formula {
        parse_formula(src).unwrap().0
    }

    /// Runs FM on `query` and checks semantic equivalence with `expected`,
    /// parsing both with a shared variable map.
    fn check(query: &str, expected: &str) {
        let mut vars = cqa_logic::VarMap::new();
        let q = cqa_logic::parse_formula_with(query, &mut vars).unwrap();
        let e = cqa_logic::parse_formula_with(expected, &mut vars).unwrap();
        let g = fourier_motzkin(&q).unwrap();
        agree(&g, &e);
    }

    /// Semantic equivalence on a sample grid (both formulas quantifier-free,
    /// same variables).
    fn agree(a: &Formula, b: &Formula) {
        let vars: Vec<Var> = a.free_vars().union(&b.free_vars()).copied().collect();
        let samples: Vec<Rat> = (-6..=6).map(|n| Rat::new(n.into(), 2i64.into())).collect();
        let mut idx = vec![0usize; vars.len()];
        loop {
            let vals: Vec<Rat> = idx.iter().map(|&i| samples[i].clone()).collect();
            let asg = |v: Var| {
                vars.iter()
                    .position(|&w| w == v)
                    .map(|i| vals[i].clone())
                    .unwrap_or_else(Rat::zero)
            };
            assert_eq!(
                a.eval(&asg, &[]),
                b.eval(&asg, &[]),
                "disagree at {vals:?}\n a={a:?}\n b={b:?}"
            );
            let mut k = 0;
            loop {
                if k == idx.len() {
                    return;
                }
                idx[k] += 1;
                if idx[k] < samples.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }

    #[test]
    fn simple_projection() {
        check("exists y. x < y & y < 1", "x < 1");
    }

    #[test]
    fn weak_and_strict_bounds() {
        check("exists y. x <= y & y < 1", "x < 1");
        check("exists y. x <= y & y <= 1", "x <= 1");
    }

    #[test]
    fn equality_substitution() {
        check("exists y. y = 2*x & y < 1", "2*x < 1");
    }

    #[test]
    fn disequality_split() {
        // ∃y. 0 < y < 1 ∧ y ≠ x  — always true (interval minus a point).
        check("exists y. 0 < y & y < 1 & y != x", "true");
        // ∃y. 0 ≤ y ≤ 0 ∧ y ≠ x  ⇔  x ≠ 0.
        check("exists y. 0 <= y & y <= 0 & y != x", "x != 0");
    }

    #[test]
    fn unbounded_directions() {
        check("exists y. x < y", "true");
        check("exists y. y < x & y > x", "false");
    }

    #[test]
    fn universal_quantifier() {
        check("forall y. y > x | y <= x", "true");
        check("forall y. y > x", "false");
    }

    #[test]
    fn alternating_quantifiers() {
        assert_eq!(
            fourier_motzkin(&f("forall x. exists y. y = x + 1 & y > x")).unwrap(),
            Formula::True
        );
        assert_eq!(
            fourier_motzkin(&f("exists y. forall x. y > x")).unwrap(),
            Formula::False
        );
    }

    #[test]
    fn two_dim_projection() {
        // Triangle 0 ≤ y ≤ x ≤ 1 projected to x: 0 ≤ x ≤ 1.
        check("exists y. 0 <= y & y <= x & x <= 1", "0 <= x & x <= 1");
    }

    #[test]
    fn scaled_coefficients() {
        // ∃y. 2y ≤ x ∧ x ≤ 3y  ⇔  x/2 ≥ x/3-ish: ∃y between x/3 and x/2: x ≥ 0... non-empty iff x/3 ≤ x/2 iff x ≥ 0.
        check("exists y. 2*y <= x & x <= 3*y", "x >= 0");
    }

    #[test]
    fn rejects_nonlinear() {
        assert!(matches!(
            fourier_motzkin(&f("exists y. y*y < x")),
            Err(QeError::NonLinear(_))
        ));
    }

    #[test]
    fn disjunctive_input() {
        check(
            "exists y. (y < x & y > 0) | (y > 5 & y < x)",
            "x > 0 | x > 5",
        );
    }

    #[test]
    fn sample_between_finds_witness() {
        let (g, vars) = parse_formula("0 < y & y < 1 & y != x").unwrap();
        let y = vars.get("y").unwrap();
        let x = vars.get("x").unwrap();
        let atoms: Vec<Atom> = match g {
            Formula::And(parts) => parts
                .into_iter()
                .map(|p| match p {
                    Formula::Atom(a) => a,
                    other => panic!("{other:?}"),
                })
                .collect(),
            other => panic!("{other:?}"),
        };
        let w = sample_between(y, &atoms, &|v| {
            assert_eq!(v, x);
            Rat::new(1i64.into(), 2i64.into())
        })
        .unwrap();
        assert!(w > Rat::zero() && w < Rat::one());
        assert_ne!(w, Rat::new(1i64.into(), 2i64.into()));
    }

    #[test]
    fn clause_empty_detection() {
        let (g, _) = parse_formula("x < 0 & x > 0").unwrap();
        let atoms: Vec<Atom> = match g {
            Formula::And(parts) => parts
                .into_iter()
                .map(|p| match p {
                    Formula::Atom(a) => a,
                    _ => unreachable!(),
                })
                .collect(),
            _ => unreachable!(),
        };
        assert!(clause_obviously_empty(&atoms));
    }
}
