//! Property tests for the Cohen–Hörmander engine: brute-force
//! cross-validation on random univariate polynomial sentences.

use cqa_arith::Rat;
use cqa_logic::{Atom, Formula, Rel};
use cqa_poly::{MPoly, UPoly, Var};
use cqa_qe::hoermander;
use proptest::prelude::*;

fn upoly_strategy() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-4i64..=4, 1..4)
}

fn poly_of(coeffs: &[i64], v: Var) -> MPoly {
    let mut p = MPoly::zero();
    for (i, &c) in coeffs.iter().enumerate() {
        p = p + MPoly::var(v).pow(i as u32).scale(&Rat::from(c));
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// ∃x. p(x) REL 0 decided by CH must agree with root isolation:
    /// the sentence is true iff some sample point (roots, midpoints
    /// between roots, beyond the root bound) satisfies it.
    #[test]
    fn exists_sign_condition_matches_root_analysis(
        coeffs in upoly_strategy(),
        rel_idx in 0usize..4,
    ) {
        let rel = [Rel::Lt, Rel::Le, Rel::Gt, Rel::Ge][rel_idx];
        let x = Var(0);
        let sentence = Formula::exists(
            vec![x],
            Formula::Atom(Atom::new(poly_of(&coeffs, x), rel)),
        );
        let ch = match hoermander(&sentence).unwrap() {
            Formula::True => true,
            Formula::False => false,
            other => panic!("not ground: {other:?}"),
        };
        // Brute force via exact evaluation on a witness set: all rational
        // sample points around the roots of p.
        let up = UPoly::from_ints(&coeffs);
        let mut samples: Vec<Rat> = vec![Rat::zero()];
        if !up.is_constant() {
            let b = up.root_bound();
            samples.push(-b.clone() - Rat::one());
            samples.push(b + Rat::one());
            let roots = cqa_poly::isolate_real_roots(&up);
            for r in &roots {
                samples.push(r.lo.clone());
                samples.push(r.hi.clone());
                samples.push(r.lo.midpoint(&r.hi));
            }
            for w in roots.windows(2) {
                samples.push(w[0].hi.midpoint(&w[1].lo));
            }
        }
        // The sampled decision can only under-approximate ∃ (rational
        // samples may miss irrational-only witnesses of equalities, but
        // for the relations used here — strict/weak inequalities — any
        // satisfiable set has rational points).
        let brute = samples.iter().any(|s| rel.sign_satisfies(up.sign_at(s)));
        prop_assert_eq!(ch, brute, "coeffs {:?} rel {:?}", coeffs, rel);
    }

    /// ∀x. p(x)² ≥ 0 — always true; ∀x. p(x) > 0 iff p has no real root
    /// and positive leading behaviour.
    #[test]
    fn forall_positivity(coeffs in upoly_strategy()) {
        let x = Var(0);
        let p = poly_of(&coeffs, x);
        let square_nonneg = Formula::forall(
            vec![x],
            Formula::Atom(Atom::new(&p * &p, Rel::Ge)),
        );
        prop_assert_eq!(hoermander(&square_nonneg).unwrap(), Formula::True);

        let strictly_pos =
            Formula::forall(vec![x], Formula::Atom(Atom::new(p, Rel::Gt)));
        let ch = hoermander(&strictly_pos).unwrap() == Formula::True;
        let up = UPoly::from_ints(&coeffs);
        let brute = if up.is_zero() {
            false
        } else if up.is_constant() {
            up.leading().is_positive()
        } else {
            cqa_poly::isolate_real_roots(&up).is_empty()
                && up.sign_at(&Rat::zero()) > 0
        };
        prop_assert_eq!(ch, brute, "coeffs {:?}", coeffs);
    }

    /// Eliminating a variable that does not occur is the identity (up to
    /// simplification): ∃y. p(x) < 0 ⇔ p(x) < 0.
    #[test]
    fn vacuous_quantifier(coeffs in upoly_strategy()) {
        let x = Var(0);
        let y = Var(1);
        let body = Formula::Atom(Atom::new(poly_of(&coeffs, x), Rel::Lt));
        let q = Formula::exists(vec![y], body.clone());
        let out = hoermander(&q).unwrap();
        // Semantically equal on samples.
        for v in -4..=4i64 {
            let asg = |w: Var| {
                assert_eq!(w, x);
                Rat::from(v)
            };
            prop_assert_eq!(out.eval(&asg, &[]), body.eval(&asg, &[]));
        }
    }
}
