//! Property tests for the hash-consed IR: interning is lossless and
//! idempotent, and everything downstream — evaluation, the memoized
//! simplifier, the canonical cache key — agrees between the boxed tree
//! and the arena representation.
//!
//! These live in `cqa-qe` (not `cqa-logic`) because the simplifier parity
//! half needs [`cqa_qe::simplify_id`], and `cqa-qe` already depends on
//! `cqa-logic` (the reverse dependency would be circular).

use cqa_arith::{rat, Rat};
use cqa_logic::ir::Arena;
use cqa_logic::{Atom, Formula, Rel};
use cqa_poly::{MPoly, Var};
use cqa_qe::{simplify, simplify_id, SimplifyMemo};
use proptest::prelude::*;

/// Quantifier-free formulas over `x0`, `x1` with small affine and
/// quadratic atoms — the same shape the cqa-logic normal-form props use,
/// plus an occasional `x0²` term so both constraint classes appear.
fn qf_formula() -> impl Strategy<Value = Formula> {
    let atom = (
        prop::collection::vec(-3i64..=3, 2),
        -4i64..=4,
        0usize..6,
        0u8..2,
    )
        .prop_map(|(coeffs, c, r, square)| {
            let square = square == 1;
            let rel = [Rel::Lt, Rel::Le, Rel::Gt, Rel::Ge, Rel::Eq, Rel::Neq][r];
            let mut p = MPoly::constant(Rat::from(c));
            for (i, &a) in coeffs.iter().enumerate() {
                p = p + MPoly::var(Var(i as u32)).scale(&Rat::from(a));
            }
            if square {
                p = p + MPoly::var(Var(0)) * MPoly::var(Var(0));
            }
            Formula::Atom(Atom::new(p, rel))
        });
    atom.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Formula::negate),
        ]
    })
}

/// Formulas with quantifiers and relation atoms layered on top — extern ∘
/// intern must be lossless for every constructor, not just the ones QE
/// accepts.
fn any_formula() -> impl Strategy<Value = Formula> {
    (qf_formula(), 0usize..5).prop_map(|(f, wrap)| match wrap {
        0 => Formula::exists(vec![Var(1)], f),
        1 => Formula::forall(vec![Var(0)], f),
        2 => Formula::ExistsAdom(Var(1), Box::new(f)),
        3 => f.and(Formula::Rel {
            name: "R".into(),
            args: vec![MPoly::var(Var(0)), MPoly::var(Var(1)).scale(&rat(2, 1))],
        }),
        _ => f,
    })
}

fn grids_agree(a: &Formula, b: &Formula) -> Result<(), TestCaseError> {
    for x in -3..=3i64 {
        for y in -3..=3i64 {
            let asg = |v: Var| if v == Var(0) { rat(x, 2) } else { rat(y, 2) };
            prop_assert_eq!(a.eval(&asg, &[]), b.eval(&asg, &[]), "at ({}, {})", x, y);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `extern(intern(f))` reconstructs `f` exactly — every constructor,
    /// including quantifiers and relation atoms.
    #[test]
    fn extern_intern_is_lossless(f in any_formula()) {
        let mut arena = Arena::new();
        let id = arena.intern(&f);
        prop_assert_eq!(arena.extern_formula(id), f);
    }

    /// Interning is idempotent: re-interning an externed formula yields
    /// the same id, and no new nodes are allocated.
    #[test]
    fn intern_is_idempotent(f in any_formula()) {
        let mut arena = Arena::new();
        let id = arena.intern(&f);
        let nodes_before = arena.stats().nodes;
        let g = arena.extern_formula(id);
        prop_assert_eq!(arena.intern(&g), id);
        prop_assert_eq!(arena.stats().nodes, nodes_before);
    }

    /// The round-trip evaluates identically to the boxed original on a
    /// rational grid.
    #[test]
    fn roundtrip_eval_parity(f in qf_formula()) {
        let mut arena = Arena::new();
        let id = arena.intern(&f);
        let g = arena.extern_formula(id);
        grids_agree(&f, &g)?;
    }

    /// The memoized id-world simplifier produces exactly the formula the
    /// boxed-tree entry point does, and both preserve semantics.
    #[test]
    fn simplify_id_matches_tree_simplify(f in qf_formula()) {
        let tree = simplify(&f);
        let mut arena = Arena::new();
        let mut memo = SimplifyMemo::new();
        let id = arena.intern(&f);
        let sid = simplify_id(&mut arena, id, &mut memo);
        let via_arena = arena.extern_formula(sid);
        prop_assert_eq!(&via_arena, &tree);
        grids_agree(&f, &via_arena)?;
    }

    /// Simplifying twice through the memo is a fixpoint in id space.
    #[test]
    fn simplify_id_is_idempotent(f in qf_formula()) {
        let mut arena = Arena::new();
        let mut memo = SimplifyMemo::new();
        let id = arena.intern(&f);
        let once = simplify_id(&mut arena, id, &mut memo);
        let twice = simplify_id(&mut arena, once, &mut memo);
        prop_assert_eq!(once, twice);
    }

    /// The canonical string key is preserved by the round-trip, and the
    /// canonical 128-bit hash is a function of that key: two formulas
    /// with equal keys always get equal hashes (the cache-key contract),
    /// session-independently across distinct arenas.
    #[test]
    fn canonical_key_and_hash_agree(f in qf_formula(), g in qf_formula()) {
        let params = [Var(0), Var(1)];
        let mut arena = Arena::new();
        let fid = arena.intern(&f);
        prop_assert_eq!(
            arena.extern_formula(fid).canonical_key_for_params(&params),
            f.canonical_key_for_params(&params)
        );
        // A second, independently grown arena (g first) must agree on f's
        // hash: ids differ, hashes don't.
        let mut other = Arena::new();
        let gid_other = other.intern(&g);
        let fid_other = other.intern(&f);
        prop_assert_eq!(
            arena.canonical_hash_for_params(fid, &params),
            other.canonical_hash_for_params(fid_other, &params)
        );
        // Key equality implies hash equality (hash is computed from the
        // same canonical form the string renders).
        let gid = arena.intern(&g);
        if f.canonical_key_for_params(&params) == g.canonical_key_for_params(&params) {
            prop_assert_eq!(
                arena.canonical_hash_for_params(fid, &params),
                arena.canonical_hash_for_params(gid, &params)
            );
        }
        prop_assert_eq!(
            arena.canonical_hash_for_params(gid, &params),
            other.canonical_hash_for_params(gid_other, &params)
        );
    }
}
