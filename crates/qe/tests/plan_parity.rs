//! Property tests for the cost-based planner (`cqa_qe::plan`): on random
//! quantified linear formulas the planned elimination must agree with the
//! fixed dispatch pipeline on a rational grid, warm subplan-store hits must
//! reproduce cold results bit-identically, and α-renamed quantifier blocks
//! must share one elimination through the positional canonical hash.

use cqa_arith::{rat, Rat};
use cqa_logic::budget::EvalBudget;
use cqa_logic::ir::Arena;
use cqa_logic::{Atom, Formula, Rel};
use cqa_poly::{MPoly, Var};
use cqa_qe::plan::{eliminate_with_plan, plan, NoSharing, PlanInputs, SubplanStore};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A stored subplan: the eliminated matrix plus its positional params.
type StoredSubplan = (Formula, Vec<Var>);

/// An in-memory [`SubplanStore`] with a hit counter.
#[derive(Default)]
struct MapStore {
    map: Mutex<HashMap<(u128, u32), StoredSubplan>>,
    hits: AtomicU64,
}

impl SubplanStore for MapStore {
    fn lookup(&self, hash: u128, dim: u32) -> Option<(Formula, Vec<Var>)> {
        let hit = self.map.lock().unwrap().get(&(hash, dim)).cloned();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
    fn store(&self, hash: u128, dim: u32, qf: &Formula, params: &[Var]) {
        self.map
            .lock()
            .unwrap()
            .insert((hash, dim), (qf.clone(), params.to_vec()));
    }
}

/// Small affine atoms over `x0`, `x1`, `x2` — every relation, coefficients
/// in `[-3, 3]` — so both FM (conjunctive) and LW (wide DNF) plans occur.
fn linear_atom() -> impl Strategy<Value = Formula> {
    (prop::collection::vec(-3i64..=3, 3), -4i64..=4, 0usize..6).prop_map(|(coeffs, c, r)| {
        let rel = [Rel::Lt, Rel::Le, Rel::Gt, Rel::Ge, Rel::Eq, Rel::Neq][r];
        let mut p = MPoly::constant(Rat::from(c));
        for (i, &a) in coeffs.iter().enumerate() {
            p = p + MPoly::var(Var(i as u32)).scale(&Rat::from(a));
        }
        Formula::Atom(Atom::new(p, rel))
    })
}

fn matrix() -> impl Strategy<Value = Formula> {
    linear_atom().prop_recursive(2, 6, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Formula::negate),
        ]
    })
}

/// Quantified shapes: single and two-variable blocks, both quantifiers,
/// and a block conjoined with a quantifier-free band (the subplan-sharing
/// shape).
fn quantified() -> impl Strategy<Value = Formula> {
    (matrix(), 0usize..4).prop_map(|(m, wrap)| match wrap {
        0 => Formula::exists(vec![Var(2)], m),
        1 => Formula::forall(vec![Var(2)], m),
        2 => Formula::exists(vec![Var(1), Var(2)], m),
        _ => Formula::exists(vec![Var(2)], m.clone()).and(m),
    })
}

/// Grid agreement of two quantifier-free formulas over their free
/// variables, at half-integer rational points in `[-2, 2]`.
fn grids_agree(a: &Formula, b: &Formula) -> Result<(), TestCaseError> {
    let vars: Vec<Var> = a.free_vars().union(&b.free_vars()).copied().collect();
    let samples: Vec<Rat> = (-4..=4).map(|n| rat(n, 2)).collect();
    let mut idx = vec![0usize; vars.len()];
    loop {
        let vals: Vec<Rat> = idx.iter().map(|&i| samples[i].clone()).collect();
        let asg = |v: Var| {
            vars.iter()
                .position(|&w| w == v)
                .map(|i| vals[i].clone())
                .unwrap_or_else(Rat::zero)
        };
        prop_assert_eq!(
            a.eval(&asg, &[]),
            b.eval(&asg, &[]),
            "disagree at {:?}",
            vals
        );
        let mut k = 0;
        loop {
            if k == idx.len() {
                return Ok(());
            }
            idx[k] += 1;
            if idx[k] < samples.len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

fn run_planned(f: &Formula, store: &dyn SubplanStore) -> Formula {
    let p = plan(f, &PlanInputs::measure(f));
    eliminate_with_plan(f, &p, &EvalBudget::unlimited(), &mut Arena::new(), store).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The planned elimination — whatever method, order and pruning the
    /// planner picked — produces a quantifier-free formula that agrees
    /// with the fixed pipeline everywhere on the grid.
    #[test]
    fn planned_agrees_with_fixed_pipeline(f in quantified()) {
        let fixed = cqa_qe::eliminate(&f).unwrap();
        let got = run_planned(&f, &NoSharing);
        prop_assert!(got.is_quantifier_free());
        grids_agree(&got, &fixed)?;
    }

    /// Re-eliminating the same formula against a warm store serves the
    /// quantifier block from the memo and reproduces the cold result
    /// bit-identically — a hit can never change the answer.
    #[test]
    fn warm_store_hits_reproduce_cold_results(f in quantified()) {
        let store = MapStore::default();
        let cold = run_planned(&f, &store);
        let stored = store.map.lock().unwrap().len();
        let warm = run_planned(&f, &store);
        prop_assert_eq!(&warm, &cold, "hit path must be bit-identical");
        if stored > 0 {
            prop_assert!(
                store.hits.load(Ordering::Relaxed) > 0,
                "re-elimination must hit the store"
            );
        }
    }

    /// α-renaming the bound variable does not change the positional
    /// canonical hash: `∃x2.m` and `∃x3.m[x2↦x3]` share one stored
    /// elimination, and the shared result is exactly the first one's.
    #[test]
    fn alpha_renamed_blocks_share_one_elimination(m in matrix()) {
        let store = MapStore::default();
        // Normalize first: `subst_poly` constant-folds while rebuilding, so
        // an unsimplified matrix would give the renamed side a head start
        // (e.g. a constant-true disjunct collapses the whole block).
        let m = cqa_qe::simplify(&m);
        let f1 = Formula::exists(vec![Var(2)], m.clone());
        let f2 = Formula::exists(vec![Var(3)], m.subst_poly(Var(2), &MPoly::var(Var(3))));
        let r1 = run_planned(&f1, &store);
        let stored = store.map.lock().unwrap().len();
        let r2 = run_planned(&f2, &store);
        prop_assert_eq!(&r1, &r2, "renamed block must reuse the stored result");
        if stored > 0 {
            prop_assert!(
                store.hits.load(Ordering::Relaxed) > 0,
                "α-renamed block must hit the store"
            );
        }
    }
}
