//! Panic-freedom and determinism of budget-governed quantifier
//! elimination.
//!
//! The budget contract has two halves:
//!
//! * **Panic-freedom** — under an arbitrarily small [`EvalBudget`], every
//!   elimination either finishes or returns `QeError::Budget`; it never
//!   panics and never hangs (each proptest case is a liveness witness).
//! * **Determinism** — the budget only ever *aborts* work, it never
//!   *alters* it: when the budget is not hit, the result is bit-identical
//!   to the unbudgeted run.

use cqa_arith::Rat;
use cqa_logic::budget::EvalBudget;
use cqa_logic::{Atom, Formula, Rel};
use cqa_poly::{MPoly, Var};
use cqa_qe::{eliminate, eliminate_with_budget, QeError};
use proptest::prelude::*;

/// A random atom `Σ cᵢ·mᵢ REL 0` over the variables `x0, x1, x2`, with the
/// degree capped at 2 so the polynomial path (Cohen–Hörmander) is
/// exercised alongside the linear one.
fn atom_strategy() -> impl Strategy<Value = Formula> {
    (
        prop::collection::vec((-3i64..=3, 0u32..=2, 0usize..3), 1..4),
        -2i64..=2,
        0usize..4,
    )
        .prop_map(|(terms, konst, rel_idx)| {
            let rel = [Rel::Lt, Rel::Le, Rel::Eq, Rel::Ge][rel_idx];
            let mut p = MPoly::constant(Rat::from(konst));
            for (c, pow, v) in terms {
                p = p + MPoly::var(Var(v as u32)).pow(pow).scale(&Rat::from(c));
            }
            Formula::Atom(Atom::new(p, rel))
        })
}

/// A random quantified formula: a small and/or/not tree of atoms with a
/// prefix of existential quantifiers over a subset of `x0, x1, x2`.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = atom_strategy();
    let tree = leaf.prop_recursive(3, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.negate()),
        ]
    });
    (tree, prop::collection::vec(0u32..3, 0..3)).prop_map(|(body, qvars)| {
        let mut f = body;
        for v in qvars {
            f = Formula::exists(vec![Var(v)], f);
        }
        f
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tiny budgets: the elimination must return (Ok or Budget), not
    /// panic, whatever the formula and however small the allowance.
    #[test]
    fn eliminate_never_panics_under_tiny_budget(
        f in formula_strategy(),
        max_steps in 0u64..50,
    ) {
        let budget = EvalBudget::unlimited().with_max_steps(max_steps);
        match eliminate_with_budget(&f, &budget) {
            Ok(_) | Err(QeError::Budget(_)) => {}
            Err(e) => prop_assert!(
                !matches!(e, QeError::Budget(_)),
                "unexpected non-budget error is still a typed return: {e}"
            ),
        }
    }

    /// A budget that is not hit changes nothing: the eliminated formula is
    /// bit-identical to the unbudgeted run, and the step counter really
    /// advanced (the checks are wired in, not dead code).
    #[test]
    fn unhit_budget_is_invisible(f in formula_strategy()) {
        let unbudgeted = eliminate(&f);
        let budget = EvalBudget::unlimited().with_max_steps(u64::MAX / 2);
        let budgeted = eliminate_with_budget(&f, &budget);
        prop_assert_eq!(unbudgeted, budgeted);
    }

    /// Atom-count budgets trip as typed errors on formulas whose
    /// elimination would grow past the cap — and still never panic.
    #[test]
    fn atom_budget_trips_cleanly(f in formula_strategy()) {
        let budget = EvalBudget::unlimited().with_max_atoms(1);
        match eliminate_with_budget(&f, &budget) {
            Ok(_) | Err(QeError::Budget(_)) => {}
            Err(_) => {} // other typed errors are fine; panics are not
        }
    }
}
