//! Cross-validation of the three QE engines on randomly generated formulas.
//!
//! Fourier–Motzkin, Loos–Weispfenning and Cohen–Hörmander are independent
//! implementations; on linear inputs all three must agree. Agreement is
//! checked semantically on a rational sample grid.

use cqa_arith::Rat;
use cqa_logic::Formula;
use cqa_poly::{MPoly, Var};
use cqa_qe::{fourier_motzkin, hoermander, loos_weispfenning};
use proptest::prelude::*;

/// A random linear atom over up to 3 variables with small coefficients.
fn atom_strategy() -> impl Strategy<Value = Formula> {
    (prop::collection::vec(-3i64..=3, 3), -4i64..=4, 0usize..6).prop_map(|(coeffs, c, rel)| {
        let mut p = MPoly::constant(Rat::from(c));
        for (i, &a) in coeffs.iter().enumerate() {
            p = p + MPoly::var(Var(i as u32)).scale(&Rat::from(a));
        }
        use cqa_logic::Rel::*;
        let rel = [Lt, Le, Gt, Ge, Eq, Neq][rel];
        Formula::Atom(cqa_logic::Atom::new(p, rel))
    })
}

/// Random quantifier-free boolean combinations of linear atoms.
fn qf_strategy() -> impl Strategy<Value = Formula> {
    let leaf = atom_strategy();
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Formula::negate),
        ]
    })
}

fn sample_points() -> Vec<Rat> {
    (-4..=4).map(|n| Rat::new(n.into(), 2i64.into())).collect()
}

fn agree_on_grid(a: &Formula, b: &Formula) -> Result<(), TestCaseError> {
    let vars: Vec<Var> = a.free_vars().union(&b.free_vars()).copied().collect();
    prop_assert!(
        vars.len() <= 2,
        "expected at most 2 free vars after elimination"
    );
    let samples = sample_points();
    let mut idx = vec![0usize; vars.len()];
    loop {
        let vals: Vec<Rat> = idx.iter().map(|&i| samples[i].clone()).collect();
        let asg = |v: Var| {
            vars.iter()
                .position(|&w| w == v)
                .map(|i| vals[i].clone())
                .unwrap_or_else(Rat::zero)
        };
        prop_assert_eq!(a.eval(&asg, &[]), b.eval(&asg, &[]), "at {:?}", vals);
        let mut k = 0;
        loop {
            if k == idx.len() {
                return Ok(());
            }
            idx[k] += 1;
            if idx[k] < samples.len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fm_equals_lw_on_exists(body in qf_strategy()) {
        let q = Formula::exists(vec![Var(2)], body);
        let fm = fourier_motzkin(&q).unwrap();
        let lw = loos_weispfenning(&q).unwrap();
        agree_on_grid(&fm, &lw)?;
    }

    #[test]
    fn fm_equals_lw_on_forall(body in qf_strategy()) {
        let q = Formula::forall(vec![Var(2)], body);
        let fm = fourier_motzkin(&q).unwrap();
        let lw = loos_weispfenning(&q).unwrap();
        agree_on_grid(&fm, &lw)?;
    }

    #[test]
    fn qe_preserves_semantics(body in qf_strategy()) {
        // ∃v. body evaluated by QE must match brute-force evaluation over
        // the grid extended with interval midpoints (linear formulas change
        // truth value only at atom bounds, which lie on the half-integer
        // grid for these coefficient ranges... so use a finer grid).
        let q = Formula::exists(vec![Var(2)], body.clone());
        let fm = fourier_motzkin(&q).unwrap();
        let _vars = [Var(0), Var(1)];
        let outer: Vec<Rat> = (-2..=2).map(|n| Rat::from(n as i64)).collect();
        // Dense witness grid for the eliminated variable.
        let witness: Vec<Rat> = (-48..=48).map(|n| Rat::new(n.into(), 6i64.into())).collect();
        for x in &outer {
            for y in &outer {
                let asg = |v: Var| match v.0 {
                    0 => x.clone(),
                    1 => y.clone(),
                    _ => unreachable!(),
                };
                let qe_truth = fm.eval(&asg, &[]).unwrap();
                let brute = witness.iter().any(|w| {
                    let asg2 = |v: Var| match v.0 {
                        0 => x.clone(),
                        1 => y.clone(),
                        _ => w.clone(),
                    };
                    body.eval(&asg2, &[]).unwrap()
                });
                // Brute force may miss a witness (finite grid) but must never
                // find one where QE says none exists.
                if brute {
                    prop_assert!(qe_truth, "witness exists but QE says unsat at ({x}, {y})");
                }
            }
        }
    }

    #[test]
    fn ch_agrees_with_fm_on_linear_sentences(body in qf_strategy()) {
        // Close the formula: ∀x0 x1 ∃x2. body — a sentence all engines decide.
        let sentence = Formula::forall(
            vec![Var(0), Var(1)],
            Formula::exists(vec![Var(2)], body),
        );
        let fm = fourier_motzkin(&sentence).unwrap();
        let ch = hoermander(&sentence).unwrap();
        prop_assert_eq!(fm, ch);
    }
}
