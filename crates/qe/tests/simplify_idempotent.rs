//! Idempotence of `cqa_qe::simplify`.
//!
//! The prepared-query cache in `cqa-engine` keys entries by
//! `Formula::canonical_key` of the *simplified* formula, so simplification
//! must be a projection: `simplify(simplify(f)) == simplify(f)`
//! structurally (not merely up to equivalence). A second pass that keeps
//! rewriting would make the same query key differently depending on how
//! many times it passed through the pipeline.
//!
//! The strategy deliberately builds raw AST nodes (`And(vec)`, `Not(box)`,
//! quantifiers over unused variables, adom quantifiers) rather than going
//! through the smart constructors, so the first `simplify` pass has real
//! work to do.

use cqa_arith::Rat;
use cqa_logic::{Atom, Formula, Rel};
use cqa_poly::{MPoly, Var};
use cqa_qe::simplify;
use proptest::prelude::*;

/// A random atom `Σ cᵢ·mᵢ REL 0` over `x0..x3`, degree ≤ 2, including
/// ground atoms (no variables) so constant folding fires.
fn atom_strategy() -> impl Strategy<Value = Formula> {
    (
        prop::collection::vec((-3i64..=3, 0u32..=2, 0usize..4), 0..4),
        -2i64..=2,
        0usize..6,
    )
        .prop_map(|(terms, konst, rel_idx)| {
            let rel = [Rel::Lt, Rel::Le, Rel::Eq, Rel::Neq, Rel::Gt, Rel::Ge][rel_idx];
            let mut p = MPoly::constant(Rat::from(konst));
            for (c, pow, v) in terms {
                p = p + MPoly::var(Var(v as u32)).pow(pow).scale(&Rat::from(c));
            }
            Formula::Atom(Atom::new(p, rel))
        })
}

/// A random formula tree built from *raw* constructors: n-ary `And`/`Or`
/// (possibly empty or single-child), `Not`, natural and active-domain
/// quantifiers (possibly binding unused variables), plus constants and
/// relation atoms.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        atom_strategy(),
        atom_strategy(),
        atom_strategy(),
        Just(Formula::True),
        Just(Formula::False),
        Just(Formula::Rel {
            name: "S".to_string(),
            args: vec![MPoly::var(Var(0))],
        }),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Formula::Or),
            inner.clone().prop_map(|f| Formula::Not(Box::new(f))),
            (prop::collection::vec(0u32..4, 1..3), inner.clone()).prop_map(|(vs, f)| {
                Formula::Exists(vs.into_iter().map(Var).collect(), Box::new(f))
            }),
            (prop::collection::vec(0u32..4, 1..3), inner.clone()).prop_map(|(vs, f)| {
                Formula::Forall(vs.into_iter().map(Var).collect(), Box::new(f))
            }),
            (0u32..4, inner.clone()).prop_map(|(v, f)| Formula::ExistsAdom(Var(v), Box::new(f))),
            (0u32..4, inner).prop_map(|(v, f)| Formula::ForallAdom(Var(v), Box::new(f))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `simplify` is idempotent: a second pass is the structural identity.
    #[test]
    fn simplify_is_idempotent(f in formula_strategy()) {
        let once = simplify(&f);
        let twice = simplify(&once);
        prop_assert_eq!(&twice, &once, "second pass rewrote: input {:?}", f);
    }

    /// Idempotence specifically survives the atom sign normalization the
    /// cache key depends on (leading coefficient forced positive).
    #[test]
    fn simplified_formulas_key_stably(f in formula_strategy()) {
        let once = simplify(&f);
        prop_assert_eq!(simplify(&once).canonical_key(), once.canonical_key());
    }
}
