//! Property-based tests for the exact arithmetic substrate.

use cqa_arith::{Int, Rat};
use proptest::prelude::*;

fn int_strategy() -> impl Strategy<Value = Int> {
    // Mix of small and multi-limb values built from up to 4 random i64 factors.
    prop_oneof![
        prop::collection::vec(any::<i64>(), 1..4)
            .prop_map(|vs| vs.into_iter().fold(Int::one(), |acc, v| acc * Int::from(v))),
        any::<i64>().prop_map(Int::from),
    ]
}

fn rat_strategy() -> impl Strategy<Value = Rat> {
    (any::<i64>(), 1..10_000i64).prop_map(|(n, d)| Rat::new(Int::from(n), Int::from(d)))
}

proptest! {
    #[test]
    fn int_add_commutes(a in int_strategy(), b in int_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn int_add_associates(a in int_strategy(), b in int_strategy(), c in int_strategy()) {
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
    }

    #[test]
    fn int_mul_distributes(a in int_strategy(), b in int_strategy(), c in int_strategy()) {
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn int_sub_inverts_add(a in int_strategy(), b in int_strategy()) {
        prop_assert_eq!((&a + &b) - &b, a);
    }

    #[test]
    fn int_div_rem_identity(a in int_strategy(), b in int_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&q * &b + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Remainder sign matches the dividend (truncated division).
        prop_assert!(r.is_zero() || r.signum() == a.signum());
    }

    #[test]
    fn int_display_parse_roundtrip(a in int_strategy()) {
        let s = a.to_string();
        let back: Int = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn int_gcd_divides_both(a in int_strategy(), b in int_strategy()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn int_cmp_consistent_with_sub(a in int_strategy(), b in int_strategy()) {
        let diff = &a - &b;
        prop_assert_eq!(a.cmp(&b), diff.cmp(&Int::zero()));
    }

    #[test]
    fn rat_field_axioms(a in rat_strategy(), b in rat_strategy(), c in rat_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn rat_div_inverts_mul(a in rat_strategy(), b in rat_strategy()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!((&a * &b) / &b, a);
    }

    #[test]
    fn rat_normalized(a in rat_strategy()) {
        prop_assert!(a.denom().is_positive());
        prop_assert!(a.numer().gcd(a.denom()).is_one() || a.is_zero());
    }

    #[test]
    fn rat_display_parse_roundtrip(a in rat_strategy()) {
        let s = a.to_string();
        let back: Rat = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn rat_floor_ceil_bracket(a in rat_strategy()) {
        let f = Rat::from_int(a.floor());
        let c = Rat::from_int(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(&c - &f <= Rat::one());
    }

    #[test]
    fn rat_to_f64_close(n in -1_000_000i64..1_000_000, d in 1i64..1_000_000) {
        let r = Rat::new(Int::from(n), Int::from(d));
        let expect = n as f64 / d as f64;
        prop_assert!((r.to_f64() - expect).abs() <= expect.abs() * 1e-14 + 1e-300);
    }
}
