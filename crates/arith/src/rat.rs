//! Exact rational numbers (always-normalized fractions).

use crate::int::{Int, ParseIntError};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// Invariants: the denominator is strictly positive and `gcd(num, den) == 1`
/// (with `0` represented as `0/1`). Every constructor enforces this, so
/// structural equality coincides with numeric equality.
#[derive(Clone, Debug)]
pub struct Rat {
    num: Int,
    den: Int,
}

impl Rat {
    /// Constructs `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: Int, den: Int) -> Rat {
        assert!(!den.is_zero(), "Rat with zero denominator");
        if num.is_zero() {
            return Rat::zero();
        }
        let mut num = num;
        let mut den = den;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        let g = num.gcd(&den);
        if !g.is_one() {
            num = num / &g;
            den = den / &g;
        }
        Rat { num, den }
    }

    /// The rational zero.
    pub fn zero() -> Rat {
        Rat {
            num: Int::zero(),
            den: Int::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Rat {
        Rat {
            num: Int::one(),
            den: Int::one(),
        }
    }

    /// A rational from an integer.
    pub fn from_int(n: Int) -> Rat {
        Rat {
            num: n,
            den: Int::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &Int {
        &self.den
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff one.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// `true` iff an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// `true` iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// Integer power (negative exponents invert; panics on `0^-n`).
    pub fn pow(&self, exp: i32) -> Rat {
        if exp == 0 {
            return Rat::one();
        }
        let base = if exp < 0 { self.recip() } else { self.clone() };
        let e = exp.unsigned_abs();
        Rat {
            num: base.num.pow(e),
            den: base.den.pow(e),
        }
    }

    /// Floor: largest integer `≤ self`.
    pub fn floor(&self) -> Int {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - Int::one()
        } else {
            q
        }
    }

    /// Ceiling: smallest integer `≥ self`.
    pub fn ceil(&self) -> Int {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_positive() {
            q + Int::one()
        } else {
            q
        }
    }

    /// Approximate conversion to `f64`.
    ///
    /// Exact when numerator and denominator both fit in 53 bits; otherwise
    /// the top 64 bits of each are used, giving a relative error below 2⁻⁶³.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let nb = self.num.bits();
        let db = self.den.bits();
        if nb <= 53 && db <= 53 {
            return self.num.to_f64() / self.den.to_f64();
        }
        // Scale each side down to ~63 significant bits independently and
        // re-apply the lost binary exponent afterwards.
        let ns = nb.saturating_sub(63) as u32;
        let ds = db.saturating_sub(63) as u32;
        let base = scale_down(&self.num, ns).to_f64() / scale_down(&self.den, ds).to_f64();
        base * 2f64.powi(ns as i32 - ds as i32)
    }

    /// Rational from an `f64` that must be finite (exact binary expansion).
    pub fn from_f64(v: f64) -> Option<Rat> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rat::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, e2) = if exp == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), exp - 1075)
        };
        let m = Int::from(mantissa) * Int::from(sign);
        Some(if e2 >= 0 {
            Rat::from_int(m.shl(e2 as u32))
        } else {
            Rat::new(m, Int::one().shl((-e2) as u32))
        })
    }

    /// The midpoint `(self + other) / 2`.
    pub fn midpoint(&self, other: &Rat) -> Rat {
        (self + other) / Rat::from_int(Int::from(2i64))
    }

    /// Minimum of two rationals by value.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals by value.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }
}

fn scale_down(v: &Int, shift: u32) -> Int {
    if shift == 0 {
        return v.clone();
    }
    // v / 2^shift, truncated. Division through pow of two.
    v / &Int::one().shl(shift)
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::zero()
    }
}

impl PartialEq for Rat {
    fn eq(&self, other: &Rat) -> bool {
        self.num == other.num && self.den == other.den
    }
}
impl Eq for Rat {}

impl Hash for Rat {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // Cross-multiply; denominators are positive so the order is preserved.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}
impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -(&self.num),
            den: self.den.clone(),
        }
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, other: &Rat) -> Rat {
        Rat::new(
            &self.num * &other.den + &other.num * &self.den,
            &self.den * &other.den,
        )
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, other: &Rat) -> Rat {
        Rat::new(
            &self.num * &other.den - &other.num * &self.den,
            &self.den * &other.den,
        )
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, other: &Rat) -> Rat {
        Rat::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, other: &Rat) -> Rat {
        assert!(!other.is_zero(), "Rat division by zero");
        Rat::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_rat_binop {
    ($tr:ident, $m:ident) => {
        impl $tr for Rat {
            type Output = Rat;
            fn $m(self, other: Rat) -> Rat {
                (&self).$m(&other)
            }
        }
        impl $tr<&Rat> for Rat {
            type Output = Rat;
            fn $m(self, other: &Rat) -> Rat {
                (&self).$m(other)
            }
        }
        impl $tr<Rat> for &Rat {
            type Output = Rat;
            fn $m(self, other: Rat) -> Rat {
                self.$m(&other)
            }
        }
    };
}
forward_rat_binop!(Add, add);
forward_rat_binop!(Sub, sub);
forward_rat_binop!(Mul, mul);
forward_rat_binop!(Div, div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, other: &Rat) {
        *self = &*self + other;
    }
}
impl AddAssign for Rat {
    fn add_assign(&mut self, other: Rat) {
        *self = &*self + &other;
    }
}
impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, other: &Rat) {
        *self = &*self - other;
    }
}
impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, other: &Rat) {
        *self = &*self * other;
    }
}
impl DivAssign<&Rat> for Rat {
    fn div_assign(&mut self, other: &Rat) {
        *self = &*self / other;
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::from_int(Int::from(v))
    }
}
impl From<Int> for Rat {
    fn from(v: Int) -> Rat {
        Rat::from_int(v)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl FromStr for Rat {
    type Err = ParseIntError;

    /// Parses `"a"`, `"a/b"`, or a decimal literal `"1.25"` / `"-0.5"`.
    fn from_str(s: &str) -> Result<Rat, ParseIntError> {
        if let Some((n, d)) = s.split_once('/') {
            let num: Int = n.trim().parse()?;
            let den: Int = d.trim().parse()?;
            if den.is_zero() {
                return Err(ParseIntError(s.to_string()));
            }
            return Ok(Rat::new(num, den));
        }
        if let Some((ip, fp)) = s.split_once('.') {
            if fp.is_empty() || !fp.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseIntError(s.to_string()));
            }
            let negative = ip.trim_start().starts_with('-');
            let int_part: Int = if ip.is_empty() || ip == "-" || ip == "+" {
                Int::zero()
            } else {
                ip.parse()?
            };
            let frac_num: Int = fp.parse()?;
            let scale = Int::from(10i64).pow(fp.len() as u32);
            let frac = Rat::new(frac_num, scale);
            let base = Rat::from_int(int_part);
            return Ok(if negative { base - frac } else { base + frac });
        }
        Ok(Rat::from_int(s.parse()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64, d: i64) -> Rat {
        Rat::new(Int::from(n), Int::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(q(2, 4), q(1, 2));
        assert_eq!(q(-2, -4), q(1, 2));
        assert_eq!(q(2, -4), q(-1, 2));
        assert_eq!(q(0, 7), Rat::zero());
        assert_eq!(q(6, 3), Rat::from(2i64));
        assert!(q(2, -4).denom().is_positive());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(q(1, 2) + q(1, 3), q(5, 6));
        assert_eq!(q(1, 2) - q(1, 3), q(1, 6));
        assert_eq!(q(2, 3) * q(3, 4), q(1, 2));
        assert_eq!(q(1, 2) / q(1, 4), Rat::from(2i64));
        assert_eq!(-q(1, 2), q(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(q(1, 3) < q(1, 2));
        assert!(q(-1, 2) < q(-1, 3));
        assert!(q(-1, 2) < Rat::zero());
        assert!(q(7, 2) > Rat::from(3i64));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(q(7, 2).floor(), Int::from(3i64));
        assert_eq!(q(7, 2).ceil(), Int::from(4i64));
        assert_eq!(q(-7, 2).floor(), Int::from(-4i64));
        assert_eq!(q(-7, 2).ceil(), Int::from(-3i64));
        assert_eq!(Rat::from(5i64).floor(), Int::from(5i64));
        assert_eq!(Rat::from(5i64).ceil(), Int::from(5i64));
    }

    #[test]
    fn pow_recip() {
        assert_eq!(q(2, 3).pow(2), q(4, 9));
        assert_eq!(q(2, 3).pow(-2), q(9, 4));
        assert_eq!(q(2, 3).pow(0), Rat::one());
        assert_eq!(q(2, 3).recip(), q(3, 2));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rat::zero().recip();
    }

    #[test]
    fn f64_roundtrip() {
        for v in [0.0, 1.0, -1.5, 0.1, 123.456, -7.25e10] {
            let r = Rat::from_f64(v).unwrap();
            assert_eq!(r.to_f64(), v);
        }
        assert!(Rat::from_f64(f64::NAN).is_none());
        assert!(Rat::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn to_f64_large() {
        let big = Rat::new(Int::from(2i64).pow(200), Int::from(3i64).pow(100));
        let approx = big.to_f64();
        let expect = 2.0f64.powi(200) / 3.0f64.powi(100);
        assert!((approx - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn parsing() {
        assert_eq!("3/6".parse::<Rat>().unwrap(), q(1, 2));
        assert_eq!("-3/6".parse::<Rat>().unwrap(), q(-1, 2));
        assert_eq!("1.25".parse::<Rat>().unwrap(), q(5, 4));
        assert_eq!("-0.5".parse::<Rat>().unwrap(), q(-1, 2));
        assert_eq!(".5".parse::<Rat>().unwrap(), q(1, 2));
        assert_eq!("42".parse::<Rat>().unwrap(), Rat::from(42i64));
        assert!("1/0".parse::<Rat>().is_err());
        assert!("x".parse::<Rat>().is_err());
        assert!("1.".parse::<Rat>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(q(1, 2).to_string(), "1/2");
        assert_eq!(q(-1, 2).to_string(), "-1/2");
        assert_eq!(Rat::from(7i64).to_string(), "7");
        assert_eq!(Rat::zero().to_string(), "0");
    }

    #[test]
    fn midpoint_minmax() {
        assert_eq!(q(0, 1).midpoint(&q(1, 1)), q(1, 2));
        assert_eq!(q(1, 3).min(q(1, 2)), q(1, 3));
        assert_eq!(q(1, 3).max(q(1, 2)), q(1, 2));
    }
}
