//! Exact arbitrary-precision arithmetic for the constraint-agg workspace.
//!
//! Constraint query languages (Benedikt & Libkin, PODS 1999) require *exact*
//! computation: quantifier elimination over `⟨ℝ,+,-,0,1,<⟩` and
//! `⟨ℝ,+,*,0,1,<⟩`, vertex enumeration of polytopes, and the Theorem-3
//! volume algorithm all break under floating-point rounding. This crate
//! provides:
//!
//! * [`Int`] — a signed arbitrary-precision integer (magnitude = base-2³²
//!   limbs, little-endian).
//! * [`Rat`] — an always-normalized rational number (reduced fraction with
//!   positive denominator).
//!
//! Both types implement the full complement of arithmetic operators,
//! ordering, hashing, parsing and display. All operations are total except
//! division by zero, which panics (mirroring primitive integer semantics).
//!
//! The crate is dependency-free by design: the `num-*` crates are outside
//! the allowed offline set for this reproduction (see DESIGN.md), and exact
//! arithmetic is itself one of the substrates the paper presupposes.

#![forbid(unsafe_code)]

mod int;
mod rat;

pub use int::{Int, ParseIntError};
pub use rat::Rat;

/// Convenience constructor: the rational `n / d`. Panics if `d == 0`.
pub fn rat(n: i64, d: i64) -> Rat {
    Rat::new(Int::from(n), Int::from(d))
}

/// Convenience constructor: the integer rational `n`.
pub fn rint(n: i64) -> Rat {
    Rat::from_int(Int::from(n))
}
