//! Signed arbitrary-precision integers.
//!
//! Representation: a sign in `{-1, 0, +1}` plus a little-endian vector of
//! base-2³² limbs with no trailing zero limbs. The zero value is
//! `sign == 0, mag == []`, and that representation is unique, so derived
//! structural equality would be correct; we nevertheless implement `Eq` via
//! `Ord` for clarity.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

const BASE_BITS: u32 = 32;

/// A signed arbitrary-precision integer.
#[derive(Clone, Debug, Default)]
pub struct Int {
    /// `-1`, `0` or `+1`. Zero iff `mag` is empty.
    sign: i8,
    /// Little-endian base-2³² magnitude, normalized (no trailing zeros).
    mag: Vec<u32>,
}

// ---------------------------------------------------------------------------
// magnitude (unsigned) helpers
// ---------------------------------------------------------------------------

fn mag_trim(mag: &mut Vec<u32>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn mag_cmp(a: &[u32], b: &[u32]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: u64 = 0;
    for (i, &limb) in long.iter().enumerate() {
        let s = u64::from(limb) + u64::from(*short.get(i).unwrap_or(&0)) + carry;
        out.push(s as u32);
        carry = s >> BASE_BITS;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

/// Requires `a >= b`. Computes `a - b`.
fn mag_sub(a: &[u32], b: &[u32]) -> Vec<u32> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow: i64 = 0;
    for (i, &limb) in a.iter().enumerate() {
        let d = i64::from(limb) - i64::from(*b.get(i).unwrap_or(&0)) - borrow;
        if d < 0 {
            out.push((d + (1i64 << BASE_BITS)) as u32);
            borrow = 1;
        } else {
            out.push(d as u32);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0);
    mag_trim(&mut out);
    out
}

fn mag_mul(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: u64 = 0;
        let ai = u64::from(ai);
        for (j, &bj) in b.iter().enumerate() {
            let t = ai * u64::from(bj) + u64::from(out[i + j]) + carry;
            out[i + j] = t as u32;
            carry = t >> BASE_BITS;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = u64::from(out[k]) + carry;
            out[k] = t as u32;
            carry = t >> BASE_BITS;
            k += 1;
        }
    }
    mag_trim(&mut out);
    out
}

/// Short division: divide magnitude by a single limb. Returns (quotient, remainder).
fn mag_div_limb(a: &[u32], d: u32) -> (Vec<u32>, u32) {
    debug_assert!(d != 0);
    let d64 = u64::from(d);
    let mut out = vec![0u32; a.len()];
    let mut rem: u64 = 0;
    for i in (0..a.len()).rev() {
        let cur = (rem << BASE_BITS) | u64::from(a[i]);
        out[i] = (cur / d64) as u32;
        rem = cur % d64;
    }
    mag_trim(&mut out);
    (out, rem as u32)
}

/// Shift a magnitude left by `s < 32` bits.
fn mag_shl_small(a: &[u32], s: u32) -> Vec<u32> {
    if s == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry: u32 = 0;
    for &w in a {
        out.push((w << s) | carry);
        carry = w >> (BASE_BITS - s);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Shift a magnitude right by `s < 32` bits.
fn mag_shr_small(a: &[u32], s: u32) -> Vec<u32> {
    if s == 0 {
        return a.to_vec();
    }
    let mut out = vec![0u32; a.len()];
    let mut carry: u32 = 0;
    for i in (0..a.len()).rev() {
        out[i] = (a[i] >> s) | carry;
        carry = a[i] << (BASE_BITS - s);
    }
    mag_trim(&mut out);
    out
}

/// Knuth algorithm D. Requires `b.len() >= 2` and `a >= b`.
/// Returns (quotient, remainder) magnitudes.
fn mag_div_rem_knuth(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let n = b.len();
    let m = a.len() - n;
    // Normalize so that the top limb of v has its high bit set.
    let s = b[n - 1].leading_zeros();
    let v = mag_shl_small(b, s);
    let mut u = mag_shl_small(a, s);
    u.resize(a.len() + 1, 0); // ensure an extra high limb

    let mut q = vec![0u32; m + 1];
    let vtop = u64::from(v[n - 1]);
    let vsecond = u64::from(v[n - 2]);

    for j in (0..=m).rev() {
        // Estimate qhat from the top two limbs of the current remainder.
        let num = (u64::from(u[j + n]) << BASE_BITS) | u64::from(u[j + n - 1]);
        let mut qhat = num / vtop;
        let mut rhat = num % vtop;
        // Correct qhat down (at most twice).
        while qhat >= (1u64 << BASE_BITS)
            || qhat * vsecond > ((rhat << BASE_BITS) | u64::from(u[j + n - 2]))
        {
            qhat -= 1;
            rhat += vtop;
            if rhat >= (1u64 << BASE_BITS) {
                break;
            }
        }
        // Multiply and subtract: u[j..j+n+1] -= qhat * v.
        let mut borrow: i64 = 0;
        let mut carry: u64 = 0;
        for i in 0..n {
            let p = qhat * u64::from(v[i]) + carry;
            carry = p >> BASE_BITS;
            let sub = i64::from(u[j + i]) - i64::from(p as u32) - borrow;
            if sub < 0 {
                u[j + i] = (sub + (1i64 << BASE_BITS)) as u32;
                borrow = 1;
            } else {
                u[j + i] = sub as u32;
                borrow = 0;
            }
        }
        let sub = i64::from(u[j + n]) - i64::from(carry as u32) - borrow;
        let went_negative = sub < 0;
        u[j + n] = if went_negative {
            (sub + (1i64 << BASE_BITS)) as u32
        } else {
            sub as u32
        };

        if went_negative {
            // qhat was one too large: add v back.
            qhat -= 1;
            let mut carry: u64 = 0;
            for i in 0..n {
                let t = u64::from(u[j + i]) + u64::from(v[i]) + carry;
                u[j + i] = t as u32;
                carry = t >> BASE_BITS;
            }
            u[j + n] = u[j + n].wrapping_add(carry as u32);
        }
        q[j] = qhat as u32;
    }
    mag_trim(&mut q);
    let mut rem = u[..n].to_vec();
    mag_trim(&mut rem);
    (q, mag_shr_small(&rem, s))
}

/// Unsigned division with remainder.
fn mag_div_rem(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
    assert!(!b.is_empty(), "division by zero");
    match mag_cmp(a, b) {
        Ordering::Less => (Vec::new(), a.to_vec()),
        Ordering::Equal => (vec![1], Vec::new()),
        Ordering::Greater => {
            if b.len() == 1 {
                let (q, r) = mag_div_limb(a, b[0]);
                (q, if r == 0 { Vec::new() } else { vec![r] })
            } else {
                mag_div_rem_knuth(a, b)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Int
// ---------------------------------------------------------------------------

impl Int {
    /// The integer zero.
    pub fn zero() -> Int {
        Int {
            sign: 0,
            mag: Vec::new(),
        }
    }

    /// The integer one.
    pub fn one() -> Int {
        Int {
            sign: 1,
            mag: vec![1],
        }
    }

    fn from_sign_mag(sign: i8, mut mag: Vec<u32>) -> Int {
        mag_trim(&mut mag);
        if mag.is_empty() {
            Int::zero()
        } else {
            Int { sign, mag }
        }
    }

    /// `true` iff this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// `true` iff this integer is one.
    pub fn is_one(&self) -> bool {
        self.sign == 1 && self.mag == [1]
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// `true` iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// The sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        i32::from(self.sign)
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        Int {
            sign: self.sign.abs(),
            mag: self.mag.clone(),
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> u64 {
        match self.mag.last() {
            None => 0,
            Some(&top) => {
                (self.mag.len() as u64) * u64::from(BASE_BITS) - u64::from(top.leading_zeros())
            }
        }
    }

    /// `true` iff the integer is even.
    pub fn is_even(&self) -> bool {
        self.mag.first().is_none_or(|w| w % 2 == 0)
    }

    /// Truncated division with remainder: `self = q*other + r`, `|r| < |other|`,
    /// `r` has the sign of `self` (like Rust's `/` and `%` on primitives).
    pub fn div_rem(&self, other: &Int) -> (Int, Int) {
        assert!(!other.is_zero(), "Int division by zero");
        if self.is_zero() {
            return (Int::zero(), Int::zero());
        }
        let (qm, rm) = mag_div_rem(&self.mag, &other.mag);
        let q = Int::from_sign_mag(self.sign * other.sign, qm);
        let r = Int::from_sign_mag(self.sign, rm);
        (q, r)
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &Int) -> Int {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple (non-negative). `lcm(0, x) == 0`.
    pub fn lcm(&self, other: &Int) -> Int {
        if self.is_zero() || other.is_zero() {
            return Int::zero();
        }
        let g = self.gcd(other);
        (self.abs() / &g) * other.abs()
    }

    /// `self` raised to the power `exp`.
    pub fn pow(&self, mut exp: u32) -> Int {
        let mut base = self.clone();
        let mut acc = Int::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Multiply by a power of two (left shift).
    pub fn shl(&self, bits: u32) -> Int {
        if self.is_zero() {
            return Int::zero();
        }
        let limb_shift = (bits / BASE_BITS) as usize;
        let small = bits % BASE_BITS;
        let mut mag = vec![0u32; limb_shift];
        mag.extend(mag_shl_small(&self.mag, small));
        Int::from_sign_mag(self.sign, mag)
    }

    /// Approximate conversion to `f64` (may overflow to ±inf).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &w in self.mag.iter().rev() {
            acc = acc * 4294967296.0 + f64::from(w);
        }
        if self.sign < 0 {
            -acc
        } else {
            acc
        }
    }

    /// Exact conversion to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => Some(i64::from(self.sign) * i64::from(self.mag[0])),
            2 => {
                let v = (u64::from(self.mag[1]) << BASE_BITS) | u64::from(self.mag[0]);
                if self.sign > 0 && v <= i64::MAX as u64 {
                    Some(v as i64)
                } else if self.sign < 0 && v <= (i64::MAX as u64) + 1 {
                    Some(-(v as i128) as i64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Int {
        if v == 0 {
            return Int::zero();
        }
        let sign: i8 = if v < 0 { -1 } else { 1 };
        let mag64 = v.unsigned_abs();
        let mut mag = vec![mag64 as u32];
        if mag64 >> BASE_BITS != 0 {
            mag.push((mag64 >> BASE_BITS) as u32);
        }
        Int::from_sign_mag(sign, mag)
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Int {
        Int::from(i64::from(v))
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Int {
        if v == 0 {
            return Int::zero();
        }
        let mut mag = vec![v as u32];
        if v >> BASE_BITS != 0 {
            mag.push((v >> BASE_BITS) as u32);
        }
        Int::from_sign_mag(1, mag)
    }
}

impl From<usize> for Int {
    fn from(v: usize) -> Int {
        Int::from(v as u64)
    }
}

impl PartialEq for Int {
    fn eq(&self, other: &Int) -> bool {
        self.sign == other.sign && self.mag == other.mag
    }
}
impl Eq for Int {}

impl Hash for Int {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.sign.hash(state);
        self.mag.hash(state);
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Int) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Int) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            ord => return ord,
        }
        let m = mag_cmp(&self.mag, &other.mag);
        if self.sign < 0 {
            m.reverse()
        } else {
            m
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int {
            sign: -self.sign,
            mag: self.mag,
        }
    }
}
impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int {
            sign: -self.sign,
            mag: self.mag.clone(),
        }
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, other: &Int) -> Int {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        if self.sign == other.sign {
            Int::from_sign_mag(self.sign, mag_add(&self.mag, &other.mag))
        } else {
            match mag_cmp(&self.mag, &other.mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int::from_sign_mag(self.sign, mag_sub(&self.mag, &other.mag)),
                Ordering::Less => Int::from_sign_mag(other.sign, mag_sub(&other.mag, &self.mag)),
            }
        }
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, other: &Int) -> Int {
        self + &(-other)
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, other: &Int) -> Int {
        Int::from_sign_mag(self.sign * other.sign, mag_mul(&self.mag, &other.mag))
    }
}

impl Div for &Int {
    type Output = Int;
    fn div(self, other: &Int) -> Int {
        self.div_rem(other).0
    }
}

impl Rem for &Int {
    type Output = Int;
    fn rem(self, other: &Int) -> Int {
        self.div_rem(other).1
    }
}

macro_rules! forward_binop {
    ($tr:ident, $m:ident) => {
        impl $tr for Int {
            type Output = Int;
            fn $m(self, other: Int) -> Int {
                (&self).$m(&other)
            }
        }
        impl $tr<&Int> for Int {
            type Output = Int;
            fn $m(self, other: &Int) -> Int {
                (&self).$m(other)
            }
        }
        impl $tr<Int> for &Int {
            type Output = Int;
            fn $m(self, other: Int) -> Int {
                self.$m(&other)
            }
        }
    };
}
forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, other: &Int) {
        *self = &*self + other;
    }
}
impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, other: &Int) {
        *self = &*self - other;
    }
}
impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, other: &Int) {
        *self = &*self * other;
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated short division by 10^9.
        let mut mag = self.mag.clone();
        let mut chunks: Vec<u32> = Vec::new();
        while !mag.is_empty() {
            let (q, r) = mag_div_limb(&mag, 1_000_000_000);
            chunks.push(r);
            mag = q;
        }
        let mut s = String::new();
        if self.sign < 0 {
            s.push('-');
        }
        s.push_str(&chunks.last().unwrap().to_string());
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:09}"));
        }
        f.write_str(&s)
    }
}

/// Error returned when parsing an [`Int`] or [`Rat`](crate::Rat) fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntError(pub String);

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.0)
    }
}
impl std::error::Error for ParseIntError {}

impl FromStr for Int {
    type Err = ParseIntError;
    fn from_str(s: &str) -> Result<Int, ParseIntError> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (-1i8, rest),
            None => (1i8, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseIntError(s.to_string()));
        }
        let mut acc = Int::zero();
        let ten9 = Int::from(1_000_000_000i64);
        for chunk in digits.as_bytes().chunks(9) {
            // chunks are left-to-right; scale accumulated value by 10^len.
            let val: u64 = std::str::from_utf8(chunk).unwrap().parse().unwrap();
            let scale = if chunk.len() == 9 {
                ten9.clone()
            } else {
                Int::from(10u64.pow(chunk.len() as u32))
            };
            acc = acc * scale + Int::from(val);
        }
        if sign < 0 {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!(i(2) + i(3), i(5));
        assert_eq!(i(-2) + i(3), i(1));
        assert_eq!(i(2) - i(3), i(-1));
        assert_eq!(i(-4) * i(-5), i(20));
        assert_eq!(i(7) / i(2), i(3));
        assert_eq!(i(7) % i(2), i(1));
        assert_eq!(i(-7) / i(2), i(-3));
        assert_eq!(i(-7) % i(2), i(-1));
        assert_eq!(i(7) / i(-2), i(-3));
    }

    #[test]
    fn zero_identities() {
        assert!(Int::zero().is_zero());
        assert_eq!(i(5) + Int::zero(), i(5));
        assert_eq!(i(5) * Int::zero(), Int::zero());
        assert_eq!(-Int::zero(), Int::zero());
        assert_eq!(i(5) - i(5), Int::zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = i(1) / Int::zero();
    }

    #[test]
    fn large_multiplication() {
        // (2^64)^2 = 2^128
        let big = Int::one().shl(64);
        let sq = &big * &big;
        assert_eq!(sq, Int::one().shl(128));
        assert_eq!(sq.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn knuth_division_roundtrip() {
        let a: Int = "123456789012345678901234567890123456789".parse().unwrap();
        let b: Int = "98765432109876543210".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r.abs() < b.abs());
    }

    #[test]
    fn division_add_back_case() {
        // Crafted to exercise the rare add-back branch: divisor with high bit
        // pattern 0x80000000_00000001-like structure.
        let a = Int::one().shl(96) - Int::one();
        let b = Int::one().shl(64) + Int::one();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r < b);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
            "-987654321098765432109876543210",
        ] {
            let v: Int = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Int>().is_err());
        assert!("12a".parse::<Int>().is_err());
        assert!("-".parse::<Int>().is_err());
        assert!("1.5".parse::<Int>().is_err());
    }

    #[test]
    fn ordering() {
        assert!(i(-10) < i(-2));
        assert!(i(-2) < Int::zero());
        assert!(Int::zero() < i(3));
        assert!(i(3) < Int::one().shl(40));
        assert!(-Int::one().shl(40) < i(3));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(i(12).gcd(&i(18)), i(6));
        assert_eq!(i(-12).gcd(&i(18)), i(6));
        assert_eq!(i(0).gcd(&i(5)), i(5));
        assert_eq!(i(7).gcd(&i(0)), i(7));
        assert_eq!(i(4).lcm(&i(6)), i(12));
        assert_eq!(i(0).lcm(&i(6)), Int::zero());
    }

    #[test]
    fn pow() {
        assert_eq!(i(3).pow(0), Int::one());
        assert_eq!(i(3).pow(4), i(81));
        assert_eq!(i(-2).pow(3), i(-8));
        assert_eq!(i(2).pow(100).to_string(), "1267650600228229401496703205376");
    }

    #[test]
    fn to_f64_and_i64() {
        assert_eq!(i(42).to_f64(), 42.0);
        assert_eq!(i(-42).to_f64(), -42.0);
        assert_eq!(Int::one().shl(53).to_f64(), 9007199254740992.0);
        assert_eq!(i(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(i(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(Int::one().shl(64).to_i64(), None);
    }

    #[test]
    fn bits() {
        assert_eq!(Int::zero().bits(), 0);
        assert_eq!(Int::one().bits(), 1);
        assert_eq!(i(255).bits(), 8);
        assert_eq!(i(256).bits(), 9);
        assert_eq!(Int::one().shl(100).bits(), 101);
    }
}
