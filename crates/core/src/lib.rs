//! The constraint database model of Benedikt & Libkin (PODS 1999), §2.
//!
//! A *finitely representable* (f.r.) instance interprets each schema symbol
//! as the solution set of a quantifier-free formula over a real constraint
//! signature — a semi-linear set for FO+LIN, a semi-algebraic set for
//! FO+POLY. A *finite* instance interprets symbols as finite relations.
//! Queries are first-order formulas over the schema and the signature;
//! evaluating a query means substituting each relation atom by its
//! definition and **eliminating the quantifiers**, which yields the output
//! again as a quantifier-free constraint formula — the closure property
//! that makes the model a database model at all.
//!
//! This crate provides:
//!
//! * [`Database`] — named relations (f.r. or finite) over a shared
//!   variable map, with [`Database::eval`] implementing closed query
//!   evaluation (substitution + QE) and active-domain quantifier expansion.
//! * [`decompose_1d`] — the canonical interval decomposition of a
//!   one-dimensional definable set: the finite union of points and open
//!   intervals that o-minimality guarantees. Its endpoints are exactly what
//!   the `END` operator of FO+POLY+SUM returns (see `cqa-agg`).
//! * [`enumerate_finite`] — SAF (semi-algebraic-to-finite) safety:
//!   decides whether a query output is finite and enumerates it.

#![forbid(unsafe_code)]

mod db;
mod onedim;
mod safety;
mod syntactic;

/// Cooperative evaluation budgets (re-exported from `cqa_logic::budget`,
/// where the type lives so the QE layer below this crate can use it too).
pub mod budget {
    pub use cqa_logic::budget::{BudgetExceeded, BudgetResource, EvalBudget, CLOCK_PERIOD};
}

pub use db::{Database, DbError, Relation};
pub use onedim::{decompose_1d, Endpoint, Interval1D};
pub use safety::{
    enumerate_finite, enumerate_finite_with_budget, is_finite_set, is_finite_set_with_budget,
    SafetyError,
};
pub use syntactic::{is_syntactically_deterministic, is_syntactically_finite};
