//! Constraint databases: schemas, instances and closed query evaluation.

use cqa_arith::Rat;
use cqa_logic::{parse_formula_with, Formula, VarMap};
use cqa_poly::{MPoly, Var};
use cqa_qe::QeError;
use std::collections::BTreeMap;

/// Errors from database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Unknown relation name in a query.
    UnknownRelation(String),
    /// A relation atom's argument count disagrees with the schema arity.
    ArityMismatch {
        /// Relation name.
        name: String,
        /// Declared arity.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// A finitely representable definition must be quantifier-free and
    /// relation-free.
    BadDefinition(String),
    /// Quantifier elimination failed during evaluation.
    Qe(QeError),
    /// A formula failed to parse.
    Parse(String),
    /// Active-domain quantification needs at least one finite relation.
    NoActiveDomain,
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::UnknownRelation(n) => write!(f, "unknown relation {n}"),
            DbError::ArityMismatch {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "relation {name} has arity {expected}, got {got} arguments"
                )
            }
            DbError::DuplicateRelation(n) => write!(f, "relation {n} already defined"),
            DbError::BadDefinition(n) => {
                write!(
                    f,
                    "definition of {n} must be quantifier-free and relation-free"
                )
            }
            DbError::Qe(e) => write!(f, "quantifier elimination failed: {e}"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::NoActiveDomain => {
                write!(
                    f,
                    "active-domain quantifier over a database with no finite relation"
                )
            }
        }
    }
}
impl std::error::Error for DbError {}

impl From<QeError> for DbError {
    fn from(e: QeError) -> DbError {
        DbError::Qe(e)
    }
}

/// A relation: either finitely representable (a quantifier-free constraint
/// formula over ordered parameter variables) or a finite set of tuples.
#[derive(Clone, Debug)]
pub enum Relation {
    /// `{ x⃗ : φ(x⃗) }` with the parameter order fixed by `params`.
    FinitelyRepresentable {
        /// Parameter variables, in argument order.
        params: Vec<Var>,
        /// Quantifier-free, relation-free defining formula.
        formula: Formula,
    },
    /// An explicit finite relation.
    Finite(Vec<Vec<Rat>>),
}

impl Relation {
    /// The arity.
    pub fn arity(&self) -> usize {
        match self {
            Relation::FinitelyRepresentable { params, .. } => params.len(),
            Relation::Finite(tuples) => tuples.first().map_or(0, Vec::len),
        }
    }

    /// Membership of a rational point.
    pub fn contains(&self, point: &[Rat]) -> bool {
        match self {
            Relation::FinitelyRepresentable { params, formula } => {
                let mut f = formula.clone();
                for (v, x) in params.iter().zip(point) {
                    f = f.subst_rat(*v, x);
                }
                f.eval(&|_| Rat::zero(), &[]).unwrap_or(false)
            }
            Relation::Finite(tuples) => tuples.iter().any(|t| t == point),
        }
    }

    /// The defining formula over the given argument terms.
    fn instantiate(&self, args: &[MPoly], fresh_base: &mut u32) -> Formula {
        match self {
            Relation::FinitelyRepresentable { params, formula } => {
                // Rename the definition's variables apart, then substitute
                // the argument terms for the parameters.
                let mut f = formula.clone();
                let mut renamed_params = Vec::with_capacity(params.len());
                for v in formula.all_vars() {
                    let w = Var(*fresh_base);
                    *fresh_base += 1;
                    f = f.subst_poly(v, &MPoly::var(w));
                    if let Some(pos) = params.iter().position(|&p| p == v) {
                        renamed_params.push((pos, w));
                    }
                }
                // Parameters that do not occur in the formula impose no
                // constraint and need no substitution.
                for (pos, w) in renamed_params {
                    f = f.subst_poly(w, &args[pos]);
                }
                f
            }
            Relation::Finite(tuples) => {
                let mut out = Formula::False;
                for t in tuples {
                    let mut conj = Formula::True;
                    for (arg, val) in args.iter().zip(t) {
                        conj = conj.and(Formula::eq(arg.clone(), MPoly::constant(val.clone())));
                    }
                    out = out.or(conj);
                }
                out
            }
        }
    }
}

/// A constraint database: a shared variable map plus named relations.
#[derive(Clone, Debug, Default)]
pub struct Database {
    vars: VarMap,
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The variable map shared by all definitions and queries on this
    /// database.
    pub fn vars(&self) -> &VarMap {
        &self.vars
    }

    /// Mutable access to the variable map (for composing formulas
    /// programmatically).
    pub fn vars_mut(&mut self) -> &mut VarMap {
        &mut self.vars
    }

    /// Looks up a relation.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Names of all relations.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Defines a finitely representable relation from a source string; the
    /// parameter order is given by `params` (interned into the shared
    /// variable map).
    ///
    /// ```
    /// # use cqa_core::Database;
    /// let mut db = Database::new();
    /// db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1").unwrap();
    /// assert_eq!(db.relation("T").unwrap().arity(), 2);
    /// ```
    pub fn define(&mut self, name: &str, params: &[&str], src: &str) -> Result<(), DbError> {
        let vs: Vec<Var> = params.iter().map(|p| self.vars.intern(p)).collect();
        let f =
            parse_formula_with(src, &mut self.vars).map_err(|e| DbError::Parse(e.to_string()))?;
        self.add_fr_relation(name, vs, f)
    }

    /// Defines a finitely representable relation from an already-built
    /// formula.
    pub fn add_fr_relation(
        &mut self,
        name: &str,
        params: Vec<Var>,
        formula: Formula,
    ) -> Result<(), DbError> {
        if self.relations.contains_key(name) {
            return Err(DbError::DuplicateRelation(name.to_string()));
        }
        if !formula.is_quantifier_free() || !formula.is_relation_free() {
            return Err(DbError::BadDefinition(name.to_string()));
        }
        if let Some(extra) = formula.free_vars().iter().find(|v| !params.contains(v)) {
            let _ = extra;
            return Err(DbError::BadDefinition(name.to_string()));
        }
        self.relations.insert(
            name.to_string(),
            Relation::FinitelyRepresentable { params, formula },
        );
        Ok(())
    }

    /// Adds a finite relation.
    pub fn add_finite_relation(
        &mut self,
        name: &str,
        tuples: Vec<Vec<Rat>>,
    ) -> Result<(), DbError> {
        if self.relations.contains_key(name) {
            return Err(DbError::DuplicateRelation(name.to_string()));
        }
        let arity = tuples.first().map_or(0, Vec::len);
        if tuples.iter().any(|t| t.len() != arity) {
            return Err(DbError::BadDefinition(name.to_string()));
        }
        self.relations
            .insert(name.to_string(), Relation::Finite(tuples));
        Ok(())
    }

    /// The active domain: every rational occurring in a finite relation.
    pub fn adom(&self) -> Vec<Rat> {
        let mut out: Vec<Rat> = Vec::new();
        for rel in self.relations.values() {
            if let Relation::Finite(tuples) = rel {
                for t in tuples {
                    for x in t {
                        if !out.contains(x) {
                            out.push(x.clone());
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Substitutes every relation atom in `q` by its definition, expanding
    /// active-domain quantifiers over [`Database::adom`]. The result is a
    /// pure constraint formula (possibly with natural quantifiers).
    pub fn expand(&self, q: &Formula) -> Result<Formula, DbError> {
        let mut fresh = q
            .all_vars()
            .iter()
            .map(|v| v.0 + 1)
            .max()
            .unwrap_or(0)
            .max(self.vars.len() as u32);
        for rel in self.relations.values() {
            if let Relation::FinitelyRepresentable { formula, .. } = rel {
                fresh = fresh.max(
                    formula
                        .all_vars()
                        .iter()
                        .map(|v| v.0 + 1)
                        .max()
                        .unwrap_or(0),
                );
            }
        }
        self.expand_rec(q, &mut fresh)
    }

    fn expand_rec(&self, q: &Formula, fresh: &mut u32) -> Result<Formula, DbError> {
        Ok(match q {
            Formula::True | Formula::False | Formula::Atom(_) => q.clone(),
            Formula::Rel { name, args } => {
                let rel = self
                    .relations
                    .get(name)
                    .ok_or_else(|| DbError::UnknownRelation(name.clone()))?;
                if rel.arity() != args.len() {
                    return Err(DbError::ArityMismatch {
                        name: name.clone(),
                        expected: rel.arity(),
                        got: args.len(),
                    });
                }
                rel.instantiate(args, fresh)
            }
            Formula::Not(g) => self.expand_rec(g, fresh)?.negate(),
            Formula::And(gs) => {
                let mut out = Formula::True;
                for g in gs {
                    out = out.and(self.expand_rec(g, fresh)?);
                }
                out
            }
            Formula::Or(gs) => {
                let mut out = Formula::False;
                for g in gs {
                    out = out.or(self.expand_rec(g, fresh)?);
                }
                out
            }
            Formula::Exists(vs, g) => Formula::exists(vs.clone(), self.expand_rec(g, fresh)?),
            Formula::Forall(vs, g) => Formula::forall(vs.clone(), self.expand_rec(g, fresh)?),
            Formula::ExistsAdom(v, g) => {
                let body = self.expand_rec(g, fresh)?;
                let mut out = Formula::False;
                for a in self.adom() {
                    out = out.or(body.subst_rat(*v, &a));
                }
                out
            }
            Formula::ForallAdom(v, g) => {
                let body = self.expand_rec(g, fresh)?;
                let mut out = Formula::True;
                for a in self.adom() {
                    out = out.and(body.subst_rat(*v, &a));
                }
                out
            }
        })
    }

    /// Evaluates a query: substitutes relation definitions, eliminates all
    /// quantifiers, and returns the output as a new finitely representable
    /// relation over `free` (the output column order) — the closure
    /// property of constraint query languages, executed.
    pub fn eval(&self, q: &Formula, free: &[Var]) -> Result<Relation, DbError> {
        self.eval_with_budget(q, free, &cqa_logic::budget::EvalBudget::unlimited())
    }

    /// [`Database::eval`] under a cooperative [`cqa_logic::budget::EvalBudget`]:
    /// the QE phase aborts with `DbError::Qe(QeError::Budget(..))` when the
    /// budget is exhausted instead of running unboundedly.
    pub fn eval_with_budget(
        &self,
        q: &Formula,
        free: &[Var],
        budget: &cqa_logic::budget::EvalBudget,
    ) -> Result<Relation, DbError> {
        let expanded = self.expand(q)?;
        let qf = cqa_qe::eliminate_with_budget(&expanded, budget)?;
        Ok(Relation::FinitelyRepresentable {
            params: free.to_vec(),
            formula: cqa_qe::simplify(&qf),
        })
    }

    /// Parses and evaluates a query in one step; the free variables are the
    /// named parameters in order.
    pub fn query(&mut self, params: &[&str], src: &str) -> Result<Relation, DbError> {
        let vs: Vec<Var> = params.iter().map(|p| self.vars.intern(p)).collect();
        let q =
            parse_formula_with(src, &mut self.vars).map_err(|e| DbError::Parse(e.to_string()))?;
        self.eval(&q, &vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;

    #[test]
    fn define_and_membership() {
        let mut db = Database::new();
        db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
            .unwrap();
        let t = db.relation("T").unwrap();
        assert!(t.contains(&[rat(1, 4), rat(1, 4)]));
        assert!(!t.contains(&[rat(1, 1), rat(1, 1)]));
        assert_eq!(t.arity(), 2);
    }

    #[test]
    fn duplicate_and_bad_definitions() {
        let mut db = Database::new();
        db.define("T", &["x"], "x >= 0").unwrap();
        assert!(matches!(
            db.define("T", &["x"], "x < 0"),
            Err(DbError::DuplicateRelation(_))
        ));
        assert!(matches!(
            db.define("U", &["x"], "exists y. x < y"),
            Err(DbError::BadDefinition(_))
        ));
        // Free variable outside declared parameters.
        assert!(matches!(
            db.define("V", &["x"], "x < z"),
            Err(DbError::BadDefinition(_))
        ));
    }

    #[test]
    fn projection_query_is_closed() {
        let mut db = Database::new();
        db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
            .unwrap();
        // π_x(T): ∃y. T(x,y) — should come back as 0 ≤ x ≤ 1.
        let out = db.query(&["x"], "exists y. T(x, y)").unwrap();
        assert!(out.contains(&[rat(1, 2)]));
        assert!(out.contains(&[rat(0, 1)]));
        assert!(out.contains(&[rat(1, 1)]));
        assert!(!out.contains(&[rat(3, 2)]));
        assert!(!out.contains(&[rat(-1, 10)]));
        // And it is again a quantifier-free constraint relation.
        match out {
            Relation::FinitelyRepresentable { formula, .. } => {
                assert!(formula.is_quantifier_free());
                assert!(formula.is_relation_free());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_and_arguments_with_terms() {
        let mut db = Database::new();
        db.define("A", &["x"], "0 <= x & x <= 2").unwrap();
        db.define("B", &["x"], "1 <= x & x <= 3").unwrap();
        let out = db.query(&["x"], "A(x) & B(x)").unwrap();
        assert!(out.contains(&[rat(3, 2)]));
        assert!(!out.contains(&[rat(1, 2)]));
        // Terms as arguments: A(x + 2) holds iff -2 ≤ x ≤ 0.
        let shifted = db.query(&["x"], "A(x + 2)").unwrap();
        assert!(shifted.contains(&[rat(-1, 1)]));
        assert!(!shifted.contains(&[rat(1, 1)]));
    }

    #[test]
    fn arity_and_unknown_errors() {
        let mut db = Database::new();
        db.define("A", &["x"], "x = 0").unwrap();
        assert!(matches!(
            db.query(&["x"], "A(x, x)"),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.query(&["x"], "Z(x)"),
            Err(DbError::UnknownRelation(_))
        ));
    }

    #[test]
    fn finite_relations_and_adom() {
        let mut db = Database::new();
        db.add_finite_relation("U", vec![vec![rat(1, 2)], vec![rat(3, 4)]])
            .unwrap();
        assert_eq!(db.adom(), vec![rat(1, 2), rat(3, 4)]);
        let u = db.relation("U").unwrap();
        assert!(u.contains(&[rat(1, 2)]));
        assert!(!u.contains(&[rat(1, 4)]));
    }

    #[test]
    fn finite_relation_in_query() {
        let mut db = Database::new();
        db.add_finite_relation("U", vec![vec![rat(1, 4)], vec![rat(1, 2)]])
            .unwrap();
        // Points of U shifted by 1.
        let out = db.query(&["x"], "U(x - 1)").unwrap();
        assert!(out.contains(&[rat(5, 4)]));
        assert!(out.contains(&[rat(3, 2)]));
        assert!(!out.contains(&[rat(1, 4)]));
    }

    #[test]
    fn active_domain_quantifiers() {
        let mut db = Database::new();
        db.add_finite_relation("U", vec![vec![rat(1, 1)], vec![rat(3, 1)]])
            .unwrap();
        // ∃u ∈ adom: U(u) ∧ x < u — satisfied iff x < 3.
        let out = db.query(&["x"], "Eadom u. U(u) & x < u").unwrap();
        assert!(out.contains(&[rat(2, 1)]));
        assert!(!out.contains(&[rat(4, 1)]));
        // ∀u ∈ adom: x < u — iff x < 1.
        let all = db.query(&["x"], "Aadom u. x < u").unwrap();
        assert!(all.contains(&[rat(0, 1)]));
        assert!(!all.contains(&[rat(2, 1)]));
    }

    #[test]
    fn polynomial_database() {
        let mut db = Database::new();
        db.define("Disk", &["x", "y"], "x*x + y*y <= 1").unwrap();
        // Projection of the disk: -1 ≤ x ≤ 1 (via Cohen–Hörmander).
        let out = db.query(&["x"], "exists y. Disk(x, y)").unwrap();
        assert!(out.contains(&[rat(0, 1)]));
        assert!(out.contains(&[rat(1, 1)]));
        assert!(out.contains(&[rat(-1, 1)]));
        assert!(!out.contains(&[rat(2, 1)]));
    }

    #[test]
    fn self_join_with_renaming_is_capture_free() {
        let mut db = Database::new();
        // S(x) ≡ 0 ≤ x ≤ 1 defined with an internal variable named `x`.
        db.define("S", &["x"], "0 <= x & x <= 1").unwrap();
        // Query reusing the same variable names in a nested way.
        let out = db
            .query(&["x"], "S(x) & (exists x. S(x) & x > 0.5)")
            .unwrap();
        assert!(out.contains(&[rat(1, 4)]));
        assert!(!out.contains(&[rat(2, 1)]));
    }

    #[test]
    fn composed_queries_stay_closed() {
        let mut db = Database::new();
        db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
            .unwrap();
        let first = db.query(&["x"], "exists y. T(x, y)").unwrap();
        // Register the output as a new relation and query it again.
        let Relation::FinitelyRepresentable { params, formula } = first else {
            panic!()
        };
        db.add_fr_relation("P", params, formula).unwrap();
        let second = db.query(&["x"], "P(x) & x >= 0.5").unwrap();
        assert!(second.contains(&[rat(3, 4)]));
        assert!(!second.contains(&[rat(1, 4)]));
    }
}
