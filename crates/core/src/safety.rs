//! SAF safety: deciding finiteness of query outputs and enumerating them.
//!
//! FO+POLY+SUM (paper §5) only permits aggregation over sets that are
//! *guaranteed finite*. The range-restriction construct makes that a
//! syntactic guarantee, but the underlying semantic machinery — "is this
//! definable set finite, and what are its elements?" — is implemented
//! here by projecting onto each coordinate and using the one-dimensional
//! decomposition: a definable set over an o-minimal structure is finite
//! iff each of its projections is a finite union of points.

use crate::onedim::{decompose_1d, Interval1D};
use cqa_arith::Rat;
use cqa_logic::budget::{BudgetExceeded, EvalBudget};
use cqa_logic::Formula;
use cqa_poly::{RealAlg, Var};
use cqa_qe::QeError;

/// Errors from safety analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyError {
    /// Quantifier elimination failed (relations present, etc.).
    Qe(QeError),
    /// The set is infinite — aggregation over it is unsafe.
    Infinite,
    /// The set is finite but contains an irrational algebraic point, which
    /// cannot be enumerated as rational tuples. (The paper's Theorem 3 only
    /// ever sums over rational data — endpoints of semi-*linear* sets; for
    /// semi-algebraic sets use `decompose_1d` and `RealAlg` directly.)
    IrrationalPoint,
    /// The formula mentions a free variable outside the enumeration
    /// variables — its truth would depend on an assignment nobody supplied,
    /// so enumeration would silently answer for one arbitrary assignment.
    UnboundVariable(Var),
    /// The evaluation budget was exhausted; enumeration was cancelled
    /// cooperatively (see [`cqa_logic::budget`]).
    Budget(BudgetExceeded),
}

impl std::fmt::Display for SafetyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafetyError::Qe(e) => write!(f, "quantifier elimination failed: {e}"),
            SafetyError::Infinite => write!(f, "definable set is infinite"),
            SafetyError::IrrationalPoint => {
                write!(f, "finite set contains an irrational algebraic point")
            }
            SafetyError::UnboundVariable(v) => {
                write!(
                    f,
                    "formula has a free variable (index {}) outside the enumeration variables",
                    v.0
                )
            }
            SafetyError::Budget(b) => write!(f, "{b}"),
        }
    }
}
impl std::error::Error for SafetyError {}

impl From<QeError> for SafetyError {
    fn from(e: QeError) -> SafetyError {
        // Budget trips inside QE surface as the safety-level budget variant
        // so callers match on one place.
        match e {
            QeError::Budget(b) => SafetyError::Budget(b),
            other => SafetyError::Qe(other),
        }
    }
}

impl From<BudgetExceeded> for SafetyError {
    fn from(b: BudgetExceeded) -> SafetyError {
        SafetyError::Budget(b)
    }
}

/// Is `{x⃗ : φ(x⃗)}` finite? `φ` must be quantifier-free and
/// relation-free over the variables `vars`.
pub fn is_finite_set(f: &Formula, vars: &[Var]) -> Result<bool, SafetyError> {
    is_finite_set_with_budget(f, vars, &EvalBudget::unlimited())
}

/// [`is_finite_set`] under a cooperative [`EvalBudget`]: the per-coordinate
/// QE projections run budgeted and the check aborts with
/// [`SafetyError::Budget`] when exhausted.
pub fn is_finite_set_with_budget(
    f: &Formula,
    vars: &[Var],
    budget: &EvalBudget,
) -> Result<bool, SafetyError> {
    if vars.is_empty() {
        return Ok(true);
    }
    // Fast path: a single variable needs no projection at all — `f` is
    // already the one-dimensional set, so decompose it directly instead of
    // eliminating an empty quantifier block through full QE.
    if let [v] = vars {
        if f.is_quantifier_free() && f.is_relation_free() {
            let ivs = decompose_1d(f, *v).ok_or(SafetyError::Qe(QeError::HasRelations))?;
            return Ok(ivs.iter().all(Interval1D::is_point));
        }
    }
    // Finite iff the projection on each coordinate is a finite set of
    // points (o-minimality: otherwise some projection contains an
    // interval).
    for (i, &v) in vars.iter().enumerate() {
        budget.check()?;
        let others: Vec<Var> = vars
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &w)| w)
            .collect();
        let proj = cqa_qe::eliminate_with_budget(&Formula::exists(others, f.clone()), budget)?;
        let ivs = decompose_1d(&proj, v).ok_or(SafetyError::Qe(QeError::HasRelations))?;
        if ivs.iter().any(|iv| !iv.is_point()) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Enumerates a finite definable set as rational tuples (sorted). Errors if
/// the set is infinite or contains irrational points.
pub fn enumerate_finite(f: &Formula, vars: &[Var]) -> Result<Vec<Vec<Rat>>, SafetyError> {
    enumerate_finite_with_budget(f, vars, &EvalBudget::unlimited())
}

/// [`enumerate_finite`] under a cooperative [`EvalBudget`]: the budget is
/// checked once per enumerated point and inside every QE projection, so an
/// enumeration that would explode aborts with [`SafetyError::Budget`].
pub fn enumerate_finite_with_budget(
    f: &Formula,
    vars: &[Var],
    budget: &EvalBudget,
) -> Result<Vec<Vec<Rat>>, SafetyError> {
    if vars.is_empty() {
        // A leftover free variable means the recursion (or the caller)
        // never fixed it: evaluating with a default assignment would
        // silently answer for that one arbitrary point.
        if let Some(&v) = f.free_vars().iter().next() {
            return Err(SafetyError::UnboundVariable(v));
        }
        let truth = f
            .eval(&|_| Rat::zero(), &[])
            .ok_or(SafetyError::Qe(QeError::HasRelations))?;
        return Ok(if truth { vec![Vec::new()] } else { Vec::new() });
    }
    let v = vars[0];
    let rest = &vars[1..];
    let proj = cqa_qe::eliminate_with_budget(&Formula::exists(rest.to_vec(), f.clone()), budget)?;
    let ivs = decompose_1d(&proj, v).ok_or(SafetyError::Qe(QeError::HasRelations))?;
    let mut out = Vec::new();
    for iv in ivs {
        budget.check()?;
        let point = point_of(&iv)?;
        let fixed = f.subst_rat(v, &point);
        for mut tuple in enumerate_finite_with_budget(&fixed, rest, budget)? {
            tuple.insert(0, point.clone());
            out.push(tuple);
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn point_of(iv: &Interval1D) -> Result<Rat, SafetyError> {
    if !iv.is_point() {
        return Err(SafetyError::Infinite);
    }
    match &iv.lo {
        crate::onedim::Endpoint::Value(RealAlg::Rational(r), _) => Ok(r.clone()),
        crate::onedim::Endpoint::Value(_, _) => Err(SafetyError::IrrationalPoint),
        _ => unreachable!("point interval has finite endpoints"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::{parse_formula_with, VarMap};

    fn setup(src: &str, names: &[&str]) -> (Formula, Vec<Var>) {
        let mut vars = VarMap::new();
        let vs: Vec<Var> = names.iter().map(|n| vars.intern(n)).collect();
        let f = parse_formula_with(src, &mut vars).unwrap();
        (f, vs)
    }

    #[test]
    fn finite_detection_1d() {
        let (f, vs) = setup("x = 1 | x = 2", &["x"]);
        assert!(is_finite_set(&f, &vs).unwrap());
        let (g, vs) = setup("0 <= x & x <= 1", &["x"]);
        assert!(!is_finite_set(&g, &vs).unwrap());
        let (h, vs) = setup("false", &["x"]);
        assert!(is_finite_set(&h, &vs).unwrap());
    }

    #[test]
    fn finite_detection_2d() {
        let (f, vs) = setup("(x = 0 | x = 1) & y = x + 1", &["x", "y"]);
        assert!(is_finite_set(&f, &vs).unwrap());
        // A segment is infinite even though its projections onto y are... no,
        // its x-projection is an interval.
        let (g, vs) = setup("y = x & 0 <= x & x <= 1", &["x", "y"]);
        assert!(!is_finite_set(&g, &vs).unwrap());
    }

    #[test]
    fn enumerate_1d() {
        let (f, vs) = setup("x = 1 | x = 2 | x = 0.5", &["x"]);
        let tuples = enumerate_finite(&f, &vs).unwrap();
        assert_eq!(
            tuples,
            vec![vec![rat(1, 2)], vec![rat(1, 1)], vec![rat(2, 1)]]
        );
    }

    #[test]
    fn enumerate_2d_product() {
        let (f, vs) = setup("(x = 0 | x = 1) & (y = 0 | y = 2)", &["x", "y"]);
        let tuples = enumerate_finite(&f, &vs).unwrap();
        assert_eq!(tuples.len(), 4);
        assert!(tuples.contains(&vec![rat(1, 1), rat(2, 1)]));
    }

    #[test]
    fn enumerate_dependent() {
        let (f, vs) = setup("(x = 1 | x = 3) & y = 2*x", &["x", "y"]);
        let tuples = enumerate_finite(&f, &vs).unwrap();
        assert_eq!(
            tuples,
            vec![vec![rat(1, 1), rat(2, 1)], vec![rat(3, 1), rat(6, 1)]]
        );
    }

    #[test]
    fn infinite_errors() {
        let (f, vs) = setup("0 <= x & x <= 1", &["x"]);
        assert_eq!(enumerate_finite(&f, &vs), Err(SafetyError::Infinite));
    }

    #[test]
    fn irrational_point_reported() {
        let (f, vs) = setup("x*x = 2 & x > 0", &["x"]);
        assert!(is_finite_set(&f, &vs).unwrap());
        assert_eq!(enumerate_finite(&f, &vs), Err(SafetyError::IrrationalPoint));
    }

    #[test]
    fn polynomial_finite_sets() {
        let (f, vs) = setup("x*x = 4", &["x"]);
        let tuples = enumerate_finite(&f, &vs).unwrap();
        assert_eq!(tuples, vec![vec![rat(-2, 1)], vec![rat(2, 1)]]);
    }

    #[test]
    fn empty_sets() {
        let (f, vs) = setup("x = 1 & x = 2", &["x"]);
        assert!(enumerate_finite(&f, &vs).unwrap().is_empty());
    }
}
