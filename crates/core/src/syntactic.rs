//! Syntactic safety discipline: sound, QE-free under-approximations of the
//! semantic determinism and finiteness checks.
//!
//! The FO+POLY+SUM closure argument (paper §5, Theorem 3) rests on
//! *syntactic* guarantees — a summand γ must be deterministic, a range must
//! be finite — yet deciding those properties semantically costs a full
//! quantifier elimination per query ([`is_deterministic`-style sentences,
//! `crate::is_finite_set`]). This module recognizes the paper's
//! functional-graph shape `x = t(w⃗)` and its finite-union closure
//! directly on the AST:
//!
//! * [`is_syntactically_deterministic`] — γ(x, w⃗) contains a conjunct
//!   pinning `x` to a polynomial term over w⃗ alone, so at most one output
//!   exists per input. Sound: accepted ⇒ semantically deterministic.
//! * [`is_syntactically_finite`] — every variable is pinned, directly or
//!   triangularly through already-pinned variables, in every disjunct.
//!   Sound: accepted ⇒ the defined set is finite.
//!
//! Both are *under*-approximations: rejection means "not certifiable
//! syntactically", not "unsafe" — callers fall back to the semantic check.
//! Programs that pass skip the per-query QE entirely (the fast path wired
//! into `cqa-agg`'s `SumTerm::eval`), and `cqa-analyze` uses the same
//! functions to lint programs before any evaluation starts.

use cqa_logic::Formula;
use cqa_poly::{MPoly, Var};
use std::collections::BTreeSet;

/// Does `p = 0` pin `v` to a term over `allowed` variables only?
///
/// Requires `p` to be degree 1 in `v` with a *constant* (nonzero rational)
/// coefficient — then `p = 0` rewrites to `v = t` with
/// `vars(t) ⊆ allowed` — so the equation determines `v` everywhere, not
/// just where some leading coefficient is nonzero.
fn pins(p: &MPoly, v: Var, allowed: &BTreeSet<Var>) -> bool {
    if p.degree_in(v) != 1 {
        return false;
    }
    let coeffs = p.as_univariate_in(v);
    // coeffs = [c₀, c₁] with p = c₁·v + c₀.
    if coeffs.len() != 2 || coeffs[1].as_constant().is_none() {
        return false;
    }
    coeffs[0].vars().iter().all(|w| allowed.contains(w))
}

/// Is the conjunct `f` a *unique* pin of `v` over `allowed` — a single
/// equality atom rewriting to `v = t`? This is the determinism-grade test:
/// exactly one candidate value per assignment of `allowed`.
fn conjunct_pins_uniquely(f: &Formula, v: Var, allowed: &BTreeSet<Var>) -> bool {
    match f {
        Formula::Atom(a) if a.rel == cqa_logic::Rel::Eq => pins(&a.poly, v, allowed),
        _ => false,
    }
}

/// Is the conjunct `f` a *finite* pin of `v` over `allowed`? Accepts a
/// plain equality atom or a disjunction of equality atoms each pinning `v`
/// — finitely many candidate values still keep the set finite (but do NOT
/// keep a summand deterministic; see [`conjunct_pins_uniquely`]).
fn conjunct_pins(f: &Formula, v: Var, allowed: &BTreeSet<Var>) -> bool {
    match f {
        Formula::Atom(a) if a.rel == cqa_logic::Rel::Eq => pins(&a.poly, v, allowed),
        Formula::Or(gs) => !gs.is_empty() && gs.iter().all(|g| conjunct_pins(g, v, allowed)),
        _ => false,
    }
}

/// The conjuncts of `f` viewed as a conjunction (a non-`And` formula is a
/// single conjunct).
fn conjuncts(f: &Formula) -> &[Formula] {
    match f {
        Formula::And(gs) => gs,
        _ => std::slice::from_ref(f),
    }
}

/// Sound syntactic determinism: `true` only if γ(x, w⃗) provably defines a
/// partial function from `w⃗` to `x` — some conjunct of γ (after stripping
/// leading existential blocks) pins `x` to a polynomial term over `w⃗`
/// alone.
///
/// Accepted ⇒ `∀w⃗∀x∀x'. γ(x,w⃗) ∧ γ(x',w⃗) → x = x'` holds: the pinning
/// conjunct forces `x = t(w⃗)` in every model, and any further conjuncts
/// only shrink the graph. Unlike the semantic check this also certifies
/// summands that mention database relations (the extra atoms are
/// constraints, never sources of additional outputs).
///
/// Rejection is *not* a verdict — `x·x = w` is rejected here yet genuinely
/// non-deterministic, while `x = w ∧ R(w)` under a quantifier alternation
/// may be rejected yet fine; callers fall back to the QE-based check.
pub fn is_syntactically_deterministic(gamma: &Formula, out: Var, in_vars: &[Var]) -> bool {
    let allowed: BTreeSet<Var> = in_vars.iter().copied().collect();
    if allowed.contains(&out) {
        return false;
    }
    // Strip leading existential blocks: ∃z⃗.γ' is a function of w⃗ whenever
    // the pin inside γ' uses only w⃗ (not z⃗), which `allowed` enforces —
    // unless a block rebinds x or some wᵢ, making the inner occurrences
    // refer to the bound variable instead.
    let mut body = gamma;
    while let Formula::Exists(vs, inner) = body {
        if vs.iter().any(|v| *v == out || allowed.contains(v)) {
            return false;
        }
        body = inner;
    }
    conjuncts(body)
        .iter()
        .any(|c| conjunct_pins_uniquely(c, out, &allowed))
}

/// Sound syntactic finiteness: `true` only if `{x⃗ : f(x⃗)}` with
/// `x⃗ = vars` is provably finite — in every disjunct of `f`, every
/// variable of `vars` is pinned to a term over previously-pinned variables
/// (a triangular system), possibly through a disjunction of candidate
/// values.
///
/// `f` must be quantifier-free and relation-free over `vars` (the same
/// contract as [`crate::is_finite_set`]); anything else is rejected.
pub fn is_syntactically_finite(f: &Formula, vars: &[Var]) -> bool {
    if !f.is_quantifier_free() || !f.is_relation_free() {
        return false;
    }
    if f.free_vars().iter().any(|v| !vars.contains(v)) {
        return false;
    }
    finite_rec(f, vars)
}

fn finite_rec(f: &Formula, vars: &[Var]) -> bool {
    match f {
        Formula::False => true,
        Formula::True => vars.is_empty(),
        Formula::Or(gs) => gs.iter().all(|g| finite_rec(g, vars)),
        _ => {
            // A conjunction (or single atom): run the triangular-pin
            // fixpoint over the conjuncts.
            let cs = conjuncts(f);
            let mut pinned: BTreeSet<Var> = BTreeSet::new();
            loop {
                let next = vars.iter().copied().find(|&v| {
                    !pinned.contains(&v) && cs.iter().any(|c| conjunct_pins(c, v, &pinned))
                });
                match next {
                    Some(v) => {
                        pinned.insert(v);
                    }
                    None => break,
                }
            }
            vars.iter().all(|v| pinned.contains(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_logic::{parse_formula_with, VarMap};

    fn setup(src: &str, names: &[&str]) -> (Formula, Vec<Var>) {
        let mut vars = VarMap::new();
        let vs: Vec<Var> = names.iter().map(|n| vars.intern(n)).collect();
        let f = parse_formula_with(src, &mut vars).unwrap();
        (f, vs)
    }

    #[test]
    fn functional_graphs_are_deterministic() {
        let (f, vs) = setup("x = 2*w + 1", &["x", "w"]);
        assert!(is_syntactically_deterministic(&f, vs[0], &vs[1..]));
        // Extra conjuncts only shrink the graph.
        let (g, vs) = setup("x = w*w & w > 0", &["x", "w"]);
        assert!(is_syntactically_deterministic(&g, vs[0], &vs[1..]));
        // Relation atoms are fine too.
        let (h, vs) = setup("x = w & R(w)", &["x", "w"]);
        assert!(is_syntactically_deterministic(&h, vs[0], &vs[1..]));
        // Scaled output variable still pins (x = w/2).
        let (k, vs) = setup("2*x = w", &["x", "w"]);
        assert!(is_syntactically_deterministic(&k, vs[0], &vs[1..]));
    }

    #[test]
    fn non_functional_shapes_are_rejected() {
        // Two solutions per input.
        let (f, vs) = setup("x*x = w", &["x", "w"]);
        assert!(!is_syntactically_deterministic(&f, vs[0], &vs[1..]));
        // Coefficient of x is a variable: x undetermined where w2 = 0.
        let (g, vs) = setup("w2*x = w1", &["x", "w1", "w2"]);
        assert!(!is_syntactically_deterministic(&g, vs[0], &vs[1..]));
        // Disjunction offers two candidate outputs.
        let (h, vs) = setup("x = w | x = w + 1", &["x", "w"]);
        assert!(!is_syntactically_deterministic(&h, vs[0], &vs[1..]));
        // Pin through a quantified variable is not a function of w.
        let (k, vs) = setup("exists z. x = z & z > w", &["x", "w"]);
        assert!(!is_syntactically_deterministic(&k, vs[0], &vs[1..]));
    }

    #[test]
    fn exists_block_over_functional_body_accepted() {
        // ∃z. x = 2*w ∧ z > w: the pin ignores z.
        let (f, vs) = setup("exists z. x = 2*w & z > w", &["x", "w"]);
        assert!(is_syntactically_deterministic(&f, vs[0], &vs[1..]));
    }

    #[test]
    fn finite_shapes() {
        let (f, vs) = setup("x = 1 | x = 2", &["x"]);
        assert!(is_syntactically_finite(&f, &vs));
        let (g, vs) = setup("(x = 0 | x = 1) & y = x + 1", &["x", "y"]);
        assert!(is_syntactically_finite(&g, &vs));
        let (h, vs) = setup("false", &["x"]);
        assert!(is_syntactically_finite(&h, &vs));
        let (k, vs) = setup("x = 1 & y = 2 & x < y", &["x", "y"]);
        assert!(is_syntactically_finite(&k, &vs));
    }

    #[test]
    fn infinite_or_uncertifiable_shapes_rejected() {
        // A genuine interval.
        let (f, vs) = setup("0 <= x & x <= 1", &["x"]);
        assert!(!is_syntactically_finite(&f, &vs));
        // Finite but not syntactically recognizable (x² = 4).
        let (g, vs) = setup("x*x = 4", &["x"]);
        assert!(!is_syntactically_finite(&g, &vs));
        // y pinned, x free.
        let (h, vs) = setup("y = 1", &["x", "y"]);
        assert!(!is_syntactically_finite(&h, &vs));
        // Free variable outside vars.
        let (k, vs) = setup("x = z", &["x"]);
        assert!(!is_syntactically_finite(&k, &vs));
        // Circular pins x = y ∧ y = x do not triangularize.
        let (c, vs) = setup("x = y & y = x", &["x", "y"]);
        assert!(!is_syntactically_finite(&c, &vs));
    }

    #[test]
    fn triangular_chains() {
        let (f, vs) = setup("x = 3 & y = 2*x & z = x + y", &["x", "y", "z"]);
        assert!(is_syntactically_finite(&f, &vs));
        // Order of vars doesn't matter.
        let (g, vs) = setup("z = x + y & x = 3 & y = 2*x", &["z", "y", "x"]);
        assert!(is_syntactically_finite(&g, &vs));
    }
}
