//! Canonical decomposition of one-dimensional definable sets.
//!
//! Over an o-minimal structure (in particular `ℝ_lin` and the real field
//! `ℝ`), every definable subset of ℝ is a *finite union of points and open
//! intervals* — the fact the paper leans on to make the `END` operator
//! well-defined and FO+POLY+SUM safe (Lemma 4: "there is a uniform bound
//! on the number of intervals composing definable sets"). This module
//! computes that decomposition exactly for quantifier-free formulas with
//! one free variable; interval endpoints are real algebraic numbers.

use cqa_arith::Rat;
use cqa_logic::Formula;
use cqa_poly::{RealAlg, UPoly, Var};

/// An endpoint of a maximal interval.
#[derive(Clone, Debug, PartialEq)]
pub enum Endpoint {
    /// `-∞`.
    NegInf,
    /// A real algebraic value; `closed` says the interval includes it.
    Value(RealAlg, bool),
    /// `+∞`.
    PosInf,
}

/// A maximal interval of a 1-D definable set. Isolated points are
/// degenerate intervals with equal closed endpoints.
#[derive(Clone, Debug, PartialEq)]
pub struct Interval1D {
    /// Lower endpoint.
    pub lo: Endpoint,
    /// Upper endpoint.
    pub hi: Endpoint,
}

impl Interval1D {
    /// `true` iff the interval is a single point.
    pub fn is_point(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Endpoint::Value(a, true), Endpoint::Value(b, true)) => a == b,
            _ => false,
        }
    }

    /// `true` iff both endpoints are finite.
    pub fn is_bounded(&self) -> bool {
        matches!(&self.lo, Endpoint::Value(..)) && matches!(&self.hi, Endpoint::Value(..))
    }

    /// The finite endpoints of the interval (one entry for a point).
    pub fn finite_endpoints(&self) -> Vec<RealAlg> {
        let mut out = Vec::new();
        if let Endpoint::Value(a, _) = &self.lo {
            out.push(a.clone());
        }
        if let Endpoint::Value(b, _) = &self.hi {
            if !out.contains(b) {
                out.push(b.clone());
            }
        }
        out
    }

    /// The length of the interval (`None` if unbounded), approximated to
    /// within `eps` when endpoints are irrational, exact otherwise.
    pub fn length(&self, eps: &Rat) -> Option<Rat> {
        match (&self.lo, &self.hi) {
            (Endpoint::Value(a, _), Endpoint::Value(b, _)) => {
                Some(b.approximate(eps) - a.approximate(eps))
            }
            _ => None,
        }
    }
}

/// Decomposes the set `{x ∈ ℝ : φ(x)}` into its maximal intervals, in
/// increasing order. `φ` must be quantifier-free, relation-free, and have
/// at most the one free variable `v`.
///
/// Returns `None` if `φ` does not meet those requirements.
pub fn decompose_1d(f: &Formula, v: Var) -> Option<Vec<Interval1D>> {
    if !f.is_quantifier_free() || !f.is_relation_free() {
        return None;
    }
    // Collect the distinct atom polynomials as univariate polynomials.
    let mut polys: Vec<UPoly> = Vec::new();
    let mut ok = true;
    f.visit(&mut |g| {
        if let Formula::Atom(a) = g {
            match a.poly.to_upoly(v) {
                Some(p) => {
                    if !p.is_constant() && !polys.contains(&p) {
                        polys.push(p);
                    }
                }
                None => ok = false,
            }
        }
    });
    if !ok {
        return None;
    }

    // Critical points: all real roots of all atom polynomials.
    let mut critical: Vec<RealAlg> = Vec::new();
    for p in &polys {
        for r in RealAlg::roots_of(p) {
            if !critical.contains(&r) {
                critical.push(r);
            }
        }
    }
    critical.sort();

    // Truth of φ at an algebraic point: every atom evaluated by exact sign.
    let truth_at = |alpha: &RealAlg| -> bool { eval_at_alg(f, v, alpha) };
    // Truth on an open region given a rational sample inside it.
    let truth_sample = |x: &Rat| -> bool {
        f.eval(
            &|w| {
                debug_assert_eq!(w, v);
                x.clone()
            },
            &[],
        )
        .expect("quantifier-free evaluation")
    };

    // Region truth values: below, at and between critical points, above.
    let k = critical.len();
    let mut region_true: Vec<bool> = Vec::with_capacity(2 * k + 1);
    if k == 0 {
        region_true.push(truth_sample(&Rat::zero()));
    } else {
        region_true.push(truth_sample(&(critical[0].lower_bound() - Rat::one())));
        for i in 0..k {
            region_true.push(truth_at(&critical[i]));
            if i + 1 < k {
                let s = rational_between(&critical[i], &critical[i + 1]);
                region_true.push(truth_sample(&s));
            }
        }
        region_true.push(truth_sample(&(critical[k - 1].upper_bound() + Rat::one())));
    }

    // Stitch regions into maximal intervals. Region index 2i+1 is the point
    // critical[i]; even indices are the open intervals around them.
    let mut out = Vec::new();
    let mut current: Option<Interval1D> = None;
    let n_regions = region_true.len();
    for idx in 0..n_regions {
        let tv = region_true[idx];
        let is_point = idx % 2 == 1;
        if tv {
            if current.is_none() {
                let lo = if is_point {
                    Endpoint::Value(critical[idx / 2].clone(), true)
                } else if idx == 0 {
                    Endpoint::NegInf
                } else {
                    // Open region starting after an excluded point.
                    Endpoint::Value(critical[idx / 2 - 1].clone(), false)
                };
                current = Some(Interval1D {
                    lo,
                    hi: Endpoint::PosInf,
                });
            } // else: extending the current interval

            // If this truthful region is the last one, close at the proper end.
            if idx == n_regions - 1 {
                let mut iv = current.take().unwrap();
                iv.hi = if is_point {
                    Endpoint::Value(critical[idx / 2].clone(), true)
                } else {
                    Endpoint::PosInf
                };
                out.push(iv);
            }
        } else if let Some(mut iv) = current.take() {
            // Close the running interval just before this false region.
            iv.hi = if is_point {
                Endpoint::Value(critical[idx / 2].clone(), false)
            } else {
                // False open region after a true point: close at that point.
                Endpoint::Value(critical[idx / 2 - 1].clone(), true)
            };
            out.push(iv);
        }
    }
    Some(out)
}

/// Evaluates a quantifier-free formula at an algebraic point by exact sign
/// computation on every atom.
fn eval_at_alg(f: &Formula, v: Var, alpha: &RealAlg) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(a) => {
            let p = a.poly.to_upoly(v).expect("validated univariate");
            a.rel.sign_satisfies(alpha.sign_of(&p))
        }
        Formula::Not(g) => !eval_at_alg(g, v, alpha),
        Formula::And(fs) => fs.iter().all(|g| eval_at_alg(g, v, alpha)),
        Formula::Or(fs) => fs.iter().any(|g| eval_at_alg(g, v, alpha)),
        other => unreachable!("validated quantifier-free: {other:?}"),
    }
}

/// A rational strictly between two distinct algebraic numbers `a < b`.
fn rational_between(a: &RealAlg, b: &RealAlg) -> Rat {
    debug_assert!(a < b);
    let mut eps = Rat::new(1i64.into(), 4i64.into());
    loop {
        let ahi = refine_upper(a, &eps);
        let blo = refine_lower(b, &eps);
        if ahi < blo {
            return ahi.midpoint(&blo);
        }
        // Also handle touching rational bounds: a rational midpoint strictly
        // between requires a gap; keep refining.
        eps = eps * Rat::new(1i64.into(), 4i64.into());
    }
}

fn refine_upper(a: &RealAlg, eps: &Rat) -> Rat {
    match a {
        RealAlg::Rational(r) => r.clone(),
        _ => {
            let approx = a.approximate(eps);
            // upper bound: approx + eps is ≥ the value
            approx + eps
        }
    }
}

fn refine_lower(b: &RealAlg, eps: &Rat) -> Rat {
    match b {
        RealAlg::Rational(r) => r.clone(),
        _ => b.approximate(eps) - eps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::{parse_formula_with, VarMap};

    fn decomp(src: &str) -> Vec<Interval1D> {
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let f = parse_formula_with(src, &mut vars).unwrap();
        decompose_1d(&f, x).unwrap()
    }

    fn val(e: &Endpoint) -> Rat {
        match e {
            Endpoint::Value(a, _) => a.approximate(&rat(1, 1_000_000)),
            _ => panic!("expected finite endpoint"),
        }
    }

    #[test]
    fn closed_interval() {
        let ivs = decomp("0 <= x & x <= 1");
        assert_eq!(ivs.len(), 1);
        assert_eq!(val(&ivs[0].lo), rat(0, 1));
        assert_eq!(val(&ivs[0].hi), rat(1, 1));
        assert!(matches!(ivs[0].lo, Endpoint::Value(_, true)));
        assert!(matches!(ivs[0].hi, Endpoint::Value(_, true)));
    }

    #[test]
    fn open_interval_and_point() {
        // (0,1) ∪ {2}
        let ivs = decomp("(0 < x & x < 1) | x = 2");
        assert_eq!(ivs.len(), 2);
        assert!(matches!(ivs[0].lo, Endpoint::Value(_, false)));
        assert!(matches!(ivs[0].hi, Endpoint::Value(_, false)));
        assert!(ivs[1].is_point());
        assert_eq!(val(&ivs[1].lo), rat(2, 1));
    }

    #[test]
    fn punctured_interval() {
        // [0,1] minus the midpoint: two intervals sharing an excluded point.
        let ivs = decomp("0 <= x & x <= 1 & x != 0.5");
        assert_eq!(ivs.len(), 2);
        assert_eq!(val(&ivs[0].hi), rat(1, 2));
        assert!(matches!(ivs[0].hi, Endpoint::Value(_, false)));
        assert_eq!(val(&ivs[1].lo), rat(1, 2));
        assert!(matches!(ivs[1].lo, Endpoint::Value(_, false)));
    }

    #[test]
    fn unbounded_rays() {
        let ivs = decomp("x >= 3");
        assert_eq!(ivs.len(), 1);
        assert!(matches!(ivs[0].lo, Endpoint::Value(_, true)));
        assert!(matches!(ivs[0].hi, Endpoint::PosInf));
        let ivs = decomp("x < -1 | x > 1");
        assert_eq!(ivs.len(), 2);
        assert!(matches!(ivs[0].lo, Endpoint::NegInf));
        assert!(matches!(ivs[1].hi, Endpoint::PosInf));
    }

    #[test]
    fn whole_line_and_empty() {
        let ivs = decomp("true");
        assert_eq!(ivs.len(), 1);
        assert!(matches!(ivs[0].lo, Endpoint::NegInf));
        assert!(matches!(ivs[0].hi, Endpoint::PosInf));
        assert!(decomp("false").is_empty());
        assert!(decomp("x < 0 & x > 0").is_empty());
    }

    #[test]
    fn algebraic_endpoints() {
        // x² ≤ 2: [-√2, √2].
        let ivs = decomp("x*x <= 2");
        assert_eq!(ivs.len(), 1);
        let lo = val(&ivs[0].lo).to_f64();
        let hi = val(&ivs[0].hi).to_f64();
        assert!((lo + std::f64::consts::SQRT_2).abs() < 1e-5);
        assert!((hi - std::f64::consts::SQRT_2).abs() < 1e-5);
    }

    #[test]
    fn polynomial_union_structure() {
        // x(x-1)(x-2) > 0 ⇔ (0,1) ∪ (2,∞).
        let ivs = decomp("x*(x-1)*(x-2) > 0");
        assert_eq!(ivs.len(), 2);
        assert_eq!(val(&ivs[0].lo), rat(0, 1));
        assert_eq!(val(&ivs[0].hi), rat(1, 1));
        assert_eq!(val(&ivs[1].lo), rat(2, 1));
        assert!(matches!(ivs[1].hi, Endpoint::PosInf));
    }

    #[test]
    fn merged_adjacent_pieces() {
        // [0,1] ∪ [1,2] must merge into [0,2].
        let ivs = decomp("(0 <= x & x <= 1) | (1 <= x & x <= 2)");
        assert_eq!(ivs.len(), 1);
        assert_eq!(val(&ivs[0].lo), rat(0, 1));
        assert_eq!(val(&ivs[0].hi), rat(2, 1));
    }

    #[test]
    fn interval_metadata() {
        let ivs = decomp("0 <= x & x <= 1");
        assert!(ivs[0].is_bounded());
        assert!(!ivs[0].is_point());
        assert_eq!(ivs[0].length(&rat(1, 100)), Some(rat(1, 1)));
        assert_eq!(ivs[0].finite_endpoints().len(), 2);
        let pt = decomp("x = 3");
        assert!(pt[0].is_point());
        assert_eq!(pt[0].finite_endpoints().len(), 1);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let f = parse_formula_with("exists y. x < y", &mut vars).unwrap();
        assert!(decompose_1d(&f, x).is_none());
        let g = parse_formula_with("U(x)", &mut vars).unwrap();
        assert!(decompose_1d(&g, x).is_none());
        let h = parse_formula_with("x + y < 1", &mut vars).unwrap();
        assert!(decompose_1d(&h, x).is_none());
    }
}
