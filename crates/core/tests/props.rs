//! Property tests for the 1-D decomposition and finiteness machinery.

use cqa_arith::{rat, Rat};
use cqa_core::{decompose_1d, enumerate_finite, is_finite_set, Endpoint};
use cqa_logic::{Atom, Formula, Rel};
use cqa_poly::{MPoly, Var};
use proptest::prelude::*;

/// Random boolean combinations of interval constraints on one variable.
fn onedim_formula() -> impl Strategy<Value = Formula> {
    let atom = (-6i64..=6, 0usize..4).prop_map(|(c, r)| {
        let rel = [Rel::Lt, Rel::Le, Rel::Gt, Rel::Ge][r];
        Formula::Atom(Atom::new(
            MPoly::var(Var(0)) - MPoly::constant(Rat::from(c)),
            rel,
        ))
    });
    atom.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Formula::negate),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The decomposition is sound: sampled points agree with direct
    /// evaluation, and intervals are sorted and disjoint.
    #[test]
    fn decomposition_agrees_with_eval(f in onedim_formula()) {
        let v = Var(0);
        let ivs = decompose_1d(&f, v).unwrap();
        // Sorted and disjoint (allowing shared open endpoints).
        for w in ivs.windows(2) {
            let hi0 = match &w[0].hi {
                Endpoint::Value(a, _) => a.approximate(&rat(1, 1000)),
                _ => continue,
            };
            let lo1 = match &w[1].lo {
                Endpoint::Value(a, _) => a.approximate(&rat(1, 1000)),
                _ => continue,
            };
            prop_assert!(hi0 <= lo1);
        }
        // Membership agreement on a fine rational grid.
        for k in -28..=28i64 {
            let x = rat(k, 4);
            let direct = f.eval(&|_| x.clone(), &[]).unwrap();
            let in_decomp = ivs.iter().any(|iv| {
                let lo_ok = match &iv.lo {
                    Endpoint::NegInf => true,
                    Endpoint::Value(a, closed) => match a.cmp_rat(&x) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => *closed,
                        std::cmp::Ordering::Greater => false,
                    },
                    Endpoint::PosInf => false,
                };
                let hi_ok = match &iv.hi {
                    Endpoint::PosInf => true,
                    Endpoint::Value(a, closed) => match a.cmp_rat(&x) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => *closed,
                        std::cmp::Ordering::Less => false,
                    },
                    Endpoint::NegInf => false,
                };
                lo_ok && hi_ok
            });
            prop_assert_eq!(direct, in_decomp, "at {} for {:?}", x, f);
        }
    }

    /// Finiteness detection is consistent with the decomposition: a 1-D set
    /// is finite iff all its intervals are points.
    #[test]
    fn finiteness_matches_decomposition(f in onedim_formula()) {
        let v = Var(0);
        let ivs = decompose_1d(&f, v).unwrap();
        let all_points = ivs.iter().all(|iv| iv.is_point());
        prop_assert_eq!(is_finite_set(&f, &[v]).unwrap(), all_points);
        if all_points {
            let tuples = enumerate_finite(&f, &[v]).unwrap();
            prop_assert_eq!(tuples.len(), ivs.len());
        }
    }
}
