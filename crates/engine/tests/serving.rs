//! End-to-end tests for the event-driven serving layer: pipelining
//! order/parity, shard-count bit-identity, idle-session scalability, the
//! non-blocking busy path, body caps over the wire, and warm-file
//! shard-independence.

use cqa_engine::{parse_command, read_response, Engine, EngineConfig, Response};
use proptest::prelude::*;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Query pool shared by the pipelining and sharding tests: exact answers
/// and (ε, δ)-degraded Monte Carlo ones (the MC path is seeded, so even
/// degraded answers are bit-identical across runs).
const QUERIES: &[(&str, &str)] = &[
    ("half", "0 <= x & x <= 1/2"),
    ("quarter", "0 <= x & x <= 1/4"),
    ("wedge", "exists y. (0 <= x & x <= y & y <= 1/3)"),
    ("band", "0 <= x & 0 <= y & x + y <= 1"),
    ("disk", "x*x + y*y <= 1"),
    ("bump", "y <= x*x & 0 <= y & 0 <= x & x <= 1"),
];

/// Answer tokens with the timing-dependent parts (step counter, cache
/// hit/miss tag) stripped, for bit-identity comparison.
fn strip(header: &str) -> String {
    header
        .split_whitespace()
        .filter(|t| !t.starts_with("steps=") && !t.starts_with("cache="))
        .collect::<Vec<_>>()
        .join(" ")
}

struct Client {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
}

impl Client {
    /// Connects and consumes the greeting, which must be `OK`.
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        let mut c = Client {
            r: BufReader::new(stream.try_clone().unwrap()),
            w: BufWriter::new(stream),
        };
        let greeting = c.read();
        assert!(greeting.is_ok(), "{greeting:?}");
        c
    }

    fn read(&mut self) -> Response {
        read_response(&mut self.r).unwrap().expect("response")
    }

    fn send(&mut self, line: &str) -> Response {
        writeln!(self.w, "{line}").unwrap();
        self.w.flush().unwrap();
        self.read()
    }

    fn shutdown(mut self) {
        let resp = self.send("SHUTDOWN");
        assert!(resp.is_ok(), "{resp:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pipelining soundness: a client fires a random command sequence
    /// without waiting for responses. Responses must come back exactly one
    /// per request, in request order (checked by `@k` tags), and each
    /// answer must be bit-identical to dispatching the same sequence
    /// serially on a fresh single-threaded engine.
    #[test]
    fn pipelined_responses_arrive_in_order_and_match_serial_dispatch(
        picks in proptest::collection::vec(0usize..QUERIES.len(), 1..12),
    ) {
        // The wire request lines, in order.
        let mut lines = Vec::new();
        for &i in &picks {
            let (name, src) = QUERIES[i];
            lines.push(format!("PREPARE {name} {src}"));
            lines.push(format!("EXEC {name}"));
        }
        // Serial oracle: a fresh engine, same lines, one at a time.
        let oracle = Engine::new(EngineConfig::default());
        let mut session = oracle.open_session();
        let expected: Vec<String> = lines
            .iter()
            .map(|l| {
                let cmd = parse_command(l).expect(l);
                strip(&oracle.dispatch(&mut session, cmd).header)
            })
            .collect();

        // Pipelined run: every request tagged and written before any
        // response is read.
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 3,
            ..EngineConfig::default()
        }));
        let handle = cqa_engine::spawn_server(engine).unwrap();
        let mut c = Client::connect(handle.addr());
        for (k, line) in lines.iter().enumerate() {
            writeln!(c.w, "@{k} {line}").unwrap();
        }
        c.w.flush().unwrap();
        for (k, want) in expected.iter().enumerate() {
            let resp = c.read();
            let tag = format!("@{k} ");
            prop_assert!(
                resp.header.starts_with(&tag),
                "response {k} out of order: {resp:?}"
            );
            let got = strip(&resp.header[tag.len()..]);
            prop_assert_eq!(&got, want, "answer {} diverged from serial dispatch", k);
        }
        c.shutdown();
        handle.join().unwrap();
    }
}

/// Cache sharding must change contention, never answers or accounting:
/// the same workload against 1-, 2-, and 8-shard servers produces
/// bit-identical response transcripts and identical aggregate cache
/// statistics.
#[test]
fn shard_count_never_changes_answers_or_total_accounting() {
    let mut transcripts = Vec::new();
    for shards in [1usize, 2, 8] {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 2,
            cache_shards: shards,
            ..EngineConfig::default()
        }));
        let handle = cqa_engine::spawn_server(engine).unwrap();
        let mut c = Client::connect(handle.addr());
        let mut transcript = Vec::new();
        for round in 0..2 {
            for (name, src) in QUERIES {
                if round == 0 {
                    transcript.push(strip(&c.send(&format!("PREPARE {name} {src}")).header));
                }
                // Round 1 re-executes, so hits and misses both occur.
                let resp = c.send(&format!("EXEC {name}"));
                transcript.push(strip(&resp.header));
            }
        }
        // Aggregate cache accounting from STATS: entries, bytes, hits,
        // misses, evictions must not depend on the shard count.
        let stats = c.send("STATS");
        let cache_line = stats
            .body
            .iter()
            .find(|l| l.starts_with("cache "))
            .expect("STATS has a cache line")
            .clone();
        let accounting: Vec<&str> = cache_line
            .split_whitespace()
            .filter(|t| {
                ["entries=", "bytes=", "hits=", "misses=", "evictions="]
                    .iter()
                    .any(|p| t.starts_with(p))
            })
            .collect();
        transcript.push(accounting.join(" "));
        assert!(
            cache_line.contains(&format!("shards={shards}")),
            "{cache_line}"
        );
        c.shutdown();
        handle.join().unwrap();
        transcripts.push((shards, transcript));
    }
    let (_, reference) = &transcripts[0];
    for (shards, transcript) in &transcripts[1..] {
        assert_eq!(
            transcript, reference,
            "transcript diverged at cache_shards={shards}"
        );
    }
}

/// The reactor's reason to exist: hundreds of open sessions served by a
/// worker pool they outnumber 100:1. Under thread-per-connection this
/// workload would reject all but `workers` clients; here every one
/// connects, idles, and still gets its query answered.
#[test]
fn hundreds_of_idle_sessions_cost_no_workers() {
    const CONNS: usize = 200;
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 2,
        max_sessions: CONNS + 8,
        ..EngineConfig::default()
    }));
    let handle = cqa_engine::spawn_server(Arc::clone(&engine)).unwrap();
    // Phase 1: open every connection before any command is sent. Each
    // greeting proves admission; the sessions then sit idle.
    let mut clients: Vec<Client> = (0..CONNS).map(|_| Client::connect(handle.addr())).collect();
    // Phase 2: every idle session wakes up and runs a query; all must be
    // served by the 2 workers.
    for c in &mut clients {
        writeln!(c.w, "VOLUME 0 <= x & x <= 1/2").unwrap();
        c.w.flush().unwrap();
    }
    for c in &mut clients {
        let resp = c.read();
        assert!(resp.header.contains("value=1/2"), "{resp:?}");
    }
    let last = clients.pop().unwrap();
    drop(clients);
    last.shutdown();
    handle.join().unwrap();
}

/// Regression for the blocking-busy-write bug: clients rejected over the
/// session limit used to be answered with a *blocking* write from the
/// accept path, so one rejected client that never read could stall every
/// later accept. Now rejects are non-blocking: admitted sessions stay
/// fully served while a pile of unread rejects hangs around.
#[test]
fn unread_busy_rejections_do_not_stall_the_server() {
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 2,
        max_sessions: 1,
        ..EngineConfig::default()
    }));
    let handle = cqa_engine::spawn_server(Arc::clone(&engine)).unwrap();
    let mut admitted = Client::connect(handle.addr());
    // A crowd of over-limit connections that never read their rejection.
    let rejected: Vec<TcpStream> = (0..32)
        .map(|_| TcpStream::connect(handle.addr()).unwrap())
        .collect();
    // The admitted session must still be served promptly — 20 commands
    // through a reactor that is simultaneously turning away the crowd.
    for _ in 0..20 {
        let resp = admitted.send("VOLUME 0 <= x & x <= 1/2");
        assert!(resp.header.contains("value=1/2"), "{resp:?}");
    }
    drop(rejected);
    // After the admitted session leaves, the freed slot must be reusable.
    let resp = admitted.send("CLOSE");
    assert!(resp.is_ok(), "{resp:?}");
    let mut next = None;
    for _ in 0..100 {
        std::thread::sleep(std::time::Duration::from_millis(20));
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let Ok(Some(greeting)) = read_response(&mut r) else {
            continue;
        };
        if greeting.header.starts_with("ERR busy") {
            continue; // old session not reaped yet
        }
        assert!(greeting.is_ok(), "{greeting:?}");
        next = Some(Client {
            r,
            w: BufWriter::new(stream),
        });
        break;
    }
    next.expect("slot never freed after CLOSE").shutdown();
    handle.join().unwrap();
}

/// The body cap over the wire: a body one byte over the limit answers a
/// typed `ERR proto body too large` *and leaves the connection framed* —
/// the next pipelined command still parses; a body exactly at the limit
/// is accepted.
#[test]
fn body_cap_rejects_oversized_loads_but_keeps_the_connection_framed() {
    let program = "rel S(y) := 0 <= y & y <= 1/2";
    let limit = program.len() + 1; // stored with its trailing newline
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 1,
        max_body_bytes: limit,
        ..EngineConfig::default()
    }));
    let handle = cqa_engine::spawn_server(Arc::clone(&engine)).unwrap();
    let mut c = Client::connect(handle.addr());
    // One byte over: the comment pushes the body to limit+1 bytes.
    writeln!(c.w, "LOAD").unwrap();
    writeln!(c.w, "{program}#").unwrap();
    writeln!(c.w, ".").unwrap();
    c.w.flush().unwrap();
    let resp = c.read();
    assert_eq!(
        resp.header,
        format!("ERR proto body too large (limit={limit} bytes)"),
        "{resp:?}"
    );
    // The over-limit body was drained to its dot: the connection is still
    // framed and the next command is served normally.
    let resp = c.send("VOLUME 0 <= x & x <= 1/2");
    assert!(resp.header.contains("value=1/2"), "{resp:?}");
    // Exactly at the limit: accepted.
    writeln!(c.w, "LOAD").unwrap();
    writeln!(c.w, "{program}").unwrap();
    writeln!(c.w, ".").unwrap();
    c.w.flush().unwrap();
    let resp = c.read();
    assert!(resp.is_ok(), "{resp:?}");
    let resp = c.send("VOLUME S(x)");
    assert!(resp.header.contains("value=1/2"), "{resp:?}");
    c.shutdown();
    handle.join().unwrap();
}

/// The warm-start file must be shard-count-independent: a cache persisted
/// by an 8-shard engine warm-starts a 1-shard engine (and vice versa)
/// with bit-identical answers served as hits.
#[test]
fn warm_file_written_by_eight_shards_boots_one_shard_bit_identically() {
    let dir = std::env::temp_dir().join(format!("cqa-serving-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mk = |shards: usize| {
        Engine::with_storage(EngineConfig {
            cache_shards: shards,
            data_dir: Some(dir.clone()),
            ..EngineConfig::default()
        })
        .expect("storage opens")
    };
    let dispatch = |e: &Engine, s: &mut cqa_engine::Session, line: &str| {
        e.dispatch(s, parse_command(line).expect(line))
    };
    let cold = {
        let e = mk(8);
        let mut s = e.open_session();
        assert!(dispatch(&e, &mut s, "PERSIST main").is_ok());
        assert!(dispatch(
            &e,
            &mut s,
            "PREPARE bump y <= x*x & 0 <= y & 0 <= x & x <= 1"
        )
        .is_ok());
        let r = dispatch(&e, &mut s, "EXEC bump");
        assert!(r.header.contains("cache=miss"), "{r:?}");
        strip(&r.header)
        // Dropped with no SHUTDOWN: the per-miss warm flush is the only
        // persistence.
    };
    let e = mk(1);
    let mut s = e.open_session();
    assert!(dispatch(&e, &mut s, "PERSIST main").is_ok());
    assert!(dispatch(
        &e,
        &mut s,
        "PREPARE bump y <= x*x & 0 <= y & 0 <= x & x <= 1"
    )
    .is_ok());
    let r = dispatch(&e, &mut s, "EXEC bump");
    assert!(
        r.header.contains("cache=hit"),
        "1-shard boot must hit the 8-shard warm file: {r:?}"
    );
    assert_eq!(strip(&r.header), cold, "warm answer diverged");
    let _ = std::fs::remove_dir_all(&dir);
}
