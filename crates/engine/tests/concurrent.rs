//! Satellite: concurrent cache-correctness stress test.
//!
//! N client threads share one [`Engine`] and issue interleaved
//! `PREPARE`/`EXEC` of overlapping and distinct queries. Every answer —
//! exact or degraded Monte Carlo — must be **bit-identical** to the one a
//! single-threaded engine produces: the cache may change *when* work
//! happens, never *what* comes out.

use cqa_engine::{Engine, EngineConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

/// Query pool: names, sources, and a mix of exact and (ε, δ)-degraded
/// answers (the quartic strip is semi-algebraic, so it must go through the
/// deterministic MC path).
const QUERIES: &[(&str, &str)] = &[
    ("half", "0 <= x & x <= 1/2"),
    ("quarter", "0 <= x & x <= 1/4"),
    ("wedge", "exists y. (0 <= x & x <= y & y <= 1/3)"),
    ("band", "0 <= x & 0 <= y & x + y <= 1"),
    ("disk", "x*x + y*y <= 1"),
    ("bump", "y <= x*x & 0 <= y & 0 <= x & x <= 1"),
];

/// `status=…` and `value=…` (and ε/δ/samples when present) from a header;
/// everything that defines the *answer*, excluding `cache=` which is
/// legitimately timing-dependent.
fn answer_part(header: &str) -> String {
    header
        .split_whitespace()
        .filter(|tok| {
            ["status=", "value=", "eps=", "delta=", "samples=", "reason="]
                .iter()
                .any(|p| tok.starts_with(p))
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn run_queries(engine: &Engine, order: &[usize]) -> Vec<(String, String)> {
    let mut session = engine.open_session();
    let mut out = Vec::new();
    for &i in order {
        let (name, src) = QUERIES[i];
        let r = engine.prepare(&mut session, name, src);
        assert!(r.is_ok(), "{r:?}");
        let r = engine.exec(&mut session, name, None, None);
        assert!(r.is_ok(), "{r:?}");
        out.push((name.to_string(), answer_part(&r.header)));
    }
    out
}

#[test]
fn concurrent_answers_are_bit_identical_to_single_threaded() {
    // Reference: one engine, one thread, every query once.
    let reference = Engine::new(EngineConfig::default());
    let baseline: HashMap<String, String> = run_queries(&reference, &[0, 1, 2, 3, 4, 5])
        .into_iter()
        .collect();

    // Stress: 8 threads, each running a different interleaving several
    // times — same-query collisions (cache races) and distinct queries
    // (eviction/bookkeeping races) both occur.
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let mut results = Vec::new();
                for round in 0..4 {
                    let order: Vec<usize> = (0..QUERIES.len())
                        .map(|i| (i + t + round) % QUERIES.len())
                        .collect();
                    results.extend(run_queries(&engine, &order));
                }
                results
            })
        })
        .collect();

    let mut checked = 0usize;
    for h in handles {
        for (name, answer) in h.join().expect("stress thread") {
            assert_eq!(
                baseline[&name], answer,
                "query `{name}` diverged under concurrency"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 8 * 4 * QUERIES.len());

    // The whole point of the shared cache: most of those EXECs were hits.
    let snap = engine.cache.snapshot();
    assert_eq!(snap.hits + snap.misses, (8 * 4 * QUERIES.len()) as u64);
    // Worst case every thread misses each key once before the first
    // insert lands (8 × |Q|); everything after that must hit.
    assert!(
        snap.misses <= (8 * QUERIES.len()) as u64,
        "expected near-universal cache hits, got {snap:?}"
    );
    assert!(snap.hits > 0, "{snap:?}");
}
