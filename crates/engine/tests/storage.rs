//! End-to-end durability: kill-and-replay recovery, warm-start answers,
//! the `PERSIST` wire surface, and random-crash-point WAL recovery.

use cqa_engine::{Engine, EngineConfig, Response, Storage, StorageError};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cqa-storage-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_engine(dir: &std::path::Path) -> Engine {
    Engine::with_storage(EngineConfig {
        data_dir: Some(dir.to_path_buf()),
        ..EngineConfig::default()
    })
    .expect("storage opens")
}

fn dispatch(e: &Engine, s: &mut cqa_engine::Session, line: &str) -> Response {
    let cmd = cqa_engine::parse_command(line).expect(line);
    e.dispatch(s, cmd)
}

const PROGRAM: &str = "rel S(y) := (0 <= y & y <= 1/2) | (3/4 <= y & y <= 2)";

/// Answer tokens with the non-reproducible parts (steps counter, cache
/// tag) stripped, for bit-identity comparison across processes.
fn strip(header: &str) -> String {
    header
        .split_whitespace()
        .filter(|t| !t.starts_with("steps=") && !t.starts_with("cache="))
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn kill_and_replay_returns_bit_identical_answers_from_a_warm_cache() {
    let dir = tmpdir("kill-replay");
    // Life before the crash: attach, load, prepare, run cold.
    let cold_answer;
    {
        let e = durable_engine(&dir);
        let mut s = e.open_session();
        assert!(dispatch(&e, &mut s, "PERSIST main").is_ok());
        assert!(e.load(&mut s, PROGRAM).is_ok());
        assert!(dispatch(&e, &mut s, "PREPARE band S(x) & x <= 1").is_ok());
        let r = dispatch(&e, &mut s, "EXEC band");
        assert!(r.header.contains("cache=miss"), "{r:?}");
        assert!(r.header.contains("status=exact value=3/4"), "{r:?}");
        cold_answer = strip(&r.header);
        // SIGKILL: the engine is dropped with no SHUTDOWN, no flush call,
        // nothing — durability must already be on disk.
    }
    // The crash also tore a record mid-append: garbage after the last
    // intact frame, exactly what a power cut during a write leaves.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
    }
    // Reboot. Recovery replays snapshot+WAL (dropping the torn tail) and
    // loads the warm file before any session exists.
    let e = durable_engine(&dir);
    let mut s = e.open_session();
    let r = dispatch(&e, &mut s, "PERSIST main");
    assert!(r.is_ok(), "{r:?}");
    assert!(r.header.contains("statements=1"), "{r:?}");
    assert!(dispatch(&e, &mut s, "PREPARE band S(x) & x <= 1").is_ok());
    let r = dispatch(&e, &mut s, "EXEC band");
    assert!(
        r.header.contains("cache=hit"),
        "recovered boot must serve from the warm-started cache: {r:?}"
    );
    assert_eq!(
        strip(&r.header),
        cold_answer,
        "bit-identical across the crash"
    );
    // The torn bytes were counted and visible in STATS.
    let stats = dispatch(&e, &mut s, "STATS");
    let body = stats.body.join("\n");
    assert!(body.contains("torn_bytes=3"), "{body}");
    assert!(body.contains("warm loaded="), "{body}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_loads_survive_without_any_shutdown() {
    let dir = tmpdir("no-shutdown");
    {
        let e = durable_engine(&dir);
        let mut s = e.open_session();
        assert!(dispatch(&e, &mut s, "PERSIST main").is_ok());
        assert!(e.load(&mut s, PROGRAM).is_ok());
        assert!(e.load(&mut s, "rel T(z) := 0 <= z & z <= 1/4").is_ok());
    }
    let e = durable_engine(&dir);
    let mut s = e.open_session();
    let r = dispatch(&e, &mut s, "PERSIST main");
    assert!(r.header.contains("statements=2"), "{r:?}");
    // Both relations answer queries.
    let r = dispatch(&e, &mut s, "VOLUME S(x) & T(x)");
    assert!(r.header.contains("value=1/4"), "{r:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persist_surface_rejects_misuse() {
    // No storage configured: PERSIST is a typed wire error, not a panic.
    let e = Engine::new(EngineConfig::default());
    let mut s = e.open_session();
    let r = dispatch(&e, &mut s, "PERSIST main");
    assert!(r.header.starts_with("ERR storage"), "{r:?}");

    let dir = tmpdir("misuse");
    let e = durable_engine(&dir);
    let mut s = e.open_session();
    assert!(dispatch(&e, &mut s, "PERSIST main").is_ok());
    // Double attach.
    let r = dispatch(&e, &mut s, "PERSIST other");
    assert!(r.header.starts_with("ERR storage"), "{r:?}");
    // Attach after LOAD.
    let mut s2 = e.open_session();
    assert!(e.load(&mut s2, PROGRAM).is_ok());
    let r = dispatch(&e, &mut s2, "PERSIST main");
    assert!(r.header.starts_with("ERR storage"), "{r:?}");
    // A rejected LOAD on a durable session logs nothing.
    let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
    let r = e.load(&mut s, "rel Bad(x) := x = zz + 1");
    assert!(!r.is_ok(), "{r:?}");
    assert_eq!(
        std::fs::metadata(dir.join("wal.log")).unwrap().len(),
        wal_len,
        "rejected LOADs must not reach the WAL"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_warm_file_degrades_to_a_cold_cache_not_a_failed_boot() {
    let dir = tmpdir("bad-warm");
    {
        let e = durable_engine(&dir);
        let mut s = e.open_session();
        assert!(dispatch(&e, &mut s, "PERSIST main").is_ok());
        assert!(e.load(&mut s, PROGRAM).is_ok());
        assert!(dispatch(&e, &mut s, "PREPARE band S(x) & x <= 1").is_ok());
        assert!(dispatch(&e, &mut s, "EXEC band").is_ok());
    }
    std::fs::write(dir.join("cache.warm"), b"CQAWARM1\ngarbage\n").unwrap();
    let e = durable_engine(&dir);
    assert_eq!(e.cache.snapshot().entries, 0, "cold cache after corruption");
    let mut s = e.open_session();
    assert!(dispatch(&e, &mut s, "PERSIST main").is_ok());
    assert!(dispatch(&e, &mut s, "PREPARE band S(x) & x <= 1").is_ok());
    let r = dispatch(&e, &mut s, "EXEC band");
    assert!(r.header.contains("cache=miss"), "{r:?}");
    assert!(r.header.contains("value=3/4"), "{r:?}");
    let stats = dispatch(&e, &mut s, "STATS");
    let body = stats.body.join("\n");
    assert!(
        body.contains("errors=1"),
        "warm corruption is counted: {body}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_is_transparent_to_recovery() {
    let dir = tmpdir("compaction");
    {
        let e = Engine::with_storage(EngineConfig {
            data_dir: Some(dir.clone()),
            snapshot_every: 2,
            ..EngineConfig::default()
        })
        .unwrap();
        let mut s = e.open_session();
        assert!(dispatch(&e, &mut s, "PERSIST main").is_ok());
        for i in 0..5 {
            let r = e.load(&mut s, &format!("rel R{i}(x) := 0 <= x & x <= 1/{}", i + 2));
            assert!(r.is_ok(), "{r:?}");
        }
        let st = e.storage.as_ref().unwrap().stats();
        assert!(
            cqa_engine::EngineStats::get(&st.snapshots) >= 2,
            "snapshot_every=2 over 5 loads must compact"
        );
    }
    let e = durable_engine(&dir);
    let mut s = e.open_session();
    let r = dispatch(&e, &mut s, "PERSIST main");
    assert!(r.header.contains("statements=5"), "{r:?}");
    let r = dispatch(&e, &mut s, "VOLUME R4(x)");
    assert!(r.header.contains("value=1/6"), "{r:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash-point sweep: write N records, cut the log at an arbitrary
    /// byte, and recovery must yield exactly the records whose frames lie
    /// wholly before the cut — never a panic, never a half-applied record,
    /// and the truncated log must accept appends again.
    #[test]
    fn recovery_at_every_crash_point_keeps_the_intact_prefix(
        n_records in 1usize..6,
        cut_back in 0u64..200,
    ) {
        let dir = tmpdir(&format!("prop-{n_records}-{cut_back}"));
        let mut ends = Vec::new(); // byte offset where each record's frame ends
        {
            let s = Storage::open(&dir, u64::MAX).unwrap();
            for i in 0..n_records {
                s.append_load("main", &format!("rel P{i}(x) := 0 <= x & x <= 1\n")).unwrap();
                ends.push(std::fs::metadata(dir.join("wal.log")).unwrap().len());
            }
        }
        let total = *ends.last().unwrap();
        let cut = total.saturating_sub(cut_back % (total + 1));
        // The crash: the file ends mid-whatever.
        std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join("wal.log"))
            .unwrap()
            .set_len(cut)
            .unwrap();
        let survivors = ends.iter().filter(|&&e| e <= cut).count();
        let s = Storage::open(&dir, u64::MAX).unwrap();
        let expected: String = (0..survivors)
            .map(|i| format!("rel P{i}(x) := 0 <= x & x <= 1\n"))
            .collect();
        prop_assert_eq!(s.database("main"), expected);
        // The log is clean again: a post-recovery append round-trips.
        s.append_load("main", "rel Q(x) := x = 0\n").unwrap();
        drop(s);
        let s = Storage::open(&dir, u64::MAX).unwrap();
        prop_assert!(s.database("main").ends_with("rel Q(x) := x = 0\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn storage_error_is_typed_and_displayable() {
    let dir = tmpdir("typed-error");
    {
        let s = Storage::open(&dir, 1).unwrap();
        s.append_load("main", "rel R(x) := x >= 0\n").unwrap();
    }
    let snap = dir.join("snapshot.cqadb");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap, &bytes).unwrap();
    match Storage::open(&dir, 1) {
        Err(e @ StorageError::Corrupt { .. }) => {
            assert!(e.to_string().contains("corrupt"), "{e}");
        }
        other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
    }
    // Engine boot surfaces the same refusal instead of serving bad data.
    assert!(Engine::with_storage(EngineConfig {
        data_dir: Some(dir.clone()),
        ..EngineConfig::default()
    })
    .is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
