//! The TCP serving layer, in two shapes sharing one protocol:
//!
//! * [`serve`] — the event-driven front end: a reactor thread
//!   ([`reactor`]) parks every open connection on a non-blocking socket,
//!   assembles complete request frames (command line plus any
//!   dot-terminated body), and schedules connections with queued frames
//!   onto a fixed worker pool ([`worker`]). A connection costs a worker
//!   thread only while a frame of its is executing, so hundreds of idle
//!   sessions cost zero workers; admission is a `max_sessions` limit
//!   (`ERR busy` beyond it, counted in `rejected_conns`). The protocol
//!   pipelines: clients may send many commands without waiting, and
//!   responses come back in request order, `@tag`-prefixed when the
//!   request was.
//! * [`serve_threaded`] — the pre-reactor thread-per-connection loop
//!   ([`threaded`]), kept as the parity oracle and the E21 benchmark
//!   baseline.
//!
//! Both are std-only (no async runtime, no epoll binding): the reactor is
//! a poll loop over non-blocking sockets that sleeps only when a full
//! pass made no progress. `SHUTDOWN` raises a flag; the reactor drains
//! buffered responses (bounded), closes every socket, drops the worker
//! channel, and joins every thread — a clean shutdown leaks nothing.

mod conn;
mod reactor;
mod threaded;
mod worker;

use crate::engine::Engine;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

pub use threaded::serve_threaded;

/// A handle to a server spawned with [`spawn_server`] or
/// [`spawn_server_threaded`]: its bound address and the serving thread to
/// join after `SHUTDOWN`.
pub struct ServerHandle {
    addr: SocketAddr,
    join: Option<JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to stop (a client must send `SHUTDOWN`).
    pub fn join(mut self) -> io::Result<()> {
        match self.join.take() {
            Some(h) => h
                .join()
                .map_err(|_| io::Error::other("server thread panicked"))?,
            None => Ok(()),
        }
    }
}

/// Runs the event-driven serving loop until a client sends `SHUTDOWN`.
/// Returns once the reactor and all worker threads have drained and
/// joined.
pub fn serve(engine: Arc<Engine>, listener: TcpListener) -> io::Result<()> {
    reactor::run(engine, listener)
}

/// Binds an ephemeral localhost port and runs [`serve`] on a background
/// thread. Used by tests, the CI smoke test, and `cqa-serve --ephemeral`.
pub fn spawn_server(engine: Arc<Engine>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let join = thread::spawn(move || serve(engine, listener));
    Ok(ServerHandle {
        addr,
        join: Some(join),
    })
}

/// Binds an ephemeral localhost port and runs [`serve_threaded`] on a
/// background thread — the baseline twin of [`spawn_server`].
pub fn spawn_server_threaded(engine: Arc<Engine>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let join = thread::spawn(move || serve_threaded(engine, listener));
    Ok(ServerHandle {
        addr,
        join: Some(join),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::protocol::{read_response, Response};
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::TcpStream;

    fn send(r: &mut impl BufRead, w: &mut impl Write, line: &str) -> Response {
        writeln!(w, "{line}").unwrap();
        w.flush().unwrap();
        read_response(r).unwrap().expect("response")
    }

    /// Runs the full-protocol round trip against either front end.
    fn roundtrip(handle: ServerHandle) {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        let greeting = read_response(&mut r).unwrap().unwrap();
        assert!(greeting.is_ok(), "{greeting:?}");

        // LOAD with a dot-terminated body.
        writeln!(w, "LOAD").unwrap();
        writeln!(w, "rel S(y) := 0 <= y & y <= 1/2").unwrap();
        writeln!(w, ".").unwrap();
        w.flush().unwrap();
        let resp = read_response(&mut r).unwrap().unwrap();
        assert!(resp.is_ok(), "{resp:?}");

        let resp = send(&mut r, &mut w, "PREPARE half S(x)");
        assert!(resp.is_ok(), "{resp:?}");
        let resp = send(&mut r, &mut w, "EXEC half");
        assert!(resp.header.contains("status=exact value=1/2"), "{resp:?}");

        // Tagged request: the tag comes back on the header.
        let resp = send(&mut r, &mut w, "@t1 EXEC half");
        assert!(
            resp.header.starts_with("@t1 OK") && resp.header.contains("value=1/2"),
            "{resp:?}"
        );

        // BATCH with a dot-terminated spec body.
        writeln!(w, "BATCH").unwrap();
        writeln!(w, "half").unwrap();
        writeln!(w, "half 0.25 0.1").unwrap();
        writeln!(w, ".").unwrap();
        w.flush().unwrap();
        let resp = read_response(&mut r).unwrap().unwrap();
        assert!(resp.header.starts_with("OK BATCH n=2 errors=0"), "{resp:?}");
        assert_eq!(resp.body.len(), 2, "{resp:?}");
        assert!(resp.body[0].contains("value=1/2"), "{resp:?}");

        let resp = send(&mut r, &mut w, "FROB");
        assert!(resp.header.starts_with("ERR proto"), "{resp:?}");

        let resp = send(&mut r, &mut w, "SHUTDOWN");
        assert!(resp.is_ok(), "{resp:?}");
        handle.join().unwrap();
    }

    #[test]
    fn tcp_roundtrip_and_clean_shutdown() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        }));
        roundtrip(spawn_server(engine).unwrap());
    }

    #[test]
    fn threaded_tcp_roundtrip_and_clean_shutdown() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        }));
        roundtrip(spawn_server_threaded(engine).unwrap());
    }

    #[test]
    fn client_disconnecting_mid_response_does_not_kill_the_worker() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        }));
        let handle = spawn_server(Arc::clone(&engine)).unwrap();
        // Pipeline many large STATS responses and vanish without reading:
        // the kernel buffers fill, the server's writes hit
        // EPIPE/ECONNRESET mid-response, and the (sole) worker must
        // survive it.
        {
            let stream = TcpStream::connect(handle.addr()).unwrap();
            let mut w = BufWriter::new(stream.try_clone().unwrap());
            for _ in 0..5_000 {
                if writeln!(w, "STATS").and_then(|()| w.flush()).is_err() {
                    break; // server already saw the reset — also fine
                }
            }
            // Closing with unread response data pending makes the kernel
            // send RST, so the server's next write fails instead of
            // buffering forever.
        }
        // The worker must come back and serve a fresh connection.
        let mut ok = false;
        for _ in 0..50 {
            std::thread::sleep(std::time::Duration::from_millis(100));
            let Ok(stream) = TcpStream::connect(handle.addr()) else {
                continue;
            };
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let Ok(Some(greeting)) = read_response(&mut r) else {
                continue;
            };
            if greeting.header.starts_with("ERR busy") {
                continue; // dead connection not yet reaped
            }
            assert!(greeting.is_ok(), "{greeting:?}");
            let mut w = BufWriter::new(stream);
            let resp = send(&mut r, &mut w, "VOLUME 0 <= x & x <= 1/2");
            assert!(resp.header.contains("value=1/2"), "{resp:?}");
            send(&mut r, &mut w, "SHUTDOWN");
            ok = true;
            break;
        }
        assert!(ok, "worker never recovered after the broken-pipe client");
        handle.join().unwrap();
    }

    #[test]
    fn server_survives_a_poisoned_cache() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        }));
        let handle = spawn_server(Arc::clone(&engine)).unwrap();
        // Poison the shared cache mutexes exactly as a worker panicking
        // while holding one would.
        engine.cache.poison_for_tests();
        // Every cache-touching command must still be served.
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        assert!(read_response(&mut r).unwrap().unwrap().is_ok());
        let resp = send(&mut r, &mut w, "PREPARE half 0 <= x & x <= 1/2");
        assert!(resp.is_ok(), "{resp:?}");
        let resp = send(&mut r, &mut w, "EXEC half");
        assert!(resp.header.contains("value=1/2"), "{resp:?}");
        let resp = send(&mut r, &mut w, "STATS");
        let body = resp.body.join("\n");
        assert!(body.contains("poison_recoveries="), "{body}");
        assert!(!body.contains("poison_recoveries=0"), "{body}");
        send(&mut r, &mut w, "SHUTDOWN");
        handle.join().unwrap();
    }

    #[test]
    fn session_limit_rejects_with_busy() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 2,
            max_sessions: 1,
            ..EngineConfig::default()
        }));
        let handle = spawn_server(Arc::clone(&engine)).unwrap();
        // First connection occupies the only session slot.
        let s1 = TcpStream::connect(handle.addr()).unwrap();
        let mut r1 = BufReader::new(s1.try_clone().unwrap());
        assert!(read_response(&mut r1).unwrap().unwrap().is_ok());
        // Second connection must be turned away.
        let s2 = TcpStream::connect(handle.addr()).unwrap();
        let mut r2 = BufReader::new(s2.try_clone().unwrap());
        let resp = read_response(&mut r2).unwrap().unwrap();
        assert!(resp.header.starts_with("ERR busy"), "{resp:?}");
        assert_eq!(
            crate::stats::EngineStats::get(&engine.stats.rejected_conns),
            1
        );
        // Release the slot, then stop the server.
        let mut w1 = BufWriter::new(s1);
        writeln!(w1, "SHUTDOWN").unwrap();
        w1.flush().unwrap();
        assert!(read_response(&mut r1).unwrap().unwrap().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn saturated_threaded_pool_rejects_with_busy() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        }));
        let handle = spawn_server_threaded(Arc::clone(&engine)).unwrap();
        // First connection occupies the only worker.
        let s1 = TcpStream::connect(handle.addr()).unwrap();
        let mut r1 = BufReader::new(s1.try_clone().unwrap());
        assert!(read_response(&mut r1).unwrap().unwrap().is_ok());
        // Second connection must be turned away.
        let s2 = TcpStream::connect(handle.addr()).unwrap();
        let mut r2 = BufReader::new(s2.try_clone().unwrap());
        let resp = read_response(&mut r2).unwrap().unwrap();
        assert!(resp.header.starts_with("ERR busy"), "{resp:?}");
        assert_eq!(
            crate::stats::EngineStats::get(&engine.stats.rejected_conns),
            1
        );
        // Release the worker, then stop the server.
        let mut w1 = BufWriter::new(s1);
        writeln!(w1, "SHUTDOWN").unwrap();
        w1.flush().unwrap();
        assert!(read_response(&mut r1).unwrap().unwrap().is_ok());
        handle.join().unwrap();
    }
}
