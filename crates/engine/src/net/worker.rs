//! The worker pool: frames in, responses out.
//!
//! A worker receives a *connection* (not a frame) from the reactor,
//! drains that connection's frame queue FIFO, and clears `in_flight`
//! under the queue lock when it runs dry — the handshake that keeps one
//! connection's commands strictly ordered while different connections
//! execute in parallel (see `conn.rs`). Responses are appended to the
//! connection's output buffer and flushed opportunistically right here,
//! so warm-path latency is a socket write, not a reactor tick.
//!
//! A panicking command handler is contained per frame: the worker counts
//! it, kills only that connection, and survives to serve the next one —
//! the pool never shrinks.

use super::conn::{push_response, Conn, Frame};
use crate::engine::Engine;
use crate::protocol::{Command, Response};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};

/// Spawns one worker thread off the shared channel. The worker exits when
/// the reactor drops the sender.
pub(crate) fn spawn(
    engine: Arc<Engine>,
    rx: Arc<Mutex<mpsc::Receiver<Arc<Conn>>>>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    thread::spawn(move || loop {
        let conn = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(conn) = conn else { break };
        drain(&engine, &conn, &shutdown);
    })
}

/// Drains one connection's frame queue, releasing ownership when empty.
fn drain(engine: &Engine, conn: &Arc<Conn>, shutdown: &AtomicBool) {
    loop {
        let frame = {
            let mut p = conn.lock_pending();
            match p.queue.pop_front() {
                Some(f) => f,
                None => {
                    // Clearing in_flight under the queue lock closes the
                    // race with the reactor appending a frame right now:
                    // either we saw it above, or the reactor sees
                    // `in_flight == false` and schedules afresh.
                    p.in_flight = false;
                    return;
                }
            }
        };
        if conn.is_dead() {
            let mut p = conn.lock_pending();
            p.queue.clear();
            p.in_flight = false;
            return;
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process(engine, conn, frame, shutdown)
        }));
        if result.is_err() {
            // One bad request costs exactly one connection; the worker
            // lives on.
            engine.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            conn.kill();
            let mut p = conn.lock_pending();
            p.queue.clear();
            p.in_flight = false;
            return;
        }
    }
}

/// Executes one frame and appends its response in-slot.
fn process(engine: &Engine, conn: &Arc<Conn>, frame: Frame, shutdown: &AtomicBool) {
    let (tag, resp, stop, is_shutdown) = match frame {
        Frame::ProtoErr { tag, msg } => (tag, Response::err("proto", msg), false, false),
        Frame::Cmd { tag, cmd } => {
            let stop = matches!(cmd, Command::Close | Command::Shutdown);
            let is_shutdown = matches!(cmd, Command::Shutdown);
            let mut session = conn.session.lock().unwrap_or_else(PoisonError::into_inner);
            let resp = engine.dispatch(&mut session, cmd);
            (tag, resp, stop, is_shutdown)
        }
    };
    if is_shutdown {
        // Raise the flag before the (fallible) acknowledgement flush: a
        // client that sends SHUTDOWN and slams its socket shut must still
        // stop the server. `dispatch` already flushed the warm file.
        shutdown.store(true, Ordering::Release);
    }
    push_response(conn, tag.as_deref(), &resp);
    if stop {
        // Later pipelined frames on a closed session get no responses —
        // the connection is going away, exactly like a mid-pipeline
        // disconnect.
        conn.lock_pending().queue.clear();
        conn.lock_io().close_after_flush = true;
    }
    // Opportunistic flush; whatever stays buffered (or the
    // close_after_flush close itself) is the reactor's next pass.
    if conn.flush_io().is_err() {
        engine.stats.write_errors.fetch_add(1, Ordering::Relaxed);
        conn.kill();
    }
}
