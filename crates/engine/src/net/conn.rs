//! Shared per-connection state: the socket, its buffered output, the FIFO
//! frame queue, and the session — the pieces the reactor and the worker
//! pool hand back and forth.
//!
//! ### Ordering invariant
//!
//! Pipelining is only sound if one connection's commands execute — and
//! respond — strictly in request order. Two rules enforce that here:
//!
//! 1. The reactor appends frames to `pending.queue` in wire order (it is
//!    the only reader of the socket).
//! 2. At most one worker processes a connection at a time: the reactor
//!    schedules a connection onto the worker channel only when
//!    `pending.in_flight` is false, and the owning worker drains the queue
//!    FIFO, clearing `in_flight` under the same lock that guards the
//!    queue — so a frame arriving concurrently is either seen by the
//!    draining worker or triggers a fresh schedule, never neither.
//!
//! Responses are appended to `io.out` by that single owning worker, so
//! output order equals execution order equals request order.

use crate::engine::Session;
use crate::protocol::Command;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// One complete request, assembled by the reactor (command line plus any
/// dot-terminated body), or a protocol error that must still produce an
/// in-order response.
#[derive(Debug)]
pub(crate) enum Frame {
    /// A parsed command, body already attached.
    Cmd {
        /// Echoed back on the response header.
        tag: Option<String>,
        /// The command to dispatch.
        cmd: Command,
    },
    /// A request that failed framing/parsing; answered `ERR proto …` in
    /// its request slot so pipelined clients stay positionally paired.
    ProtoErr {
        /// Echoed back on the response header.
        tag: Option<String>,
        /// Human-readable error detail.
        msg: String,
    },
}

/// Buffered response bytes for one connection, flushed non-blockingly by
/// whichever side (worker or reactor) touches the connection next.
pub(crate) struct ConnIo {
    /// Serialized responses not yet fully written to the socket.
    pub out: Vec<u8>,
    /// How many bytes of `out` have been written so far.
    pub pos: usize,
    /// Close the connection once `out` drains (set by `CLOSE`, `SHUTDOWN`,
    /// EOF, and fatal protocol errors).
    pub close_after_flush: bool,
    /// When the last flush attempt made no progress on a non-empty buffer;
    /// the reactor turns a long stall into a `write_errors`-counted drop.
    pub stalled_since: Option<Instant>,
}

/// The FIFO frame queue plus the single-owner flag (see module docs).
pub(crate) struct Pending {
    /// Assembled frames awaiting execution, in wire order.
    pub queue: VecDeque<Frame>,
    /// Whether a worker currently owns this connection's queue.
    pub in_flight: bool,
}

/// One live connection, shared between the reactor and the worker pool.
pub(crate) struct Conn {
    /// The non-blocking socket. The reactor reads; the owning worker and
    /// the reactor both write (serialized by the `io` lock).
    pub stream: TcpStream,
    /// Output buffer state.
    pub io: Mutex<ConnIo>,
    /// Frame queue state.
    pub pending: Mutex<Pending>,
    /// The session; locked by the one worker executing this connection's
    /// frames (the lock makes `Conn: Sync`, the scheduling makes it
    /// uncontended).
    pub session: Mutex<Session>,
    /// Set when the connection is beyond saving (I/O error, write-stall
    /// timeout, handler panic); the reactor reaps it on its next tick.
    pub dead: AtomicBool,
}

/// Serializes a response (tag prefixed onto the header line when present)
/// and appends it to the connection's output buffer. Actual socket writes
/// happen in [`Conn::flush_io`].
pub(crate) fn push_response(conn: &Conn, tag: Option<&str>, resp: &crate::protocol::Response) {
    let mut bytes = Vec::with_capacity(64);
    if let Some(t) = tag {
        let _ = write!(bytes, "@{t} ");
    }
    let _ = resp.write_to(&mut bytes);
    let mut io = conn.lock_io();
    io.out.extend_from_slice(&bytes);
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, session: Session) -> Conn {
        Conn {
            stream,
            io: Mutex::new(ConnIo {
                out: Vec::new(),
                pos: 0,
                close_after_flush: false,
                stalled_since: None,
            }),
            pending: Mutex::new(Pending {
                queue: VecDeque::new(),
                in_flight: false,
            }),
            session: Mutex::new(session),
            dead: AtomicBool::new(false),
        }
    }

    /// Marks the connection for reaping.
    pub(crate) fn kill(&self) {
        self.dead.store(true, Ordering::Release);
    }

    /// Whether the connection is marked for reaping.
    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Locks the io half, recovering from poisoning (a panicking worker
    /// must not wedge the reactor's flush loop).
    pub(crate) fn lock_io(&self) -> MutexGuard<'_, ConnIo> {
        self.io.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks the pending half, recovering from poisoning.
    pub(crate) fn lock_pending(&self) -> MutexGuard<'_, Pending> {
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to flush buffered output without blocking. Returns
    /// `Ok(true)` when the buffer fully drained, `Ok(false)` when bytes
    /// remain (the socket is backed up), `Err` on a dead socket. Progress
    /// resets the stall clock; a no-progress attempt starts it.
    pub(crate) fn flush_io(&self) -> io::Result<bool> {
        let mut io = self.lock_io();
        if io.pos >= io.out.len() {
            io.out.clear();
            io.pos = 0;
            io.stalled_since = None;
            return Ok(true);
        }
        loop {
            let pos = io.pos;
            match (&self.stream).write(&io.out[pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    io.pos += n;
                    io.stalled_since = None;
                    if io.pos >= io.out.len() {
                        io.out.clear();
                        io.pos = 0;
                        return Ok(true);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if io.stalled_since.is_none() {
                        io.stalled_since = Some(Instant::now());
                    }
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}
