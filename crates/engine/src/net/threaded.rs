//! The thread-per-connection front end: the pre-reactor serving model,
//! kept as the parity oracle and the benchmark baseline (experiment E21
//! measures the reactor's throughput against it at equal worker count).
//!
//! One listener thread accepts connections and hands them to
//! `cfg.workers` worker threads over an `mpsc` channel; a session costs a
//! whole worker for its lifetime, so admission is strict: when every
//! worker is busy a new connection gets a one-line `ERR busy` — written
//! non-blockingly, so a slow-loris client can no longer freeze the accept
//! loop — and is closed. Sockets carry both read *and* write timeouts: a
//! client that stops draining responses expires the write (counted in
//! `write_errors`) instead of hanging its worker forever. The protocol
//! surface matches the reactor front end (tags, `BATCH`, body caps);
//! only the execution model differs.

use crate::engine::Engine;
use crate::protocol::{parse_command, read_body, split_tag, BodyError, Command, Response};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

/// Writes one response, prefixing the echoed request tag when present.
fn write_tagged(w: &mut impl Write, tag: Option<&str>, resp: &Response) -> io::Result<()> {
    if let Some(t) = tag {
        write!(w, "@{t} ")?;
    }
    resp.write_to(w)
}

/// Runs the thread-per-connection accept loop until a client sends
/// `SHUTDOWN`. Returns once all worker threads have drained and joined.
pub fn serve_threaded(engine: Arc<Engine>, listener: TcpListener) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let workers = engine.cfg.workers.max(1);
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut pool = Vec::with_capacity(workers);
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active);
        pool.push(thread::spawn(move || loop {
            let stream = {
                let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                guard.recv()
            };
            let Ok(stream) = stream else { break };
            // One bad connection must cost exactly one connection: a
            // handler panic is contained here so the worker survives to
            // serve the next client instead of silently shrinking the
            // pool (and leaking its admission slot) forever.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_connection(&engine, stream, &shutdown, addr)
            }));
            match result {
                Ok(Ok(())) => {}
                Ok(Err(_)) => {
                    // The client vanished mid-response (broken pipe /
                    // reset / timeout on write). The session died with the
                    // socket; count it and move on.
                    engine.stats.write_errors.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    engine.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
            active.fetch_sub(1, Ordering::Release);
        }));
    }
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Strict admission: claim a worker slot before queueing; if none is
        // free, tell the client now instead of letting it wait in line.
        if active.fetch_add(1, Ordering::Acquire) >= workers {
            active.fetch_sub(1, Ordering::Release);
            engine.stats.rejected_conns.fetch_add(1, Ordering::Relaxed);
            // Non-blocking rejection: one attempt into the (empty) socket
            // send buffer. A client that refuses to read cannot stall the
            // accept loop — worst case it just never sees the reason.
            let mut out = Vec::new();
            let _ = Response::err("busy", format!("all {workers} workers busy, try again"))
                .write_to(&mut out);
            if stream.set_nonblocking(true).is_ok() {
                let _ = (&stream).write(&out);
            }
            continue;
        }
        if tx.send(stream).is_err() {
            break;
        }
    }
    drop(tx);
    for h in pool {
        let _ = h.join();
    }
    Ok(())
}

/// Serves one connection: a session lives exactly as long as its socket.
fn handle_connection(
    engine: &Engine,
    stream: TcpStream,
    shutdown: &AtomicBool,
    listener_addr: SocketAddr,
) -> io::Result<()> {
    stream.set_read_timeout(Some(engine.cfg.idle_timeout))?;
    // The write timeout is the stalled-client guard: without it, a peer
    // that stops draining responses parks this worker inside a blocking
    // write for good.
    stream.set_write_timeout(Some(engine.cfg.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut session = engine.open_session();
    Response::ok("cqa-engine ready").write_to(&mut writer)?;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            // Idle timeout or torn connection: drop the session.
            Err(_) => break,
        }
        if line.trim().is_empty() {
            continue;
        }
        let (tag, rest) = match split_tag(&line) {
            Ok(parts) => parts,
            Err(e) => {
                write_tagged(&mut writer, None, &Response::err("proto", e))?;
                continue;
            }
        };
        let cmd = match parse_command(rest) {
            Ok(cmd) => cmd,
            Err(e) => {
                write_tagged(&mut writer, tag, &Response::err("proto", e))?;
                continue;
            }
        };
        let cmd = match cmd {
            Command::Load { program: None } => {
                match read_body(&mut reader, engine.cfg.max_body_bytes) {
                    Ok(body) => Command::Load {
                        program: Some(body),
                    },
                    Err(e @ BodyError::TooLarge { .. }) => {
                        write_tagged(&mut writer, tag, &Response::err("proto", e.to_string()))?;
                        continue;
                    }
                    Err(BodyError::Io(_)) => break,
                }
            }
            Command::Batch { specs: None } => {
                match read_body(&mut reader, engine.cfg.max_body_bytes) {
                    Ok(body) => Command::Batch { specs: Some(body) },
                    Err(e @ BodyError::TooLarge { .. }) => {
                        write_tagged(&mut writer, tag, &Response::err("proto", e.to_string()))?;
                        continue;
                    }
                    Err(BodyError::Io(_)) => break,
                }
            }
            other => other,
        };
        let stop = matches!(cmd, Command::Close | Command::Shutdown);
        let is_shutdown = matches!(cmd, Command::Shutdown);
        let resp = engine.dispatch(&mut session, cmd);
        if is_shutdown {
            // Raise the flag before the (fallible) acknowledgement write:
            // a client that sends SHUTDOWN and slams its socket shut must
            // still stop the server.
            shutdown.store(true, Ordering::Release);
            // Self-connect to pop the listener out of its blocking accept.
            let _ = TcpStream::connect(listener_addr);
        }
        write_tagged(&mut writer, tag, &resp)?;
        if stop {
            break;
        }
    }
    Ok(())
}
