//! The reactor: every open connection parked on a non-blocking socket,
//! one thread assembling complete request frames and flushing buffered
//! responses.
//!
//! std-only means no epoll/kqueue: the reactor is a poll loop over the
//! registered sockets. Each pass it accepts new connections (admission =
//! `max_sessions`, overflow answered `ERR busy` without ever blocking the
//! accept path), drains readable bytes into per-connection buffers, cuts
//! complete frames (command line + optional dot-terminated body, with the
//! `max_body_bytes` cap enforced *during* assembly so an oversized body
//! never materializes in memory), schedules connections with runnable
//! frames onto the worker channel, flushes pending output, and enforces
//! the idle/write-stall timeouts. A pass that made progress loops again
//! immediately; an idle pass sleeps ~1 ms — so N parked sessions cost one
//! mostly-sleeping thread and zero workers, while a loaded reactor runs
//! syscall-bound.

use super::conn::{push_response, Conn, Frame};
use super::worker;
use crate::engine::Engine;
use crate::protocol::{parse_command, split_tag, Command, Response};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long an idle reactor pass sleeps before polling again.
const IDLE_TICK: Duration = Duration::from_millis(1);
/// How long the shutdown drain waits for in-flight work and unflushed
/// responses before closing sockets anyway.
const DRAIN_DEADLINE: Duration = Duration::from_secs(2);
/// How long a rejected connection gets to drain its one-line `ERR busy`
/// before the reactor drops it.
const REJECT_DEADLINE: Duration = Duration::from_secs(2);

/// A dot-terminated body under assembly.
struct BodyAssembly {
    tag: Option<String>,
    /// `true` for `BATCH`, `false` for `LOAD`.
    batch: bool,
    text: String,
    /// The body blew the cap; keep consuming (the stream must stay
    /// framed) but stop buffering.
    over: bool,
}

/// Reactor-private per-connection read state. Only the reactor touches
/// it, so frames are cut in wire order by construction.
pub(crate) struct ReadState {
    /// Raw bytes read off the socket, not yet cut into lines.
    buf: Vec<u8>,
    /// `Some` while a `LOAD`/`BATCH` body is being assembled.
    body: Option<BodyAssembly>,
    /// Last time bytes or frames arrived (drives the idle timeout).
    last_activity: Instant,
    /// The peer half-closed its send side.
    eof: bool,
}

impl ReadState {
    pub(crate) fn new() -> ReadState {
        ReadState {
            buf: Vec::new(),
            body: None,
            last_activity: Instant::now(),
            eof: false,
        }
    }
}

/// Cuts complete frames out of `state.buf`, advancing the body-assembly
/// state machine. Returns `Err` only for unrecoverable framing damage (a
/// line longer than the cap): the caller answers `ERR proto` and closes.
pub(crate) fn assemble(
    state: &mut ReadState,
    max_body: usize,
    frames: &mut Vec<Frame>,
) -> Result<(), String> {
    let max_line = max_body.max(64 << 10) + 1024;
    let mut start = 0usize;
    while let Some(rel) = state.buf[start..].iter().position(|&b| b == b'\n') {
        let end = start + rel;
        let mut line_bytes = &state.buf[start..end];
        if line_bytes.last() == Some(&b'\r') {
            line_bytes = &line_bytes[..line_bytes.len() - 1];
        }
        let line = String::from_utf8_lossy(line_bytes);
        start = end + 1;
        match &mut state.body {
            Some(body) => {
                if line == "." {
                    let body = state.body.take().expect("assembly in progress");
                    frames.push(if body.over {
                        Frame::ProtoErr {
                            tag: body.tag,
                            msg: format!("body too large (limit={max_body} bytes)"),
                        }
                    } else {
                        Frame::Cmd {
                            tag: body.tag,
                            cmd: if body.batch {
                                Command::Batch {
                                    specs: Some(body.text),
                                }
                            } else {
                                Command::Load {
                                    program: Some(body.text),
                                }
                            },
                        }
                    });
                } else {
                    let line = line.strip_prefix('.').unwrap_or(&line);
                    if !body.over && body.text.len() + line.len() + 1 > max_body {
                        body.over = true;
                        body.text.clear();
                    }
                    if !body.over {
                        body.text.push_str(line);
                        body.text.push('\n');
                    }
                }
            }
            None => {
                if line.trim().is_empty() {
                    continue;
                }
                let (tag, rest) = match split_tag(&line) {
                    Ok((tag, rest)) => (tag.map(|t| t.to_string()), rest),
                    Err(e) => {
                        frames.push(Frame::ProtoErr { tag: None, msg: e });
                        continue;
                    }
                };
                match parse_command(rest) {
                    Ok(Command::Load { program: None }) => {
                        state.body = Some(BodyAssembly {
                            tag,
                            batch: false,
                            text: String::new(),
                            over: false,
                        });
                    }
                    Ok(Command::Batch { specs: None }) => {
                        state.body = Some(BodyAssembly {
                            tag,
                            batch: true,
                            text: String::new(),
                            over: false,
                        });
                    }
                    Ok(cmd) => frames.push(Frame::Cmd { tag, cmd }),
                    Err(e) => frames.push(Frame::ProtoErr { tag, msg: e }),
                }
            }
        }
    }
    state.buf.drain(..start);
    if state.buf.len() > max_line {
        state.buf.clear();
        state.eof = true;
        return Err(format!("request line too long (limit={max_line} bytes)"));
    }
    Ok(())
}

/// Drains readable bytes into the connection's buffer. Returns bytes read
/// this pass; sets `eof` on a half-close.
fn read_into(conn: &Conn, rs: &mut ReadState) -> io::Result<usize> {
    let mut chunk = [0u8; 4096];
    let mut total = 0usize;
    loop {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                rs.eof = true;
                break;
            }
            Ok(n) => {
                rs.buf.extend_from_slice(&chunk[..n]);
                total += n;
                // Fairness valve: one greedy connection cannot starve the
                // rest of the pass.
                if total >= 1 << 20 {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(total)
}

/// An over-admission connection draining its `ERR busy` non-blockingly.
struct Reject {
    stream: TcpStream,
    out: Vec<u8>,
    pos: usize,
    deadline: Instant,
}

/// Attempts each pending rejection write without blocking; drops finished,
/// dead, or expired ones.
fn service_rejects(rejects: &mut Vec<Reject>, now: Instant) {
    rejects.retain_mut(|r| {
        if now >= r.deadline {
            return false;
        }
        loop {
            match (&r.stream).write(&r.out[r.pos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    r.pos += n;
                    if r.pos >= r.out.len() {
                        return false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    });
}

/// Runs the reactor until a client sends `SHUTDOWN`. Spawns and joins the
/// worker pool; returns once every worker has drained.
pub(crate) fn run(engine: Arc<Engine>, listener: TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = engine.cfg.workers.max(1);
    let (tx, rx) = mpsc::channel::<Arc<Conn>>();
    let rx = Arc::new(Mutex::new(rx));
    let pool: Vec<_> = (0..workers)
        .map(|_| worker::spawn(Arc::clone(&engine), Arc::clone(&rx), Arc::clone(&shutdown)))
        .collect();
    let max_sessions = engine.cfg.max_sessions.max(1);
    let mut conns: Vec<(Arc<Conn>, ReadState)> = Vec::new();
    let mut rejects: Vec<Reject> = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        let mut progressed = false;
        // Admission: accept everything ready, register up to the session
        // limit, queue the rest for a non-blocking `ERR busy`.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progressed = true;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    if conns.len() >= max_sessions {
                        engine.stats.rejected_conns.fetch_add(1, Ordering::Relaxed);
                        let mut out = Vec::new();
                        let _ = Response::err(
                            "busy",
                            format!("all {max_sessions} sessions in use, try again"),
                        )
                        .write_to(&mut out);
                        rejects.push(Reject {
                            stream,
                            out,
                            pos: 0,
                            deadline: Instant::now() + REJECT_DEADLINE,
                        });
                        continue;
                    }
                    engine.stats.open_conns.fetch_add(1, Ordering::Relaxed);
                    let conn = Arc::new(Conn::new(stream, engine.open_session()));
                    push_response(&conn, None, &Response::ok("cqa-engine ready"));
                    let _ = conn.flush_io();
                    conns.push((conn, ReadState::new()));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let now = Instant::now();
        for (conn, rs) in conns.iter_mut() {
            if conn.is_dead() {
                continue;
            }
            // Read and frame.
            if !rs.eof {
                match read_into(conn, rs) {
                    Ok(n) if n > 0 => {
                        progressed = true;
                        rs.last_activity = now;
                    }
                    Ok(_) => {}
                    Err(_) => {
                        conn.kill();
                        continue;
                    }
                }
            }
            let mut frames = Vec::new();
            if let Err(msg) = assemble(rs, engine.cfg.max_body_bytes, &mut frames) {
                frames.push(Frame::ProtoErr { tag: None, msg });
                conn.lock_io().close_after_flush = true;
            }
            if !frames.is_empty() {
                progressed = true;
                let mut p = conn.lock_pending();
                p.queue.extend(frames);
                if !p.in_flight {
                    p.in_flight = true;
                    drop(p);
                    let _ = tx.send(Arc::clone(conn));
                }
            }
            // Flush, and turn a long write stall into a counted drop.
            match conn.flush_io() {
                Ok(true) => {
                    if conn.lock_io().close_after_flush {
                        conn.kill();
                        continue;
                    }
                }
                Ok(false) => {
                    let stalled = conn.lock_io().stalled_since;
                    if let Some(t) = stalled {
                        if now.duration_since(t) >= engine.cfg.write_timeout {
                            engine.stats.write_errors.fetch_add(1, Ordering::Relaxed);
                            conn.kill();
                            continue;
                        }
                    }
                }
                Err(_) => {
                    engine.stats.write_errors.fetch_add(1, Ordering::Relaxed);
                    conn.kill();
                    continue;
                }
            }
            // EOF and idle reaping — only once nothing is queued, running,
            // or buffered for this connection.
            let queue_idle = {
                let p = conn.lock_pending();
                p.queue.is_empty() && !p.in_flight
            };
            let out_empty = {
                let io = conn.lock_io();
                io.pos >= io.out.len()
            };
            if queue_idle
                && out_empty
                && rs.body.is_none()
                && (rs.eof || now.duration_since(rs.last_activity) >= engine.cfg.idle_timeout)
            {
                conn.kill();
            } else if rs.eof && queue_idle && rs.body.is_some() {
                // Half-closed mid-body: no terminator can arrive.
                conn.kill();
            }
        }
        let before = conns.len();
        conns.retain(|(conn, _)| {
            if conn.is_dead() {
                engine.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
                let _ = conn.stream.shutdown(Shutdown::Both);
                false
            } else {
                true
            }
        });
        progressed |= conns.len() != before || !rejects.is_empty();
        service_rejects(&mut rejects, now);
        if !progressed {
            thread::sleep(IDLE_TICK);
        }
    }
    // Drain: give in-flight commands and buffered responses (the SHUTDOWN
    // acknowledgement included) a bounded window to finish.
    let deadline = Instant::now() + DRAIN_DEADLINE;
    loop {
        let mut all_idle = true;
        for (conn, _) in &conns {
            if conn.is_dead() {
                continue;
            }
            let busy = {
                let p = conn.lock_pending();
                !p.queue.is_empty() || p.in_flight
            };
            let flushed = matches!(conn.flush_io(), Ok(true));
            if busy || !flushed {
                all_idle = false;
            }
        }
        if all_idle || Instant::now() >= deadline {
            break;
        }
        thread::sleep(IDLE_TICK);
    }
    for (conn, _) in &conns {
        engine.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
    drop(tx);
    for h in pool {
        let _ = h.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(input: &[u8], max_body: usize) -> (Vec<Frame>, Result<(), String>, ReadState) {
        let mut rs = ReadState::new();
        rs.buf.extend_from_slice(input);
        let mut frames = Vec::new();
        let r = assemble(&mut rs, max_body, &mut frames);
        (frames, r, rs)
    }

    #[test]
    fn cuts_simple_and_tagged_commands() {
        let (frames, r, rs) = cut(b"STATS\n@7 EXEC q\npartial", 1024);
        r.unwrap();
        assert_eq!(frames.len(), 2);
        assert!(
            matches!(
                &frames[0],
                Frame::Cmd {
                    tag: None,
                    cmd: Command::Stats
                }
            ),
            "untagged STATS"
        );
        match &frames[1] {
            Frame::Cmd {
                tag: Some(t),
                cmd: Command::Exec { name, .. },
            } => {
                assert_eq!(t, "7");
                assert_eq!(name, "q");
            }
            other => panic!("expected tagged EXEC, got {other:?}"),
        }
        assert_eq!(rs.buf, b"partial", "incomplete line stays buffered");
    }

    #[test]
    fn assembles_load_and_batch_bodies() {
        let (frames, r, _) = cut(
            b"LOAD\nrel S(y) := y > 0\n..dot\n.\nBATCH\nq 0.1\n.\n",
            1024,
        );
        r.unwrap();
        assert_eq!(frames.len(), 2);
        match &frames[0] {
            Frame::Cmd {
                cmd: Command::Load { program: Some(p) },
                ..
            } => assert_eq!(p, "rel S(y) := y > 0\n.dot\n"),
            other => panic!("expected LOAD frame, got {other:?}"),
        }
        match &frames[1] {
            Frame::Cmd {
                cmd: Command::Batch { specs: Some(s) },
                ..
            } => assert_eq!(s, "q 0.1\n"),
            other => panic!("expected BATCH frame, got {other:?}"),
        }
    }

    #[test]
    fn split_body_arrives_across_reads() {
        let mut rs = ReadState::new();
        let mut frames = Vec::new();
        rs.buf.extend_from_slice(b"LOAD\nrel S(y)");
        assemble(&mut rs, 1024, &mut frames).unwrap();
        assert!(frames.is_empty());
        rs.buf.extend_from_slice(b" := y > 0\n.\nSTATS\n");
        assemble(&mut rs, 1024, &mut frames).unwrap();
        assert_eq!(frames.len(), 2);
        assert!(matches!(
            &frames[0],
            Frame::Cmd {
                cmd: Command::Load { program: Some(_) },
                ..
            }
        ));
        assert!(matches!(
            &frames[1],
            Frame::Cmd {
                cmd: Command::Stats,
                ..
            }
        ));
    }

    #[test]
    fn oversized_body_yields_proto_err_and_keeps_framing() {
        let (frames, r, _) = cut(b"@t LOAD\n0123456789abcdef\n.\nSTATS\n", 8);
        r.unwrap();
        assert_eq!(frames.len(), 2);
        match &frames[0] {
            Frame::ProtoErr { tag: Some(t), msg } => {
                assert_eq!(t, "t");
                assert!(msg.contains("body too large"), "{msg}");
            }
            other => panic!("expected ProtoErr, got {other:?}"),
        }
        assert!(
            matches!(
                &frames[1],
                Frame::Cmd {
                    cmd: Command::Stats,
                    ..
                }
            ),
            "the next pipelined command still parses"
        );
    }

    #[test]
    fn unparsable_line_becomes_in_slot_proto_err() {
        let (frames, r, _) = cut(b"@a FROB\n@b STATS\n", 1024);
        r.unwrap();
        assert_eq!(frames.len(), 2);
        assert!(matches!(&frames[0], Frame::ProtoErr { tag: Some(t), .. } if t == "a"));
        assert!(matches!(&frames[1], Frame::Cmd { tag: Some(t), .. } if t == "b"));
    }

    #[test]
    fn runaway_line_is_fatal() {
        let mut rs = ReadState::new();
        rs.buf = vec![b'x'; (64 << 10) + 2048];
        let mut frames = Vec::new();
        let err = assemble(&mut rs, 1024, &mut frames).unwrap_err();
        assert!(err.contains("line too long"), "{err}");
        assert!(rs.eof, "connection stops reading after framing damage");
        assert!(rs.buf.is_empty());
    }
}
