//! Service counters and hand-rolled fixed-bucket latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (µs) of the latency buckets; one overflow bucket follows.
/// Roughly logarithmic: 100 µs … 3 s.
pub const LATENCY_BUCKETS_US: [u64; 10] = [
    100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000,
];

/// A fixed-bucket latency histogram (no allocation after construction,
/// relaxed atomics — counters, not synchronization).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Histogram {
    /// Records one observation of `us` microseconds.
    pub fn record(&self, us: u64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&hi| us <= hi)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// One-line rendering: `count=.. mean_us=.. | <=100us:3 <=1ms:1 >3s:0`.
    /// Empty buckets are omitted.
    pub fn render(&self) -> String {
        let mut out = format!("count={} mean_us={}", self.count(), self.mean_us());
        let mut any = false;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if !any {
                out.push_str(" |");
                any = true;
            }
            if i < LATENCY_BUCKETS_US.len() {
                out.push_str(&format!(" <={}us:{n}", LATENCY_BUCKETS_US[i]));
            } else {
                out.push_str(&format!(
                    " >{}us:{n}",
                    LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1]
                ));
            }
        }
        out
    }
}

/// Global service counters, shared by every session and worker.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Commands dispatched (all kinds).
    pub commands: AtomicU64,
    /// Commands currently executing.
    pub in_flight: AtomicU64,
    /// Sessions ever opened.
    pub sessions: AtomicU64,
    /// Requests that died on an exhausted [`cqa_logic::budget::EvalBudget`].
    pub over_budget: AtomicU64,
    /// `LOAD`/`PREPARE` requests rejected by the static-analysis gate.
    pub lint_rejected: AtomicU64,
    /// Connections rejected because the session limit was reached.
    pub rejected_conns: AtomicU64,
    /// Connections currently open (reactor-registered, not yet closed).
    pub open_conns: AtomicU64,
    /// Inner executions run through `BATCH` bodies (each spec line counts
    /// once, successes and failures alike).
    pub batch_execs: AtomicU64,
    /// Response writes that failed because the client vanished mid-reply
    /// (broken pipe / reset). Each one is a session closed cleanly where
    /// an unwrap would have panicked the worker.
    pub write_errors: AtomicU64,
    /// Worker iterations that caught a connection-handler panic and kept
    /// the worker alive (the pool never shrinks on a poisoned request).
    pub worker_panics: AtomicU64,
    /// Answers that degraded from exact to (ε, δ) Monte Carlo.
    pub degraded: AtomicU64,
    /// Distinct formula nodes resident across all session IR arenas
    /// (arena occupancy; sessions report deltas after each command).
    pub ir_nodes: AtomicU64,
    /// Distinct polynomial terms resident across all session IR arenas.
    pub ir_terms: AtomicU64,
    /// Total node intern requests served across all session arenas; the
    /// ratio `ir_intern_calls / ir_nodes` is the hash-consing dedup ratio.
    pub ir_intern_calls: AtomicU64,
    /// Monte Carlo sample lanes decided by the batched kernel's certified
    /// `f64` fast path.
    pub batch_fast_lanes: AtomicU64,
    /// Monte Carlo sample lanes that fell back to exact rational
    /// evaluation. `batch_exact_lanes / (batch_fast_lanes +
    /// batch_exact_lanes)` is the fallback rate; a climb means sample
    /// points are landing near sign boundaries and the kernel is quietly
    /// doing big-rational work.
    pub batch_exact_lanes: AtomicU64,
    /// Cache misses answered without quantifier elimination because the
    /// interval analysis proved the query statically unsatisfiable.
    pub absint_unsat_skips: AtomicU64,
    /// Cache misses answered without quantifier elimination because the
    /// interval analysis proved the query statically valid.
    pub absint_valid_skips: AtomicU64,
    /// Monte Carlo sample lanes that skipped kernel evaluation because
    /// they fell outside the interval-certified bounding box (the lanes
    /// are provably misses; skipping them leaves estimates bit-identical).
    pub absint_box_skipped_lanes: AtomicU64,
    /// Cold eliminations the planner routed to Fourier–Motzkin.
    pub plan_fm: AtomicU64,
    /// Cold eliminations the planner routed to Loos–Weispfenning.
    pub plan_lw: AtomicU64,
    /// Cold eliminations the planner routed to whole-formula
    /// Cohen–Hörmander (polynomial queries; never sub-split or shared).
    pub plan_ch: AtomicU64,
    /// Per-command latency histograms, indexed by
    /// [`crate::CommandKind`] discriminant.
    pub latency: [Histogram; super::protocol::N_COMMAND_KINDS],
}

impl EngineStats {
    /// Relaxed load of a counter — convenience for reporting.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.record(50);
        h.record(150);
        h.record(5_000_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean_us(), (50 + 150 + 5_000_000) / 3);
        let s = h.render();
        assert!(s.contains("<=100us:1"), "{s}");
        assert!(s.contains("<=300us:1"), "{s}");
        assert!(s.contains(">3000000us:1"), "{s}");
    }

    #[test]
    fn empty_histogram_renders_cleanly() {
        let h = Histogram::default();
        assert_eq!(h.render(), "count=0 mean_us=0");
    }
}
