//! The engine core: session state and command execution.

use crate::cache::{formula_bytes, CacheEntry, CacheKey, QueryCache, DEFAULT_CACHE_SHARDS};
use crate::protocol::{parse_exec_args, Command, Response};
use crate::stats::EngineStats;
use crate::storage::{Storage, StorageError};
use cqa_agg::AggError;
use cqa_analyze::{analyze_source, AnalyzerConfig, Statement, SumStmt};
use cqa_approx::sample::Witness;
use cqa_arith::Rat;
use cqa_core::Database;
use cqa_geom::VolumeError;
use cqa_logic::budget::EvalBudget;
use cqa_logic::{
    parse_formula_with, Arena, ArenaStats, Batch, BatchScratch, CompiledMatrix, ConstraintClass,
    Formula, LaneStats, SlotMap, BATCH_LANES,
};
use cqa_poly::Var;
use cqa_qe::{QeError, SimplifyMemo};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seed of the deterministic witness behind every degraded (ε, δ) answer:
/// approximate responses are reproducible across requests, sessions and
/// servers (and bit-identical under any concurrency level).
pub const MC_SEED: u64 = 0xC0A_5E55;

/// Engine configuration (server-wide).
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads executing commands. With the reactor front end this
    /// no longer bounds concurrent connections — idle sessions cost no
    /// worker — only how many commands execute at once.
    pub workers: usize,
    /// Maximum concurrently open sessions; the accept path answers
    /// `ERR busy` beyond this.
    pub max_sessions: usize,
    /// Prepared-query cache byte budget.
    pub cache_bytes: usize,
    /// Number of independent cache lock domains (rounded to a power of
    /// two). Answers and the warm-start file are shard-count-independent;
    /// only contention changes.
    pub cache_shards: usize,
    /// Per-request wall-clock budget (`None` = no deadline).
    pub timeout: Option<Duration>,
    /// Per-request cooperative step cap (`None` = unlimited).
    pub max_steps: Option<u64>,
    /// Default ε for degraded (ε, δ) answers.
    pub default_eps: f64,
    /// Default δ for degraded (ε, δ) answers.
    pub default_delta: f64,
    /// Socket read timeout: an idle/stalled client is disconnected after
    /// this long so it cannot hold a pool slot forever.
    pub idle_timeout: Duration,
    /// Socket write timeout: a client that stops draining its responses
    /// is disconnected after this long (counted in `write_errors`)
    /// instead of hanging a worker inside a blocking write.
    pub write_timeout: Duration,
    /// Maximum bytes accepted for one dot-terminated request body
    /// (`LOAD`/`BATCH`); larger bodies answer `ERR proto body too large`.
    pub max_body_bytes: usize,
    /// Program source `LOAD`ed into every fresh session (`cqa-serve
    /// --preload`). Must be analyzer-clean — the server validates it at
    /// startup before accepting connections.
    pub preload: Option<String>,
    /// Whether the interval abstract-interpretation pass runs on request
    /// formulas: statically decided queries skip QE, and Monte Carlo
    /// lanes provably outside the derived bounding box skip kernel
    /// evaluation. Verdicts only skip or shrink work — answers are
    /// bit-identical with the pass off.
    pub absint: bool,
    /// Whether the cost-based QE planner runs on cache misses: per query
    /// it picks the elimination method (FM/LW/Hörmander), the variable
    /// order and early DNF pruning from the static cost model and absint
    /// certificates, and memoizes quantifier-block results in the shared
    /// cache so structurally overlapping queries share elimination work
    /// (see `cqa_qe::plan`). Off (`--no-plan`) falls back to the fixed
    /// class dispatcher — the parity oracle; answers are bit-identical
    /// either way.
    pub plan: bool,
    /// Data directory for durable storage (WAL + snapshot + cache
    /// warm-start). `None` keeps the engine fully in-memory; `Some` turns
    /// on the `PERSIST` wire surface (construct via
    /// [`Engine::with_storage`] so recovery runs before any connection).
    pub data_dir: Option<std::path::PathBuf>,
    /// Compaction cadence: after this many WAL records the durable
    /// sources are folded into a fresh snapshot and the log truncated.
    pub snapshot_every: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 4,
            max_sessions: 1024,
            cache_bytes: 8 << 20,
            cache_shards: DEFAULT_CACHE_SHARDS,
            timeout: Some(Duration::from_millis(2_000)),
            max_steps: None,
            default_eps: 0.05,
            default_delta: 0.05,
            idle_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            max_body_bytes: 1 << 20,
            preload: None,
            absint: true,
            plan: true,
            data_dir: None,
            snapshot_every: 64,
        }
    }
}

/// A named prepared query. The formula is re-parsed against the session's
/// current variable interning at `EXEC` time (parsing is micro-cheap; the
/// expensive artifacts — QE output and compiled kernel — live in the
/// shared cache under the canonical key). After the first `EXEC`, the
/// canonical cache key itself is memoized alongside the source — warm
/// repeats skip parse/expand/simplify entirely and go straight to the
/// shared cache — guarded by the session's database generation so any
/// `LOAD` (which can redefine relations the query expands) invalidates it.
#[derive(Clone, Debug)]
pub struct Prepared {
    src: String,
    params: Vec<String>,
    /// `(db_gen, key)` from the last full `EXEC` of this query.
    memo: Option<(u64, CacheKey)>,
}

/// Per-connection state: the session database built from `LOAD`ed
/// programs, loaded Σ-terms, and named prepared queries. Sessions are
/// owned by one worker thread at a time; all cross-session sharing goes
/// through the [`Engine`]'s cache and stats.
#[derive(Default)]
pub struct Session {
    /// Accumulated, analyzer-accepted `.cqa` source.
    loaded_src: String,
    /// Database rebuilt from `loaded_src` after each successful `LOAD`.
    db: Database,
    /// `sum` statements by name, for `SUM`.
    sums: HashMap<String, SumStmt>,
    /// Prepared queries by name.
    prepared: HashMap<String, Prepared>,
    /// The session's hash-consed formula arena: every relation-expanded
    /// request formula and every QE output is interned here, so repeated
    /// requests share structure and the memoized simplifier below does
    /// each rewrite once per distinct node.
    arena: Arena,
    /// `FormulaId`-keyed memo table for [`cqa_qe::simplify_id`].
    simp: SimplifyMemo,
    /// Bumped on every successful `LOAD` (the only operation that swaps
    /// `db`); prepared-query memos are valid only for the generation they
    /// were computed under.
    db_gen: u64,
    /// `FormulaId`-keyed memo table for the interval abstract
    /// interpretation (verdicts and bounds certificates per node).
    absint: cqa_analyze::AbsintMemo,
    /// Arena counters as of the last flush into the engine-wide `STATS`
    /// aggregates (sessions report monotone deltas after each command).
    reported: ArenaStats,
    /// When `Some(name)`, the session is attached (via `PERSIST`) to the
    /// named durable database: every accepted `LOAD` is WAL-committed
    /// before the session mutates.
    durable: Option<String>,
}

impl Session {
    /// The session database (primarily for tests).
    pub fn db(&self) -> &Database {
        &self.db
    }
}

/// The shared engine: configuration, prepared-query cache, counters.
pub struct Engine {
    /// Service configuration.
    pub cfg: EngineConfig,
    /// The shared prepared-query cache.
    pub cache: QueryCache,
    /// Service counters and latency histograms.
    pub stats: EngineStats,
    /// The durable layer, when the engine was opened with a data
    /// directory ([`Engine::with_storage`]); `None` = in-memory only.
    pub storage: Option<Arc<Storage>>,
    started: Instant,
}

/// The planner's [`cqa_qe::plan::SubplanStore`] backed by the shared
/// [`QueryCache`]: quantifier-block QE results live in the cache's subplan
/// namespace (kind-separated from whole-query entries, so the two can
/// never collide — see `cache.rs`), making elimination sharing cross-query
/// *and* cross-session.
struct CacheSubplans<'a> {
    cache: &'a QueryCache,
}

impl cqa_qe::plan::SubplanStore for CacheSubplans<'_> {
    fn lookup(&self, hash: u128, dim: u32) -> Option<(Formula, Vec<Var>)> {
        self.cache
            .get_subplan(CacheKey { hash, dim })
            .map(|e| (e.qf.clone(), e.params.clone()))
    }

    fn store(&self, hash: u128, dim: u32, qf: &Formula, params: &[Var]) {
        self.cache.insert_subplan(
            CacheKey { hash, dim },
            crate::cache::SubplanEntry {
                qf: qf.clone(),
                params: params.to_vec(),
                bytes: formula_bytes(qf),
            },
        );
    }
}

/// How an `EXEC`/`VOLUME` answer was produced.
enum Answer {
    Exact(Rat),
    Approx {
        estimate: Rat,
        eps: f64,
        delta: f64,
        samples: usize,
        reason: &'static str,
    },
}

impl Engine {
    /// A fresh engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine {
            cache: QueryCache::with_shards(cfg.cache_bytes, cfg.cache_shards),
            stats: EngineStats::default(),
            cfg,
            storage: None,
            started: Instant::now(),
        }
    }

    /// A fresh engine with recovery run: when `cfg.data_dir` is set, the
    /// data directory is opened and replayed (snapshot, then WAL, torn
    /// tail truncated) and the cache warm-start file loaded — all before
    /// this returns, so by the time a server built on this engine accepts
    /// its first connection every durable database is recovered and the
    /// prepared-query cache is warm. With no `data_dir` this is exactly
    /// [`Engine::new`].
    pub fn with_storage(cfg: EngineConfig) -> Result<Engine, StorageError> {
        let mut engine = Engine::new(cfg);
        if let Some(dir) = engine.cfg.data_dir.clone() {
            let storage = Arc::new(Storage::open(&dir, engine.cfg.snapshot_every)?);
            storage.load_warm(&engine.cache);
            engine.storage = Some(storage);
        }
        Ok(engine)
    }

    /// Opens a session (counted in `STATS`), pre-`LOAD`ing the configured
    /// preamble program when one is set.
    pub fn open_session(&self) -> Session {
        self.stats.sessions.fetch_add(1, Ordering::Relaxed);
        let mut session = Session::default();
        if let Some(src) = &self.cfg.preload {
            let r = self.load(&mut session, src);
            debug_assert!(r.is_ok(), "preload must be validated at startup: {r:?}");
        }
        session
    }

    /// A fresh per-request budget from the configured caps.
    pub fn request_budget(&self) -> EvalBudget {
        let mut b = EvalBudget::unlimited();
        if let Some(t) = self.cfg.timeout {
            b = b.with_deadline(t);
        }
        if let Some(n) = self.cfg.max_steps {
            b = b.with_max_steps(n);
        }
        b
    }

    /// Executes one command against a session, recording latency,
    /// in-flight and command counters. `CLOSE`/`SHUTDOWN` only produce
    /// their acknowledgement here; the connection/listener layer acts on
    /// them.
    pub fn dispatch(&self, session: &mut Session, cmd: Command) -> Response {
        let kind = cmd.kind();
        self.stats.commands.fetch_add(1, Ordering::Relaxed);
        self.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let resp = match cmd {
            Command::Load { program: None } => {
                Response::err("proto", "LOAD body missing (connection layer bug)")
            }
            Command::Load { program: Some(src) } => self.load(session, &src),
            Command::Prepare { name, query } => self.prepare(session, &name, &query),
            Command::Exec { name, eps, delta } => self.exec(session, &name, eps, delta),
            Command::Batch { specs: None } => {
                Response::err("proto", "BATCH body missing (connection layer bug)")
            }
            Command::Batch { specs: Some(text) } => self.batch(session, &text),
            Command::Volume { query } => self.volume(session, &query),
            Command::Sum { name } => self.sum(session, &name),
            Command::Persist { name } => self.persist(session, &name),
            Command::Stats => self.render_stats(),
            Command::Close => Response::ok("CLOSE goodbye"),
            Command::Shutdown => {
                // Last chance to persist the cache before the process goes
                // away (crash-killed processes rely on the per-miss
                // flushes instead).
                self.flush_warm();
                Response::ok("SHUTDOWN stopping")
            }
        };
        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.stats.latency[kind.index()].record(us);
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.flush_arena_stats(session);
        resp
    }

    /// Adds the session arena's counter growth since the last flush to the
    /// engine-wide IR aggregates. Arena counters are monotone, so the
    /// deltas are non-negative and the aggregates never double-count.
    fn flush_arena_stats(&self, session: &mut Session) {
        let now = session.arena.stats();
        let last = session.reported;
        self.stats
            .ir_nodes
            .fetch_add(now.nodes - last.nodes, Ordering::Relaxed);
        self.stats
            .ir_terms
            .fetch_add(now.terms - last.terms, Ordering::Relaxed);
        self.stats
            .ir_intern_calls
            .fetch_add(now.intern_calls - last.intern_calls, Ordering::Relaxed);
        session.reported = now;
    }

    /// `LOAD`: append the program text to the session source, run the full
    /// static-analysis gate, and only on a clean report rebuild the
    /// session database. A rejected `LOAD` leaves the session unchanged.
    pub fn load(&self, session: &mut Session, src: &str) -> Response {
        self.load_inner(session, src, true)
    }

    /// The `LOAD` core. `commit` distinguishes a fresh client `LOAD`
    /// (WAL-committed when the session is durable) from a `PERSIST`
    /// replay of already-logged history (which must not be re-logged).
    fn load_inner(&self, session: &mut Session, src: &str, commit: bool) -> Response {
        let mut candidate = session.loaded_src.clone();
        candidate.push_str(src);
        if !candidate.ends_with('\n') {
            candidate.push('\n');
        }
        let cfg = AnalyzerConfig::default();
        let (program, analysis) = analyze_source(&candidate, &cfg);
        if analysis.has_errors() {
            self.stats.lint_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::err(
                "lint",
                format!(
                    "{} error(s), {} warning(s); session unchanged",
                    analysis.error_count(),
                    analysis.warning_count()
                ),
            )
            .with_body(&analysis.render(&candidate, "LOAD"));
        }
        let db = match program.to_database() {
            Ok(db) => db,
            Err(e) => return Response::err("load", e),
        };
        let mut rels = 0usize;
        let mut queries = 0usize;
        session.sums.clear();
        for stmt in &program.statements {
            match stmt {
                Statement::Rel(_) => rels += 1,
                Statement::Query(_) => queries += 1,
                Statement::Sum(s) => {
                    session.sums.insert(s.name.clone(), s.clone());
                }
            }
        }
        let sums = session.sums.len();
        // Durable sessions commit before they apply: the accepted chunk
        // (exactly the text appended to the session source, newline
        // normalization included) is WAL-appended and fsync'd first, and
        // a failed append leaves the session untouched — the mutation
        // then exists either everywhere or nowhere.
        if commit {
            if let (Some(name), Some(storage)) = (&session.durable, &self.storage) {
                let chunk = &candidate[session.loaded_src.len()..];
                if let Err(e) = storage.append_load(name, chunk) {
                    return Response::err(
                        "storage",
                        format!("commit failed, session unchanged: {e}"),
                    );
                }
            }
        }
        session.db = db;
        session.db_gen += 1;
        session.loaded_src = candidate;
        Response::ok(format!(
            "LOAD statements={} rels={rels} queries={queries} sums={sums} warnings={}",
            program.statements.len(),
            analysis.warning_count()
        ))
    }

    /// `PREPARE`: validate the formula through the same analyzer gate as a
    /// `query` statement (scope, schema, fragment), and store it under the
    /// name. The output columns are the free variables in interning order.
    pub fn prepare(&self, session: &mut Session, name: &str, query: &str) -> Response {
        // Probe-parse against a clone so a rejected PREPARE cannot pollute
        // the session's variable interning.
        let mut probe = session.db.vars().clone();
        let f = match parse_formula_with(query, &mut probe) {
            Ok(f) => f,
            Err(e) => return Response::err("parse", e.to_string()),
        };
        // Name-sorted parameter order: session-independent, so the cache
        // key (positional over params) is shared across sessions that
        // interned the variables in different orders.
        let mut params: Vec<String> = f.free_vars().into_iter().map(|v| probe.name(v)).collect();
        params.sort();
        // Run the full static gate on a synthetic `query` statement
        // appended to the accepted session source.
        let mut candidate = session.loaded_src.clone();
        candidate.push_str(&format!(
            "query __prep_{name}({}) := {query}\n",
            params.join(", ")
        ));
        let (_, analysis) = analyze_source(&candidate, &AnalyzerConfig::default());
        if analysis.has_errors() {
            self.stats.lint_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::err(
                "lint",
                format!("{} error(s); not prepared", analysis.error_count()),
            )
            .with_body(&analysis.render(&candidate, "PREPARE"));
        }
        let fragment = analysis
            .reports
            .last()
            .map(|r| r.fragment.fragment_name())
            .unwrap_or("FO");
        // Report the elimination plan the cold EXEC will follow: the
        // analyzer's cost model (with absint refinements when present) fed
        // through the planner. Purely informational — EXEC re-plans on the
        // session's own interning — but it lets clients see method/sharing
        // decisions at PREPARE time.
        let plan_tag = if self.cfg.plan {
            match session.db.expand(&f) {
                Ok(expanded) => {
                    let inputs = analysis
                        .reports
                        .last()
                        .and_then(|r| {
                            r.cost
                                .as_ref()
                                .map(|c| cqa_analyze::planner_inputs(&r.fragment, c))
                        })
                        .unwrap_or_else(|| cqa_qe::plan::PlanInputs::measure(&expanded));
                    format!(
                        " plan={}",
                        cqa_qe::plan::plan(&expanded, &inputs).describe()
                    )
                }
                Err(_) => String::new(),
            }
        } else {
            " plan=off".to_string()
        };
        session.prepared.insert(
            name.to_string(),
            Prepared {
                src: query.to_string(),
                params: params.clone(),
                memo: None,
            },
        );
        Response::ok(format!(
            "PREPARE {name} params={} fragment={fragment}{plan_tag}",
            if params.is_empty() {
                "-".to_string()
            } else {
                params.join(",")
            }
        ))
    }

    /// `PERSIST`: attach this session to the named durable database,
    /// replaying its recovered source through the ordinary `LOAD` gate.
    /// Must precede any `LOAD` in the session (attachment is a *base*,
    /// not a merge), and a session attaches at most once. Subsequent
    /// accepted `LOAD`s are WAL-committed before they apply.
    pub fn persist(&self, session: &mut Session, name: &str) -> Response {
        let Some(storage) = &self.storage else {
            return Response::err(
                "storage",
                "durable storage is disabled (start cqa-serve with --data-dir)",
            );
        };
        if let Some(attached) = &session.durable {
            return Response::err(
                "storage",
                format!("session is already attached to durable database `{attached}`"),
            );
        }
        if !session.loaded_src.is_empty() {
            return Response::err(
                "storage",
                "session already has loaded state; PERSIST must come before LOAD",
            );
        }
        let src = storage.database(name);
        let statements = if src.is_empty() {
            0
        } else {
            // Replay recovered history through the same LOAD path that
            // accepted it originally — the Database is a pure function of
            // this source, so the rebuild is bit-identical. No re-commit:
            // this text is already in the snapshot/WAL.
            let r = self.load_inner(session, &src, false);
            if !r.is_ok() {
                return Response::err(
                    "storage",
                    format!("recovered source failed to replay: {}", r.header),
                );
            }
            session
                .loaded_src
                .lines()
                .filter(|l| !l.trim().is_empty())
                .count()
        };
        session.durable = Some(name.to_string());
        Response::ok(format!("PERSIST {name} statements={statements}"))
    }

    /// `EXEC`: run a prepared query as a `VOL_I` request (volume of the
    /// defined region within the unit box, the paper's §2 operator),
    /// through the shared QE cache.
    pub fn exec(
        &self,
        session: &mut Session,
        name: &str,
        eps: Option<f64>,
        delta: Option<f64>,
    ) -> Response {
        let Some(prep) = session.prepared.get(name) else {
            return Response::err("exec", format!("no prepared query `{name}` (use PREPARE)"));
        };
        let eps = eps.unwrap_or(self.cfg.default_eps);
        let delta = delta.unwrap_or(self.cfg.default_delta);
        // Warm fast path: the canonical key of this prepared query is
        // memoized and no LOAD has rebuilt the database since, so parse,
        // relation expansion, and simplification would reproduce the same
        // key — go straight to the shared cache. An eviction (or an
        // out-of-range ε/δ, which must error through the normal path)
        // falls through to the full pipeline below, which re-memoizes.
        if let Some((db_gen, key)) = prep.memo {
            if db_gen == session.db_gen && eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0 {
                if let Some(entry) = self.cache.get(key) {
                    let budget = self.request_budget();
                    return self.eval_entry(
                        &entry,
                        key.dim as usize,
                        eps,
                        delta,
                        &budget,
                        "EXEC",
                        name,
                        "hit",
                    );
                }
            }
        }
        let prep = prep.clone();
        let f = match parse_formula_with(&prep.src, session.db.vars_mut()) {
            Ok(f) => f,
            Err(e) => return Response::err("parse", e.to_string()),
        };
        let vars: Vec<Var> = prep
            .params
            .iter()
            .map(|p| session.db.vars_mut().intern(p))
            .collect();
        let mut memo_key = None;
        let resp = self.answer(
            session,
            &f,
            &vars,
            eps,
            delta,
            "EXEC",
            name,
            Some(&mut memo_key),
        );
        if let Some(key) = memo_key {
            let db_gen = session.db_gen;
            if let Some(p) = session.prepared.get_mut(name) {
                p.memo = Some((db_gen, key));
            }
        }
        resp
    }

    /// `BATCH`: run every `name [eps [delta]]` spec line through the
    /// `EXEC` path in order, one payload line per spec (the inner EXEC's
    /// header). One round trip amortizes over the whole body; a failing
    /// spec contributes its `ERR` header and counts in `errors=` without
    /// aborting the rest — the line-per-spec pairing must stay positional.
    pub fn batch(&self, session: &mut Session, specs: &str) -> Response {
        let mut body = Vec::new();
        let mut errors = 0usize;
        for line in specs.lines().filter(|l| !l.trim().is_empty()) {
            let inner = match parse_exec_args("BATCH", line.trim()) {
                Ok((name, eps, delta)) => self.exec(session, &name, eps, delta),
                Err(e) => Response::err("proto", e),
            };
            if !inner.is_ok() {
                errors += 1;
            }
            self.stats.batch_execs.fetch_add(1, Ordering::Relaxed);
            body.push(inner.header);
        }
        let mut resp = Response::ok(format!("BATCH n={} errors={errors}", body.len()));
        resp.body = body;
        resp
    }

    /// `VOLUME`: one-shot `VOL_I` of an ad-hoc formula (still cached — two
    /// sessions asking for the volume of the same region share the QE).
    pub fn volume(&self, session: &mut Session, query: &str) -> Response {
        let f = match parse_formula_with(query, session.db.vars_mut()) {
            Ok(f) => f,
            Err(e) => return Response::err("parse", e.to_string()),
        };
        let mut vars: Vec<Var> = f.free_vars().into_iter().collect();
        vars.sort_by_key(|v| session.db.vars().name(*v));
        let (eps, delta) = (self.cfg.default_eps, self.cfg.default_delta);
        self.answer(session, &f, &vars, eps, delta, "VOLUME", "-", None)
    }

    /// `SUM`: evaluate a loaded Σ-term under the request budget.
    pub fn sum(&self, session: &mut Session, name: &str) -> Response {
        let Some(stmt) = session.sums.get(name) else {
            return Response::err("sum", format!("no loaded sum statement `{name}`"));
        };
        let budget = self.request_budget();
        match stmt.to_sum_term().eval_with_budget(&session.db, &budget) {
            Ok(v) => Response::ok(format!("SUM {name} value={v} steps={}", budget.steps())),
            Err(AggError::Budget(b)) => {
                self.stats.over_budget.fetch_add(1, Ordering::Relaxed);
                Response::err("budget", b.to_string())
            }
            Err(e) => Response::err("sum", e.to_string()),
        }
    }

    /// The shared `EXEC`/`VOLUME` evaluation path. See the module docs of
    /// [`crate`] for the exact→approximate policy.
    #[allow(clippy::too_many_arguments)]
    fn answer(
        &self,
        session: &mut Session,
        f: &Formula,
        vars: &[Var],
        eps: f64,
        delta: f64,
        verb: &str,
        name: &str,
        memo_key: Option<&mut Option<CacheKey>>,
    ) -> Response {
        if !(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0) {
            return Response::err(
                "exec",
                format!("eps/delta must lie in (0,1), got {eps}/{delta}"),
            );
        }
        let budget = self.request_budget();
        let expanded = match session.db.expand(f) {
            Ok(x) => x,
            Err(e) => return Response::err("exec", e.to_string()),
        };
        // Intern and simplify on ids: the memoized rewrite is shared across
        // requests of this session, and the warm path never renders a
        // string — the cache key is the 128-bit canonical hash read off
        // the interned node.
        let fid = session.arena.intern(&expanded);
        let sid = cqa_qe::simplify_id(&mut session.arena, fid, &mut session.simp);
        // Positional over the name-sorted params: two sessions that
        // interned the same query's variables in different orders still
        // share one cache slot.
        let key = CacheKey {
            hash: session.arena.canonical_hash_for_params(sid, vars),
            dim: vars.len() as u32,
        };
        if let Some(slot) = memo_key {
            *slot = Some(key);
        }
        let (entry, cache_tag) = match self.cache.get(key) {
            Some(e) => (Some(e), "hit"),
            None => {
                // Cold path: consult the absint verdict first — a
                // statically decided query needs no elimination at all,
                // and its certified bounding box (if any) rides along in
                // the cache entry to prefilter Monte Carlo lanes.
                let facts = if self.cfg.absint {
                    Some(cqa_analyze::analyze_id(
                        &session.arena,
                        sid,
                        &mut session.absint,
                    ))
                } else {
                    None
                };
                // Bit-identity gate: substituting ⊥/⊤ for the QE output
                // is only taken where the un-analyzed engine would land
                // on the same path — non-polynomial queries (FM keeps
                // them non-polynomial, so both engines integrate exactly
                // and 0/1 is the volume either way) and quantifier-free
                // ones (elimination is a no-op, so both engines run the
                // same Monte Carlo sweep and the ⊥/⊤ kernel decides each
                // lane identically). A quantified polynomial query could
                // drop class during elimination, so it keeps paying QE.
                let sid_class = session.arena.meta(sid).class;
                let skip_safe = sid_class != ConstraintClass::Polynomial
                    || session.arena.meta(sid).quantifier_free;
                let static_qf =
                    facts
                        .as_ref()
                        .filter(|_| skip_safe)
                        .and_then(|fx| match fx.verdict {
                            cqa_analyze::Verdict::Unsat => {
                                self.stats
                                    .absint_unsat_skips
                                    .fetch_add(1, Ordering::Relaxed);
                                Some(Formula::False)
                            }
                            cqa_analyze::Verdict::Valid => {
                                self.stats
                                    .absint_valid_skips
                                    .fetch_add(1, Ordering::Relaxed);
                                Some(Formula::True)
                            }
                            cqa_analyze::Verdict::Unknown => None,
                        });
                let static_skip = static_qf.is_some();
                let mc_box = facts
                    .as_ref()
                    .and_then(|fx| cqa_analyze::absint::unit_box(&fx.env, vars));
                let eliminated = match static_qf {
                    Some(qf) => Ok(qf),
                    None if self.cfg.plan => {
                        // Planned elimination: method/order/pruning chosen
                        // from the static measurements plus the absint
                        // certificates, with quantifier-block results
                        // memoized in the shared cache's subplan namespace.
                        let meta = session.arena.meta(sid);
                        let mut inputs = cqa_qe::plan::PlanInputs {
                            atoms: meta.atom_count(),
                            quantifiers: meta.quantifiers,
                            pruned_atoms: None,
                            box_volume: facts
                                .as_ref()
                                .map(|fx| cqa_analyze::absint::box_volume(&fx.env, vars)),
                            vc_bound: None,
                        };
                        if facts.is_some() {
                            // Certified pruning survivors refine the FM
                            // clause budget; the prune itself is memoized
                            // per node, so this is cheap on repeats.
                            let pid = cqa_analyze::prune_id(
                                &mut session.arena,
                                sid,
                                &mut session.absint,
                                &mut session.simp,
                            );
                            inputs.pruned_atoms = Some(session.arena.meta(pid).atom_count());
                        }
                        let simplified = session.arena.extern_formula(sid);
                        let qeplan = cqa_qe::plan::plan(&simplified, &inputs);
                        match qeplan.method {
                            cqa_qe::plan::Method::FourierMotzkin => &self.stats.plan_fm,
                            cqa_qe::plan::Method::LoosWeispfenning => &self.stats.plan_lw,
                            cqa_qe::plan::Method::Hoermander => &self.stats.plan_ch,
                        }
                        .fetch_add(1, Ordering::Relaxed);
                        cqa_qe::plan::eliminate_with_plan(
                            &simplified,
                            &qeplan,
                            &budget,
                            &mut session.arena,
                            &CacheSubplans { cache: &self.cache },
                        )
                    }
                    None => {
                        // Fixed pipeline (`--no-plan`): the parity oracle.
                        // QE still runs on the boxed tree, so extern the
                        // simplified node once per miss.
                        let simplified = session.arena.extern_formula(sid);
                        cqa_qe::eliminate_with_budget(&simplified, &budget)
                    }
                };
                match eliminated {
                    Ok(qf) => {
                        let qf_id = session.arena.intern(&qf);
                        let qf_id =
                            cqa_qe::simplify_id(&mut session.arena, qf_id, &mut session.simp);
                        let kernel = match CompiledMatrix::compile_arena(
                            &session.arena,
                            qf_id,
                            &SlotMap::from_vars(vars),
                        ) {
                            Ok(k) => k,
                            Err(e) => {
                                return Response::err(
                                    "exec",
                                    format!("eliminated matrix is not compilable: {e:?}"),
                                )
                            }
                        };
                        let qf = session.arena.extern_formula(qf_id);
                        // A static ⊥/⊤ substitution keeps the original
                        // query's class so the exact-vs-MC decision below
                        // matches the un-analyzed engine's.
                        let class = if static_skip {
                            sid_class
                        } else {
                            session.arena.meta(qf_id).class
                        };
                        let fragment = match class {
                            ConstraintClass::Polynomial => "FO+POLY",
                            _ => "FO+LIN",
                        };
                        // Key bytes are charged by the cache itself.
                        let bytes = formula_bytes(&qf) + 64 * kernel.atom_count();
                        let entry = self.cache.insert(
                            key,
                            CacheEntry {
                                qf,
                                qf_vars: vars.to_vec(),
                                kernel,
                                class,
                                fragment,
                                bytes,
                                mc_box,
                            },
                        );
                        // A cold miss just paid for elimination — the
                        // expensive artifact the warm file exists to save.
                        // Flushing here (not only at SHUTDOWN) is what
                        // makes warm-start survive a SIGKILL.
                        self.flush_warm();
                        (Some(entry), "miss")
                    }
                    Err(QeError::Budget(_)) => (None, "miss"),
                    Err(e) => return Response::err("qe", e.to_string()),
                }
            }
        };
        match &entry {
            Some(entry) => self.eval_entry(
                entry,
                vars.len(),
                eps,
                delta,
                &budget,
                verb,
                name,
                cache_tag,
            ),
            // QE itself blew the budget: no quantifier-free form exists to
            // integrate or sample, so decide membership point by point
            // (each ground instance is vastly cheaper than parametric QE).
            None => {
                let simplified = session.arena.extern_formula(sid);
                let answer = self.mc_pointwise(&simplified, vars, eps, delta, &budget);
                self.render_answer(answer, verb, name, cache_tag, &budget)
            }
        }
    }

    /// Evaluates a cached entry — exact triangulating integration when the
    /// quantifier-free form is linear, seeded Monte Carlo over the
    /// compiled kernel otherwise — and renders the response. Shared by the
    /// full [`Self::answer`] pipeline and the memoized-key `EXEC` fast
    /// path; both must produce bit-identical output for the same entry.
    #[allow(clippy::too_many_arguments)]
    fn eval_entry(
        &self,
        entry: &Arc<CacheEntry>,
        dim: usize,
        eps: f64,
        delta: f64,
        budget: &EvalBudget,
        verb: &str,
        name: &str,
        cache_tag: &str,
    ) -> Response {
        let answer = if entry.class == ConstraintClass::Polynomial {
            // Semi-algebraic output: the exact triangulating integrator
            // does not apply; degrade to MC over the cached kernel.
            self.mc_over_kernel(entry, dim, eps, delta, "nonlinear")
        } else {
            match cqa_geom::volume_in_unit_box_with_budget(&entry.qf, &entry.qf_vars, budget) {
                Ok(v) => Ok(Answer::Exact(v)),
                Err(VolumeError::Budget(_)) => {
                    self.mc_over_kernel(entry, dim, eps, delta, "budget")
                }
                Err(e) => return Response::err("volume", e.to_string()),
            }
        };
        self.render_answer(answer, verb, name, cache_tag, budget)
    }

    /// Formats an exact/approximate answer into the wire response header.
    fn render_answer(
        &self,
        answer: Result<Answer, Response>,
        verb: &str,
        name: &str,
        cache_tag: &str,
        budget: &EvalBudget,
    ) -> Response {
        match answer {
            Ok(Answer::Exact(v)) => Response::ok(format!(
                "{verb} {name} status=exact value={v} cache={cache_tag} steps={}",
                budget.steps()
            )),
            Ok(Answer::Approx {
                estimate,
                eps,
                delta,
                samples,
                reason,
            }) => {
                self.stats.degraded.fetch_add(1, Ordering::Relaxed);
                Response::ok(format!(
                    "{verb} {name} status=approx value={estimate} eps={eps} delta={delta} \
                     samples={samples} reason={reason} cache={cache_tag}"
                ))
            }
            Err(resp) => resp,
        }
    }

    /// Best-effort warm-file flush (no-op for in-memory engines).
    fn flush_warm(&self) {
        if let Some(storage) = &self.storage {
            storage.flush_warm(&self.cache);
        }
    }

    /// Hoeffding sample size for an additive (ε, δ) guarantee on `VOL_I`.
    fn sample_count(eps: f64, delta: f64) -> usize {
        (((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as usize).max(1) + 1
    }

    /// Deterministic Monte Carlo `VOL_I` over a cached compiled kernel,
    /// swept batch-wise: samples fill one structure-of-arrays [`Batch`] at
    /// a time (draws in the same order as the per-point loop this
    /// replaces, so estimates are unchanged) and the kernel decides all
    /// lanes per sweep. Fast/exact lane counts feed the service counters
    /// behind `STATS`.
    fn mc_over_kernel(
        &self,
        entry: &Arc<CacheEntry>,
        dim: usize,
        eps: f64,
        delta: f64,
        reason: &'static str,
    ) -> Result<Answer, Response> {
        let samples = Self::sample_count(eps, delta);
        let mut w = Witness::new(MC_SEED);
        let mut batch = Batch::new(dim);
        let mut sub = Batch::new(dim);
        let mut keep: Vec<usize> = Vec::new();
        let mut skipped = 0u64;
        let mut scratch = BatchScratch::new();
        let mut hits = 0usize;
        let mut lanes = LaneStats::default();
        let mut done = 0usize;
        while done < samples {
            batch.set_len((samples - done).min(BATCH_LANES));
            w.fill_unit_columns(&mut batch, 0, dim);
            // The absint bounding box certifies that every satisfying
            // point lies inside it, so lanes outside are kernel-false and
            // can skip evaluation entirely. The draws above are untouched
            // (same RNG stream) and skipped lanes contribute exactly the
            // zero hits they would have, so the estimate is bit-identical
            // to the unfiltered run.
            let result = match entry.mc_box.as_deref() {
                Some(bx) => {
                    keep.clear();
                    for lane in 0..batch.len() {
                        let inside = (0..dim).all(|d| {
                            let v = batch.value(d, lane);
                            v >= bx[d].0 && v <= bx[d].1
                        });
                        if inside {
                            keep.push(lane);
                        }
                    }
                    skipped += (batch.len() - keep.len()) as u64;
                    if keep.is_empty() {
                        None
                    } else if keep.len() == batch.len() {
                        let b = &batch;
                        let exact = |lane: usize, slot: usize| {
                            Rat::from_f64(b.value(slot, lane)).expect("finite sample coordinate")
                        };
                        Some(entry.kernel.eval_batch(b, &exact, &mut scratch))
                    } else {
                        sub.set_len(keep.len());
                        for d in 0..dim {
                            let col = sub.col_mut(d);
                            for (j, &lane) in keep.iter().enumerate() {
                                col[j] = batch.value(d, lane);
                            }
                        }
                        let b = &sub;
                        let exact = |lane: usize, slot: usize| {
                            Rat::from_f64(b.value(slot, lane)).expect("finite sample coordinate")
                        };
                        Some(entry.kernel.eval_batch(b, &exact, &mut scratch))
                    }
                }
                None => {
                    let b = &batch;
                    let exact = |lane: usize, slot: usize| {
                        Rat::from_f64(b.value(slot, lane)).expect("finite sample coordinate")
                    };
                    Some(entry.kernel.eval_batch(b, &exact, &mut scratch))
                }
            };
            if let Some(r) = result {
                hits += r.mask.count();
                lanes.add(&r);
            }
            done += batch.len();
        }
        if skipped > 0 {
            self.stats
                .absint_box_skipped_lanes
                .fetch_add(skipped, Ordering::Relaxed);
        }
        self.stats
            .batch_fast_lanes
            .fetch_add(lanes.fast, Ordering::Relaxed);
        self.stats
            .batch_exact_lanes
            .fetch_add(lanes.exact, Ordering::Relaxed);
        Ok(Answer::Approx {
            estimate: Rat::new((hits as i64).into(), (samples as i64).into()),
            eps,
            delta,
            samples,
            reason: match reason {
                "budget" => "volume-budget",
                r => r,
            },
        })
    }

    /// Last-resort degraded path when parametric QE itself exceeded the
    /// budget: decide membership of each sample point by substituting it
    /// and deciding the resulting ground sentence, all under the same
    /// request budget. If even the ground decisions blow the budget the
    /// request fails with `ERR budget` (counted in `over_budget`).
    fn mc_pointwise(
        &self,
        f: &Formula,
        vars: &[Var],
        eps: f64,
        delta: f64,
        budget: &EvalBudget,
    ) -> Result<Answer, Response> {
        let samples = Self::sample_count(eps, delta);
        let mut w = Witness::new(MC_SEED);
        let mut hits = 0usize;
        for _ in 0..samples {
            let point = w.uniform_unit_point(vars.len());
            let mut ground = f.clone();
            for (v, c) in vars.iter().zip(&point) {
                ground = ground.subst_rat(*v, c);
            }
            match cqa_qe::decide_sentence_with_budget(&ground, budget) {
                Ok(true) => hits += 1,
                Ok(false) => {}
                Err(QeError::Budget(b)) => {
                    self.stats.over_budget.fetch_add(1, Ordering::Relaxed);
                    return Err(Response::err("budget", b.to_string()));
                }
                Err(e) => return Err(Response::err("qe", e.to_string())),
            }
        }
        Ok(Answer::Approx {
            estimate: Rat::new((hits as i64).into(), (samples as i64).into()),
            eps,
            delta,
            samples,
            reason: "qe-budget",
        })
    }

    /// `STATS`: cache counters, hit rate, per-command latency histograms,
    /// in-flight and rejection counts.
    pub fn render_stats(&self) -> Response {
        let cache = self.cache.snapshot();
        let s = &self.stats;
        let mut resp = Response::ok(format!(
            "STATS uptime_us={}",
            self.started.elapsed().as_micros()
        ));
        resp.body.push(format!(
            "sessions={} commands={} in_flight={} open_conns={} batch_execs={}",
            EngineStats::get(&s.sessions),
            EngineStats::get(&s.commands),
            EngineStats::get(&s.in_flight),
            EngineStats::get(&s.open_conns),
            EngineStats::get(&s.batch_execs),
        ));
        resp.body.push(format!(
            "cache entries={} bytes={} budget_bytes={} shards={} hits={} misses={} \
             hit_rate={:.3} evictions={} poison_recoveries={}",
            cache.entries,
            cache.bytes,
            cache.byte_budget,
            cache.shards,
            cache.hits,
            cache.misses,
            cache.hit_rate(),
            cache.evictions,
            cache.poison_recoveries,
        ));
        resp.body.push(format!(
            "over_budget={} lint_rejected={} rejected_conns={} degraded={} write_errors={} \
             worker_panics={}",
            EngineStats::get(&s.over_budget),
            EngineStats::get(&s.lint_rejected),
            EngineStats::get(&s.rejected_conns),
            EngineStats::get(&s.degraded),
            EngineStats::get(&s.write_errors),
            EngineStats::get(&s.worker_panics),
        ));
        let (nodes, terms, calls) = (
            EngineStats::get(&s.ir_nodes),
            EngineStats::get(&s.ir_terms),
            EngineStats::get(&s.ir_intern_calls),
        );
        resp.body.push(format!(
            "ir nodes={nodes} terms={terms} intern_calls={calls} dedup_ratio={:.3}",
            if nodes == 0 {
                1.0
            } else {
                calls as f64 / nodes as f64
            }
        ));
        let (fast, exact) = (
            EngineStats::get(&s.batch_fast_lanes),
            EngineStats::get(&s.batch_exact_lanes),
        );
        resp.body.push(format!(
            "kernel fast_lanes={fast} exact_lanes={exact} fallback_rate={:.4}",
            if fast + exact == 0 {
                0.0
            } else {
                exact as f64 / (fast + exact) as f64
            }
        ));
        resp.body.push(format!(
            "absint unsat_skips={} valid_skips={} box_skipped_lanes={}",
            EngineStats::get(&s.absint_unsat_skips),
            EngineStats::get(&s.absint_valid_skips),
            EngineStats::get(&s.absint_box_skipped_lanes),
        ));
        resp.body.push(format!(
            "plan fm={} lw={} ch={} subplan_hits={} subplan_misses={}",
            EngineStats::get(&s.plan_fm),
            EngineStats::get(&s.plan_lw),
            EngineStats::get(&s.plan_ch),
            cache.subplan_hits,
            cache.subplan_misses,
        ));
        if let Some(storage) = &self.storage {
            let st = storage.stats();
            resp.body.push(format!(
                "wal records={} bytes={} replayed={} torn_bytes={} snapshots={} snapshot_errors={}",
                EngineStats::get(&st.wal_records),
                EngineStats::get(&st.wal_bytes),
                EngineStats::get(&st.replayed_records),
                EngineStats::get(&st.torn_bytes),
                EngineStats::get(&st.snapshots),
                EngineStats::get(&st.snapshot_errors),
            ));
            resp.body.push(format!(
                "warm loaded={} skipped={} flushes={} errors={}",
                EngineStats::get(&st.warm_loaded),
                EngineStats::get(&st.warm_skipped),
                EngineStats::get(&st.warm_flushes),
                EngineStats::get(&st.warm_errors),
            ));
        }
        for kind in [
            crate::protocol::CommandKind::Load,
            crate::protocol::CommandKind::Prepare,
            crate::protocol::CommandKind::Exec,
            crate::protocol::CommandKind::Batch,
            crate::protocol::CommandKind::Volume,
            crate::protocol::CommandKind::Sum,
            crate::protocol::CommandKind::Persist,
            crate::protocol::CommandKind::Stats,
            crate::protocol::CommandKind::Close,
            crate::protocol::CommandKind::Shutdown,
        ] {
            let h = &s.latency[kind.index()];
            if h.count() > 0 {
                resp.body
                    .push(format!("latency {} {}", kind.name(), h.render()));
            }
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default())
    }

    const PROGRAM: &str = "\
rel S(y) := (0 <= y & y <= 0.5) | (0.75 <= y & y <= 2)
sum EndpointSum(w) := true | END[y. S(y)] ; xout . xout = w
";

    #[test]
    fn load_prepare_exec_roundtrip() {
        let e = engine();
        let mut s = e.open_session();
        let r = e.dispatch(
            &mut s,
            Command::Load {
                program: Some(PROGRAM.into()),
            },
        );
        assert!(r.is_ok(), "{r:?}");
        assert!(r.header.contains("rels=1"), "{r:?}");
        let r = e.prepare(&mut s, "band", "S(x) & x <= 1");
        assert!(r.is_ok(), "{r:?}");
        // VOL_I of S ∩ [0,1] = [0, 1/2] ∪ [3/4, 1] → 3/4.
        let r = e.exec(&mut s, "band", None, None);
        assert!(r.is_ok(), "{r:?}");
        assert!(r.header.contains("status=exact value=3/4"), "{r:?}");
        assert!(r.header.contains("cache=miss"), "{r:?}");
        // Second EXEC hits the cache, same answer.
        let r = e.exec(&mut s, "band", None, None);
        assert!(r.header.contains("status=exact value=3/4"), "{r:?}");
        assert!(r.header.contains("cache=hit"), "{r:?}");
        assert_eq!(e.cache.snapshot().hits, 1);
    }

    #[test]
    fn load_gate_rejects_and_preserves_session() {
        let e = engine();
        let mut s = e.open_session();
        assert!(e.load(&mut s, PROGRAM).is_ok());
        let bad = e.load(&mut s, "query Bad(x) := x = zz + 1\n");
        assert!(!bad.is_ok(), "{bad:?}");
        assert!(bad.header.starts_with("ERR lint"), "{bad:?}");
        assert!(!bad.body.is_empty(), "diagnostics travel in the body");
        // The session still works with its pre-rejection state.
        let r = e.sum(&mut s, "EndpointSum");
        assert!(r.header.contains("value=13/4"), "{r:?}");
        assert_eq!(EngineStats::get(&e.stats.lint_rejected), 1);
    }

    #[test]
    fn prepare_gate_rejects_unknown_relation() {
        let e = engine();
        let mut s = e.open_session();
        let r = e.prepare(&mut s, "bad", "Missing(x) & x > 0");
        assert!(r.header.starts_with("ERR lint"), "{r:?}");
    }

    #[test]
    fn nonlinear_query_degrades_with_tag() {
        let e = engine();
        let mut s = e.open_session();
        let r = e.prepare(&mut s, "disk", "x*x + y*y <= 1");
        assert!(r.is_ok(), "{r:?}");
        let r = e.exec(&mut s, "disk", Some(0.05), None);
        assert!(r.is_ok(), "{r:?}");
        assert!(r.header.contains("status=approx"), "{r:?}");
        assert!(r.header.contains("eps=0.05"), "{r:?}");
        assert!(r.header.contains("reason=nonlinear"), "{r:?}");
        // Quarter disk: VOL_I ≈ π/4 ≈ 0.785; ε = 0.05 ⇒ the estimate is
        // inside [0.70, 0.87] unless we hit the δ failure slice.
        let val = r
            .header
            .split("value=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap();
        let (n, d) = val.split_once('/').expect("rational");
        let x: f64 = n.parse::<f64>().unwrap() / d.parse::<f64>().unwrap();
        assert!((0.70..=0.87).contains(&x), "VOL_I estimate {x} off");
        assert_eq!(EngineStats::get(&e.stats.degraded), 1);
        // The batched kernel swept every sample lane and counted it.
        let lanes = EngineStats::get(&e.stats.batch_fast_lanes)
            + EngineStats::get(&e.stats.batch_exact_lanes);
        let samples: u64 = r
            .header
            .split("samples=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(lanes, samples);
    }

    #[test]
    fn absint_skips_qe_for_statically_empty_queries() {
        let e = engine();
        let mut s = e.open_session();
        // The contradiction is invisible to the simplifier but trivial
        // for interval propagation: x > 2 ∧ x < 1.
        let r = e.prepare(
            &mut s,
            "empty",
            "(exists y. x < y & y < 2*x) & x > 2 & x < 1",
        );
        assert!(r.is_ok(), "{r:?}");
        let r = e.exec(&mut s, "empty", None, None);
        assert!(r.header.contains("status=exact value=0"), "{r:?}");
        assert_eq!(EngineStats::get(&e.stats.absint_unsat_skips), 1);
        // Valid queries take the mirror path.
        assert!(e.prepare(&mut s, "full", "x < 2 | 1 > 0").is_ok());
        let r = e.exec(&mut s, "full", None, None);
        assert!(r.header.contains("status=exact value=1"), "{r:?}");
        assert_eq!(EngineStats::get(&e.stats.absint_valid_skips), 1);
        // A statically-valid *polynomial* matrix still degrades to Monte
        // Carlo — the class gate keeps the answer path identical to the
        // un-analyzed engine — but skips elimination.
        assert!(e.prepare(&mut s, "poly", "x*x >= 0 | x < 0").is_ok());
        let r = e.exec(&mut s, "poly", None, None);
        assert!(r.header.contains("status=approx value=1"), "{r:?}");
        assert_eq!(EngineStats::get(&e.stats.absint_valid_skips), 2);
    }

    #[test]
    fn absint_box_prefilter_preserves_estimates() {
        // The disk only intersects [2/5, 3/5]²: the box prefilter must
        // skip lanes yet report the same hit count as the unfiltered run.
        let query = "(x - 1/2)*(x - 1/2) + (y - 1/2)*(y - 1/2) <= 1/100 \
                     & 2/5 <= x & x <= 3/5 & 2/5 <= y & y <= 3/5";
        let on = engine();
        let mut s_on = on.open_session();
        assert!(on.prepare(&mut s_on, "dot", query).is_ok());
        let r_on = on.exec(&mut s_on, "dot", Some(0.02), None);
        assert!(r_on.is_ok(), "{r_on:?}");
        let skipped = EngineStats::get(&on.stats.absint_box_skipped_lanes);
        assert!(skipped > 0, "box prefilter never fired");

        let off = Engine::new(EngineConfig {
            absint: false,
            ..EngineConfig::default()
        });
        let mut s_off = off.open_session();
        assert!(off.prepare(&mut s_off, "dot", query).is_ok());
        let r_off = off.exec(&mut s_off, "dot", Some(0.02), None);
        assert_eq!(
            EngineStats::get(&off.stats.absint_box_skipped_lanes),
            0,
            "disabled engine must not prefilter"
        );
        // Answers are bit-identical; only the steps counter may differ.
        let strip = |h: &str| {
            h.split_whitespace()
                .filter(|t| !t.starts_with("steps="))
                .collect::<Vec<_>>()
                .join(" ")
        };
        assert_eq!(strip(&r_on.header), strip(&r_off.header));
    }

    #[test]
    fn absint_on_off_answers_are_bit_identical() {
        let on = engine();
        let off = Engine::new(EngineConfig {
            absint: false,
            ..EngineConfig::default()
        });
        let queries = [
            "S(x) & x <= 1",
            "x*x + y*y <= 1",
            "(exists y. x < y & y < 1) & x > 2", // statically empty
            "x*x >= 0",                          // statically valid
            "1/4 <= x & x <= 3/4 & exists y. y < x",
        ];
        for (i, q) in queries.iter().enumerate() {
            let mut s_on = on.open_session();
            let mut s_off = off.open_session();
            assert!(on.load(&mut s_on, PROGRAM).is_ok());
            assert!(off.load(&mut s_off, PROGRAM).is_ok());
            let name = format!("q{i}");
            assert!(on.prepare(&mut s_on, &name, q).is_ok(), "{q}");
            assert!(off.prepare(&mut s_off, &name, q).is_ok(), "{q}");
            let r_on = on.exec(&mut s_on, &name, Some(0.05), None);
            let r_off = off.exec(&mut s_off, &name, Some(0.05), None);
            let strip = |h: &str| {
                h.split_whitespace()
                    .filter(|t| !t.starts_with("steps="))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            assert_eq!(strip(&r_on.header), strip(&r_off.header), "query {q}");
        }
    }

    #[test]
    fn plan_on_off_answers_are_bit_identical() {
        let on = engine();
        let off = Engine::new(EngineConfig {
            plan: false,
            ..EngineConfig::default()
        });
        let queries = [
            "S(x) & x <= 1",
            "x*x + y*y <= 1",                        // polynomial, QF
            "exists y. y*y < x",                     // polynomial, quantified
            "(exists y. x < y & y < 1) & x > 2",     // statically empty
            "1/4 <= x & x <= 3/4 & exists y. y < x", // linear, quantified
            "(exists u, v. x < u & u < v & v < x + 1/2) & 0 <= x & x <= 1",
            "forall y. y > x | y <= x",
            "exists y. (x < y & y < 1/2) | (3/4 < y & y < x)",
        ];
        for (i, q) in queries.iter().enumerate() {
            let mut s_on = on.open_session();
            let mut s_off = off.open_session();
            assert!(on.load(&mut s_on, PROGRAM).is_ok());
            assert!(off.load(&mut s_off, PROGRAM).is_ok());
            let name = format!("q{i}");
            assert!(on.prepare(&mut s_on, &name, q).is_ok(), "{q}");
            assert!(off.prepare(&mut s_off, &name, q).is_ok(), "{q}");
            let r_on = on.exec(&mut s_on, &name, Some(0.05), None);
            let r_off = off.exec(&mut s_off, &name, Some(0.05), None);
            let strip = |h: &str| {
                h.split_whitespace()
                    .filter(|t| !t.starts_with("steps="))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            assert_eq!(strip(&r_on.header), strip(&r_off.header), "query {q}");
        }
    }

    #[test]
    fn overlapping_prepared_queries_share_subplans() {
        let e = engine();
        let mut s = e.open_session();
        let core = "(exists u, v. x < u & u < v & v < x + 1)";
        assert!(e
            .prepare(&mut s, "lo", &format!("{core} & 0 <= x & x <= 1/2"))
            .is_ok());
        assert!(e
            .prepare(&mut s, "hi", &format!("{core} & 1/2 <= x & x <= 1"))
            .is_ok());
        let r = e.exec(&mut s, "lo", None, None);
        assert!(r.header.contains("status=exact value=1/2"), "{r:?}");
        assert_eq!(e.cache.snapshot().subplan_hits, 0, "first run is cold");
        let r = e.exec(&mut s, "hi", None, None);
        assert!(r.header.contains("status=exact value=1/2"), "{r:?}");
        let snap = e.cache.snapshot();
        assert!(
            snap.subplan_hits >= 1,
            "second query must reuse the shared core's elimination: {snap:?}"
        );
        assert_eq!(snap.misses, 2, "both whole-query lookups were cold");
        // The plan is visible at PREPARE time.
        let r = e.prepare(&mut s, "again", &format!("{core} & x >= 0"));
        assert!(r.header.contains(" plan=fm"), "{r:?}");
        assert!(r.header.contains("shared=on"), "{r:?}");
    }

    #[test]
    fn stats_report_covers_planner_counters() {
        let e = engine();
        let mut s = e.open_session();
        assert!(e.prepare(&mut s, "q", "exists y. x < y & y < 1").is_ok());
        e.exec(&mut s, "q", None, None);
        assert_eq!(EngineStats::get(&e.stats.plan_fm), 1);
        let r = e.render_stats();
        let body = r.body.join("\n");
        assert!(body.contains("plan fm=1"), "{body}");
        assert!(body.contains("subplan_hits="), "{body}");
        // plan=off engines never bump planner counters.
        let off = Engine::new(EngineConfig {
            plan: false,
            ..EngineConfig::default()
        });
        let mut s_off = off.open_session();
        let r = off.prepare(&mut s_off, "q", "exists y. x < y & y < 1");
        assert!(r.header.contains("plan=off"), "{r:?}");
        off.exec(&mut s_off, "q", None, None);
        assert_eq!(EngineStats::get(&off.stats.plan_fm), 0);
        assert_eq!(EngineStats::get(&off.stats.plan_lw), 0);
        assert_eq!(EngineStats::get(&off.stats.plan_ch), 0);
    }

    #[test]
    fn batch_runs_specs_in_order_and_counts_errors() {
        let e = engine();
        let mut s = e.open_session();
        assert!(e.prepare(&mut s, "half", "0 <= x & x <= 1/2").is_ok());
        assert!(e.prepare(&mut s, "quarter", "0 <= x & x <= 1/4").is_ok());
        let r = e.dispatch(
            &mut s,
            Command::Batch {
                specs: Some("half\nquarter 0.1 0.1\nmissing\n1bad\n".into()),
            },
        );
        assert_eq!(r.header, "OK BATCH n=4 errors=2", "{r:?}");
        assert_eq!(r.body.len(), 4);
        assert!(
            r.body[0].contains("EXEC half status=exact value=1/2"),
            "{r:?}"
        );
        assert!(
            r.body[1].contains("EXEC quarter status=exact value=1/4"),
            "{r:?}"
        );
        assert!(r.body[2].starts_with("ERR exec"), "{r:?}");
        assert!(r.body[3].starts_with("ERR proto"), "{r:?}");
        assert_eq!(EngineStats::get(&e.stats.batch_execs), 4);
        // A batched EXEC is bit-identical to the serial command.
        let serial = e.exec(&mut s, "half", None, None);
        let strip = |h: &str| {
            h.split_whitespace()
                .filter(|t| !t.starts_with("steps=") && !t.starts_with("cache="))
                .collect::<Vec<_>>()
                .join(" ")
        };
        assert_eq!(strip(&serial.header), strip(&r.body[0]));
    }

    #[test]
    fn sentence_queries_use_counting_measure() {
        let e = engine();
        let mut s = e.open_session();
        assert!(e.prepare(&mut s, "yes", "exists x. x > 3").is_ok());
        let r = e.exec(&mut s, "yes", None, None);
        assert!(r.header.contains("status=exact value=1"), "{r:?}");
    }

    #[test]
    fn stats_report_covers_cache_and_latency() {
        let e = engine();
        let mut s = e.open_session();
        e.prepare(&mut s, "q", "0 <= x & x <= 1");
        e.dispatch(
            &mut s,
            Command::Exec {
                name: "q".into(),
                eps: None,
                delta: None,
            },
        );
        let r = e.render_stats();
        assert!(r.is_ok());
        let body = r.body.join("\n");
        assert!(body.contains("cache entries=1"), "{body}");
        assert!(body.contains("latency EXEC"), "{body}");
        assert!(body.contains("ir nodes="), "{body}");
        assert!(body.contains("kernel fast_lanes="), "{body}");
        // The EXEC went through dispatch, so the session's arena growth
        // was flushed into the engine-wide aggregates.
        assert!(EngineStats::get(&e.stats.ir_nodes) > 0);
        assert!(EngineStats::get(&e.stats.ir_intern_calls) >= EngineStats::get(&e.stats.ir_nodes));
    }
}
