//! The wire protocol: newline-delimited text, hand-rolled, std-only.
//!
//! ### Grammar
//!
//! ```text
//! request   := ["@" tag SP] command-line NL [body]
//! command   := "LOAD" [SP inline-stmt]          ; no inline ⇒ body follows
//!            | "PREPARE" SP name SP formula
//!            | "EXEC" SP name [SP eps [SP delta]]
//!            | "BATCH"                          ; body of EXEC specs follows
//!            | "VOLUME" SP formula
//!            | "SUM" SP name
//!            | "PERSIST" SP name                ; attach to a durable database
//!            | "STATS" | "CLOSE" | "SHUTDOWN"
//! body      := { line NL } "." NL               ; dot-stuffed like SMTP
//!
//! response  := ["@" tag SP] header NL { payload NL } "." NL
//! header    := "OK" [SP info] | "ERR" SP code [SP info]
//! ```
//!
//! A body (or payload) line that itself starts with `.` is escaped by
//! doubling the dot; a lone `.` terminates the block. Responses always end
//! with the `.` terminator so clients can stream without knowing payload
//! sizes in advance.
//!
//! ### Pipelining
//!
//! A client may send many requests without waiting for responses; the
//! server executes each connection's commands strictly in order and writes
//! the responses in the same order. An optional `@tag` prefix (any
//! whitespace-free token) is echoed back verbatim on the response header,
//! so a pipelining client can pair responses positionally *and* by tag.
//! `BATCH` amortizes one round trip over many prepared executions: its
//! dot-terminated body holds one `name [eps [delta]]` spec per line, and
//! the single response carries one payload line per spec (each inner
//! EXEC's header), with the `OK BATCH n=<specs> errors=<failures>` header
//! summarizing the run.

use std::io::{self, BufRead, Write};

/// The command kinds, used to index per-command latency histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommandKind {
    /// `LOAD` — merge a `.cqa` program into the session database.
    Load,
    /// `PREPARE` — name a query for repeated execution.
    Prepare,
    /// `EXEC` — run a prepared query (cached QE).
    Exec,
    /// `BATCH` — run many prepared queries from one dot-terminated body.
    Batch,
    /// `VOLUME` — one-shot volume of an ad-hoc formula.
    Volume,
    /// `SUM` — evaluate a loaded Σ-term.
    Sum,
    /// `PERSIST` — attach the session to a named durable database
    /// (replayed from snapshot+WAL; subsequent `LOAD`s are logged).
    Persist,
    /// `STATS` — service and cache counters.
    Stats,
    /// `CLOSE` — end the session.
    Close,
    /// `SHUTDOWN` — stop the whole server (drains workers).
    Shutdown,
}

/// Number of command kinds (histogram array size).
pub const N_COMMAND_KINDS: usize = 10;

impl CommandKind {
    /// Stable index into the latency histogram array.
    pub fn index(self) -> usize {
        match self {
            CommandKind::Load => 0,
            CommandKind::Prepare => 1,
            CommandKind::Exec => 2,
            CommandKind::Volume => 3,
            CommandKind::Sum => 4,
            CommandKind::Persist => 5,
            CommandKind::Stats => 6,
            CommandKind::Close => 7,
            CommandKind::Shutdown => 8,
            CommandKind::Batch => 9,
        }
    }

    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            CommandKind::Load => "LOAD",
            CommandKind::Prepare => "PREPARE",
            CommandKind::Exec => "EXEC",
            CommandKind::Volume => "VOLUME",
            CommandKind::Sum => "SUM",
            CommandKind::Persist => "PERSIST",
            CommandKind::Stats => "STATS",
            CommandKind::Close => "CLOSE",
            CommandKind::Shutdown => "SHUTDOWN",
            CommandKind::Batch => "BATCH",
        }
    }
}

/// A parsed request. `Load.program` is `None` when a dot-terminated body
/// follows the command line (the connection layer reads it and fills the
/// program in before dispatch).
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `LOAD [inline-stmt]`.
    Load {
        /// The program text; `None` until the body has been read.
        program: Option<String>,
    },
    /// `PREPARE name formula`.
    Prepare {
        /// Prepared-query name.
        name: String,
        /// Formula source text.
        query: String,
    },
    /// `EXEC name [eps [delta]]`.
    Exec {
        /// Prepared-query name.
        name: String,
        /// Override for the degraded-path ε.
        eps: Option<f64>,
        /// Override for the degraded-path δ.
        delta: Option<f64>,
    },
    /// `BATCH` — body of `name [eps [delta]]` spec lines.
    Batch {
        /// The spec text; `None` until the body has been read.
        specs: Option<String>,
    },
    /// `VOLUME formula`.
    Volume {
        /// Formula source text.
        query: String,
    },
    /// `SUM name`.
    Sum {
        /// Name of a loaded `sum` statement.
        name: String,
    },
    /// `PERSIST name`.
    Persist {
        /// Durable database name.
        name: String,
    },
    /// `STATS`.
    Stats,
    /// `CLOSE`.
    Close,
    /// `SHUTDOWN`.
    Shutdown,
}

impl Command {
    /// The command's kind (histogram index / wire name).
    pub fn kind(&self) -> CommandKind {
        match self {
            Command::Load { .. } => CommandKind::Load,
            Command::Prepare { .. } => CommandKind::Prepare,
            Command::Exec { .. } => CommandKind::Exec,
            Command::Batch { .. } => CommandKind::Batch,
            Command::Volume { .. } => CommandKind::Volume,
            Command::Sum { .. } => CommandKind::Sum,
            Command::Persist { .. } => CommandKind::Persist,
            Command::Stats => CommandKind::Stats,
            Command::Close => CommandKind::Close,
            Command::Shutdown => CommandKind::Shutdown,
        }
    }
}

fn ident_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars().enumerate().all(|(i, c)| {
            c == '_'
                || if i == 0 {
                    c.is_ascii_alphabetic()
                } else {
                    c.is_ascii_alphanumeric()
                }
        })
}

/// Splits an optional `@tag` prefix off a request line. The tag is any
/// non-empty whitespace-free token after `@`; it is echoed back verbatim
/// on the response header so pipelining clients can pair responses by tag
/// as well as by position.
pub fn split_tag(line: &str) -> Result<(Option<&str>, &str), String> {
    let line = line.trim_start();
    let Some(tagged) = line.strip_prefix('@') else {
        return Ok((None, line));
    };
    let (tag, rest) = match tagged.find(char::is_whitespace) {
        Some(i) => (&tagged[..i], tagged[i..].trim_start()),
        None => (tagged, ""),
    };
    if tag.is_empty() {
        return Err("request tag after `@` must be non-empty".into());
    }
    Ok((Some(tag), rest))
}

/// Parses one `name [eps [delta]]` execution spec — the argument form
/// shared by the `EXEC` command line and each `BATCH` body line. `verb`
/// labels error messages.
pub(crate) fn parse_exec_args(
    verb: &str,
    rest: &str,
) -> Result<(String, Option<f64>, Option<f64>), String> {
    let mut parts = rest.split_whitespace();
    let name = parts.next().unwrap_or("");
    if !ident_ok(name) {
        return Err(format!("{verb} needs an identifier name, got `{name}`"));
    }
    let parse_f64 = |tok: Option<&str>, what: &str| -> Result<Option<f64>, String> {
        match tok {
            None => Ok(None),
            Some(t) => t
                .parse::<f64>()
                .map(Some)
                .map_err(|_| format!("{verb} {what} must be numeric, got `{t}`")),
        }
    };
    let eps = parse_f64(parts.next(), "eps")?;
    let delta = parse_f64(parts.next(), "delta")?;
    if parts.next().is_some() {
        return Err(format!("{verb} takes at most `name eps delta`"));
    }
    Ok((name.to_string(), eps, delta))
}

/// Parses one request line (tag already split off). Errors are
/// human-readable and become `ERR proto …` responses.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    let (verb, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim_start()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "LOAD" => Ok(Command::Load {
            program: if rest.is_empty() {
                None
            } else {
                Some(rest.to_string())
            },
        }),
        "PREPARE" => {
            let (name, query) = match rest.find(char::is_whitespace) {
                Some(i) => (&rest[..i], rest[i..].trim_start()),
                None => (rest, ""),
            };
            if !ident_ok(name) {
                return Err(format!("PREPARE needs an identifier name, got `{name}`"));
            }
            if query.is_empty() {
                return Err("PREPARE needs a formula after the name".into());
            }
            Ok(Command::Prepare {
                name: name.to_string(),
                query: query.to_string(),
            })
        }
        "EXEC" => {
            let (name, eps, delta) = parse_exec_args("EXEC", rest)?;
            Ok(Command::Exec { name, eps, delta })
        }
        "BATCH" => {
            if !rest.is_empty() {
                return Err("BATCH takes no arguments; specs follow as a `.`-terminated body".into());
            }
            Ok(Command::Batch { specs: None })
        }
        "VOLUME" => {
            if rest.is_empty() {
                return Err("VOLUME needs a formula".into());
            }
            Ok(Command::Volume {
                query: rest.to_string(),
            })
        }
        "SUM" => {
            if !ident_ok(rest) {
                return Err(format!("SUM needs an identifier name, got `{rest}`"));
            }
            Ok(Command::Sum {
                name: rest.to_string(),
            })
        }
        "PERSIST" => {
            if !ident_ok(rest) {
                return Err(format!("PERSIST needs an identifier name, got `{rest}`"));
            }
            Ok(Command::Persist {
                name: rest.to_string(),
            })
        }
        "STATS" => Ok(Command::Stats),
        "CLOSE" => Ok(Command::Close),
        "SHUTDOWN" => Ok(Command::Shutdown),
        other => Err(format!(
            "unknown command `{other}` (expected LOAD, PREPARE, EXEC, BATCH, VOLUME, SUM, PERSIST, STATS, CLOSE or SHUTDOWN)"
        )),
    }
}

/// A response: one header line plus zero or more payload lines, written
/// with the `.` terminator and dot-stuffing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// `OK …` or `ERR code …`.
    pub header: String,
    /// Payload lines (diagnostics, stats, transcripts).
    pub body: Vec<String>,
}

impl Response {
    /// An `OK` response with extra header info.
    pub fn ok(info: impl Into<String>) -> Response {
        let info = info.into();
        Response {
            header: if info.is_empty() {
                "OK".to_string()
            } else {
                format!("OK {info}")
            },
            body: Vec::new(),
        }
    }

    /// An `ERR <code> <msg>` response.
    pub fn err(code: &str, msg: impl Into<String>) -> Response {
        Response {
            header: format!("ERR {code} {}", msg.into()),
            body: Vec::new(),
        }
    }

    /// Appends payload lines (splitting on embedded newlines).
    #[must_use]
    pub fn with_body(mut self, text: &str) -> Response {
        self.body.extend(text.lines().map(|l| l.to_string()));
        self
    }

    /// `true` iff the header starts with `OK`.
    pub fn is_ok(&self) -> bool {
        self.header.starts_with("OK")
    }

    /// Serializes to the wire: header, dot-stuffed payload, `.` line.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "{}", self.header)?;
        for line in &self.body {
            if line.starts_with('.') {
                writeln!(w, ".{line}")?;
            } else {
                writeln!(w, "{line}")?;
            }
        }
        writeln!(w, ".")?;
        w.flush()
    }
}

/// Reads one dot-terminated response from `r` (client side): returns the
/// header line and un-stuffed payload lines. `Ok(None)` on clean EOF
/// before a header.
pub fn read_response(r: &mut impl BufRead) -> io::Result<Option<Response>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let header = header.trim_end_matches(['\n', '\r']).to_string();
    let mut body = Vec::new();
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        let line = line.trim_end_matches(['\n', '\r']);
        if line == "." {
            break;
        }
        let unstuffed = line.strip_prefix('.').filter(|_| line.starts_with(".."));
        match unstuffed {
            Some(s) => body.push(s.to_string()),
            None => body.push(line.to_string()),
        }
    }
    Ok(Some(Response { header, body }))
}

/// Why a request body could not be read.
#[derive(Debug)]
pub enum BodyError {
    /// The body exceeded the configured byte limit. The reader drained the
    /// rest of the body up to the `.` terminator, so the connection stays
    /// framed and can serve the next pipelined request.
    TooLarge {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// The underlying stream failed (EOF mid-body, timeout, reset).
    Io(io::Error),
}

impl From<io::Error> for BodyError {
    fn from(e: io::Error) -> BodyError {
        BodyError::Io(e)
    }
}

impl std::fmt::Display for BodyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BodyError::TooLarge { limit } => {
                write!(f, "body too large (limit={limit} bytes)")
            }
            BodyError::Io(e) => write!(f, "body read failed: {e}"),
        }
    }
}

impl std::error::Error for BodyError {}

/// Reads a dot-terminated request body (server side, after a bare `LOAD`
/// or a `BATCH`), un-stuffing leading dots. Bodies larger than `limit`
/// bytes return [`BodyError::TooLarge`] — after draining to the dot — so
/// one client cannot buffer the server out of memory.
pub(crate) fn read_body(r: &mut impl BufRead, limit: usize) -> Result<String, BodyError> {
    let mut out = String::new();
    let mut over = false;
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(BodyError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            )));
        }
        let line = line.trim_end_matches(['\n', '\r']);
        if line == "." {
            break;
        }
        let line = if line.starts_with("..") {
            &line[1..]
        } else {
            line
        };
        if !over && out.len() + line.len() + 1 > limit {
            over = true;
            out.clear();
        }
        if !over {
            out.push_str(line);
            out.push('\n');
        }
    }
    if over {
        Err(BodyError::TooLarge { limit })
    } else {
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_every_command() {
        assert_eq!(
            parse_command("LOAD").unwrap(),
            Command::Load { program: None }
        );
        assert!(matches!(
            parse_command("LOAD rel S(y) := y > 0").unwrap(),
            Command::Load { program: Some(p) } if p.starts_with("rel")
        ));
        assert!(matches!(
            parse_command("PREPARE q exists y. x < y").unwrap(),
            Command::Prepare { name, .. } if name == "q"
        ));
        assert_eq!(
            parse_command("EXEC q 0.1 0.01").unwrap(),
            Command::Exec {
                name: "q".into(),
                eps: Some(0.1),
                delta: Some(0.01)
            }
        );
        assert!(matches!(
            parse_command("volume x < 1").unwrap(),
            Command::Volume { .. }
        ));
        assert!(matches!(
            parse_command("SUM t").unwrap(),
            Command::Sum { .. }
        ));
        assert!(matches!(
            parse_command("PERSIST main").unwrap(),
            Command::Persist { name } if name == "main"
        ));
        assert_eq!(parse_command("STATS").unwrap(), Command::Stats);
        assert_eq!(parse_command("CLOSE").unwrap(), Command::Close);
        assert_eq!(parse_command("SHUTDOWN").unwrap(), Command::Shutdown);
        assert_eq!(
            parse_command("BATCH").unwrap(),
            Command::Batch { specs: None }
        );
    }

    #[test]
    fn rejects_malformed_commands() {
        assert!(parse_command("FROB").is_err());
        assert!(parse_command("PREPARE 1bad x < 1").is_err());
        assert!(parse_command("PREPARE q").is_err());
        assert!(parse_command("EXEC q nope").is_err());
        assert!(parse_command("EXEC q 0.1 0.1 0.1").is_err());
        assert!(parse_command("SUM").is_err());
        assert!(parse_command("PERSIST").is_err());
        assert!(parse_command("PERSIST 1bad").is_err());
        assert!(parse_command("BATCH q").is_err(), "specs go in the body");
    }

    #[test]
    fn splits_request_tags() {
        assert_eq!(split_tag("EXEC q").unwrap(), (None, "EXEC q"));
        assert_eq!(split_tag("@7 EXEC q").unwrap(), (Some("7"), "EXEC q"));
        assert_eq!(split_tag("@a-b STATS").unwrap(), (Some("a-b"), "STATS"));
        assert_eq!(split_tag("@t").unwrap(), (Some("t"), ""));
        assert!(split_tag("@ EXEC q").is_err(), "empty tag rejected");
    }

    #[test]
    fn kind_indices_are_a_bijection() {
        let kinds = [
            CommandKind::Load,
            CommandKind::Prepare,
            CommandKind::Exec,
            CommandKind::Volume,
            CommandKind::Sum,
            CommandKind::Persist,
            CommandKind::Stats,
            CommandKind::Close,
            CommandKind::Shutdown,
            CommandKind::Batch,
        ];
        let mut seen = [false; N_COMMAND_KINDS];
        for k in kinds {
            assert!(!seen[k.index()], "duplicate index for {}", k.name());
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn response_roundtrip_with_dot_stuffing() {
        let resp = Response::ok("EXEC q status=exact value=1/2")
            .with_body("line one\n.starts with dot\nline three");
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let mut r = BufReader::new(&wire[..]);
        let back = read_response(&mut r).unwrap().unwrap();
        assert_eq!(back, resp);
        assert!(back.is_ok());
    }

    #[test]
    fn body_roundtrip() {
        let wire = b"rel S(y) := y > 0\n..dotline\n.\n";
        let mut r = BufReader::new(&wire[..]);
        let body = read_body(&mut r, 1 << 20).unwrap();
        assert_eq!(body, "rel S(y) := y > 0\n.dotline\n");
    }

    #[test]
    fn body_limit_boundary() {
        // "abc\n" is exactly 4 bytes: a limit of 4 accepts it, 3 rejects.
        let mut r = BufReader::new(&b"abc\n.\n"[..]);
        assert_eq!(read_body(&mut r, 4).unwrap(), "abc\n");
        let mut r = BufReader::new(&b"abc\n.\n"[..]);
        match read_body(&mut r, 3) {
            Err(BodyError::TooLarge { limit: 3 }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_drains_to_the_dot() {
        // After a TooLarge error the reader must have consumed the whole
        // body including the terminator, leaving the next request intact.
        let wire = b"0123456789\nmore\n.\nSTATS\n";
        let mut r = BufReader::new(&wire[..]);
        assert!(matches!(
            read_body(&mut r, 5),
            Err(BodyError::TooLarge { .. })
        ));
        let mut next = String::new();
        r.read_line(&mut next).unwrap();
        assert_eq!(next, "STATS\n");
    }

    #[test]
    fn eof_handling() {
        let mut r = BufReader::new(&b""[..]);
        assert!(read_response(&mut r).unwrap().is_none());
        let mut r = BufReader::new(&b"OK\n"[..]);
        assert!(read_response(&mut r).is_err());
    }
}
