//! `cqa-engine` — a concurrent constraint-query service.
//!
//! Everything below `cqa-engine` is a one-shot library call: parse a
//! formula, eliminate its quantifiers, integrate. This crate turns the
//! workspace into a *servable system*, the shape Giusti–Heintz–Kuijpers
//! give geometric-query evaluation: quantifier elimination is the
//! dominant, **reusable** artifact of constraint-query evaluation, so a
//! long-lived process that caches QE output across requests amortizes the
//! doubly-exponential part of the work the way a prepared-statement cache
//! amortizes SQL planning.
//!
//! The pieces:
//!
//! * [`Engine`] — the shared state: a concurrent prepared-query cache
//!   ([`QueryCache`], keyed by [`cqa_logic::Formula::canonical_key`] of
//!   the relation-expanded, simplified formula) memoizing QE output,
//!   compiled [`cqa_logic::CompiledMatrix`] kernels, and analyzer
//!   verdicts, with LRU eviction under a byte budget; plus service
//!   counters and latency histograms ([`EngineStats`]).
//! * [`Session`] — per-connection state: a [`cqa_core::Database`] built
//!   from `LOAD`ed `.cqa` programs, plus named prepared queries.
//! * [`Command`]/[`Response`] — a hand-rolled, newline-delimited text
//!   protocol (`LOAD`, `PREPARE`, `EXEC`, `VOLUME`, `SUM`, `STATS`,
//!   `CLOSE`, `SHUTDOWN`); std-only, no serialization dependencies.
//! * [`Storage`] — the durable layer ([`storage`]): a fsync-on-commit
//!   write-ahead log of `LOAD` merges, periodic snapshot compaction,
//!   replay-on-boot recovery, and a warm-start file that persists the
//!   prepared-query/subplan cache across restarts (sessions opt in with
//!   `PERSIST <db>`).
//! * [`serve`] — the event-driven front end (`net`): a reactor thread
//!   parks every open connection on non-blocking sockets and assembles
//!   complete request frames, a fixed worker pool executes them, so N
//!   idle sessions cost zero worker threads; admission is a max-sessions
//!   limit (`ERR busy` beyond it), the protocol pipelines (responses
//!   tagged and written in request order, `BATCH` amortizing one round
//!   trip over many `EXEC`s), and every request runs under a per-request
//!   [`cqa_logic::budget::EvalBudget`] so a slow query cannot wedge a
//!   worker forever. The pre-refactor thread-per-connection loop survives
//!   as [`serve_threaded`] — the parity oracle and benchmark baseline.
//!
//! Answers are tagged `status=exact` or `status=approx eps=… delta=…`:
//! when the exact path is infeasible (budget trip, or a semi-algebraic
//! region the exact integrator cannot triangulate) the engine degrades to
//! the deterministic Monte Carlo estimator over the cached compiled
//! kernel and says so, following Dreier–Rossmanith's view of (ε, δ)
//! answers as first-class responses.

#![forbid(unsafe_code)]

mod cache;
mod engine;
mod net;
mod protocol;
mod stats;
pub mod storage;

pub use cache::{CacheEntry, CacheKey, CacheSnapshot, QueryCache, WarmSlot, DEFAULT_CACHE_SHARDS};
pub use engine::{Engine, EngineConfig, Session, MC_SEED};
pub use net::{serve, serve_threaded, spawn_server, spawn_server_threaded, ServerHandle};
pub use protocol::{parse_command, read_response, split_tag, Command, CommandKind, Response};
pub use stats::{EngineStats, Histogram, LATENCY_BUCKETS_US};
pub use storage::{Storage, StorageError, StorageStats};
