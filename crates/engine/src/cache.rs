//! The shared prepared-query cache: canonical structural hash → QE output
//! + compiled kernel + analyzer verdict, LRU-evicted under a byte budget.
//!
//! The cache is the reason the engine exists: Section 3 of the paper (and
//! the whole Giusti–Heintz line of work) makes quantifier elimination the
//! dominating cost of constraint-query evaluation, and QE output depends
//! only on the (relation-expanded) formula — not on the session, the
//! client, or the request parameters. Each shard is a `Mutex` around a
//! `HashMap` plus a logical clock — deliberately boring: entries are
//! `Arc`-shared so a lock is held only for lookup/insert bookkeeping,
//! never during QE, compilation, or evaluation.
//!
//! ### Sharding
//!
//! The map is split into 2^k independent lock domains selected by
//! `CacheKey.hash`, so concurrent warm `EXEC`s on different keys never
//! contend on one global mutex. Each shard carries its own slice of the
//! byte budget and its own LRU clock (recency is a per-shard notion);
//! hit/miss/eviction counters are process-global atomics, so `STATS`
//! aggregates are shard-count-independent. So is [`QueryCache::export`]:
//! slots are merged across shards and sorted by `(kind, hash, dim)`, which
//! makes the storage layer's warm-start file bit-identical for any shard
//! count — a warm file written at 8 shards boots a 1-shard server
//! identically, and vice versa.

use cqa_logic::{CompiledMatrix, ConstraintClass, Formula};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A prepared-query cache key: the 128-bit canonical structural hash of the
/// relation-expanded, simplified formula (see
/// [`cqa_logic::ir::Arena::canonical_hash_for_params`]) plus the output
/// dimension. The hash is invariant under session variable interning,
/// α-renaming of bound variables, And/Or child order and atom scaling —
/// exactly the invariances the old rendered string key had, without the
/// per-request string render.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical 128-bit structural hash, positional over the name-sorted
    /// parameter list.
    pub hash: u128,
    /// Number of output columns (`vars.len()`), so a 1-D and a 2-D query
    /// that happen to share a matrix never collide.
    pub dim: u32,
}

/// Which namespace a resident slot belongs to. Whole-query entries and
/// subplan entries can share a `(hash, dim)` pair — a prepared query whose
/// body *is* a single quantifier block hashes identically as a query and
/// as a subplan — so the kind is part of the map key: a subplan insert can
/// never overwrite, double-charge, or (via the remove-then-reinsert refund)
/// evict the query entry living under the same `(hash, dim)`, and vice
/// versa.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum SlotKind {
    /// A whole prepared query: QE output + kernel + analyzer verdict.
    Query,
    /// One quantifier block's QE result, shared across queries by the
    /// planner (see `cqa_qe::plan`).
    Subplan,
}

/// The full map key: the public [`CacheKey`] plus the namespace kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct FullKey {
    key: CacheKey,
    kind: SlotKind,
}

/// Bytes charged to the budget for each resident key: the key itself plus
/// the map-slot bookkeeping (recency clock). Keys are small and fixed-size
/// now, but they are resident memory all the same — the budget counts them.
pub(crate) const KEY_BYTES: usize = std::mem::size_of::<FullKey>() + std::mem::size_of::<u64>();

/// One memoized query: everything downstream of quantifier elimination
/// that is reusable across sessions and requests.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The quantifier-free, relation-free, simplified QE output. Its free
    /// variables are the *inserting* session's interned indices — other
    /// sessions must use it together with `qf_vars`, never their own
    /// variable list.
    pub qf: Formula,
    /// The inserting session's parameter variables, in the positional
    /// (name-sorted) order shared by every session that keys this entry.
    /// Exact volume is integrated in this variable space; the result is
    /// invariant under the renaming.
    pub qf_vars: Vec<cqa_poly::Var>,
    /// The PR-1 compiled kernel of `qf`, slots in output-column order.
    pub kernel: CompiledMatrix,
    /// Constraint class of `qf` (the analyzer verdict that gates the
    /// exact-volume path: polynomial outputs cannot be triangulated).
    pub class: ConstraintClass,
    /// Human-readable fragment verdict (e.g. `"FO+LIN"`), reported over
    /// the wire so clients see what they are getting.
    pub fragment: &'static str,
    /// Estimated resident size, charged against the byte budget.
    pub bytes: usize,
    /// Interval-certified Monte Carlo sampling box over the output
    /// columns, clamped to the unit cube: every satisfying point of `qf`
    /// lies inside, so sample lanes outside skip kernel evaluation.
    /// `None` when the analysis certified nothing tighter than the unit
    /// box (or the absint pass was disabled at insert time).
    pub mc_box: Option<Vec<(f64, f64)>>,
}

/// Rough resident-size estimate of a formula: nodes plus polynomial terms.
/// The budget needs a consistent currency, not an exact allocator audit.
pub(crate) fn formula_bytes(f: &Formula) -> usize {
    let mut bytes = 0usize;
    f.visit(&mut |g| {
        bytes += 48;
        if let Formula::Atom(a) = g {
            bytes += 96 * a.poly.num_terms().max(1);
        }
    });
    bytes
}

/// One memoized quantifier block: the planner's unit of cross-query
/// sharing. Much lighter than a [`CacheEntry`] — no kernel, no verdicts —
/// because the consuming query compiles its own kernel over the whole
/// assembled output.
#[derive(Clone, Debug)]
pub struct SubplanEntry {
    /// The block's quantifier-free QE result, in the inserting session's
    /// variable indices.
    pub qf: Formula,
    /// The inserting session's parameter variables in canonical
    /// (ascending-index) order; consumers rename positionally onto their
    /// own parameter list.
    pub params: Vec<cqa_poly::Var>,
    /// Estimated resident size, charged against the byte budget.
    pub bytes: usize,
}

/// What lives behind a slot, by namespace.
enum Stored {
    Query(Arc<CacheEntry>),
    Subplan(Arc<SubplanEntry>),
}

/// One exported cache slot, keyed and namespaced — the unit the storage
/// layer's warm-start file serializes. Keys are session-independent
/// canonical hashes, so an exported slot is addressable by any later
/// process.
pub enum WarmSlot {
    /// A whole prepared query under [`CacheKey`].
    Query(CacheKey, Arc<CacheEntry>),
    /// A shared subplan under [`CacheKey`].
    Subplan(CacheKey, Arc<SubplanEntry>),
}

impl Stored {
    fn bytes(&self) -> usize {
        match self {
            Stored::Query(e) => e.bytes,
            Stored::Subplan(e) => e.bytes,
        }
    }
}

struct Slot {
    entry: Stored,
    last_used: u64,
}

struct Inner {
    map: HashMap<FullKey, Slot>,
    clock: u64,
    bytes: usize,
}

/// One lock domain: a map slice plus its slice of the byte budget.
struct Shard {
    inner: Mutex<Inner>,
    byte_budget: usize,
}

/// Default shard count: enough lock domains that a handful of worker
/// threads hammering warm hits rarely collide, small enough that the
/// per-shard budget slices stay meaningful.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// A point-in-time view of the cache counters, for `STATS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries removed by the LRU byte-budget sweep.
    pub evictions: u64,
    /// Subplan lookups that found an entry (planner sharing at work).
    pub subplan_hits: u64,
    /// Subplan lookups that found nothing.
    pub subplan_misses: u64,
    /// Live entries (both namespaces).
    pub entries: usize,
    /// Estimated live bytes.
    pub bytes: usize,
    /// The configured byte budget.
    pub byte_budget: usize,
    /// Number of independent lock domains the map is split into.
    pub shards: usize,
    /// Times a cache mutex was recovered after being poisoned by a
    /// panicking worker (each one is a request that survived instead of
    /// wedging every later request).
    pub poison_recoveries: u64,
}

impl CacheSnapshot {
    /// Hit rate in `[0, 1]`; `0` when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The concurrent prepared-query (and subplan) cache, sharded by key hash.
pub struct QueryCache {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; shard count is a power of two so selection is a
    /// mask, not a division.
    mask: usize,
    byte_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    subplan_hits: AtomicU64,
    subplan_misses: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl QueryCache {
    /// An empty cache bounded by `byte_budget` estimated bytes, split into
    /// [`DEFAULT_CACHE_SHARDS`] lock domains.
    pub fn new(byte_budget: usize) -> QueryCache {
        QueryCache::with_shards(byte_budget, DEFAULT_CACHE_SHARDS)
    }

    /// An empty cache with an explicit shard count. The count is clamped
    /// to `[1, 256]` and rounded up to a power of two; the byte budget is
    /// divided evenly across shards (eviction is a per-shard decision —
    /// LRU order is only meaningful inside one lock domain).
    pub fn with_shards(byte_budget: usize, shards: usize) -> QueryCache {
        let n = shards.clamp(1, 256).next_power_of_two();
        let per_shard = byte_budget / n;
        QueryCache {
            shards: (0..n)
                .map(|_| Shard {
                    inner: Mutex::new(Inner {
                        map: HashMap::new(),
                        clock: 0,
                        bytes: 0,
                    }),
                    byte_budget: per_shard,
                })
                .collect(),
            mask: n - 1,
            byte_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            subplan_hits: AtomicU64::new(0),
            subplan_misses: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Number of lock domains.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`: both 64-bit halves of the canonical hash
    /// are folded in so closely related keys still spread.
    fn shard_for(&self, key: CacheKey) -> &Shard {
        let folded = (key.hash as u64) ^ ((key.hash >> 64) as u64);
        &self.shards[(folded as usize) & self.mask]
    }

    /// Locks one shard's map, recovering from poisoning instead of
    /// propagating it.
    ///
    /// A poisoned mutex means some worker panicked *while holding the
    /// lock*. Every operation under this lock leaves the map structurally
    /// valid at each await-free step (the byte ledger may at worst
    /// over-count a half-finished insert's arithmetic, which the next
    /// eviction sweep self-corrects), so the right posture for a cache is
    /// clear-and-continue semantics without the clear: take the data as-is
    /// and keep serving. The alternative — every later request panicking
    /// on `expect("cache lock")` — turns one bad request into a permanent
    /// engine-wide outage.
    fn lock<'a>(shard: &'a Shard, recoveries: &AtomicU64) -> std::sync::MutexGuard<'a, Inner> {
        shard.inner.lock().unwrap_or_else(|poisoned| {
            recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Poisons every shard mutex, for tests proving the engine survives a
    /// worker that panicked while holding one. Panics inside a scoped
    /// thread holding each lock; the panics are contained there.
    #[doc(hidden)]
    pub fn poison_for_tests(&self) {
        for shard in &self.shards {
            std::thread::scope(|s| {
                let handle = s.spawn(|| {
                    let _guard = shard.inner.lock().expect("not yet poisoned");
                    panic!("poisoning the cache lock for a test");
                });
                assert!(handle.join().is_err(), "the poisoning thread must panic");
            });
        }
    }

    /// Looks up a whole-query entry, refreshing its recency on a hit.
    pub fn get(&self, key: CacheKey) -> Option<Arc<CacheEntry>> {
        let full = FullKey {
            key,
            kind: SlotKind::Query,
        };
        let shard = self.shard_for(key);
        let mut inner = Self::lock(shard, &self.poison_recoveries);
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&full) {
            Some(slot) => {
                slot.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                match &slot.entry {
                    Stored::Query(e) => Some(Arc::clone(e)),
                    Stored::Subplan(_) => unreachable!("kind is part of the key"),
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up a subplan entry, refreshing its recency on a hit. Counted
    /// separately from query hits/misses: the `STATS` contract (and CI's
    /// greps) treat whole-query traffic and planner sharing as distinct
    /// signals.
    pub fn get_subplan(&self, key: CacheKey) -> Option<Arc<SubplanEntry>> {
        let full = FullKey {
            key,
            kind: SlotKind::Subplan,
        };
        let shard = self.shard_for(key);
        let mut inner = Self::lock(shard, &self.poison_recoveries);
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&full) {
            Some(slot) => {
                slot.last_used = clock;
                self.subplan_hits.fetch_add(1, Ordering::Relaxed);
                match &slot.entry {
                    Stored::Subplan(e) => Some(Arc::clone(e)),
                    Stored::Query(_) => unreachable!("kind is part of the key"),
                }
            }
            None => {
                self.subplan_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) a whole-query entry, then evicts
    /// least-recently-used entries until the byte budget holds again. The
    /// entry just inserted is never evicted by its own insertion sweep — a
    /// query larger than the whole budget still gets served, it just won't
    /// keep neighbours. Each resident entry is charged
    /// `entry.bytes + KEY_BYTES`: the key is resident memory too, not a
    /// freebie.
    pub fn insert(&self, key: CacheKey, entry: CacheEntry) -> Arc<CacheEntry> {
        let entry = Arc::new(entry);
        self.insert_stored(
            FullKey {
                key,
                kind: SlotKind::Query,
            },
            Stored::Query(Arc::clone(&entry)),
        );
        entry
    }

    /// Inserts (or replaces) a subplan entry under the subplan namespace.
    /// Because the private `SlotKind` tag is part of the map key, this can never touch —
    /// overwrite, refund, or double-charge — a query entry under the same
    /// `(hash, dim)`, and the insertion sweep protects only the inserted
    /// slot itself (a subplan never shields its parent query from LRU, nor
    /// the reverse).
    pub fn insert_subplan(&self, key: CacheKey, entry: SubplanEntry) -> Arc<SubplanEntry> {
        let entry = Arc::new(entry);
        self.insert_stored(
            FullKey {
                key,
                kind: SlotKind::Subplan,
            },
            Stored::Subplan(Arc::clone(&entry)),
        );
        entry
    }

    /// Shared insert path: replace-refund under the *full* (kind-aware)
    /// key, charge payload + key bytes, LRU-sweep everything except the
    /// just-inserted slot. The sweep is a per-shard decision: each shard
    /// holds its own slice of the budget, and recency is only comparable
    /// inside one lock domain.
    fn insert_stored(&self, full: FullKey, stored: Stored) {
        let shard = self.shard_for(full.key);
        let mut inner = Self::lock(shard, &self.poison_recoveries);
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.map.remove(&full) {
            inner.bytes -= old.entry.bytes() + KEY_BYTES;
        }
        inner.bytes += stored.bytes() + KEY_BYTES;
        inner.map.insert(
            full,
            Slot {
                entry: stored,
                last_used: clock,
            },
        );
        while inner.bytes > shard.byte_budget && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != full)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let slot = inner.map.remove(&k).expect("victim exists");
                    inner.bytes -= slot.entry.bytes() + KEY_BYTES;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Counter snapshot for `STATS`. Entry and byte totals are summed
    /// across shards (each shard locked in turn — the snapshot is a
    /// statistics view, not a consistent cut, like every counter here).
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut entries = 0usize;
        let mut bytes = 0usize;
        for shard in &self.shards {
            let inner = Self::lock(shard, &self.poison_recoveries);
            entries += inner.map.len();
            bytes += inner.bytes;
        }
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            subplan_hits: self.subplan_hits.load(Ordering::Relaxed),
            subplan_misses: self.subplan_misses.load(Ordering::Relaxed),
            entries,
            bytes,
            byte_budget: self.byte_budget,
            shards: self.shards.len(),
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
        }
    }

    /// Exports every resident slot in deterministic order (queries before
    /// subplans, then by key) for the storage layer's warm-start file.
    /// Slots are merged across shards *before* sorting, so the export —
    /// and therefore the warm file the storage layer writes from it — is
    /// bit-identical for any shard count. Entries are `Arc`-shared, so
    /// this clones pointers, not payloads, and each shard lock is released
    /// before any serialization happens.
    pub fn export(&self) -> Vec<WarmSlot> {
        let mut slots: Vec<WarmSlot> = Vec::new();
        for shard in &self.shards {
            let inner = Self::lock(shard, &self.poison_recoveries);
            slots.extend(inner.map.iter().map(|(full, slot)| match &slot.entry {
                Stored::Query(e) => WarmSlot::Query(full.key, Arc::clone(e)),
                Stored::Subplan(e) => WarmSlot::Subplan(full.key, Arc::clone(e)),
            }));
        }
        slots.sort_by_key(|s| match s {
            WarmSlot::Query(k, _) => (0u8, k.hash, k.dim),
            WarmSlot::Subplan(k, _) => (1u8, k.hash, k.dim),
        });
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_logic::{parse_formula, SlotMap};

    fn entry(src: &str, bytes: usize) -> CacheEntry {
        let (qf, vars) = parse_formula(src).unwrap();
        let qf_vars: Vec<_> = qf.free_vars().into_iter().collect();
        let kernel = CompiledMatrix::compile(&qf, &SlotMap::from_vars(&qf_vars)).unwrap();
        let _ = vars;
        CacheEntry {
            class: qf.class(),
            fragment: "FO+LIN",
            qf,
            qf_vars,
            kernel,
            bytes,
            mc_box: None,
        }
    }

    fn key(hash: u128) -> CacheKey {
        CacheKey { hash, dim: 1 }
    }

    #[test]
    fn hit_miss_and_recency() {
        let cache = QueryCache::new(10_000);
        assert!(cache.get(key(1)).is_none());
        cache.insert(key(1), entry("x < 1", 100));
        assert!(cache.get(key(1)).is_some());
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        assert_eq!(snap.entries, 1);
        assert!((snap.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dim_is_part_of_the_key() {
        let cache = QueryCache::new(10_000);
        cache.insert(CacheKey { hash: 7, dim: 1 }, entry("x < 1", 100));
        assert!(cache.get(CacheKey { hash: 7, dim: 2 }).is_none());
        assert!(cache.get(CacheKey { hash: 7, dim: 1 }).is_some());
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        // One lock domain so all three keys compete for the same budget
        // slice; room for two entries (payload + key bytes), not three.
        let cache = QueryCache::with_shards(2 * (100 + KEY_BYTES) + 10, 1);
        cache.insert(key(1), entry("x < 1", 100));
        cache.insert(key(2), entry("x < 2", 100));
        // Touch `1` so `2` is the LRU when `3` overflows the budget.
        assert!(cache.get(key(1)).is_some());
        cache.insert(key(3), entry("x < 3", 100));
        assert!(cache.get(key(1)).is_some(), "recently used survives");
        assert!(cache.get(key(2)).is_none(), "LRU evicted");
        assert!(cache.get(key(3)).is_some(), "new entry survives");
        assert_eq!(cache.snapshot().evictions, 1);
    }

    #[test]
    fn oversized_entry_is_kept_alone() {
        let cache = QueryCache::with_shards(50, 1);
        cache.insert(key(1), entry("x < 1", 1000));
        assert!(cache.get(key(1)).is_some());
        cache.insert(key(2), entry("x < 2", 1000));
        assert!(cache.get(key(2)).is_some());
        assert!(cache.get(key(1)).is_none());
    }

    #[test]
    fn reinsert_replaces_bytes() {
        let cache = QueryCache::with_shards(1000, 1);
        cache.insert(key(1), entry("x < 1", 400));
        cache.insert(key(1), entry("x < 1", 200));
        let snap = cache.snapshot();
        assert_eq!(snap.entries, 1);
        assert_eq!(snap.bytes, 200 + KEY_BYTES, "key bytes are charged too");
    }

    #[test]
    fn key_bytes_are_charged_and_refunded() {
        let cache = QueryCache::with_shards(10 * (100 + KEY_BYTES), 1);
        cache.insert(key(1), entry("x < 1", 100));
        cache.insert(key(2), entry("x < 2", 100));
        assert_eq!(cache.snapshot().bytes, 2 * (100 + KEY_BYTES));
    }

    fn subplan(src: &str, bytes: usize) -> SubplanEntry {
        let (qf, _) = parse_formula(src).unwrap();
        let params = qf.free_vars().into_iter().collect();
        SubplanEntry { qf, params, bytes }
    }

    #[test]
    fn subplan_and_query_namespaces_are_disjoint() {
        // A query entry and a subplan entry under the *same* (hash, dim):
        // both must be resident, separately charged, separately retrievable
        // — a subplan insert can never overwrite or refund its parent.
        let cache = QueryCache::new(100_000);
        cache.insert(key(7), entry("x < 1", 300));
        cache.insert_subplan(key(7), subplan("x < 2", 50));
        assert!(cache.get(key(7)).is_some(), "query survives subplan insert");
        assert!(cache.get_subplan(key(7)).is_some());
        let snap = cache.snapshot();
        assert_eq!(snap.entries, 2);
        assert_eq!(
            snap.bytes,
            300 + 50 + 2 * KEY_BYTES,
            "each namespace charges its own payload and key — no sharing, \
             no double-charge"
        );
        assert_eq!((snap.hits, snap.misses), (1, 0));
        assert_eq!((snap.subplan_hits, snap.subplan_misses), (1, 0));
    }

    #[test]
    fn subplan_reinsert_replaces_only_subplan_bytes() {
        let cache = QueryCache::new(100_000);
        cache.insert(key(7), entry("x < 1", 300));
        cache.insert_subplan(key(7), subplan("x < 2", 400));
        cache.insert_subplan(key(7), subplan("x < 2", 80));
        let snap = cache.snapshot();
        assert_eq!(snap.entries, 2);
        assert_eq!(snap.bytes, 300 + 80 + 2 * KEY_BYTES);
        assert!(cache.get(key(7)).is_some(), "query bytes untouched");
    }

    #[test]
    fn subplan_lookup_misses_do_not_count_as_query_misses() {
        let cache = QueryCache::new(10_000);
        assert!(cache.get_subplan(key(1)).is_none());
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses), (0, 0));
        assert_eq!((snap.subplan_hits, snap.subplan_misses), (0, 1));
    }

    #[test]
    fn poisoned_lock_recovers_and_counts() {
        let cache = QueryCache::new(10_000);
        cache.insert(key(1), entry("x < 1", 100));
        cache.poison_for_tests();
        // Every operation keeps working on the recovered data.
        assert!(cache.get(key(1)).is_some(), "entry survives poisoning");
        cache.insert(key(2), entry("x < 2", 100));
        assert!(cache.get(key(2)).is_some());
        let snap = cache.snapshot();
        assert_eq!(snap.entries, 2);
        assert!(snap.poison_recoveries >= 1, "{snap:?}");
    }

    #[test]
    fn export_is_deterministic_and_complete() {
        let cache = QueryCache::new(100_000);
        cache.insert(key(2), entry("x < 2", 100));
        cache.insert(key(1), entry("x < 1", 100));
        cache.insert_subplan(key(1), subplan("x < 3", 50));
        let a: Vec<_> = cache
            .export()
            .iter()
            .map(|s| match s {
                WarmSlot::Query(k, _) => (0u8, k.hash),
                WarmSlot::Subplan(k, _) => (1u8, k.hash),
            })
            .collect();
        assert_eq!(a, vec![(0, 1), (0, 2), (1, 1)]);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(QueryCache::with_shards(1 << 20, 1).shard_count(), 1);
        assert_eq!(QueryCache::with_shards(1 << 20, 3).shard_count(), 4);
        assert_eq!(QueryCache::with_shards(1 << 20, 8).shard_count(), 8);
        assert_eq!(QueryCache::with_shards(1 << 20, 0).shard_count(), 1);
        assert_eq!(QueryCache::with_shards(1 << 20, 999).shard_count(), 256);
        assert_eq!(QueryCache::new(1 << 20).shard_count(), DEFAULT_CACHE_SHARDS);
        assert_eq!(QueryCache::new(1 << 20).snapshot().shards, 8);
    }

    #[test]
    fn export_and_accounting_are_shard_count_independent() {
        // The same workload at 1, 2 and 8 shards: identical export order
        // and identical total entry/byte accounting (budget large enough
        // that no shard slice evicts).
        let keys: Vec<u128> = (0..32).map(|i| (i as u128) << 61 | i as u128).collect();
        let snaps: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&n| {
                let cache = QueryCache::with_shards(1 << 24, n);
                for &h in &keys {
                    cache.insert(key(h), entry("x < 1", 100));
                    cache.insert_subplan(key(h), subplan("x < 2", 50));
                }
                let order: Vec<_> = cache
                    .export()
                    .iter()
                    .map(|s| match s {
                        WarmSlot::Query(k, _) => (0u8, k.hash, k.dim),
                        WarmSlot::Subplan(k, _) => (1u8, k.hash, k.dim),
                    })
                    .collect();
                let snap = cache.snapshot();
                (order, snap.entries, snap.bytes)
            })
            .collect();
        assert_eq!(snaps[0], snaps[1]);
        assert_eq!(snaps[0], snaps[2]);
        assert_eq!(snaps[0].1, 64);
    }

    #[test]
    fn shards_spread_keys_across_lock_domains() {
        // With 8 shards and well-mixed hashes, more than one shard must
        // end up populated (per-shard budgets only make sense if routing
        // actually spreads).
        let cache = QueryCache::with_shards(1 << 24, 8);
        for i in 0..64u128 {
            cache.insert(key(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) << 7), {
                entry("x < 1", 100)
            });
        }
        let populated = cache
            .shards
            .iter()
            .filter(|s| !s.inner.lock().unwrap().map.is_empty())
            .count();
        assert!(populated > 1, "only {populated} of 8 shards populated");
        assert_eq!(cache.snapshot().entries, 64);
    }

    #[test]
    fn subplan_insert_sweep_shields_only_itself() {
        // Budget fits exactly two resident slots. With the query entry
        // stale and a same-key subplan inserted over budget, the sweep must
        // evict by recency alone — the query parent is evictable like any
        // neighbour, but the just-inserted subplan is not.
        let cache = QueryCache::with_shards(2 * (100 + KEY_BYTES), 1);
        cache.insert(key(7), entry("x < 1", 100));
        cache.insert_subplan(key(8), subplan("x < 2", 100));
        cache.insert_subplan(key(7), subplan("x < 3", 100));
        assert!(cache.get_subplan(key(7)).is_some(), "inserted slot kept");
        assert!(cache.get(key(7)).is_none(), "stale parent was the LRU");
        assert!(cache.get_subplan(key(8)).is_some());
        assert_eq!(cache.snapshot().evictions, 1);
    }
}
