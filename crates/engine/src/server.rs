//! The TCP front end: `std::net` accept loop + fixed-size worker pool.
//!
//! Deliberately dependency-free (no async runtime): one listener thread
//! accepts connections and hands them to `cfg.workers` worker threads over
//! an `mpsc` channel. Admission control is strict — when every worker is
//! busy a new connection gets a one-line `ERR busy` and is closed, rather
//! than queueing unboundedly (counted in `rejected_conns`). `SHUTDOWN`
//! raises a flag and self-connects to unblock the accept loop; the
//! listener then drops the channel sender, workers drain and exit, and
//! every thread is joined — a clean shutdown leaks nothing.

use crate::engine::Engine;
use crate::protocol::{parse_command, read_body, Command, Response};
use std::io::{self, BufRead, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// A handle to a server spawned with [`spawn_server`]: its bound address
/// and the listener thread to join after `SHUTDOWN`.
pub struct ServerHandle {
    addr: SocketAddr,
    join: Option<JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to stop (a client must send `SHUTDOWN`).
    pub fn join(mut self) -> io::Result<()> {
        match self.join.take() {
            Some(h) => h
                .join()
                .map_err(|_| io::Error::other("server thread panicked"))?,
            None => Ok(()),
        }
    }
}

/// Binds an ephemeral localhost port and runs [`serve`] on a background
/// thread. Used by tests, the CI smoke test, and `cqa-serve --ephemeral`.
pub fn spawn_server(engine: Arc<Engine>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let join = thread::spawn(move || serve(engine, listener));
    Ok(ServerHandle {
        addr,
        join: Some(join),
    })
}

/// Runs the accept loop until a client sends `SHUTDOWN`. Returns once all
/// worker threads have drained and joined.
pub fn serve(engine: Arc<Engine>, listener: TcpListener) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let workers = engine.cfg.workers.max(1);
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut pool = Vec::with_capacity(workers);
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active);
        pool.push(thread::spawn(move || loop {
            let stream = {
                let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                guard.recv()
            };
            let Ok(stream) = stream else { break };
            // One bad connection must cost exactly one connection: a
            // handler panic is contained here so the worker survives to
            // serve the next client instead of silently shrinking the
            // pool (and leaking its admission slot) forever.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_connection(&engine, stream, &shutdown, addr)
            }));
            match result {
                Ok(Ok(())) => {}
                Ok(Err(_)) => {
                    // The client vanished mid-response (broken pipe /
                    // reset / timeout on write). The session died with the
                    // socket; count it and move on.
                    engine.stats.write_errors.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    engine.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
            active.fetch_sub(1, Ordering::Release);
        }));
    }
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Strict admission: claim a worker slot before queueing; if none is
        // free, tell the client now instead of letting it wait in line.
        if active.fetch_add(1, Ordering::Acquire) >= workers {
            active.fetch_sub(1, Ordering::Release);
            engine.stats.rejected_conns.fetch_add(1, Ordering::Relaxed);
            let mut w = BufWriter::new(&stream);
            let _ = Response::err("busy", format!("all {workers} workers busy, try again"))
                .write_to(&mut w);
            continue;
        }
        if tx.send(stream).is_err() {
            break;
        }
    }
    drop(tx);
    for h in pool {
        let _ = h.join();
    }
    Ok(())
}

/// Serves one connection: a session lives exactly as long as its socket.
fn handle_connection(
    engine: &Engine,
    stream: TcpStream,
    shutdown: &AtomicBool,
    listener_addr: SocketAddr,
) -> io::Result<()> {
    stream.set_read_timeout(Some(engine.cfg.idle_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut session = engine.open_session();
    Response::ok("cqa-engine ready").write_to(&mut writer)?;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            // Idle timeout or torn connection: drop the session.
            Err(_) => break,
        }
        if line.trim().is_empty() {
            continue;
        }
        let cmd = match parse_command(&line) {
            Ok(cmd) => cmd,
            Err(e) => {
                Response::err("proto", e).write_to(&mut writer)?;
                continue;
            }
        };
        let cmd = match cmd {
            Command::Load { program: None } => match read_body(&mut reader) {
                Ok(body) => Command::Load {
                    program: Some(body),
                },
                Err(_) => break,
            },
            other => other,
        };
        let stop = matches!(cmd, Command::Close | Command::Shutdown);
        let is_shutdown = matches!(cmd, Command::Shutdown);
        let resp = engine.dispatch(&mut session, cmd);
        if is_shutdown {
            // Raise the flag before the (fallible) acknowledgement write:
            // a client that sends SHUTDOWN and slams its socket shut must
            // still stop the server.
            shutdown.store(true, Ordering::Release);
            // Self-connect to pop the listener out of its blocking accept.
            let _ = TcpStream::connect(listener_addr);
        }
        resp.write_to(&mut writer)?;
        if stop {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::protocol::read_response;
    use std::io::Write;

    fn send(r: &mut impl BufRead, w: &mut impl Write, line: &str) -> Response {
        writeln!(w, "{line}").unwrap();
        w.flush().unwrap();
        read_response(r).unwrap().expect("response")
    }

    #[test]
    fn tcp_roundtrip_and_clean_shutdown() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        }));
        let handle = spawn_server(Arc::clone(&engine)).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        let greeting = read_response(&mut r).unwrap().unwrap();
        assert!(greeting.is_ok(), "{greeting:?}");

        // LOAD with a dot-terminated body.
        writeln!(w, "LOAD").unwrap();
        writeln!(w, "rel S(y) := 0 <= y & y <= 1/2").unwrap();
        writeln!(w, ".").unwrap();
        w.flush().unwrap();
        let resp = read_response(&mut r).unwrap().unwrap();
        assert!(resp.is_ok(), "{resp:?}");

        let resp = send(&mut r, &mut w, "PREPARE half S(x)");
        assert!(resp.is_ok(), "{resp:?}");
        let resp = send(&mut r, &mut w, "EXEC half");
        assert!(resp.header.contains("status=exact value=1/2"), "{resp:?}");

        let resp = send(&mut r, &mut w, "FROB");
        assert!(resp.header.starts_with("ERR proto"), "{resp:?}");

        let resp = send(&mut r, &mut w, "SHUTDOWN");
        assert!(resp.is_ok(), "{resp:?}");
        handle.join().unwrap();
    }

    #[test]
    fn client_disconnecting_mid_response_does_not_kill_the_worker() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        }));
        let handle = spawn_server(Arc::clone(&engine)).unwrap();
        // Pipeline many large STATS responses and vanish without reading:
        // the kernel buffers fill, the writer hits EPIPE/ECONNRESET
        // mid-response, and before the fix the worker thread panicked and
        // the (sole) worker was gone for good.
        {
            let stream = TcpStream::connect(handle.addr()).unwrap();
            let mut w = BufWriter::new(stream.try_clone().unwrap());
            for _ in 0..5_000 {
                if writeln!(w, "STATS").and_then(|()| w.flush()).is_err() {
                    break; // server already saw the reset — also fine
                }
            }
            // Closing with unread response data pending makes the kernel
            // send RST, so the server's next write fails instead of
            // buffering forever.
        }
        // The single worker must come back and serve a fresh connection.
        let mut ok = false;
        for _ in 0..50 {
            std::thread::sleep(std::time::Duration::from_millis(100));
            let Ok(stream) = TcpStream::connect(handle.addr()) else {
                continue;
            };
            let mut r = BufReader::new(stream.try_clone().unwrap());
            let Ok(Some(greeting)) = read_response(&mut r) else {
                continue;
            };
            if greeting.header.starts_with("ERR busy") {
                continue; // worker still draining the dead connection
            }
            assert!(greeting.is_ok(), "{greeting:?}");
            let mut w = BufWriter::new(stream);
            let resp = send(&mut r, &mut w, "VOLUME 0 <= x & x <= 1/2");
            assert!(resp.header.contains("value=1/2"), "{resp:?}");
            send(&mut r, &mut w, "SHUTDOWN");
            ok = true;
            break;
        }
        assert!(ok, "worker never recovered after the broken-pipe client");
        handle.join().unwrap();
    }

    #[test]
    fn server_survives_a_poisoned_cache() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        }));
        let handle = spawn_server(Arc::clone(&engine)).unwrap();
        // Poison the shared cache mutex exactly as a worker panicking
        // while holding it would.
        engine.cache.poison_for_tests();
        // Every cache-touching command must still be served.
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        assert!(read_response(&mut r).unwrap().unwrap().is_ok());
        let resp = send(&mut r, &mut w, "PREPARE half 0 <= x & x <= 1/2");
        assert!(resp.is_ok(), "{resp:?}");
        let resp = send(&mut r, &mut w, "EXEC half");
        assert!(resp.header.contains("value=1/2"), "{resp:?}");
        let resp = send(&mut r, &mut w, "STATS");
        let body = resp.body.join("\n");
        assert!(body.contains("poison_recoveries="), "{body}");
        assert!(!body.contains("poison_recoveries=0"), "{body}");
        send(&mut r, &mut w, "SHUTDOWN");
        handle.join().unwrap();
    }

    #[test]
    fn saturated_pool_rejects_with_busy() {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        }));
        let handle = spawn_server(Arc::clone(&engine)).unwrap();
        // First connection occupies the only worker.
        let s1 = TcpStream::connect(handle.addr()).unwrap();
        let mut r1 = BufReader::new(s1.try_clone().unwrap());
        assert!(read_response(&mut r1).unwrap().unwrap().is_ok());
        // Second connection must be turned away.
        let s2 = TcpStream::connect(handle.addr()).unwrap();
        let mut r2 = BufReader::new(s2.try_clone().unwrap());
        let resp = read_response(&mut r2).unwrap().unwrap();
        assert!(resp.header.starts_with("ERR busy"), "{resp:?}");
        assert_eq!(
            crate::stats::EngineStats::get(&engine.stats.rejected_conns),
            1
        );
        // Release the worker, then stop the server.
        let mut w1 = BufWriter::new(s1);
        writeln!(w1, "SHUTDOWN").unwrap();
        w1.flush().unwrap();
        assert!(read_response(&mut r1).unwrap().unwrap().is_ok());
        handle.join().unwrap();
    }
}
