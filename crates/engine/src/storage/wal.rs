//! The append-only write-ahead log.
//!
//! Every durable mutation (today: `LOAD` merges into a named durable
//! database) is appended as one length-prefixed, checksummed record and
//! fsync'd before the mutation is applied anywhere — the classic
//! log-before-apply discipline, so a crash at *any* instruction boundary
//! leaves the log a prefix of the committed history.
//!
//! ### On-disk record format
//!
//! ```text
//! record  := len:u32le  checksum:u64le  payload[len]
//! payload := tag:u8 (1 = Load)  db:lp-string  src:lp-string
//! lp-string := len:u32le bytes[len]   ; UTF-8
//! ```
//!
//! The checksum is FNV-1a/64 over the payload bytes. Replay walks records
//! from the start of the file and stops at the first incomplete header,
//! short payload, checksum mismatch, or undecodable payload: everything
//! before that point is the recovered history, everything after is a *torn
//! tail* — the residue of a crash mid-append — and is truncated away so the
//! next append starts on a clean record boundary. A torn tail is therefore
//! never an error; a record that is well-formed but semantically
//! undecodable (unknown tag, non-UTF-8 string) is treated the same way,
//! because a half-written record can contain any bytes at all.

use super::StorageError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Bytes of the per-record header: `u32` length + `u64` checksum.
pub const RECORD_HEADER_BYTES: usize = 4 + 8;

/// FNV-1a/64 over `bytes` — the record and snapshot checksum. Not
/// cryptographic; it detects the torn and bit-rotted writes a WAL cares
/// about, with no tables and no dependencies.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One durable mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A `LOAD` merged into the durable database `db`: `src` is the raw
    /// program text the analyzer accepted, exactly as appended to the
    /// session source.
    Load {
        /// Durable database name.
        db: String,
        /// Accepted `.cqa` program text.
        src: String,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take_str(buf: &[u8], pos: &mut usize) -> Option<String> {
    let len = u32::from_le_bytes(buf.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
    *pos += 4;
    let bytes = buf.get(*pos..*pos + len)?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).ok()
}

impl WalRecord {
    /// Serializes the payload (header excluded).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Load { db, src } => {
                let mut out = vec![1u8];
                put_str(&mut out, db);
                put_str(&mut out, src);
                out
            }
        }
    }

    /// Decodes one payload; `None` on any malformed byte (the caller
    /// treats that as a torn tail, not an error).
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut pos = 1usize;
        match payload.first()? {
            1 => {
                let db = take_str(payload, &mut pos)?;
                let src = take_str(payload, &mut pos)?;
                if pos != payload.len() {
                    return None;
                }
                Some(WalRecord::Load { db, src })
            }
            _ => None,
        }
    }
}

/// What replay found in an existing log file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Intact records recovered.
    pub records: u64,
    /// Bytes of torn tail dropped (0 on a clean log).
    pub torn_bytes: u64,
}

/// The open write-ahead log: an append handle plus the replay bookkeeping.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Records appended since open (not counting replayed ones).
    pub appended: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replays every intact
    /// record into `records`, and truncates any torn tail so the file ends
    /// on a record boundary.
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>, WalReplay), StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StorageError::io("wal", path, e))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| StorageError::io("wal", path, e))?;
        let mut records = Vec::new();
        let mut good = 0usize;
        loop {
            let rest = &buf[good..];
            if rest.len() < RECORD_HEADER_BYTES {
                break;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            let Some(payload) = rest.get(RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + len) else {
                break; // short payload: torn mid-append
            };
            let sum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
            if checksum64(payload) != sum {
                break; // torn or corrupted: drop from here on
            }
            let Some(rec) = WalRecord::decode(payload) else {
                break;
            };
            records.push(rec);
            good += RECORD_HEADER_BYTES + len;
        }
        let torn = (buf.len() - good) as u64;
        if torn > 0 {
            file.set_len(good as u64)
                .map_err(|e| StorageError::io("wal", path, e))?;
            file.sync_data()
                .map_err(|e| StorageError::io("wal", path, e))?;
        }
        file.seek(SeekFrom::Start(good as u64))
            .map_err(|e| StorageError::io("wal", path, e))?;
        let replay = WalReplay {
            records: records.len() as u64,
            torn_bytes: torn,
        };
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                appended: 0,
            },
            records,
            replay,
        ))
    }

    /// Appends one record and fsyncs — the commit point of a durable
    /// mutation. Returns the encoded size (header + payload).
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, StorageError> {
        let payload = rec.encode();
        let mut framed = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&checksum64(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        self.file
            .write_all(&framed)
            .map_err(|e| StorageError::io("wal", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("wal", &self.path, e))?;
        self.appended += 1;
        Ok(framed.len() as u64)
    }

    /// Truncates the log to empty — called only *after* a snapshot holding
    /// every logged mutation has been durably written and renamed into
    /// place, so no history is ever dropped before it exists elsewhere.
    pub fn truncate(&mut self) -> Result<(), StorageError> {
        self.file
            .set_len(0)
            .map_err(|e| StorageError::io("wal", &self.path, e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| StorageError::io("wal", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("wal", &self.path, e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqa-wal-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn rec(i: usize) -> WalRecord {
        WalRecord::Load {
            db: format!("db{i}"),
            src: format!("rel R{i}(x) := x >= {i}\n"),
        }
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = tmp("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, recs, replay) = Wal::open(&path).unwrap();
        assert!(recs.is_empty());
        assert_eq!(replay, WalReplay::default());
        for i in 0..3 {
            wal.append(&rec(i)).unwrap();
        }
        drop(wal);
        let (_, recs, replay) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![rec(0), rec(1), rec(2)]);
        assert_eq!(replay.records, 3);
        assert_eq!(replay.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_dropped_and_appends_continue() {
        let path = tmp("torn.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(&rec(0)).unwrap();
        wal.append(&rec(1)).unwrap();
        drop(wal);
        // Simulate a crash mid-append: chop 5 bytes off the last record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let (mut wal, recs, replay) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![rec(0)]);
        assert!(replay.torn_bytes > 0);
        // The file ends on a record boundary again: appends are readable.
        wal.append(&rec(9)).unwrap();
        drop(wal);
        let (_, recs, _) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![rec(0), rec(9)]);
    }

    #[test]
    fn corrupted_checksum_drops_the_tail() {
        let path = tmp("corrupt.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        let first = wal.append(&rec(0)).unwrap();
        wal.append(&rec(1)).unwrap();
        drop(wal);
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = first as usize + RECORD_HEADER_BYTES + 2;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, recs, replay) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![rec(0)]);
        assert!(replay.torn_bytes > 0, "{replay:?}");
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = tmp("trunc.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(&rec(0)).unwrap();
        wal.truncate().unwrap();
        wal.append(&rec(7)).unwrap();
        drop(wal);
        let (_, recs, _) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![rec(7)]);
    }
}
