//! The cache warm-start file: the QE/kernel/subplan cache, persisted.
//!
//! The cache keys (`CacheKey { hash: u128, dim }` + the `SlotKind`
//! namespace) are *session-independent by construction* — 128-bit
//! canonical structural hashes invariant under variable interning,
//! α-renaming, child order and atom scaling — so a cache entry written by
//! one process is addressable by any later process that sees the same
//! query. That is exactly what makes warm-starting sound: a recovered
//! boot loads this file and serves warm `EXEC`/subplan-hit latency
//! instead of re-running quantifier elimination (the Giusti–Heintz
//! dominant cost), with answers bit-identical because the stored artifact
//! *is* the QE output the cold path would recompute.
//!
//! ### File format (text, line-oriented)
//!
//! ```text
//! CQAWARM1
//! Q <hash:hex> <dim> <class> <fragment> <params|-> <box|->
//! <formula, one line>
//! S <hash:hex> <dim> <params|->
//! <formula, one line>
//! #sum <fnv1a64:hex>
//! ```
//!
//! Formulas are printed with the round-trip-tested pretty-printer using
//! position-stable synthetic names, and re-parsed on load; the compiled
//! kernel is *not* stored — it is rebuilt from the quantifier-free
//! formula in microseconds (compilation is cheap; elimination is what the
//! file exists to skip). The whole file is checksummed: any mismatch
//! makes the load a no-op — the warm file is an optimization, never a
//! source of truth, so unlike a damaged snapshot a damaged warm file
//! degrades to a cold cache instead of failing the boot.

use super::wal::checksum64;
use super::StorageError;
use crate::cache::{formula_bytes, CacheEntry, CacheKey, QueryCache, SubplanEntry, WarmSlot};
use cqa_logic::{parse_formula_with, CompiledMatrix, ConstraintClass, SlotMap, VarMap};
use cqa_poly::Var;
use std::path::Path;

const MAGIC: &str = "CQAWARM1";

fn class_token(c: ConstraintClass) -> &'static str {
    match c {
        ConstraintClass::DenseOrder => "dense",
        ConstraintClass::Linear => "lin",
        ConstraintClass::Polynomial => "poly",
    }
}

fn parse_class(tok: &str) -> Option<ConstraintClass> {
    match tok {
        "dense" => Some(ConstraintClass::DenseOrder),
        "lin" => Some(ConstraintClass::Linear),
        "poly" => Some(ConstraintClass::Polynomial),
        _ => None,
    }
}

/// The engine only ever stores these two fragment verdicts; interning the
/// strings back to `&'static str` keeps `CacheEntry` unchanged.
fn parse_fragment(tok: &str) -> Option<&'static str> {
    match tok {
        "FO+LIN" => Some("FO+LIN"),
        "FO+POLY" => Some("FO+POLY"),
        _ => None,
    }
}

fn params_token(params: &[Var], names: &VarMap) -> String {
    if params.is_empty() {
        "-".to_string()
    } else {
        params
            .iter()
            .map(|v| names.name(*v))
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn box_token(mc_box: &Option<Vec<(f64, f64)>>) -> String {
    match mc_box {
        None => "-".to_string(),
        Some(bx) => bx
            .iter()
            .map(|(lo, hi)| format!("{:016x}:{:016x}", lo.to_bits(), hi.to_bits()))
            .collect::<Vec<_>>()
            .join(","),
    }
}

fn parse_box(tok: &str) -> Option<Option<Vec<(f64, f64)>>> {
    if tok == "-" {
        return Some(None);
    }
    let mut out = Vec::new();
    for pair in tok.split(',') {
        let (lo, hi) = pair.split_once(':')?;
        let lo = u64::from_str_radix(lo, 16).ok()?;
        let hi = u64::from_str_radix(hi, 16).ok()?;
        out.push((f64::from_bits(lo), f64::from_bits(hi)));
    }
    Some(Some(out))
}

/// Serializes the cache export to the warm-file text (checksum line
/// included). Deterministic: the export is sorted by the caller.
pub fn encode(slots: &[WarmSlot]) -> String {
    // Synthetic, position-stable names for every variable index: the
    // empty map's fallback naming (`x{index}`) is injective, so the
    // printed formula and the params token agree on names.
    let names = VarMap::new();
    let mut out = String::from(MAGIC);
    out.push('\n');
    for slot in slots {
        match slot {
            WarmSlot::Query(key, e) => {
                out.push_str(&format!(
                    "Q {:032x} {} {} {} {} {}\n",
                    key.hash,
                    key.dim,
                    class_token(e.class),
                    e.fragment,
                    params_token(&e.qf_vars, &names),
                    box_token(&e.mc_box),
                ));
                out.push_str(&cqa_logic::display_formula(&e.qf, &names));
                out.push('\n');
            }
            WarmSlot::Subplan(key, e) => {
                out.push_str(&format!(
                    "S {:032x} {} {}\n",
                    key.hash,
                    key.dim,
                    params_token(&e.params, &names),
                ));
                out.push_str(&cqa_logic::display_formula(&e.qf, &names));
                out.push('\n');
            }
        }
    }
    let sum = checksum64(out.as_bytes());
    out.push_str(&format!("#sum {sum:016x}\n"));
    out
}

fn parse_key(hash: &str, dim: &str) -> Option<CacheKey> {
    Some(CacheKey {
        hash: u128::from_str_radix(hash, 16).ok()?,
        dim: dim.parse().ok()?,
    })
}

fn parse_params(tok: &str, vars: &mut VarMap) -> Vec<Var> {
    if tok == "-" {
        Vec::new()
    } else {
        tok.split(',').map(|name| vars.intern(name)).collect()
    }
}

/// Decodes the warm-file text and inserts every reconstructible entry
/// into `cache`. Returns `(loaded, skipped)`; file-level damage (bad
/// magic, checksum mismatch, truncation) is a typed error and loads
/// nothing. Individual entries that no longer reconstruct (unparsable
/// formula, uncompilable kernel) are skipped, not fatal: the warm file is
/// a cache, and a partial warm start is still a warm start.
pub fn decode_into(
    text: &str,
    path: &Path,
    cache: &QueryCache,
) -> Result<(u64, u64), StorageError> {
    let corrupt = |detail: &str| StorageError::Corrupt {
        file: path.display().to_string(),
        detail: detail.to_string(),
    };
    let (body, sum_line) = text
        .rsplit_once("#sum ")
        .ok_or_else(|| corrupt("missing #sum trailer"))?;
    let sum = u64::from_str_radix(sum_line.trim(), 16).map_err(|_| corrupt("bad #sum value"))?;
    if checksum64(body.as_bytes()) != sum {
        return Err(corrupt("checksum mismatch"));
    }
    let mut lines = body.lines();
    if lines.next() != Some(MAGIC) {
        return Err(corrupt("missing CQAWARM1 magic"));
    }
    let mut loaded = 0u64;
    let mut skipped = 0u64;
    while let Some(head) = lines.next() {
        let Some(formula_src) = lines.next() else {
            return Err(corrupt("header line without formula line"));
        };
        let fields: Vec<&str> = head.split_whitespace().collect();
        let ok = match fields.as_slice() {
            ["Q", hash, dim, class, fragment, params, mc_box] => (|| {
                let key = parse_key(hash, dim)?;
                let class = parse_class(class)?;
                let fragment = parse_fragment(fragment)?;
                let mc_box = parse_box(mc_box)?;
                let mut vars = VarMap::new();
                let qf = parse_formula_with(formula_src, &mut vars).ok()?;
                let qf_vars = parse_params(params, &mut vars);
                let kernel = CompiledMatrix::compile(&qf, &SlotMap::from_vars(&qf_vars)).ok()?;
                let bytes = formula_bytes(&qf) + 64 * kernel.atom_count();
                cache.insert(
                    key,
                    CacheEntry {
                        qf,
                        qf_vars,
                        kernel,
                        class,
                        fragment,
                        bytes,
                        mc_box,
                    },
                );
                Some(())
            })()
            .is_some(),
            ["S", hash, dim, params] => (|| {
                let key = parse_key(hash, dim)?;
                let mut vars = VarMap::new();
                let qf = parse_formula_with(formula_src, &mut vars).ok()?;
                let params = parse_params(params, &mut vars);
                let bytes = formula_bytes(&qf);
                cache.insert_subplan(key, SubplanEntry { qf, params, bytes });
                Some(())
            })()
            .is_some(),
            _ => false,
        };
        if ok {
            loaded += 1;
        } else {
            skipped += 1;
        }
    }
    Ok((loaded, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_logic::parse_formula;
    use std::path::PathBuf;

    fn query_entry(src: &str) -> CacheEntry {
        let (qf, _) = parse_formula(src).unwrap();
        let qf_vars: Vec<Var> = qf.free_vars().into_iter().collect();
        let kernel = CompiledMatrix::compile(&qf, &SlotMap::from_vars(&qf_vars)).unwrap();
        let bytes = formula_bytes(&qf) + 64 * kernel.atom_count();
        CacheEntry {
            class: qf.class(),
            fragment: "FO+LIN",
            qf,
            qf_vars,
            kernel,
            bytes,
            mc_box: Some(vec![(0.25, 0.75)]),
        }
    }

    #[test]
    fn roundtrip_preserves_keys_and_formulas() {
        let cache = QueryCache::new(1 << 20);
        cache.insert(
            CacheKey {
                hash: 0xABC,
                dim: 1,
            },
            query_entry("1/4 <= x & x <= 3/4"),
        );
        let (sub, _) = parse_formula("x < 1/2").unwrap();
        let params: Vec<Var> = sub.free_vars().into_iter().collect();
        cache.insert_subplan(
            CacheKey {
                hash: 0xDEF,
                dim: 1,
            },
            SubplanEntry {
                bytes: formula_bytes(&sub),
                qf: sub,
                params,
            },
        );
        let text = encode(&cache.export());
        let fresh = QueryCache::new(1 << 20);
        let (loaded, skipped) = decode_into(&text, &PathBuf::from("t.warm"), &fresh).unwrap();
        assert_eq!((loaded, skipped), (2, 0));
        let back = fresh
            .get(CacheKey {
                hash: 0xABC,
                dim: 1,
            })
            .expect("query entry");
        assert_eq!(back.fragment, "FO+LIN");
        assert_eq!(back.mc_box, Some(vec![(0.25, 0.75)]));
        assert_eq!(back.qf_vars.len(), 1);
        assert!(fresh
            .get_subplan(CacheKey {
                hash: 0xDEF,
                dim: 1
            })
            .is_some());
        // Re-encoding the reloaded cache is stable (same count of slots).
        assert_eq!(fresh.export().len(), 2);
    }

    #[test]
    fn checksum_mismatch_loads_nothing() {
        let cache = QueryCache::new(1 << 20);
        cache.insert(CacheKey { hash: 1, dim: 1 }, query_entry("x <= 1/2"));
        let mut text = encode(&cache.export());
        // Corrupt one body byte, keep the trailer.
        let idx = MAGIC.len() + 3;
        text.replace_range(idx..idx + 1, "#");
        let fresh = QueryCache::new(1 << 20);
        match decode_into(&text, &PathBuf::from("t.warm"), &fresh) {
            Err(StorageError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert_eq!(fresh.snapshot().entries, 0);
    }

    #[test]
    fn unreconstructible_entries_are_skipped_not_fatal() {
        let text_body = format!(
            "{MAGIC}\nQ 00000000000000000000000000000001 1 lin FO+LIN x0 -\nthis is not a formula\n"
        );
        let sum = checksum64(text_body.as_bytes());
        let text = format!("{text_body}#sum {sum:016x}\n");
        let fresh = QueryCache::new(1 << 20);
        let (loaded, skipped) = decode_into(&text, &PathBuf::from("t.warm"), &fresh).unwrap();
        assert_eq!((loaded, skipped), (0, 1));
    }
}
