//! Snapshot compaction: a consistent on-disk image of every durable
//! database, written atomically so the log behind it can be truncated.
//!
//! A durable database's canonical state is its accumulated,
//! analyzer-accepted `.cqa` source — the `Database` object is a pure
//! function of that source (re-built by the same `LOAD` path every
//! session uses), so snapshotting the source *is* snapshotting the
//! database, with bit-identical rebuild guaranteed by construction rather
//! than by a parallel serializer that could drift.
//!
//! ### On-disk format
//!
//! ```text
//! file  := magic:"CQASNAP1"  body  checksum:u64le
//! body  := n:u32le  { name:lp-string  src:lp-string } * n
//! ```
//!
//! with the same FNV-1a/64 checksum and length-prefixed strings as the
//! WAL. Writes go to a temp file in the same directory, fsync, then
//! rename over the live snapshot: a crash at any point leaves either the
//! old snapshot or the new one, never a hybrid. A checksum or format
//! mismatch on read is a typed [`StorageError`] — unlike a torn WAL tail,
//! a damaged snapshot means history may be missing and recovery must not
//! silently proceed.

use super::wal::checksum64;
use super::StorageError;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CQASNAP1";

/// Serializes `dbs` (name → accumulated source) and atomically replaces
/// the snapshot at `path`.
pub fn write_snapshot(path: &Path, dbs: &BTreeMap<String, String>) -> Result<(), StorageError> {
    let mut body = Vec::new();
    body.extend_from_slice(&(dbs.len() as u32).to_le_bytes());
    for (name, src) in dbs {
        body.extend_from_slice(&(name.len() as u32).to_le_bytes());
        body.extend_from_slice(name.as_bytes());
        body.extend_from_slice(&(src.len() as u32).to_le_bytes());
        body.extend_from_slice(src.as_bytes());
    }
    let sum = checksum64(&body);
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp).map_err(|e| StorageError::io("snapshot", &tmp, e))?;
        f.write_all(MAGIC)
            .and_then(|()| f.write_all(&body))
            .and_then(|()| f.write_all(&sum.to_le_bytes()))
            .and_then(|()| f.sync_all())
            .map_err(|e| StorageError::io("snapshot", &tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| StorageError::io("snapshot", path, e))?;
    // Persist the rename itself: fsync the containing directory.
    if let Some(dir) = path.parent() {
        if let Ok(d) = OpenOptions::new().read(true).open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads the snapshot at `path`. `Ok(None)` when no snapshot exists yet;
/// a typed [`StorageError::Corrupt`] when one exists but fails its
/// checksum or framing.
pub fn read_snapshot(path: &Path) -> Result<Option<BTreeMap<String, String>>, StorageError> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StorageError::io("snapshot", path, e)),
    };
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)
        .map_err(|e| StorageError::io("snapshot", path, e))?;
    let corrupt = |detail: &str| StorageError::Corrupt {
        file: path.display().to_string(),
        detail: detail.to_string(),
    };
    if buf.len() < MAGIC.len() + 8 || &buf[..MAGIC.len()] != MAGIC {
        return Err(corrupt("missing CQASNAP1 magic"));
    }
    let body = &buf[MAGIC.len()..buf.len() - 8];
    let sum = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("8 bytes"));
    if checksum64(body) != sum {
        return Err(corrupt("checksum mismatch"));
    }
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], StorageError> {
        let out = body
            .get(*pos..*pos + n)
            .ok_or_else(|| corrupt("short body"))?;
        *pos += n;
        Ok(out)
    };
    let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    let mut dbs = BTreeMap::new();
    for _ in 0..n {
        let name_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|_| corrupt("non-UTF-8 database name"))?;
        let src_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let src = String::from_utf8(take(&mut pos, src_len)?.to_vec())
            .map_err(|_| corrupt("non-UTF-8 database source"))?;
        dbs.insert(name, src);
    }
    if pos != body.len() {
        return Err(corrupt("trailing bytes after last database"));
    }
    Ok(Some(dbs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqa-snap-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip.snap");
        let _ = std::fs::remove_file(&path);
        let mut dbs = BTreeMap::new();
        dbs.insert("main".to_string(), "rel S(y) := y >= 0\n".to_string());
        dbs.insert("other".to_string(), String::new());
        write_snapshot(&path, &dbs).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), Some(dbs));
    }

    #[test]
    fn absent_snapshot_is_none() {
        let path = tmp("never-written.snap");
        let _ = std::fs::remove_file(&path);
        assert_eq!(read_snapshot(&path).unwrap(), None);
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let path = tmp("corrupt.snap");
        let mut dbs = BTreeMap::new();
        dbs.insert("main".to_string(), "rel S(y) := y >= 0\n".to_string());
        write_snapshot(&path, &dbs).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match read_snapshot(&path) {
            Err(StorageError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
