//! Durable storage: write-ahead log, snapshot compaction, crash recovery,
//! and the persisted cache warm-start file.
//!
//! The paper's constraint databases are *databases* — this module is what
//! lets one survive a crash. The design splits state by what it costs to
//! lose:
//!
//! * **History must never be lost.** A durable database's canonical state
//!   is its accumulated analyzer-accepted `.cqa` source; every `LOAD`
//!   merge is WAL-appended and fsync'd *before* the session mutates
//!   ([`wal`]), and every `snapshot_every` records the accumulated
//!   sources are compacted into an atomic snapshot ([`snapshot`]) and the
//!   log truncated behind it. Boot recovery is `snapshot ∘ WAL-replay`.
//! * **The cache is merely expensive to lose.** Quantifier elimination
//!   dominates query cost (Giusti–Heintz), so the prepared-query/subplan
//!   cache is persisted too ([`warm`]) under its session-independent
//!   canonical-hash keys — but strictly best-effort: a damaged warm file
//!   degrades to a cold cache, never a failed boot.
//!
//! Recovery state machine, in order, before any connection is accepted:
//!
//! ```text
//! open data-dir ──► read snapshot ──► replay WAL onto it ──► truncate
//!      │               │                  │                  torn tail
//!      │           Corrupt ⇒ typed    torn tail ⇒ drop,
//!      │           error, refuse      count, continue
//!      └──► load warm file (best-effort; corrupt ⇒ cold cache)
//! ```

pub mod snapshot;
pub mod wal;
pub mod warm;

use crate::cache::QueryCache;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use wal::{Wal, WalRecord};

/// File names inside the data directory.
const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.cqadb";
const WARM_FILE: &str = "cache.warm";

/// A typed storage failure. Recovery code returns these instead of
/// panicking: an unreadable WAL or a corrupt snapshot must surface as a
/// refusal to boot (or a counted, skipped warm start), never a worker
/// panic.
#[derive(Debug)]
pub enum StorageError {
    /// An I/O operation failed on one of the storage files.
    Io {
        /// Which file kind (`"wal"`, `"snapshot"`, `"warm"`, `"data-dir"`).
        file: String,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// A file exists but fails its checksum or framing — for the snapshot
    /// this is fatal (history may be missing); for the warm file it just
    /// means a cold cache.
    Corrupt {
        /// The path involved.
        file: String,
        /// What check failed.
        detail: String,
    },
}

impl StorageError {
    pub(crate) fn io(file: &str, path: &Path, err: std::io::Error) -> StorageError {
        StorageError::Io {
            file: file.to_string(),
            path: path.to_path_buf(),
            err,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { file, path, err } => {
                write!(f, "{file} io error at {}: {err}", path.display())
            }
            StorageError::Corrupt { file, detail } => {
                write!(f, "{file} corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Monotone storage counters, rendered by `STATS` so the wire surface can
/// see durability at work (and CI can grep for it).
#[derive(Debug, Default)]
pub struct StorageStats {
    /// WAL records appended (fsync'd commits) since boot.
    pub wal_records: AtomicU64,
    /// WAL bytes appended since boot.
    pub wal_bytes: AtomicU64,
    /// Intact records replayed at boot.
    pub replayed_records: AtomicU64,
    /// Torn-tail bytes truncated at boot.
    pub torn_bytes: AtomicU64,
    /// Snapshots written (compactions).
    pub snapshots: AtomicU64,
    /// Compaction attempts that failed (WAL kept, retried later).
    pub snapshot_errors: AtomicU64,
    /// Cache entries reconstructed from the warm file at boot.
    pub warm_loaded: AtomicU64,
    /// Warm-file entries that no longer reconstruct (skipped).
    pub warm_skipped: AtomicU64,
    /// Warm-file flushes written.
    pub warm_flushes: AtomicU64,
    /// Warm-file flushes or loads that failed (best-effort, counted).
    pub warm_errors: AtomicU64,
}

struct StoreInner {
    wal: Wal,
    /// name → accumulated analyzer-accepted source (newline-terminated
    /// chunks, concatenated verbatim in commit order).
    dbs: BTreeMap<String, String>,
    /// Records appended since the last compaction (replayed records
    /// count: they are exactly the log the next snapshot would fold in).
    since_snapshot: u64,
}

/// The open data directory: WAL + snapshot + warm file, shared by every
/// session of one engine. All mutation goes through [`Storage::append_load`],
/// which enforces the log-before-apply commit discipline.
pub struct Storage {
    dir: PathBuf,
    snapshot_every: u64,
    inner: Mutex<StoreInner>,
    stats: StorageStats,
}

impl Storage {
    /// Opens (creating if needed) the data directory and runs recovery:
    /// snapshot first, then WAL replay on top, truncating any torn tail.
    /// A corrupt snapshot or unreadable WAL is a typed error — the caller
    /// must refuse to serve rather than silently lose history.
    pub fn open(dir: &Path, snapshot_every: u64) -> Result<Storage, StorageError> {
        std::fs::create_dir_all(dir).map_err(|e| StorageError::io("data-dir", dir, e))?;
        let mut dbs = snapshot::read_snapshot(&dir.join(SNAPSHOT_FILE))?.unwrap_or_default();
        let (wal, records, replay) = Wal::open(&dir.join(WAL_FILE))?;
        let since_snapshot = records.len() as u64;
        for rec in records {
            match rec {
                WalRecord::Load { db, src } => dbs.entry(db).or_default().push_str(&src),
            }
        }
        let stats = StorageStats::default();
        stats
            .replayed_records
            .store(replay.records, Ordering::Relaxed);
        stats.torn_bytes.store(replay.torn_bytes, Ordering::Relaxed);
        Ok(Storage {
            dir: dir.to_path_buf(),
            snapshot_every: snapshot_every.max(1),
            inner: Mutex::new(StoreInner {
                wal,
                dbs,
                since_snapshot,
            }),
            stats,
        })
    }

    /// The data directory this storage lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live counters.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// The accumulated source of durable database `name` (empty string if
    /// it has never been written). This is the complete recovery artifact:
    /// re-running it through the ordinary `LOAD` path rebuilds the
    /// `Database` bit-identically, because the `Database` is a pure
    /// function of its accepted source.
    pub fn database(&self, name: &str) -> String {
        let inner = self.lock();
        inner.dbs.get(name).cloned().unwrap_or_default()
    }

    /// Names of every durable database currently known.
    pub fn database_names(&self) -> Vec<String> {
        self.lock().dbs.keys().cloned().collect()
    }

    /// Commits one `LOAD` merge into durable database `name`. `src_chunk`
    /// must be the exact (newline-terminated) text the engine appends to
    /// the session source — storage concatenates it verbatim on replay.
    ///
    /// The record is appended and fsync'd *before* this returns, so the
    /// caller may only mutate in-memory state on `Ok`: an `Err` means the
    /// mutation never happened anywhere. Every `snapshot_every` records
    /// the sources are compacted into a fresh snapshot and the log
    /// truncated; compaction failure is counted and retried later — the
    /// WAL still holds the history, so durability is unaffected.
    pub fn append_load(&self, name: &str, src_chunk: &str) -> Result<(), StorageError> {
        let mut inner = self.lock();
        let bytes = inner.wal.append(&WalRecord::Load {
            db: name.to_string(),
            src: src_chunk.to_string(),
        })?;
        self.stats.wal_records.fetch_add(1, Ordering::Relaxed);
        self.stats.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        inner
            .dbs
            .entry(name.to_string())
            .or_default()
            .push_str(src_chunk);
        inner.since_snapshot += 1;
        if inner.since_snapshot >= self.snapshot_every {
            match snapshot::write_snapshot(&self.dir.join(SNAPSHOT_FILE), &inner.dbs) {
                Ok(()) => {
                    // Only once the snapshot is durably in place may the
                    // log behind it be dropped.
                    inner.wal.truncate()?;
                    inner.since_snapshot = 0;
                    self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.stats.snapshot_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// Loads the warm-start file into `cache`, best-effort: an absent file
    /// is a cold start, a damaged one is a counted cold start, and neither
    /// is an error — the warm file is an optimization, not history.
    pub fn load_warm(&self, cache: &QueryCache) {
        let path = self.dir.join(WARM_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return,
            Err(_) => {
                self.stats.warm_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        match warm::decode_into(&text, &path, cache) {
            Ok((loaded, skipped)) => {
                self.stats.warm_loaded.fetch_add(loaded, Ordering::Relaxed);
                self.stats
                    .warm_skipped
                    .fetch_add(skipped, Ordering::Relaxed);
            }
            Err(_) => {
                self.stats.warm_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Writes the current cache contents to the warm-start file via
    /// tmp+rename, best-effort: flush failures are counted, never fatal —
    /// a stale (or missing) warm file only costs the next boot some QE.
    pub fn flush_warm(&self, cache: &QueryCache) {
        let path = self.dir.join(WARM_FILE);
        let tmp = path.with_extension("warm.tmp");
        let text = warm::encode(&cache.export());
        let ok = std::fs::write(&tmp, text.as_bytes())
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_ok();
        if ok {
            self.stats.warm_flushes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.warm_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Storage shares the cache's poison-recovery posture: a worker that
    /// panicked while holding this lock left plain data behind, and
    /// refusing to serve durable databases forever would turn one bad
    /// request into a permanent outage.
    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cqa-storage-unit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn log_with_no_snapshot_recovers() {
        let dir = tmpdir("log-only");
        let s = Storage::open(&dir, 1000).unwrap();
        s.append_load("main", "rel R(x) := x >= 0\n").unwrap();
        s.append_load("main", "rel S(y) := y <= 1\n").unwrap();
        drop(s);
        let s = Storage::open(&dir, 1000).unwrap();
        assert_eq!(
            s.database("main"),
            "rel R(x) := x >= 0\nrel S(y) := y <= 1\n"
        );
        assert_eq!(s.stats().replayed_records.load(Ordering::Relaxed), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_with_no_log_recovers() {
        let dir = tmpdir("snap-only");
        let s = Storage::open(&dir, 2).unwrap();
        s.append_load("main", "rel R(x) := x >= 0\n").unwrap();
        s.append_load("main", "rel S(y) := y <= 1\n").unwrap();
        // snapshot_every = 2 ⇒ compaction ran, log is empty.
        assert_eq!(s.stats().snapshots.load(Ordering::Relaxed), 1);
        drop(s);
        // The WAL is empty; state comes wholly from the snapshot.
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        let s = Storage::open(&dir, 2).unwrap();
        assert_eq!(
            s.database("main"),
            "rel R(x) := x >= 0\nrel S(y) := y <= 1\n"
        );
        assert_eq!(s.stats().replayed_records.load(Ordering::Relaxed), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_plus_log_compose_in_order() {
        let dir = tmpdir("snap-plus-log");
        let s = Storage::open(&dir, 2).unwrap();
        s.append_load("main", "rel R(x) := x >= 0\n").unwrap();
        s.append_load("main", "rel S(y) := y <= 1\n").unwrap();
        s.append_load("main", "rel T(z) := z = 0\n").unwrap(); // in WAL only
        drop(s);
        let s = Storage::open(&dir, 100).unwrap();
        assert_eq!(
            s.database("main"),
            "rel R(x) := x >= 0\nrel S(y) := y <= 1\nrel T(z) := z = 0\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_data_dir_is_a_clean_cold_start() {
        let dir = tmpdir("empty");
        let s = Storage::open(&dir, 64).unwrap();
        assert_eq!(s.database("main"), "");
        assert!(s.database_names().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_refuses_to_open() {
        let dir = tmpdir("corrupt-snap");
        let s = Storage::open(&dir, 1).unwrap();
        s.append_load("main", "rel R(x) := x >= 0\n").unwrap();
        drop(s);
        let snap = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        match Storage::open(&dir, 1) {
            Err(StorageError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
