//! The absint soundness contract, checked against the FM/LW quantifier
//! elimination oracle over the same random-formula family `ir_parity.rs`
//! uses:
//!
//! * `Verdict::Unsat` ⇒ the formula is unsatisfiable (QE agrees);
//! * `Verdict::Valid` ⇒ the formula is valid (QE agrees);
//! * the derived interval environment contains every satisfying point of
//!   a rational evaluation grid;
//! * conjunction only narrows environments (monotonicity).
//!
//! Plus fixed regressions for the open/closed endpoint rounding that the
//! random generator is unlikely to pin down exactly.

use cqa_analyze::absint::{self, env_interval, AbsintMemo, Interval, Verdict};
use cqa_arith::{rat, Rat};
use cqa_logic::ir::Arena;
use cqa_logic::{parse_formula_with, Atom, Formula, Rel, VarMap};
use cqa_poly::{MPoly, Var};
use proptest::prelude::*;

/// Quantifier-free formulas over `x0`, `x1` with small affine and
/// quadratic atoms — the same distribution as `ir_parity.rs`.
fn qf_formula() -> impl Strategy<Value = Formula> {
    let atom = (
        prop::collection::vec(-3i64..=3, 2),
        -4i64..=4,
        0usize..6,
        0u8..2,
    )
        .prop_map(|(coeffs, c, r, square)| {
            let square = square == 1;
            let rel = [Rel::Lt, Rel::Le, Rel::Gt, Rel::Ge, Rel::Eq, Rel::Neq][r];
            let mut p = MPoly::constant(Rat::from(c));
            for (i, &a) in coeffs.iter().enumerate() {
                p = p + MPoly::var(Var(i as u32)).scale(&Rat::from(a));
            }
            if square {
                p = p + MPoly::var(Var(0)) * MPoly::var(Var(0));
            }
            Formula::Atom(Atom::new(p, rel))
        });
    atom.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Formula::negate),
        ]
    })
}

/// The QF family with real quantifiers layered on top — the verdict must
/// stay sound through projection.
fn quantified_formula() -> impl Strategy<Value = Formula> {
    (qf_formula(), 0usize..3).prop_map(|(f, wrap)| match wrap {
        0 => Formula::exists(vec![Var(1)], f),
        1 => Formula::forall(vec![Var(0)], f),
        _ => f,
    })
}

fn facts_of(f: &Formula) -> cqa_analyze::Facts {
    let mut arena = Arena::new();
    let id = arena.intern(f);
    let mut memo = AbsintMemo::new();
    absint::analyze_id(&arena, id, &mut memo)
}

fn parse(src: &str) -> (Formula, VarMap) {
    let mut vars = VarMap::new();
    let f = parse_formula_with(src, &mut vars).expect(src);
    (f, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No statically-unsat verdict on a satisfiable formula, and no
    /// statically-valid verdict on a falsifiable one — the QE decision
    /// procedure is the ground truth.
    #[test]
    fn verdicts_agree_with_the_qe_oracle(f in quantified_formula()) {
        match facts_of(&f).verdict {
            Verdict::Unsat => {
                prop_assert!(
                    !cqa_qe::is_satisfiable(&f).expect("oracle"),
                    "absint said Unsat but QE found {:?} satisfiable", f
                );
            }
            Verdict::Valid => {
                prop_assert!(
                    cqa_qe::is_valid(&f).expect("oracle"),
                    "absint said Valid but QE found {:?} falsifiable", f
                );
            }
            Verdict::Unknown => {}
        }
    }

    /// The derived box contains every satisfying point of the half-integer
    /// grid: bounds are certificates, never heuristics.
    #[test]
    fn derived_boxes_contain_every_satisfying_grid_point(f in qf_formula()) {
        let facts = facts_of(&f);
        for x in -6..=6i64 {
            for y in -6..=6i64 {
                let asg = |v: Var| if v == Var(0) { rat(x, 2) } else { rat(y, 2) };
                if f.eval(&asg, &[]) == Some(true) {
                    prop_assert!(
                        facts.verdict != Verdict::Unsat,
                        "({x}/2, {y}/2) satisfies a statically-unsat {f:?}"
                    );
                    for (v, r) in [(Var(0), rat(x, 2)), (Var(1), rat(y, 2))] {
                        prop_assert!(
                            env_interval(&facts.env, v).contains(&r),
                            "box {} for {v:?} excludes the satisfying value {r} of {f:?}",
                            env_interval(&facts.env, v)
                        );
                    }
                }
            }
        }
    }

    /// Conjunction is monotone: adding a conjunct can only narrow the
    /// per-variable intervals, never widen them.
    #[test]
    fn conjunction_only_narrows_environments(f in qf_formula(), g in qf_formula()) {
        let fg = facts_of(&f.clone().and(g));
        let f_only = facts_of(&f);
        if fg.verdict == Verdict::Unsat {
            return Ok(()); // empty set: trivially inside every box
        }
        for v in [Var(0), Var(1)] {
            let narrow = env_interval(&fg.env, v);
            let wide = env_interval(&f_only.env, v);
            prop_assert!(
                narrow.subset_of(&wide),
                "conjunction widened {v:?}: {narrow} ⊄ {wide}"
            );
        }
    }

    /// Pruning preserves satisfiability/validity verdicts of the oracle:
    /// replacing decided subformulas by ⊥/⊤ is equivalence-preserving.
    #[test]
    fn pruning_preserves_the_grid_semantics(f in qf_formula()) {
        let mut arena = Arena::new();
        let id = arena.intern(&f);
        let mut memo = AbsintMemo::new();
        let mut simp = cqa_qe::SimplifyMemo::new();
        let pruned = absint::prune_id(&mut arena, id, &mut memo, &mut simp);
        let g = arena.extern_formula(pruned);
        for x in -6..=6i64 {
            for y in -6..=6i64 {
                let asg = |v: Var| if v == Var(0) { rat(x, 2) } else { rat(y, 2) };
                prop_assert_eq!(
                    f.eval(&asg, &[]),
                    g.eval(&asg, &[]),
                    "at ({}/2, {}/2)",
                    x,
                    y
                );
            }
        }
    }
}

#[test]
fn strict_endpoints_meet_to_empty() {
    // Open/open, open/closed, and closed/closed meets at a shared
    // endpoint — only the fully closed pair keeps the point.
    let (f, _) = parse("x < 1 & x > 1");
    assert_eq!(facts_of(&f).verdict, Verdict::Unsat);
    let (f, _) = parse("x < 1 & x >= 1");
    assert_eq!(facts_of(&f).verdict, Verdict::Unsat);
    let (f, vars) = parse("x <= 1 & x >= 1");
    let facts = facts_of(&f);
    assert_ne!(facts.verdict, Verdict::Unsat, "the point x = 1 survives");
    let x = vars.get("x").unwrap();
    assert_eq!(
        env_interval(&facts.env, x),
        Interval::closed(rat(1, 1), rat(1, 1))
    );
}

#[test]
fn scaled_bounds_round_exactly() {
    // 2x ≥ 1 pins x to the exact rational 1/2 with a *closed* endpoint;
    // 2x > 1 must keep it open.
    let (f, vars) = parse("2*x >= 1");
    let x = vars.get("x").unwrap();
    let iv = env_interval(&facts_of(&f).env, x);
    assert_eq!(iv.lo, Some(rat(1, 2)));
    assert!(!iv.lo_open);
    let (f, vars) = parse("2*x > 1");
    let x = vars.get("x").unwrap();
    let iv = env_interval(&facts_of(&f).env, x);
    assert_eq!(iv.lo, Some(rat(1, 2)));
    assert!(iv.lo_open);
}

#[test]
fn even_powers_decide_sign_conditions() {
    let (f, _) = parse("x*x < 0");
    assert_eq!(facts_of(&f).verdict, Verdict::Unsat);
    let (f, _) = parse("x*x >= 0");
    assert_eq!(facts_of(&f).verdict, Verdict::Valid);
    let (f, _) = parse("x*x + 1 <= 0");
    assert_eq!(facts_of(&f).verdict, Verdict::Unsat);
}

#[test]
fn outer_f64_conversion_never_excludes_endpoints() {
    // 1/3 and 1/10 are not exactly representable; the f64 outer box must
    // straddle them on the correct side.
    let (f, vars) = parse("3*x >= 1 & 10*x <= 1 | (3*x >= 1 & x <= 1/2)");
    let x = vars.get("x").unwrap();
    let facts = facts_of(&f);
    let (lo, hi) = env_interval(&facts.env, x).outer_f64();
    assert!(Rat::from_f64(lo).unwrap() <= rat(1, 3));
    assert!(Rat::from_f64(hi).unwrap() >= rat(1, 2));
}

#[test]
fn quantifier_projection_drops_only_bound_variables() {
    let (f, vars) = parse("exists y. (1/4 <= y & y <= 3/4) & x = y + 1");
    let facts = facts_of(&f);
    let x = vars.get("x").unwrap();
    let y = vars.get("y").unwrap();
    assert_eq!(
        env_interval(&facts.env, x),
        Interval::closed(rat(5, 4), rat(7, 4))
    );
    assert!(!facts.env.contains_key(&y));
}
