//! Pass 4 — static cost and VC-dimension estimation.
//!
//! Implements Proposition 6's Goldberg–Jerrum constant
//! `C = 16k(p+q)(log₂(8edps) + 1)` and the Lemma-1 Karpinski–Macintyre
//! blow-up model over the measurements of [`crate::fragment::classify`],
//! *before* any formula is materialized. When the predicted approximation
//! formula exceeds the configured [`KmBudget`], the analyzer emits CQA008 —
//! turning the paper's Section-3 anecdote (`≥ 10⁹` atoms, `≥ 10¹¹`
//! quantifiers at ε = 1/10) into a lint.

use crate::diag::{Code, Diagnostic};
use crate::fragment::{FragmentReport, Schema};
use cqa_approx::km::{gate, km_cost, KmBlowup, KmBudget, KmCost};
use cqa_approx::vc::{goldberg_jerrum_c, prop6_bound};
use cqa_logic::Span;

/// Parameters of the static cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Approximation accuracy ε for the KM construction.
    pub eps: f64,
    /// Confidence parameter δ.
    pub delta: f64,
    /// Assumed database (active-domain) size `n`; each relation-atom
    /// occurrence contributes `n` atoms after substitution, mirroring the
    /// paper's worked example.
    pub db_size: usize,
    /// Budget the predicted formula is gated against (CQA008).
    pub budget: KmBudget,
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams {
            eps: 0.1,
            delta: 0.25,
            db_size: 1000,
            budget: KmBudget::default(),
        }
    }
}

/// The static cost estimate for one query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostReport {
    /// Goldberg–Jerrum constant `C` (Proposition 6).
    pub gj_constant: f64,
    /// Proposition-6 VC-dimension bound `C·log₂ n`.
    pub vc_bound: f64,
    /// Estimated substituted-matrix atom count `s₀`.
    pub s0: usize,
    /// Predicted Lemma-1 approximation-formula size.
    pub km: KmCost,
    /// `Some` when the prediction exceeds the budget.
    pub blowup: Option<KmBlowup>,
    /// Interval-refined atom count: atoms remaining after statically
    /// decided subformulas are pruned (`None` when the absint pass did
    /// not run).
    pub pruned_atoms: Option<u64>,
    /// Volume of the interval-certified bounding box clamped to the unit
    /// cube — an upper bound on the Monte Carlo acceptance region
    /// (`None` when the absint pass did not run).
    pub box_volume: Option<f64>,
}

impl CostReport {
    /// Attaches the absint pass's planner-grade inputs: the post-pruning
    /// atom count and the certified box volume.
    pub fn with_absint(mut self, pruned_atoms: u64, box_volume: f64) -> CostReport {
        self.pruned_atoms = Some(pruned_atoms);
        self.box_volume = Some(box_volume);
        self
    }
}

/// Converts the static measurements into the QE planner's inputs
/// ([`cqa_qe::plan::PlanInputs`]): raw atom/quantifier counts from the
/// fragment report, the interval pass's `pruned_atoms`/`box_volume`
/// refinements and the Prop-6 VC bound from the cost report. This is the
/// bridge the engine uses at `PREPARE` time — the planner itself lives in
/// `cqa-qe` (which `cqa-analyze` depends on, not vice versa).
pub fn planner_inputs(report: &FragmentReport, cost: &CostReport) -> cqa_qe::plan::PlanInputs {
    cqa_qe::plan::PlanInputs {
        atoms: report.atoms as u64,
        quantifiers: report.quantifiers as u64,
        pruned_atoms: cost.pruned_atoms,
        box_volume: cost.box_volume,
        vc_bound: Some(cost.vc_bound),
    }
}

/// Estimates the cost of a query measured by `report`, with `free_count`
/// free (point) variables, against `schema`.
pub fn estimate(
    report: &FragmentReport,
    free_count: usize,
    schema: &Schema,
    params: &CostParams,
) -> CostReport {
    // After substituting each relation atom by its instance-sized
    // definition (n disjuncts for a finite relation of size n — the
    // paper's example), the matrix has the plain atoms plus n per
    // relation-atom occurrence.
    let s0 = (report.atoms + report.rel_atoms * params.db_size).max(1);
    let k = free_count.max(1) as u32;
    let p = report
        .relations
        .iter()
        .filter_map(|r| schema.get(r).copied())
        .max()
        .unwrap_or(1)
        .max(1) as u32;
    let q = report.quantifiers.min(u32::MAX as usize) as u32;
    let deg = report.max_degree.max(1);
    let gj = goldberg_jerrum_c(k, p, q, deg, s0.min(u32::MAX as usize) as u32);
    let vc_bound = prop6_bound(gj, params.db_size);
    let km = km_cost(
        params.eps,
        params.delta,
        free_count.max(1),
        s0,
        params.db_size,
        k,
        p,
        q,
        deg,
    );
    CostReport {
        gj_constant: gj,
        vc_bound,
        s0,
        km,
        blowup: gate(km, params.budget).err(),
        pruned_atoms: None,
        box_volume: None,
    }
}

/// Emits CQA008 at `span` when the estimate predicts a blow-up past the
/// budget.
pub fn check_blowup(cost: &CostReport, span: Span, diags: &mut Vec<Diagnostic>) {
    if let Some(b) = &cost.blowup {
        diags.push(
            Diagnostic::new(
                Code::KmBlowup,
                span,
                format!("approximate evaluation of this query would blow up: {b}"),
            )
            .with_note(
                "the Karpinski–Macintyre VOL construction (paper §3, Lemma 1) is \
                 hopeless as QE input at this size; use Monte Carlo approximation \
                 (Theorem 4) instead",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::classify;
    use cqa_logic::{parse_formula_with, VarMap};

    fn report(src: &str) -> FragmentReport {
        classify(&parse_formula_with(src, &mut VarMap::new()).unwrap())
    }

    #[test]
    fn paper_example_is_predicted_to_blow_up() {
        // The §3 worked example: U(x₁) ∧ U(x₂) ∧ x₁<y₁ ∧ y₁<x₂ ∧ 0≤y₂ ∧ y₂≤y₁.
        let r = report("U(x1) & U(x2) & x1 < y1 & y1 < x2 & 0 <= y2 & y2 <= y1");
        let schema: Schema = [("U".to_string(), 1)].into();
        let params = CostParams {
            eps: 0.1,
            db_size: 16,
            ..CostParams::default()
        };
        let cost = estimate(&r, 2, &schema, &params);
        assert!(cost.km.atoms >= 1e9, "atoms = {:.3e}", cost.km.atoms);
        assert!(
            cost.km.quantifiers >= 1e11,
            "quantifiers = {:.3e}",
            cost.km.quantifiers
        );
        assert!(cost.blowup.is_some());
        let mut d = Vec::new();
        check_blowup(&cost, Span::new(0, 5), &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::KmBlowup);
    }

    #[test]
    fn tiny_queries_fit_generous_budgets() {
        let r = report("x > 0");
        let params = CostParams {
            eps: 0.5,
            db_size: 2,
            budget: KmBudget {
                max_atoms: 1e12,
                max_quantifiers: 1e14,
            },
            ..CostParams::default()
        };
        let cost = estimate(&r, 1, &Schema::new(), &params);
        assert!(cost.blowup.is_none(), "km = {:?}", cost.km);
        let mut d = Vec::new();
        check_blowup(&cost, Span::default(), &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn planner_inputs_carry_static_and_absint_measurements() {
        let r = report("exists y. x < y & y < 1");
        let cost = estimate(&r, 1, &Schema::new(), &CostParams::default()).with_absint(1, 0.5);
        let inputs = planner_inputs(&r, &cost);
        assert_eq!(inputs.atoms, r.atoms as u64);
        assert_eq!(inputs.quantifiers, r.quantifiers as u64);
        assert_eq!(inputs.pruned_atoms, Some(1));
        assert_eq!(inputs.box_volume, Some(0.5));
        assert_eq!(inputs.vc_bound, Some(cost.vc_bound));
    }

    #[test]
    fn estimate_is_monotone_in_database_size() {
        let r = report("U(x) & x > 0");
        let schema: Schema = [("U".to_string(), 1)].into();
        let small = estimate(
            &r,
            1,
            &schema,
            &CostParams {
                db_size: 8,
                ..Default::default()
            },
        );
        let large = estimate(
            &r,
            1,
            &schema,
            &CostParams {
                db_size: 64,
                ..Default::default()
            },
        );
        assert!(large.s0 > small.s0);
        assert!(large.km.atoms > small.km.atoms);
        assert!(large.vc_bound > small.vc_bound);
    }
}
