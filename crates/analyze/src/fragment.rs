//! Pass 2 — fragment classification and schema conformance.
//!
//! Classifies a formula into the paper's constraint classes (dense-order,
//! FO+LIN, FO+POLY), measures the quantities the cost model needs (atom
//! count, quantifier count, maximum polynomial degree), and checks every
//! relation atom against the schema: unknown relations (CQA004) and arity
//! mismatches (CQA005). Active-domain quantifiers over an empty schema are
//! flagged too (CQA009) — they quantify over nothing and the subformula
//! collapses.

use crate::diag::{Code, Diagnostic};
use cqa_logic::ir::{Arena, FormulaId};
use cqa_logic::{ConstraintClass, Formula, Span, SpannedFormula, SpannedNode};
use std::collections::{BTreeMap, BTreeSet};

/// A schema: relation name → arity.
pub type Schema = BTreeMap<String, usize>;

/// Structural measurements of a formula, as the cost model and the lint
/// report need them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragmentReport {
    /// The constraint class of the sign-condition atoms.
    pub class: ConstraintClass,
    /// Maximum total degree over all atom polynomials and relation-argument
    /// terms (0 for a formula with no terms).
    pub max_degree: u32,
    /// Number of sign-condition atoms.
    pub atoms: usize,
    /// Number of quantified variables (natural and active-domain).
    pub quantifiers: usize,
    /// Number of active-domain quantifiers among them.
    pub adom_quantifiers: usize,
    /// Number of relation-atom occurrences.
    pub rel_atoms: usize,
    /// The distinct relation names mentioned.
    pub relations: BTreeSet<String>,
}

impl FragmentReport {
    /// The paper's name for the fragment: `FO+LIN` for affine atoms,
    /// `FO+POLY` otherwise (dense-order is a sub-fragment of FO+LIN).
    pub fn fragment_name(&self) -> &'static str {
        match self.class {
            ConstraintClass::DenseOrder | ConstraintClass::Linear => "FO+LIN",
            ConstraintClass::Polynomial => "FO+POLY",
        }
    }
}

/// Measures `f` by interning it into a scratch arena — see [`classify_id`].
pub fn classify(f: &Formula) -> FragmentReport {
    let mut arena = Arena::new();
    let id = arena.intern(f);
    classify_id(&arena, id)
}

/// Measures an interned formula. All quantities are read off the arena's
/// per-node cached [`metadata`](cqa_logic::ir::NodeMeta) in O(1) — no tree
/// re-walk, and a formula whose denoted tree is exponentially larger than
/// its dag (FM/Hörmander output) still classifies in O(dag) at intern time.
pub fn classify_id(arena: &Arena, id: FormulaId) -> FragmentReport {
    let m = arena.meta(id);
    FragmentReport {
        class: m.class,
        max_degree: m.max_degree,
        atoms: m.sign_atoms as usize,
        quantifiers: m.quantifiers as usize,
        adom_quantifiers: m.adom_quantifiers as usize,
        rel_atoms: m.rel_atoms as usize,
        relations: m
            .relations
            .iter()
            .map(|&n| arena.rel_name(n).to_string())
            .collect(),
    }
}

/// Checks every relation atom of `f` against `schema`, pointing at the
/// relation name (CQA004) or the full atom (CQA005).
pub fn check_relations(f: &SpannedFormula, schema: &Schema, diags: &mut Vec<Diagnostic>) {
    f.visit(&mut |g| {
        if let SpannedNode::Rel {
            name,
            args,
            name_span,
        } = &g.node
        {
            check_relation_use(name, args.len(), *name_span, g.span, schema, diags);
        }
    });
}

/// The span-free variant for plain [`Formula`] values (workload wiring,
/// programmatically built queries): findings anchor at the empty span.
pub fn check_relations_plain(f: &Formula, schema: &Schema, diags: &mut Vec<Diagnostic>) {
    f.visit(&mut |g| {
        if let Formula::Rel { name, args } = g {
            check_relation_use(
                name,
                args.len(),
                Span::default(),
                Span::default(),
                schema,
                diags,
            );
        }
    });
}

fn check_relation_use(
    name: &str,
    argc: usize,
    name_span: Span,
    atom_span: Span,
    schema: &Schema,
    diags: &mut Vec<Diagnostic>,
) {
    match schema.get(name) {
        None => diags.push(
            Diagnostic::new(
                Code::UnknownRelation,
                name_span,
                format!("unknown relation `{name}`"),
            )
            .with_note(if schema.is_empty() {
                "the schema declares no relations".to_string()
            } else {
                format!(
                    "known relations: {}",
                    schema.keys().cloned().collect::<Vec<_>>().join(", ")
                )
            }),
        ),
        Some(&arity) if arity != argc => diags.push(Diagnostic::new(
            Code::ArityMismatch,
            atom_span,
            format!("relation `{name}` has arity {arity}, but {argc} argument(s) given"),
        )),
        Some(_) => {}
    }
}

/// Flags active-domain quantifiers when the schema is empty: the active
/// domain is then empty, so `Eadom` subformulas are vacuously false and
/// `Aadom` ones vacuously true.
pub fn check_active_domain(f: &SpannedFormula, schema: &Schema, diags: &mut Vec<Diagnostic>) {
    if !schema.is_empty() {
        return;
    }
    f.visit(&mut |g| {
        if let SpannedNode::ExistsAdom(v, _) | SpannedNode::ForallAdom(v, _) = &g.node {
            diags.push(
                Diagnostic::new(
                    Code::EmptyActiveDomain,
                    v.span,
                    "active-domain quantifier over an empty active domain",
                )
                .with_note("no relations are in scope, so the active domain is empty"),
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_logic::{parse_formula_spanned, parse_formula_with, VarMap};

    fn parse(src: &str) -> (Formula, SpannedFormula) {
        let mut vars = VarMap::new();
        let sf = parse_formula_spanned(src, &mut vars).unwrap();
        let f = parse_formula_with(src, &mut VarMap::new()).unwrap();
        (f, sf)
    }

    #[test]
    fn classification_measures_everything() {
        let (f, _) = parse("exists y. x*x + y > 0 & Eadom u. R(u, 2*x)");
        let r = classify(&f);
        assert_eq!(r.class, ConstraintClass::Polynomial);
        assert_eq!(r.fragment_name(), "FO+POLY");
        assert_eq!(r.max_degree, 2);
        assert_eq!(r.atoms, 1);
        assert_eq!(r.quantifiers, 2);
        assert_eq!(r.adom_quantifiers, 1);
        assert_eq!(r.rel_atoms, 1);
        assert!(r.relations.contains("R"));
    }

    #[test]
    fn linear_formulas_are_fo_lin() {
        let (f, _) = parse("x + 2*y <= 3 | x = y");
        let r = classify(&f);
        assert_eq!(r.fragment_name(), "FO+LIN");
        assert_eq!(r.max_degree, 1);
    }

    #[test]
    fn unknown_relation_points_at_the_name() {
        let src = "x > 0 & Missing(x)";
        let (_, sf) = parse(src);
        let schema = Schema::new();
        let mut d = Vec::new();
        check_relations(&sf, &schema, &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::UnknownRelation);
        assert_eq!(&src[d[0].span.start..d[0].span.end], "Missing");
    }

    #[test]
    fn arity_mismatch_flagged() {
        let src = "S(x, y)";
        let (_, sf) = parse(src);
        let schema: Schema = [("S".to_string(), 1)].into();
        let mut d = Vec::new();
        check_relations(&sf, &schema, &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::ArityMismatch);
        assert!(d[0].message.contains("arity 1"));
        assert!(d[0].message.contains("2 argument"));
    }

    #[test]
    fn empty_adom_warning() {
        let (_, sf) = parse("Eadom y. y > 0");
        let mut d = Vec::new();
        check_active_domain(&sf, &Schema::new(), &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::EmptyActiveDomain);
        let mut d2 = Vec::new();
        check_active_domain(&sf, &[("R".to_string(), 1)].into(), &mut d2);
        assert!(d2.is_empty());
    }
}
