//! The multi-pass driver: parse → scope → fragment/schema → Σ-discipline →
//! cost, producing one [`Analysis`] per source file.

use crate::absint::{self, AbsintMemo, Verdict};
use crate::cost::{self, CostParams, CostReport};
use crate::diag::{self, Code, Diagnostic, Severity};
use crate::fragment::{self, FragmentReport, Schema};
use crate::program::{parse_program, Program, Statement};
use crate::scope;
use crate::sigma::{self, GammaStatus};
use cqa_logic::ir::Arena;
use cqa_logic::{Formula, Span, SpannedFormula, SpannedNode, VarMap};
use cqa_poly::Var;
use cqa_qe::SimplifyMemo;

/// Analyzer configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnalyzerConfig {
    /// Cost-model parameters (ε, δ, assumed database size, KM budget).
    pub cost: CostParams,
    /// Whether to run the CQA008 blow-up lint at all.
    pub check_blowup: bool,
    /// Whether to run the interval abstract-interpretation pass
    /// (CQA011–CQA013 and the planner-grade cost refinements).
    pub absint: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> AnalyzerConfig {
        AnalyzerConfig {
            cost: CostParams::default(),
            check_blowup: true,
            absint: true,
        }
    }
}

/// Per-statement findings beyond the diagnostics: what the statement is and
/// what it costs.
#[derive(Clone, Debug)]
pub struct StatementReport {
    /// Statement name.
    pub name: String,
    /// `"rel"`, `"query"` or `"sum"`.
    pub kind: &'static str,
    /// Fragment classification and measurements.
    pub fragment: FragmentReport,
    /// Cost estimate (queries and sums; relations are data, not queries).
    pub cost: Option<CostReport>,
    /// For sums: whether γ was syntactically certified.
    pub gamma: Option<GammaStatus>,
}

/// The result of analyzing one source file (or one formula).
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by position.
    pub diagnostics: Vec<Diagnostic>,
    /// One report per successfully parsed statement.
    pub reports: Vec<StatementReport>,
}

impl Analysis {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    /// `true` iff any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Renders every diagnostic against the source.
    pub fn render(&self, src: &str, filename: &str) -> String {
        diag::render_all(&self.diagnostics, src, filename)
    }

    fn finish(mut self) -> Analysis {
        self.diagnostics.sort_by_key(|d| (d.span.start, d.code));
        self.diagnostics.dedup();
        self
    }
}

/// Analyzes a `.cqa` source file end to end.
pub fn analyze_source(src: &str, cfg: &AnalyzerConfig) -> (Program, Analysis) {
    let (program, mut diags) = parse_program(src);
    let schema = program.schema();
    let mut analysis = Analysis {
        diagnostics: Vec::new(),
        reports: Vec::new(),
    };
    analysis.diagnostics.append(&mut diags);

    // One interning arena for the whole program: relation bodies and query
    // matrices that share subformulas are stored once, and every classify
    // reads cached per-node metadata instead of re-walking trees. The
    // absint pass shares the arena (and its per-node memo), and sees
    // relation atoms through their definitions so bounds flow out of
    // `rel` statements into the queries that use them.
    let mut arena = cqa_logic::ir::Arena::new();
    let mut memo = AbsintMemo::new();
    let mut simp = SimplifyMemo::new();
    let db = if cfg.absint {
        program.to_database().ok()
    } else {
        None
    };
    for stmt in &program.statements {
        match stmt {
            Statement::Rel(r) => {
                let params: Vec<Var> = r.params.iter().map(|b| b.var).collect();
                scope::check_scopes(&r.body, &params, &program.vars, &mut analysis.diagnostics);
                let body = r.body.to_formula();
                if !body.is_quantifier_free() || !body.is_relation_free() {
                    analysis.diagnostics.push(
                        Diagnostic::new(
                            crate::diag::Code::BadRelationDef,
                            r.name_span,
                            format!(
                                "relation `{}` must be defined by a quantifier-free, \
                                 relation-free constraint formula",
                                r.name
                            ),
                        )
                        .with_note(
                            "finitely representable instances interpret schema symbols \
                             by quantifier-free formulas (paper §2)",
                        ),
                    );
                }
                let body_id = arena.intern(&body);
                analysis.reports.push(StatementReport {
                    name: r.name.clone(),
                    kind: "rel",
                    fragment: fragment::classify_id(&arena, body_id),
                    cost: None,
                    gamma: None,
                });
            }
            Statement::Query(q) => {
                let params: Vec<Var> = q.params.iter().map(|b| b.var).collect();
                scope::check_scopes(&q.body, &params, &program.vars, &mut analysis.diagnostics);
                fragment::check_relations(&q.body, &schema, &mut analysis.diagnostics);
                fragment::check_active_domain(&q.body, &schema, &mut analysis.diagnostics);
                let body = q.body.to_formula();
                let body_id = arena.intern(&body);
                let report = fragment::classify_id(&arena, body_id);
                let mut cost = cost::estimate(&report, params.len(), &schema, &cfg.cost);
                if cfg.check_blowup {
                    cost::check_blowup(&cost, q.name_span, &mut analysis.diagnostics);
                }
                if cfg.absint {
                    // Bounds must see through relation atoms, so the
                    // verdict runs on the database-expanded body; the
                    // CQA012 walk stays on the spanned original so its
                    // findings anchor to source bytes.
                    let expanded = db
                        .as_ref()
                        .and_then(|d| d.expand(&body).ok())
                        .unwrap_or_else(|| body.clone());
                    cost = absint_query_pass(
                        &mut arena,
                        &mut memo,
                        &mut simp,
                        &q.name,
                        &q.body,
                        &expanded,
                        &params,
                        &program.vars,
                        cost,
                        &mut analysis.diagnostics,
                    );
                }
                analysis.reports.push(StatementReport {
                    name: q.name.clone(),
                    kind: "query",
                    fragment: report,
                    cost: Some(cost),
                    gamma: None,
                });
            }
            Statement::Sum(s) => {
                let status = sigma::check_sum(s, &program.vars, &mut analysis.diagnostics);
                for part in [&s.filter, &s.end_formula, &s.gamma] {
                    fragment::check_relations(part, &schema, &mut analysis.diagnostics);
                    fragment::check_active_domain(part, &schema, &mut analysis.diagnostics);
                }
                // Measure the whole term: filter ∧ END body ∧ γ.
                let combined = s
                    .filter
                    .to_formula()
                    .and(s.end_formula.to_formula())
                    .and(s.gamma.to_formula());
                let combined_id = arena.intern(&combined);
                let report = fragment::classify_id(&arena, combined_id);
                let cost = cost::estimate(&report, s.tuple_vars.len(), &schema, &cfg.cost);
                if cfg.check_blowup {
                    cost::check_blowup(&cost, s.name_span, &mut analysis.diagnostics);
                }
                analysis.reports.push(StatementReport {
                    name: s.name.clone(),
                    kind: "sum",
                    fragment: report,
                    cost: Some(cost),
                    gamma: Some(status),
                });
            }
        }
    }
    (program, analysis.finish())
}

/// Pass 5 for one query: CQA011 (statically empty), CQA012 (statically
/// trivial subformula), CQA013 (no boundedness certificate for an output
/// variable), and the planner-grade cost refinements (post-pruning atom
/// count and certified box volume).
#[allow(clippy::too_many_arguments)]
fn absint_query_pass(
    arena: &mut Arena,
    memo: &mut AbsintMemo,
    simp: &mut SimplifyMemo,
    name: &str,
    spanned: &SpannedFormula,
    expanded: &Formula,
    params: &[Var],
    vars: &VarMap,
    cost: CostReport,
    diags: &mut Vec<Diagnostic>,
) -> CostReport {
    let eid = arena.intern(expanded);
    let facts = absint::analyze_id(arena, eid, memo);
    if facts.verdict == Verdict::Unsat {
        let mut d = Diagnostic::new(
            Code::StaticallyEmpty,
            spanned.span,
            format!("query `{name}` is statically empty: no real point satisfies its body"),
        )
        .with_note("the engine answers it with measure 0 without quantifier elimination");
        for v in params {
            let iv = absint::env_interval(&facts.env, *v);
            if !iv.is_top() {
                d = d.with_note(format!("derived bounds: {} ∈ {iv}", vars.name(*v)));
            }
        }
        diags.push(d);
    } else {
        for v in absint::unbounded_vars(&facts.env, params) {
            let sp = sigma::span_of_var(spanned, v);
            let sp = if sp.is_empty() { spanned.span } else { sp };
            let iv = absint::env_interval(&facts.env, v);
            diags.push(
                Diagnostic::new(
                    Code::UnboundedFreeVariable,
                    sp,
                    format!(
                        "free variable `{}` of query `{name}` has no boundedness \
                         certificate (derived bounds: {iv})",
                        vars.name(v)
                    ),
                )
                .with_note(
                    "the Monte Carlo sampling box cannot shrink along this dimension; \
                     add explicit range constraints if the variable is bounded",
                ),
            );
        }
        report_trivial_subformulas(arena, memo, spanned, diags);
    }
    let pruned = absint::prune_id(arena, eid, memo, simp);
    let pruned_atoms = arena.meta(pruned).sign_atoms;
    let vol = absint::box_volume(&facts.env, params);
    cost.with_absint(pruned_atoms, vol)
}

/// Top-down walk over the spanned body reporting *maximal* statically
/// valid subformulas (CQA012) — only nodes that carry at least one sign
/// atom, so a bare `true` never warns; a reported node's children are
/// not descended into.
fn report_trivial_subformulas(
    arena: &mut Arena,
    memo: &mut AbsintMemo,
    sf: &SpannedFormula,
    diags: &mut Vec<Diagnostic>,
) {
    let id = arena.intern(&sf.to_formula());
    if arena.meta(id).sign_atoms > 0 {
        let facts = absint::analyze_id(arena, id, memo);
        if facts.verdict == Verdict::Valid {
            diags.push(
                Diagnostic::new(
                    Code::StaticallyTrivial,
                    sf.span,
                    "subformula is statically valid (always true) and contributes nothing",
                )
                .with_note("the simplifier prunes it before elimination; consider deleting it"),
            );
            return;
        }
    }
    match &sf.node {
        SpannedNode::Not(g)
        | SpannedNode::Exists(_, g)
        | SpannedNode::Forall(_, g)
        | SpannedNode::ExistsAdom(_, g)
        | SpannedNode::ForallAdom(_, g) => report_trivial_subformulas(arena, memo, g, diags),
        SpannedNode::And(gs) | SpannedNode::Or(gs) => {
            for g in gs {
                report_trivial_subformulas(arena, memo, g, diags);
            }
        }
        _ => {}
    }
}

/// Analyzes one programmatically built formula (no spans): scope via free
/// variables, schema conformance, classification, and cost. This is the
/// entry point the bench workloads and library callers use to lint
/// queries built in code rather than parsed from `.cqa` text.
pub fn analyze_formula(
    f: &Formula,
    params: &[Var],
    schema: &Schema,
    vars: &VarMap,
    cfg: &AnalyzerConfig,
) -> Analysis {
    let mut analysis = Analysis {
        diagnostics: Vec::new(),
        reports: Vec::new(),
    };
    for v in f.free_vars() {
        if !params.contains(&v) {
            analysis.diagnostics.push(
                Diagnostic::new(
                    crate::diag::Code::UnboundVariable,
                    cqa_logic::Span::default(),
                    format!("unbound variable `{}`", vars.name(v)),
                )
                .with_note("declare it as a parameter or bind it with a quantifier"),
            );
        }
    }
    fragment::check_relations_plain(f, schema, &mut analysis.diagnostics);
    let report = fragment::classify(f);
    let mut cost = cost::estimate(&report, params.len(), schema, &cfg.cost);
    if cfg.check_blowup {
        cost::check_blowup(&cost, cqa_logic::Span::default(), &mut analysis.diagnostics);
    }
    if cfg.absint {
        // No spans and no database here: relation atoms stay opaque, and
        // every finding anchors to the default span.
        let mut arena = Arena::new();
        let mut memo = AbsintMemo::new();
        let mut simp = SimplifyMemo::new();
        let id = arena.intern(f);
        let facts = absint::analyze_id(&arena, id, &mut memo);
        if facts.verdict == Verdict::Unsat {
            analysis.diagnostics.push(Diagnostic::new(
                Code::StaticallyEmpty,
                Span::default(),
                "query is statically empty: no real point satisfies its body",
            ));
        } else {
            for v in absint::unbounded_vars(&facts.env, params) {
                analysis.diagnostics.push(Diagnostic::new(
                    Code::UnboundedFreeVariable,
                    Span::default(),
                    format!(
                        "free variable `{}` has no boundedness certificate",
                        vars.name(v)
                    ),
                ));
            }
        }
        let pruned = absint::prune_id(&mut arena, id, &mut memo, &mut simp);
        cost = cost.with_absint(
            arena.meta(pruned).sign_atoms,
            absint::box_volume(&facts.env, params),
        );
    }
    analysis.reports.push(StatementReport {
        name: "<formula>".to_string(),
        kind: "query",
        fragment: report,
        cost: Some(cost),
        gamma: None,
    });
    analysis.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use cqa_logic::parse_formula_with;

    #[test]
    fn clean_program_has_no_findings() {
        let src = "\
rel S(y) := (0 <= y & y <= 1) | y = 4
query Q(x) := exists y. S(y) & x = y + 1
sum T(w) := w > 0 | END[y. S(y)] ; x . x = 2*w
";
        let cfg = AnalyzerConfig {
            cost: CostParams {
                db_size: 4,
                budget: cqa_approx::km::KmBudget {
                    max_atoms: 1e30,
                    max_quantifiers: 1e30,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let (_, a) = analyze_source(src, &cfg);
        assert!(a.diagnostics.is_empty(), "{}", a.render(src, "t.cqa"));
        assert_eq!(a.reports.len(), 3);
        assert_eq!(a.reports[2].gamma, Some(GammaStatus::Certified));
    }

    #[test]
    fn each_pass_reports_through_the_driver() {
        let src = "\
rel S(y) := exists z. z = y
query Q(x) := x = z & Missing(x) & S(x, x)
sum T(w) := w > u | END[y. 0 <= y & y <= 1] ; x . x*x = w
";
        let (_, a) = analyze_source(src, &AnalyzerConfig::default());
        let codes: Vec<Code> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::BadRelationDef), "{codes:?}");
        assert!(codes.contains(&Code::UnboundVariable), "{codes:?}");
        assert!(codes.contains(&Code::UnknownRelation), "{codes:?}");
        assert!(codes.contains(&Code::ArityMismatch), "{codes:?}");
        assert!(codes.contains(&Code::SigmaRangeUnbound), "{codes:?}");
        assert!(codes.contains(&Code::GammaNotCertified), "{codes:?}");
        assert!(a.has_errors());
    }

    #[test]
    fn absint_pass_reports_static_verdicts() {
        let src = "\
rel S(y) := 0 <= y & y <= 1
query Empty(x) := S(x) & x > 2 & x < 1
query Trivial(x) := S(x) & x*x >= 0
query Loose(x, z) := S(x) & z > 0
";
        let (_, a) = analyze_source(src, &AnalyzerConfig::default());
        let codes: Vec<Code> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::StaticallyEmpty), "{codes:?}");
        assert!(codes.contains(&Code::StaticallyTrivial), "{codes:?}");
        assert!(codes.contains(&Code::UnboundedFreeVariable), "{codes:?}");
        // Warnings only: the program still evaluates.
        assert!(!a.has_errors());
        // Every finding carries a real span.
        for d in &a.diagnostics {
            assert!(!d.span.is_empty(), "{:?} has an empty span", d.code);
        }
        // The trivial conjunct is pruned from the planner-grade atom count
        // and the bounded query certifies a shrunken box.
        let trivial = &a.reports[2];
        assert!(trivial.cost.unwrap().pruned_atoms.unwrap() < 3);
        let empty = &a.reports[1];
        assert_eq!(empty.cost.unwrap().pruned_atoms, Some(0));
        let loose = &a.reports[3];
        assert_eq!(loose.cost.unwrap().box_volume, Some(1.0));
    }

    #[test]
    fn absint_pass_can_be_disabled() {
        let src = "query Empty(x) := x > 2 & x < 1\n";
        let cfg = AnalyzerConfig {
            absint: false,
            check_blowup: false,
            ..Default::default()
        };
        let (_, a) = analyze_source(src, &cfg);
        assert!(a.diagnostics.is_empty(), "{}", a.render(src, "t.cqa"));
        assert_eq!(a.reports[0].cost.unwrap().pruned_atoms, None);
    }

    #[test]
    fn blowup_lint_fires_on_the_paper_example() {
        let src = "\
rel U(u) := u = 0 | u = 1
query Phi(x1, x2) := U(x1) & U(x2) & exists y1 y2. x1 < y1 & y1 < x2 & 0 <= y2 & y2 <= y1
";
        let cfg = AnalyzerConfig {
            cost: CostParams {
                eps: 0.1,
                db_size: 16,
                ..Default::default()
            },
            ..Default::default()
        };
        let (_, a) = analyze_source(src, &cfg);
        let blow = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::KmBlowup)
            .expect("expected CQA008");
        assert!(blow.message.contains("blow up"));
        let cost = a.reports[1].cost.unwrap();
        assert!(cost.km.atoms >= 1e9);
        assert!(cost.km.quantifiers >= 1e11);
    }

    #[test]
    fn formula_entry_point_lints_plain_asts() {
        let mut vars = cqa_logic::VarMap::new();
        let x = vars.intern("x");
        let f = parse_formula_with("x = z + 1 & R(x)", &mut vars).unwrap();
        let a = analyze_formula(
            &f,
            &[x],
            &Schema::new(),
            &vars,
            &AnalyzerConfig {
                check_blowup: false,
                ..Default::default()
            },
        );
        let codes: Vec<Code> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::UnboundVariable));
        assert!(codes.contains(&Code::UnknownRelation));
    }
}
