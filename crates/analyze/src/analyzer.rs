//! The multi-pass driver: parse → scope → fragment/schema → Σ-discipline →
//! cost, producing one [`Analysis`] per source file.

use crate::cost::{self, CostParams, CostReport};
use crate::diag::{self, Diagnostic, Severity};
use crate::fragment::{self, FragmentReport, Schema};
use crate::program::{parse_program, Program, Statement};
use crate::scope;
use crate::sigma::{self, GammaStatus};
use cqa_logic::{Formula, VarMap};
use cqa_poly::Var;

/// Analyzer configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnalyzerConfig {
    /// Cost-model parameters (ε, δ, assumed database size, KM budget).
    pub cost: CostParams,
    /// Whether to run the CQA008 blow-up lint at all.
    pub check_blowup: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> AnalyzerConfig {
        AnalyzerConfig {
            cost: CostParams::default(),
            check_blowup: true,
        }
    }
}

/// Per-statement findings beyond the diagnostics: what the statement is and
/// what it costs.
#[derive(Clone, Debug)]
pub struct StatementReport {
    /// Statement name.
    pub name: String,
    /// `"rel"`, `"query"` or `"sum"`.
    pub kind: &'static str,
    /// Fragment classification and measurements.
    pub fragment: FragmentReport,
    /// Cost estimate (queries and sums; relations are data, not queries).
    pub cost: Option<CostReport>,
    /// For sums: whether γ was syntactically certified.
    pub gamma: Option<GammaStatus>,
}

/// The result of analyzing one source file (or one formula).
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by position.
    pub diagnostics: Vec<Diagnostic>,
    /// One report per successfully parsed statement.
    pub reports: Vec<StatementReport>,
}

impl Analysis {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    /// `true` iff any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Renders every diagnostic against the source.
    pub fn render(&self, src: &str, filename: &str) -> String {
        diag::render_all(&self.diagnostics, src, filename)
    }

    fn finish(mut self) -> Analysis {
        self.diagnostics.sort_by_key(|d| (d.span.start, d.code));
        self.diagnostics.dedup();
        self
    }
}

/// Analyzes a `.cqa` source file end to end.
pub fn analyze_source(src: &str, cfg: &AnalyzerConfig) -> (Program, Analysis) {
    let (program, mut diags) = parse_program(src);
    let schema = program.schema();
    let mut analysis = Analysis {
        diagnostics: Vec::new(),
        reports: Vec::new(),
    };
    analysis.diagnostics.append(&mut diags);

    // One interning arena for the whole program: relation bodies and query
    // matrices that share subformulas are stored once, and every classify
    // reads cached per-node metadata instead of re-walking trees.
    let mut arena = cqa_logic::ir::Arena::new();
    for stmt in &program.statements {
        match stmt {
            Statement::Rel(r) => {
                let params: Vec<Var> = r.params.iter().map(|b| b.var).collect();
                scope::check_scopes(&r.body, &params, &program.vars, &mut analysis.diagnostics);
                let body = r.body.to_formula();
                if !body.is_quantifier_free() || !body.is_relation_free() {
                    analysis.diagnostics.push(
                        Diagnostic::new(
                            crate::diag::Code::BadRelationDef,
                            r.name_span,
                            format!(
                                "relation `{}` must be defined by a quantifier-free, \
                                 relation-free constraint formula",
                                r.name
                            ),
                        )
                        .with_note(
                            "finitely representable instances interpret schema symbols \
                             by quantifier-free formulas (paper §2)",
                        ),
                    );
                }
                let body_id = arena.intern(&body);
                analysis.reports.push(StatementReport {
                    name: r.name.clone(),
                    kind: "rel",
                    fragment: fragment::classify_id(&arena, body_id),
                    cost: None,
                    gamma: None,
                });
            }
            Statement::Query(q) => {
                let params: Vec<Var> = q.params.iter().map(|b| b.var).collect();
                scope::check_scopes(&q.body, &params, &program.vars, &mut analysis.diagnostics);
                fragment::check_relations(&q.body, &schema, &mut analysis.diagnostics);
                fragment::check_active_domain(&q.body, &schema, &mut analysis.diagnostics);
                let body = q.body.to_formula();
                let body_id = arena.intern(&body);
                let report = fragment::classify_id(&arena, body_id);
                let cost = cost::estimate(&report, params.len(), &schema, &cfg.cost);
                if cfg.check_blowup {
                    cost::check_blowup(&cost, q.name_span, &mut analysis.diagnostics);
                }
                analysis.reports.push(StatementReport {
                    name: q.name.clone(),
                    kind: "query",
                    fragment: report,
                    cost: Some(cost),
                    gamma: None,
                });
            }
            Statement::Sum(s) => {
                let status = sigma::check_sum(s, &program.vars, &mut analysis.diagnostics);
                for part in [&s.filter, &s.end_formula, &s.gamma] {
                    fragment::check_relations(part, &schema, &mut analysis.diagnostics);
                    fragment::check_active_domain(part, &schema, &mut analysis.diagnostics);
                }
                // Measure the whole term: filter ∧ END body ∧ γ.
                let combined = s
                    .filter
                    .to_formula()
                    .and(s.end_formula.to_formula())
                    .and(s.gamma.to_formula());
                let combined_id = arena.intern(&combined);
                let report = fragment::classify_id(&arena, combined_id);
                let cost = cost::estimate(&report, s.tuple_vars.len(), &schema, &cfg.cost);
                if cfg.check_blowup {
                    cost::check_blowup(&cost, s.name_span, &mut analysis.diagnostics);
                }
                analysis.reports.push(StatementReport {
                    name: s.name.clone(),
                    kind: "sum",
                    fragment: report,
                    cost: Some(cost),
                    gamma: Some(status),
                });
            }
        }
    }
    (program, analysis.finish())
}

/// Analyzes one programmatically built formula (no spans): scope via free
/// variables, schema conformance, classification, and cost. This is the
/// entry point the bench workloads and library callers use to lint
/// queries built in code rather than parsed from `.cqa` text.
pub fn analyze_formula(
    f: &Formula,
    params: &[Var],
    schema: &Schema,
    vars: &VarMap,
    cfg: &AnalyzerConfig,
) -> Analysis {
    let mut analysis = Analysis {
        diagnostics: Vec::new(),
        reports: Vec::new(),
    };
    for v in f.free_vars() {
        if !params.contains(&v) {
            analysis.diagnostics.push(
                Diagnostic::new(
                    crate::diag::Code::UnboundVariable,
                    cqa_logic::Span::default(),
                    format!("unbound variable `{}`", vars.name(v)),
                )
                .with_note("declare it as a parameter or bind it with a quantifier"),
            );
        }
    }
    fragment::check_relations_plain(f, schema, &mut analysis.diagnostics);
    let report = fragment::classify(f);
    let cost = cost::estimate(&report, params.len(), schema, &cfg.cost);
    if cfg.check_blowup {
        cost::check_blowup(&cost, cqa_logic::Span::default(), &mut analysis.diagnostics);
    }
    analysis.reports.push(StatementReport {
        name: "<formula>".to_string(),
        kind: "query",
        fragment: report,
        cost: Some(cost),
        gamma: None,
    });
    analysis.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use cqa_logic::parse_formula_with;

    #[test]
    fn clean_program_has_no_findings() {
        let src = "\
rel S(y) := (0 <= y & y <= 1) | y = 4
query Q(x) := exists y. S(y) & x = y + 1
sum T(w) := w > 0 | END[y. S(y)] ; x . x = 2*w
";
        let cfg = AnalyzerConfig {
            cost: CostParams {
                db_size: 4,
                budget: cqa_approx::km::KmBudget {
                    max_atoms: 1e30,
                    max_quantifiers: 1e30,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let (_, a) = analyze_source(src, &cfg);
        assert!(a.diagnostics.is_empty(), "{}", a.render(src, "t.cqa"));
        assert_eq!(a.reports.len(), 3);
        assert_eq!(a.reports[2].gamma, Some(GammaStatus::Certified));
    }

    #[test]
    fn each_pass_reports_through_the_driver() {
        let src = "\
rel S(y) := exists z. z = y
query Q(x) := x = z & Missing(x) & S(x, x)
sum T(w) := w > u | END[y. 0 <= y & y <= 1] ; x . x*x = w
";
        let (_, a) = analyze_source(src, &AnalyzerConfig::default());
        let codes: Vec<Code> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::BadRelationDef), "{codes:?}");
        assert!(codes.contains(&Code::UnboundVariable), "{codes:?}");
        assert!(codes.contains(&Code::UnknownRelation), "{codes:?}");
        assert!(codes.contains(&Code::ArityMismatch), "{codes:?}");
        assert!(codes.contains(&Code::SigmaRangeUnbound), "{codes:?}");
        assert!(codes.contains(&Code::GammaNotCertified), "{codes:?}");
        assert!(a.has_errors());
    }

    #[test]
    fn blowup_lint_fires_on_the_paper_example() {
        let src = "\
rel U(u) := u = 0 | u = 1
query Phi(x1, x2) := U(x1) & U(x2) & exists y1 y2. x1 < y1 & y1 < x2 & 0 <= y2 & y2 <= y1
";
        let cfg = AnalyzerConfig {
            cost: CostParams {
                eps: 0.1,
                db_size: 16,
                ..Default::default()
            },
            ..Default::default()
        };
        let (_, a) = analyze_source(src, &cfg);
        let blow = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::KmBlowup)
            .expect("expected CQA008");
        assert!(blow.message.contains("blow up"));
        let cost = a.reports[1].cost.unwrap();
        assert!(cost.km.atoms >= 1e9);
        assert!(cost.km.quantifiers >= 1e11);
    }

    #[test]
    fn formula_entry_point_lints_plain_asts() {
        let mut vars = cqa_logic::VarMap::new();
        let x = vars.intern("x");
        let f = parse_formula_with("x = z + 1 & R(x)", &mut vars).unwrap();
        let a = analyze_formula(
            &f,
            &[x],
            &Schema::new(),
            &vars,
            &AnalyzerConfig {
                check_blowup: false,
                ..Default::default()
            },
        );
        let codes: Vec<Code> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::UnboundVariable));
        assert!(codes.contains(&Code::UnknownRelation));
    }
}
