//! Static analysis for FO+POLY+SUM programs: compiler-style diagnostics,
//! lints, and a cost/VC estimator — all before any quantifier elimination
//! runs.
//!
//! Benedikt & Libkin (PODS 1999) define the aggregate language FO+POLY+SUM
//! by *syntactic* disciplines: summation ranges must be range-restricted,
//! summands must be deterministic, relation definitions must be
//! quantifier-free constraint formulas. This crate checks those disciplines
//! statically, in five passes over the span-carrying parse tree of
//! `cqa-logic`:
//!
//! 1. **Scope** ([`scope`]) — unbound variables (CQA001), shadowed binders
//!    (CQA002), unused binders (CQA003).
//! 2. **Fragment & schema** ([`fragment`]) — FO+LIN vs FO+POLY
//!    classification, degree/atom/quantifier counts, unknown relations
//!    (CQA004), arity mismatches (CQA005), empty-active-domain quantifiers
//!    (CQA009).
//! 3. **Σ-discipline** ([`sigma`]) — range-restriction violations (CQA006)
//!    and determinism certification: summands in the functional-graph shape
//!    `x = t(w⃗)` are certified and skip the QE-based semantic check at
//!    evaluation time; the rest get a CQA007 fallback warning.
//! 4. **Cost** ([`cost`]) — Proposition 6's Goldberg–Jerrum constant and
//!    the Lemma-1 Karpinski–Macintyre blow-up model; queries whose
//!    predicted ε-approximation formula exceeds the budget get CQA008
//!    (the paper's `≥ 10⁹`-atom example, as a lint).
//! 5. **Interval abstract interpretation** ([`absint`]) — per-node interval
//!    environments and three-valued feasibility verdicts over the
//!    hash-consed IR arena; statically empty queries (CQA011), statically
//!    trivial subformulas (CQA012), and missing boundedness certificates
//!    for volume/SUM queries (CQA013), plus planner-grade box-volume and
//!    pruned-atom cost inputs.
//!
//! Programs live in `.cqa` files ([`program`]); the `cqa-lint` binary in
//! `cqa-bench` drives the analyzer from the command line. Every finding is
//! a [`Diagnostic`] with a stable code, a severity, and a byte [`Span`]
//! rendered rustc-style against the source.

#![forbid(unsafe_code)]

pub mod absint;
pub mod analyzer;
pub mod cost;
pub mod diag;
pub mod fragment;
pub mod program;
pub mod scope;
pub mod sigma;

pub use absint::{analyze_id, prune_id, AbsintMemo, Env, Facts, Interval, Verdict};
pub use analyzer::{analyze_formula, analyze_source, Analysis, AnalyzerConfig, StatementReport};
pub use cost::{check_blowup, estimate, planner_inputs, CostParams, CostReport};
pub use cqa_logic::Span;
pub use diag::{render_all, Code, Diagnostic, Severity};
pub use fragment::{
    check_active_domain, check_relations, check_relations_plain, classify, FragmentReport, Schema,
};
pub use program::{parse_program, Program, QueryStmt, RelStmt, Statement, SumStmt};
pub use scope::check_scopes;
pub use sigma::{check_sum, span_of_var, GammaStatus};
