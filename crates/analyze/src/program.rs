//! The `.cqa` program surface syntax: named relations, queries, and
//! Σ-terms in one line-oriented source file.
//!
//! ```text
//! # comments start with `#`; one statement per line
//! rel   S(y)    := (0 <= y & y <= 1) | y = 4
//! query Q(x)    := exists y. S(y) & x = y + 1
//! sum   T(w)    := true | END[y. S(y)] ; xout . xout = 2*w
//! ```
//!
//! * `rel NAME(p…) := φ` — a finitely representable relation (φ must be a
//!   quantifier-free, relation-free constraint formula over the
//!   parameters).
//! * `query NAME(x…) := φ` — a first-order query with output columns `x…`.
//! * `sum NAME(w…) := φ₁ | END[y. φ₂] ; x . γ` — the paper's §5 summation
//!   term `Σ_{ρ(w⃗)} γ` with `ρ ≡ (φ₁ | END[y, φ₂])` and summand
//!   `γ(x, w⃗)`.
//!
//! Parsing keeps byte spans on every sub-formula (shifted into file
//! coordinates), so downstream passes can point diagnostics at the exact
//! source text. Syntax errors are reported as CQA000 diagnostics; a
//! malformed statement is skipped while the rest of the file still parses.

use crate::diag::{Code, Diagnostic};
use crate::fragment::Schema;
use cqa_agg::{Deterministic, RangeRestricted, SumTerm};
use cqa_core::Database;
use cqa_logic::{parse_formula_spanned, BoundVar, Span, SpannedFormula, VarMap};
use cqa_poly::Var;

/// `rel NAME(p…) := φ`.
#[derive(Clone, Debug)]
pub struct RelStmt {
    /// Relation name.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// Parameters, in argument order.
    pub params: Vec<BoundVar>,
    /// Defining formula.
    pub body: SpannedFormula,
    /// Span of the whole statement.
    pub span: Span,
}

/// `query NAME(x…) := φ`.
#[derive(Clone, Debug)]
pub struct QueryStmt {
    /// Query name.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// Output columns.
    pub params: Vec<BoundVar>,
    /// The query formula.
    pub body: SpannedFormula,
    /// Span of the whole statement.
    pub span: Span,
}

/// `sum NAME(w…) := φ₁ | END[y. φ₂] ; x . γ`.
#[derive(Clone, Debug)]
pub struct SumStmt {
    /// Term name.
    pub name: String,
    /// Span of the name.
    pub name_span: Span,
    /// The tuple variables `w⃗`.
    pub tuple_vars: Vec<BoundVar>,
    /// The filter `φ₁(w⃗)`.
    pub filter: SpannedFormula,
    /// The `END` bound variable `y`.
    pub end_var: BoundVar,
    /// The `END` body `φ₂(y)`.
    pub end_formula: SpannedFormula,
    /// The summand's output variable `x`.
    pub out_var: BoundVar,
    /// The summand `γ(x, w⃗)`.
    pub gamma: SpannedFormula,
    /// Span of the whole statement.
    pub span: Span,
}

impl SumStmt {
    /// Lowers to the evaluable [`SumTerm`] of `cqa-agg`.
    pub fn to_sum_term(&self) -> SumTerm {
        let tuple_vars: Vec<Var> = self.tuple_vars.iter().map(|b| b.var).collect();
        SumTerm {
            range: RangeRestricted {
                filter: self.filter.to_formula(),
                tuple_vars: tuple_vars.clone(),
                end_var: self.end_var.var,
                end_formula: self.end_formula.to_formula(),
            },
            gamma: Deterministic {
                out_var: self.out_var.var,
                in_vars: tuple_vars,
                formula: self.gamma.to_formula(),
            },
        }
    }
}

/// One program statement.
// Statements are parsed once and then only traversed by reference, so the
// size spread between variants (SumStmt is three formulas wide) is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Statement {
    /// A relation definition.
    Rel(RelStmt),
    /// A first-order query.
    Query(QueryStmt),
    /// A Σ-term.
    Sum(SumStmt),
}

impl Statement {
    /// The statement's name.
    pub fn name(&self) -> &str {
        match self {
            Statement::Rel(s) => &s.name,
            Statement::Query(s) => &s.name,
            Statement::Sum(s) => &s.name,
        }
    }

    /// The span of the whole statement.
    pub fn span(&self) -> Span {
        match self {
            Statement::Rel(s) => s.span,
            Statement::Query(s) => s.span,
            Statement::Sum(s) => s.span,
        }
    }
}

/// A parsed `.cqa` program: statements plus the shared variable map.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The statements, in file order.
    pub statements: Vec<Statement>,
    /// Variable names interned across the whole file.
    pub vars: VarMap,
}

impl Program {
    /// The schema declared by the program's `rel` statements.
    pub fn schema(&self) -> Schema {
        self.statements
            .iter()
            .filter_map(|s| match s {
                Statement::Rel(r) => Some((r.name.clone(), r.params.len())),
                _ => None,
            })
            .collect()
    }

    /// Builds a [`Database`] holding the program's relations, with the same
    /// variable interning as the program (so statement formulas evaluate
    /// directly against it).
    pub fn to_database(&self) -> Result<Database, String> {
        let mut db = Database::new();
        for i in 0..self.vars.len() {
            db.vars_mut().intern(&self.vars.name(Var(i as u32)));
        }
        for s in &self.statements {
            if let Statement::Rel(r) = s {
                db.add_fr_relation(
                    &r.name,
                    r.params.iter().map(|b| b.var).collect(),
                    r.body.to_formula(),
                )
                .map_err(|e| format!("relation `{}`: {e}", r.name))?;
            }
        }
        Ok(db)
    }
}

/// Parses a `.cqa` source file. Statements that fail to parse become
/// CQA000 diagnostics and are skipped; the rest of the file is still
/// processed.
pub fn parse_program(src: &str) -> (Program, Vec<Diagnostic>) {
    let mut vars = VarMap::new();
    let mut statements = Vec::new();
    let mut diags = Vec::new();
    let mut offset = 0;
    for line in src.split_inclusive('\n') {
        let line_start = offset;
        offset += line.len();
        let text = line.trim_end_matches(['\n', '\r']);
        let trimmed = text.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let base = line_start + (text.len() - trimmed.len());
        match parse_statement(trimmed, base, &mut vars) {
            Ok(stmt) => statements.push(stmt),
            Err(d) => diags.push(d),
        }
    }
    (Program { statements, vars }, diags)
}

/// A tiny cursor over one statement line; `base` converts local positions
/// to file offsets.
struct Cursor<'a> {
    s: &'a str,
    pos: usize,
    base: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.s[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        let at = self.base + self.pos;
        Diagnostic::new(
            Code::Syntax,
            Span::new(at, (at + 1).min(self.base + self.s.len()).max(at)),
            msg,
        )
    }

    fn ident(&mut self) -> Result<(String, Span), Diagnostic> {
        let start = self.pos;
        let rest = &self.s[start..];
        let len = rest
            .char_indices()
            .take_while(|&(i, c)| {
                c == '_'
                    || if i == 0 {
                        c.is_ascii_alphabetic()
                    } else {
                        c.is_ascii_alphanumeric()
                    }
            })
            .count();
        if len == 0 {
            return Err(self.err("expected an identifier"));
        }
        self.pos += len;
        Ok((
            rest[..len].to_string(),
            Span::new(self.base + start, self.base + start + len),
        ))
    }

    fn expect(&mut self, tok: &str) -> Result<(), Diagnostic> {
        if self.s[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{tok}`")))
        }
    }
}

/// Parses a formula slice, shifting its spans to file coordinates.
fn parse_slice(
    slice: &str,
    abs_off: usize,
    vars: &mut VarMap,
) -> Result<SpannedFormula, Diagnostic> {
    match parse_formula_spanned(slice, vars) {
        Ok(mut f) => {
            f.shift(abs_off);
            Ok(f)
        }
        Err(e) => Err(Diagnostic::new(
            Code::Syntax,
            Span::new(abs_off + e.at, abs_off + e.at + 1),
            e.msg,
        )),
    }
}

/// The identifier (and its span) filling `slice` at file offset `abs_off`,
/// ignoring surrounding whitespace.
fn lone_ident(slice: &str, abs_off: usize, what: &str) -> Result<(String, Span), Diagnostic> {
    let trimmed = slice.trim();
    let lead = slice.len() - slice.trim_start().len();
    let ok = !trimmed.is_empty()
        && trimmed.chars().enumerate().all(|(i, c)| {
            c == '_'
                || if i == 0 {
                    c.is_ascii_alphabetic()
                } else {
                    c.is_ascii_alphanumeric()
                }
        });
    if !ok {
        return Err(Diagnostic::new(
            Code::Syntax,
            Span::new(abs_off + lead, abs_off + lead + trimmed.len().max(1)),
            format!("expected {what}"),
        ));
    }
    Ok((
        trimmed.to_string(),
        Span::new(abs_off + lead, abs_off + lead + trimmed.len()),
    ))
}

fn parse_statement(stmt: &str, base: usize, vars: &mut VarMap) -> Result<Statement, Diagnostic> {
    let kw_end = stmt.find(char::is_whitespace).unwrap_or(stmt.len());
    let kw = &stmt[..kw_end];
    let span = Span::new(base, base + stmt.len());
    let mut c = Cursor {
        s: stmt,
        pos: kw_end,
        base,
    };
    if !matches!(kw, "rel" | "query" | "sum") {
        return Err(c.err(format!(
            "unknown statement keyword `{kw}` (expected `rel`, `query` or `sum`)"
        )));
    }
    c.skip_ws();
    let (name, name_span) = c.ident()?;
    c.skip_ws();
    c.expect("(")?;
    let mut params: Vec<BoundVar> = Vec::new();
    loop {
        c.skip_ws();
        if c.s[c.pos..].starts_with(')') {
            c.pos += 1;
            break;
        }
        let (p, pspan) = c.ident()?;
        params.push(BoundVar {
            var: vars.intern(&p),
            span: pspan,
        });
        c.skip_ws();
        if c.s[c.pos..].starts_with(',') {
            c.pos += 1;
        } else {
            c.expect(")")?;
            break;
        }
    }
    c.skip_ws();
    c.expect(":=")?;
    let body_off = c.pos;
    let body = &stmt[body_off..];
    let abs = |i: usize| base + body_off + i;

    match kw {
        "rel" => Ok(Statement::Rel(RelStmt {
            name,
            name_span,
            params,
            body: parse_slice(body, abs(0), vars)?,
            span,
        })),
        "query" => Ok(Statement::Query(QueryStmt {
            name,
            name_span,
            params,
            body: parse_slice(body, abs(0), vars)?,
            span,
        })),
        _ => {
            // sum NAME(w…) := φ₁ | END[y. φ₂] ; x . γ
            let syntax_err = |at: usize, msg: &str| {
                Diagnostic::new(
                    Code::Syntax,
                    Span::new(abs(at), abs(at) + 1),
                    msg.to_string(),
                )
            };
            let ei = body
                .find("END[")
                .ok_or_else(|| syntax_err(0, "sum statement requires an `END[y. φ]` range"))?;
            let pipe = body[..ei]
                .rfind('|')
                .ok_or_else(|| syntax_err(ei, "expected `φ | END[y. φ]`"))?;
            if !body[pipe + 1..ei].trim().is_empty() {
                return Err(syntax_err(
                    pipe + 1,
                    "unexpected text between `|` and `END[`",
                ));
            }
            let filter = parse_slice(&body[..pipe], abs(0), vars)?;
            let close = ei
                + body[ei..]
                    .find(']')
                    .ok_or_else(|| syntax_err(ei, "unclosed `END[`"))?;
            let inner = &body[ei + 4..close];
            let dot = inner
                .find('.')
                .ok_or_else(|| syntax_err(ei + 4, "expected `END[y. φ]`"))?;
            let (end_name, end_span) =
                lone_ident(&inner[..dot], abs(ei + 4), "the END binder variable")?;
            let end_var = BoundVar {
                var: vars.intern(&end_name),
                span: end_span,
            };
            let end_formula = parse_slice(&inner[dot + 1..], abs(ei + 4 + dot + 1), vars)?;
            let after = &body[close + 1..];
            let semi = after
                .find(';')
                .ok_or_else(|| syntax_err(close + 1, "expected `; x . γ` after `END[…]`"))?;
            if !after[..semi].trim().is_empty() {
                return Err(syntax_err(close + 1, "unexpected text between `]` and `;`"));
            }
            let gpart = &after[semi + 1..];
            let gdot = gpart
                .find('.')
                .ok_or_else(|| syntax_err(close + 1 + semi + 1, "expected `x . γ`"))?;
            let (out_name, out_span) = lone_ident(
                &gpart[..gdot],
                abs(close + 1 + semi + 1),
                "the summand output variable",
            )?;
            let out_var = BoundVar {
                var: vars.intern(&out_name),
                span: out_span,
            };
            let gamma = parse_slice(
                &gpart[gdot + 1..],
                abs(close + 1 + semi + 1 + gdot + 1),
                vars,
            )?;
            Ok(Statement::Sum(SumStmt {
                name,
                name_span,
                tuple_vars: params,
                filter,
                end_var,
                end_formula,
                out_var,
                gamma,
                span,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;

    const DEMO: &str = "\
# endpoints demo
rel S(y) := (0 <= y & y <= 0.5) | (0.75 <= y & y <= 2)
query Q(x) := exists y. S(y) & x = y + 1
sum T(w) := true | END[y. S(y)] ; xout . xout = w
";

    #[test]
    fn parses_all_statement_kinds_with_file_spans() {
        let (prog, diags) = parse_program(DEMO);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(prog.statements.len(), 3);
        assert_eq!(prog.statements[0].name(), "S");
        assert_eq!(prog.statements[2].name(), "T");
        let Statement::Sum(sum) = &prog.statements[2] else {
            panic!()
        };
        // The END body span points into the file, not the slice.
        let sp = sum.end_formula.span;
        assert_eq!(&DEMO[sp.start..sp.end], "S(y)");
        let op = sum.out_var.span;
        assert_eq!(&DEMO[op.start..op.end], "xout");
        assert_eq!(prog.schema(), [("S".to_string(), 1)].into());
    }

    #[test]
    fn sum_statement_evaluates_from_source() {
        let (prog, diags) = parse_program(DEMO);
        assert!(diags.is_empty(), "{diags:?}");
        let db = prog.to_database().unwrap();
        let Statement::Sum(sum) = &prog.statements[2] else {
            panic!()
        };
        // Endpoints of S: 0, 1/2, 3/4, 2 → sum 13/4 (the paper's §5
        // opening example).
        assert_eq!(sum.to_sum_term().eval(&db).unwrap(), rat(13, 4));
    }

    #[test]
    fn bad_statements_are_reported_and_skipped() {
        let src = "rel S(y) := y >= @\nquery Q(x) := S(x)\nbogus W(x) := x > 0\n";
        let (prog, diags) = parse_program(src);
        assert_eq!(prog.statements.len(), 1);
        assert_eq!(prog.statements[0].name(), "Q");
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == Code::Syntax));
    }

    #[test]
    fn sum_requires_its_shape() {
        let (_, d1) = parse_program("sum T(w) := w > 0 ; x . x = w\n");
        assert_eq!(d1.len(), 1);
        assert!(d1[0].message.contains("END["));
        let (_, d2) = parse_program("sum T(w) := true | END[y. S(y)] x . x = w\n");
        assert_eq!(d2.len(), 1);
        assert!(d2[0].message.contains(';'));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let (prog, diags) = parse_program("\n# nothing\n   \n");
        assert!(diags.is_empty());
        assert!(prog.statements.is_empty());
    }
}
