//! Pass 1 — scope and variable analysis over the spanned parse tree.
//!
//! Reports unbound variables (CQA001), quantifiers that shadow an outer
//! binding or parameter (CQA002), and binders whose body never uses them
//! (CQA003). Operates on [`SpannedFormula`] so every finding carries the
//! byte span of the construct the user actually wrote.

use crate::diag::{Code, Diagnostic};
use cqa_logic::{BoundVar, SpannedFormula, SpannedNode, VarMap};
use cqa_poly::Var;

/// Checks `f` with the ambient parameters `params` in scope, appending
/// findings to `diags`. `vars` supplies human names for messages.
pub fn check_scopes(
    f: &SpannedFormula,
    params: &[Var],
    vars: &VarMap,
    diags: &mut Vec<Diagnostic>,
) {
    let mut env: Vec<Var> = params.to_vec();
    walk(f, &mut env, vars, diags);
}

fn walk(f: &SpannedFormula, env: &mut Vec<Var>, vars: &VarMap, diags: &mut Vec<Diagnostic>) {
    match &f.node {
        SpannedNode::True | SpannedNode::False => {}
        SpannedNode::Atom(a) => {
            for v in a.poly.vars() {
                report_unbound(v, f, env, vars, diags);
            }
        }
        SpannedNode::Rel { args, .. } => {
            for t in args {
                for v in t.vars() {
                    report_unbound(v, f, env, vars, diags);
                }
            }
        }
        SpannedNode::Not(g) => walk(g, env, vars, diags),
        SpannedNode::And(gs) | SpannedNode::Or(gs) => {
            for g in gs {
                walk(g, env, vars, diags);
            }
        }
        SpannedNode::Exists(vs, g) | SpannedNode::Forall(vs, g) => {
            bind_block(vs, g, env, vars, diags);
        }
        SpannedNode::ExistsAdom(v, g) | SpannedNode::ForallAdom(v, g) => {
            bind_block(std::slice::from_ref(v), g, env, vars, diags);
        }
    }
}

fn bind_block(
    vs: &[BoundVar],
    body: &SpannedFormula,
    env: &mut Vec<Var>,
    vars: &VarMap,
    diags: &mut Vec<Diagnostic>,
) {
    // Free variables of the *lowered* body: occurrences under an inner
    // rebinding of the same name are correctly not free here, so an outer
    // binder they hide is genuinely unused.
    let body_free = body.to_formula().free_vars();
    for b in vs {
        if env.contains(&b.var) {
            diags.push(
                Diagnostic::new(
                    Code::ShadowedBinder,
                    b.span,
                    format!("quantifier shadows `{}` already in scope", vars.name(b.var)),
                )
                .with_note("the outer binding is unreachable inside this quantifier's body"),
            );
        }
        if !body_free.contains(&b.var) {
            diags.push(Diagnostic::new(
                Code::UnusedBinder,
                b.span,
                format!("bound variable `{}` is never used", vars.name(b.var)),
            ));
        }
        env.push(b.var);
    }
    walk(body, env, vars, diags);
    env.truncate(env.len() - vs.len());
}

fn report_unbound(
    v: Var,
    f: &SpannedFormula,
    env: &[Var],
    vars: &VarMap,
    diags: &mut Vec<Diagnostic>,
) {
    if env.contains(&v) {
        return;
    }
    let d = Diagnostic::new(
        Code::UnboundVariable,
        f.span,
        format!("unbound variable `{}`", vars.name(v)),
    )
    .with_note("declare it as a parameter or bind it with a quantifier");
    // One report per variable per atom is plenty; atoms list each variable
    // once (vars() is a set), so no dedup is needed here.
    diags.push(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_logic::parse_formula_spanned;

    fn analyze(src: &str, params: &[&str]) -> (Vec<Diagnostic>, VarMap) {
        let mut vars = VarMap::new();
        let ps: Vec<Var> = params.iter().map(|p| vars.intern(p)).collect();
        let f = parse_formula_spanned(src, &mut vars).unwrap();
        let mut diags = Vec::new();
        check_scopes(&f, &ps, &vars, &mut diags);
        (diags, vars)
    }

    #[test]
    fn well_scoped_formulas_are_clean() {
        let (d, _) = analyze("exists y. x = y + 1 & y > 0", &["x"]);
        assert!(d.is_empty(), "{d:?}");
        let (d, _) = analyze("forall u v. u + v > 0 | u < v", &[]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unbound_variables_are_flagged_with_spans() {
        let src = "x = z + 1";
        let (d, _) = analyze(src, &["x"]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::UnboundVariable);
        assert!(d[0].message.contains("`z`"));
        // The span covers the offending atom.
        assert_eq!(&src[d[0].span.start..d[0].span.end], "x = z + 1");
    }

    #[test]
    fn shadowing_and_unused_binders() {
        let src = "exists x. exists x. x > 0";
        let (d, _) = analyze(src, &[]);
        let codes: Vec<Code> = d.iter().map(|x| x.code).collect();
        assert!(codes.contains(&Code::ShadowedBinder));
        // The outer x is hidden by the inner binder, hence unused.
        assert!(codes.contains(&Code::UnusedBinder));
        // The shadow span points at the second binder occurrence.
        let shadow = d.iter().find(|x| x.code == Code::ShadowedBinder).unwrap();
        assert_eq!(shadow.span.start, src.rfind("x. x >").unwrap());
    }

    #[test]
    fn unused_binder_flagged() {
        let (d, _) = analyze("exists y. x > 0", &["x"]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::UnusedBinder);
    }

    #[test]
    fn adom_quantifiers_are_scoped_too() {
        let (d, _) = analyze("Eadom y. R(y) & z > 0", &[]);
        let codes: Vec<Code> = d.iter().map(|x| x.code).collect();
        assert!(codes.contains(&Code::UnboundVariable));
    }
}
