//! Pass 5 — interval abstract interpretation over the hash-consed IR.
//!
//! Runs directly on the [`Arena`] dag (PR 5), computing for every
//! [`FormulaId`] a [`Facts`] record: a three-valued feasibility
//! [`Verdict`] (statically unsat / statically valid / unknown) and a
//! per-variable interval [`Env`] over-approximating the node's satisfying
//! assignments. The pass follows the interval-decision line of Ratschan's
//! approximate quantified constraints: forward-propagate atom constraints
//! by exact rational interval arithmetic, meet across `And`, join (hull)
//! across `Or`, and project across quantifiers — memoized per arena node,
//! so shared subformulas are analyzed once.
//!
//! **Soundness contract.** For a node `φ` with facts `(v, E)`:
//!
//! * `v = Unsat` ⇒ `φ` has no satisfying assignment (QE eliminates to ⊥);
//! * `v = Valid` ⇒ every assignment satisfies `φ` (QE eliminates to ⊤);
//! * every satisfying assignment of `φ` lies inside the box `E` (absent
//!   variables mean the full line).
//!
//! The abstract domain over-approximates value *ranges*, so only
//! impossibility (empty intersection with an atom's sign set) and
//! inclusion (range contained in the sign set) are ever turned into
//! verdicts; `Unknown` is always a sound answer. Interval endpoints are
//! exact rationals with open/closed flags; nonlinear operations
//! (products, powers) discard openness — rounding *outward* to the closed
//! hull — which only widens, never shrinks, the approximation.
//!
//! **Termination.** The dag is finite, every node is visited once
//! (memoized), and the only fixpoint-flavoured computation — the
//! conjunction refinement loop that re-derives affine bounds under the
//! evolving environment — runs a fixed number of rounds
//! ([`REFINE_ROUNDS`]) instead of widening. Quantifier nodes simply
//! project their body facts, so no widening operator is needed anywhere.

use cqa_arith::Rat;
use cqa_logic::ir::{Arena, FormulaId, Node, TermId};
use cqa_logic::Rel;
use cqa_poly::Var;
use cqa_qe::SimplifyMemo;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Rounds of affine-bound refinement inside one `And` node. Each round
/// meets every conjunct atom's derived bounds into the environment and
/// re-checks feasibility; three rounds let a chain like
/// `x ≤ y ∧ y ≤ z ∧ z ≤ 1` propagate end to end, and a fixed count is the
/// termination story (no widening).
pub const REFINE_ROUNDS: usize = 3;

/// The three-valued static feasibility verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No assignment satisfies the formula; QE would eliminate to ⊥.
    Unsat,
    /// Every assignment satisfies the formula; QE would eliminate to ⊤.
    Valid,
    /// The analysis proves neither.
    Unknown,
}

/// An interval of reals with exact rational endpoints and open/closed
/// flags; `None` endpoints are infinite. The openness flags are only
/// meaningful next to a finite endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Lower endpoint (`None` = −∞).
    pub lo: Option<Rat>,
    /// Whether the lower endpoint is excluded.
    pub lo_open: bool,
    /// Upper endpoint (`None` = +∞).
    pub hi: Option<Rat>,
    /// Whether the upper endpoint is excluded.
    pub hi_open: bool,
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            None => write!(f, "(-inf, ")?,
            Some(l) => write!(f, "{}{l}, ", if self.lo_open { "(" } else { "[" })?,
        }
        match &self.hi {
            None => write!(f, "+inf)"),
            Some(h) => write!(f, "{h}{}", if self.hi_open { ")" } else { "]" }),
        }
    }
}

impl Interval {
    /// The full line (−∞, +∞).
    pub fn top() -> Interval {
        Interval {
            lo: None,
            lo_open: false,
            hi: None,
            hi_open: false,
        }
    }

    /// The closed interval `[lo, hi]`.
    pub fn closed(lo: Rat, hi: Rat) -> Interval {
        Interval {
            lo: Some(lo),
            lo_open: false,
            hi: Some(hi),
            hi_open: false,
        }
    }

    /// The single point `{r}`.
    pub fn point(r: Rat) -> Interval {
        Interval::closed(r.clone(), r)
    }

    /// `true` iff the interval contains no real (the canonical bottom).
    pub fn is_empty(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Some(l), Some(h)) => l > h || (l == h && (self.lo_open || self.hi_open)),
            _ => false,
        }
    }

    /// `true` iff both endpoints are finite.
    pub fn is_bounded(&self) -> bool {
        self.lo.is_some() && self.hi.is_some()
    }

    /// `true` iff the interval is the full line.
    pub fn is_top(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// Membership test, openness respected.
    pub fn contains(&self, r: &Rat) -> bool {
        let lo_ok = match &self.lo {
            None => true,
            Some(l) => {
                if self.lo_open {
                    r > l
                } else {
                    r >= l
                }
            }
        };
        let hi_ok = match &self.hi {
            None => true,
            Some(h) => {
                if self.hi_open {
                    r < h
                } else {
                    r <= h
                }
            }
        };
        lo_ok && hi_ok
    }

    /// Intersection. On equal endpoints the *open* flag wins (the tighter
    /// constraint).
    pub fn meet(&self, other: &Interval) -> Interval {
        let (lo, lo_open) = match (&self.lo, &other.lo) {
            (None, None) => (None, false),
            (Some(l), None) => (Some(l.clone()), self.lo_open),
            (None, Some(l)) => (Some(l.clone()), other.lo_open),
            (Some(a), Some(b)) => match a.cmp(b) {
                std::cmp::Ordering::Greater => (Some(a.clone()), self.lo_open),
                std::cmp::Ordering::Less => (Some(b.clone()), other.lo_open),
                std::cmp::Ordering::Equal => (Some(a.clone()), self.lo_open || other.lo_open),
            },
        };
        let (hi, hi_open) = match (&self.hi, &other.hi) {
            (None, None) => (None, false),
            (Some(h), None) => (Some(h.clone()), self.hi_open),
            (None, Some(h)) => (Some(h.clone()), other.hi_open),
            (Some(a), Some(b)) => match a.cmp(b) {
                std::cmp::Ordering::Less => (Some(a.clone()), self.hi_open),
                std::cmp::Ordering::Greater => (Some(b.clone()), other.hi_open),
                std::cmp::Ordering::Equal => (Some(a.clone()), self.hi_open || other.hi_open),
            },
        };
        Interval {
            lo,
            lo_open,
            hi,
            hi_open,
        }
    }

    /// Convex hull. On equal endpoints the *closed* flag wins (the wider
    /// set) — outward rounding.
    pub fn join(&self, other: &Interval) -> Interval {
        let (lo, lo_open) = match (&self.lo, &other.lo) {
            (None, _) | (_, None) => (None, false),
            (Some(a), Some(b)) => match a.cmp(b) {
                std::cmp::Ordering::Less => (Some(a.clone()), self.lo_open),
                std::cmp::Ordering::Greater => (Some(b.clone()), other.lo_open),
                std::cmp::Ordering::Equal => (Some(a.clone()), self.lo_open && other.lo_open),
            },
        };
        let (hi, hi_open) = match (&self.hi, &other.hi) {
            (None, _) | (_, None) => (None, false),
            (Some(a), Some(b)) => match a.cmp(b) {
                std::cmp::Ordering::Greater => (Some(a.clone()), self.hi_open),
                std::cmp::Ordering::Less => (Some(b.clone()), other.hi_open),
                std::cmp::Ordering::Equal => (Some(a.clone()), self.hi_open && other.hi_open),
            },
        };
        Interval {
            lo,
            lo_open,
            hi,
            hi_open,
        }
    }

    /// `true` iff `self ⊆ other`.
    pub fn subset_of(&self, other: &Interval) -> bool {
        if self.is_empty() {
            return true;
        }
        let lo_ok = match (&other.lo, &self.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(ol), Some(sl)) => match sl.cmp(ol) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => !other.lo_open || self.lo_open,
            },
        };
        let hi_ok = match (&other.hi, &self.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(oh), Some(sh)) => match sh.cmp(oh) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => !other.hi_open || self.hi_open,
            },
        };
        lo_ok && hi_ok
    }

    /// Pointwise negation `{-x : x ∈ self}`.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: self.hi.as_ref().map(|h| -h),
            lo_open: self.hi_open,
            hi: self.lo.as_ref().map(|l| -l),
            hi_open: self.lo_open,
        }
    }

    /// Minkowski sum `{x + y}` — exact, openness propagated (a sum hits an
    /// endpoint only when both operands hit theirs).
    pub fn add(&self, other: &Interval) -> Interval {
        let lo = match (&self.lo, &other.lo) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        let hi = match (&self.hi, &other.hi) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        Interval {
            lo,
            lo_open: self.lo_open || other.lo_open,
            hi,
            hi_open: self.hi_open || other.hi_open,
        }
    }

    /// Scaling `{c·x}` — exact, openness preserved (flipped for `c < 0`,
    /// collapsed to the point `0` for `c = 0`).
    pub fn scale(&self, c: &Rat) -> Interval {
        match c.signum() {
            0 => Interval::point(Rat::zero()),
            s if s > 0 => Interval {
                lo: self.lo.as_ref().map(|l| l * c),
                lo_open: self.lo_open,
                hi: self.hi.as_ref().map(|h| h * c),
                hi_open: self.hi_open,
            },
            _ => Interval {
                lo: self.hi.as_ref().map(|h| h * c),
                lo_open: self.hi_open,
                hi: self.lo.as_ref().map(|l| l * c),
                hi_open: self.lo_open,
            },
        }
    }

    /// Interval product. Endpoint openness is discarded (closed hull) —
    /// the outward rounding that keeps nonlinear propagation sound without
    /// tracking which endpoint pair is attained.
    pub fn mul(&self, other: &Interval) -> Interval {
        let cands = [
            ext_mul(&self.lo, LO, &other.lo, LO),
            ext_mul(&self.lo, LO, &other.hi, HI),
            ext_mul(&self.hi, HI, &other.lo, LO),
            ext_mul(&self.hi, HI, &other.hi, HI),
        ];
        ext_hull(&cands)
    }

    /// Interval power with the even-exponent refinement `x²ᵏ ⊆ [0, ∞)`.
    /// Odd powers are monotone and keep openness; even powers go through
    /// the closed hull like [`Interval::mul`].
    pub fn pow(&self, exp: u32) -> Interval {
        if exp == 0 {
            return Interval::point(Rat::one());
        }
        if exp == 1 {
            return self.clone();
        }
        if exp % 2 == 1 {
            // Monotone: endpoints map in place, openness preserved.
            return Interval {
                lo: self.lo.as_ref().map(|l| l.pow(exp as i32)),
                lo_open: self.lo_open,
                hi: self.hi.as_ref().map(|h| h.pow(exp as i32)),
                hi_open: self.hi_open,
            };
        }
        let zero = Rat::zero();
        let nonneg = matches!(&self.lo, Some(l) if *l >= zero);
        let nonpos = matches!(&self.hi, Some(h) if *h <= zero);
        if nonneg {
            Interval {
                lo: self.lo.as_ref().map(|l| l.pow(exp as i32)),
                lo_open: false,
                hi: self.hi.as_ref().map(|h| h.pow(exp as i32)),
                hi_open: false,
            }
        } else if nonpos {
            Interval {
                lo: self.hi.as_ref().map(|h| h.pow(exp as i32)),
                lo_open: false,
                hi: self.lo.as_ref().map(|l| l.pow(exp as i32)),
                hi_open: false,
            }
        } else {
            // Straddles zero: minimum 0, maximum at the larger |endpoint|.
            let hi = match (&self.lo, &self.hi) {
                (Some(l), Some(h)) => {
                    let (la, ha) = (l.abs(), h.abs());
                    Some(if la > ha { la } else { ha }.pow(exp as i32))
                }
                _ => None,
            };
            Interval {
                lo: Some(zero),
                lo_open: false,
                hi,
                hi_open: false,
            }
        }
    }

    /// A conservative `f64` enclosure: the returned pair `(lo, hi)`
    /// satisfies `lo ≤ x ≤ hi` for every `x` in the interval, with the
    /// endpoints verified against the exact rationals and stepped one ulp
    /// outward when the nearest-rounding conversion landed inside.
    pub fn outer_f64(&self) -> (f64, f64) {
        let lo = match &self.lo {
            None => f64::NEG_INFINITY,
            Some(l) => f64_at_most(l),
        };
        let hi = match &self.hi {
            None => f64::INFINITY,
            Some(h) => f64_at_least(h),
        };
        (lo, hi)
    }
}

// Extended-value endpoint arithmetic for products: `None` means the
// infinity of the given side, and `0 · ∞ = 0` — exact for interval hulls
// of connected sets.
const LO: i32 = -1;
const HI: i32 = 1;

/// One endpoint product: `(value, side)` where `None` is `side`-infinity.
/// Returns `(product, ±∞ marker)` in the same encoding.
fn ext_mul(a: &Option<Rat>, a_side: i32, b: &Option<Rat>, b_side: i32) -> (Option<Rat>, i32) {
    match (a, b) {
        (Some(x), Some(y)) => (Some(x * y), 0),
        (Some(x), None) => inf_times(x.signum(), b_side),
        (None, Some(y)) => inf_times(y.signum(), a_side),
        (None, None) => (None, a_side * b_side),
    }
}

/// `sign · (side-infinity)`: zero absorbs, otherwise the sign of the
/// infinity flips with the finite factor's sign.
fn inf_times(sign: i32, side: i32) -> (Option<Rat>, i32) {
    if sign == 0 {
        (Some(Rat::zero()), 0)
    } else {
        (None, sign * side)
    }
}

/// The closed hull of extended-value candidates.
fn ext_hull(cands: &[(Option<Rat>, i32)]) -> Interval {
    let mut lo: Option<Rat> = None;
    let mut lo_inf = false;
    let mut hi: Option<Rat> = None;
    let mut hi_inf = false;
    for (v, side) in cands {
        match (v, side) {
            (None, s) if *s < 0 => lo_inf = true,
            (None, _) => hi_inf = true,
            (Some(r), _) => {
                if lo.as_ref().is_none_or(|l| r < l) {
                    lo = Some(r.clone());
                }
                if hi.as_ref().is_none_or(|h| r > h) {
                    hi = Some(r.clone());
                }
            }
        }
    }
    Interval {
        lo: if lo_inf { None } else { lo },
        lo_open: false,
        hi: if hi_inf { None } else { hi },
        hi_open: false,
    }
}

/// The largest `f64` guaranteed ≤ `r` (nearest conversion, verified
/// exactly, stepped down one ulp at a time if it rounded up).
pub fn f64_at_most(r: &Rat) -> f64 {
    let mut v = r.to_f64();
    if v.is_nan() {
        return f64::NEG_INFINITY;
    }
    if v.is_infinite() {
        // +∞ means r overflowed upward; MAX is a valid lower witness.
        return if v > 0.0 { f64::MAX } else { f64::NEG_INFINITY };
    }
    for _ in 0..4 {
        match Rat::from_f64(v) {
            Some(x) if x <= *r => return v,
            _ => v = step_down(v),
        }
    }
    f64::NEG_INFINITY
}

/// The smallest `f64` guaranteed ≥ `r`.
pub fn f64_at_least(r: &Rat) -> f64 {
    -f64_at_most(&-r)
}

/// The next representable `f64` strictly below `v` (total order with
/// −0 = +0 collapsed).
fn step_down(v: f64) -> f64 {
    if v.is_nan() || v == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    if v == 0.0 {
        return -f64::from_bits(1); // largest negative subnormal
    }
    let bits = v.to_bits();
    f64::from_bits(if v > 0.0 { bits - 1 } else { bits + 1 })
}

/// A per-variable interval environment: an over-approximating box of a
/// formula's satisfying assignments. Absent variables mean the full line.
pub type Env = BTreeMap<Var, Interval>;

/// `true` iff some variable's interval is empty (the environment denotes
/// the empty set of assignments).
fn env_infeasible(env: &Env) -> bool {
    env.values().any(Interval::is_empty)
}

/// The interval of `v` in `env` (⊤ when absent).
pub fn env_interval(env: &Env, v: Var) -> Interval {
    env.get(&v).cloned().unwrap_or_else(Interval::top)
}

/// Meets `iv` into `env[v]`.
fn env_meet(env: &mut Env, v: Var, iv: Interval) {
    let cur = env_interval(env, v);
    env.insert(v, cur.meet(&iv));
}

/// What the analysis knows about one arena node.
#[derive(Clone, Debug)]
pub struct Facts {
    /// The feasibility verdict.
    pub verdict: Verdict,
    /// Over-approximating box of the node's satisfying assignments over
    /// its free variables.
    pub env: Env,
}

impl Facts {
    fn unknown() -> Facts {
        Facts {
            verdict: Verdict::Unknown,
            env: Env::new(),
        }
    }
}

/// Per-arena memo table: facts are context-free (they depend only on the
/// node's own subtree), so one entry per [`FormulaId`] serves every
/// occurrence of a shared subformula.
#[derive(Debug, Default)]
pub struct AbsintMemo {
    facts: HashMap<FormulaId, Facts>,
}

impl AbsintMemo {
    /// An empty memo.
    pub fn new() -> AbsintMemo {
        AbsintMemo::default()
    }

    /// The cached facts for `id`, if the node was analyzed.
    pub fn facts(&self, id: FormulaId) -> Option<&Facts> {
        self.facts.get(&id)
    }

    /// Number of analyzed nodes.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// `true` iff no node has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

/// Analyzes one interned node (memoized). Returns a clone of the cached
/// [`Facts`]; use [`AbsintMemo::facts`] to borrow instead.
pub fn analyze_id(arena: &Arena, id: FormulaId, memo: &mut AbsintMemo) -> Facts {
    if let Some(f) = memo.facts.get(&id) {
        return f.clone();
    }
    let facts = compute_facts(arena, id, memo);
    memo.facts.insert(id, facts.clone());
    facts
}

/// The range of the polynomial `t` over the box `env` (⊤ for absent
/// variables): interval sum of per-monomial products.
pub fn term_range(arena: &Arena, t: TermId, env: &Env) -> Interval {
    let mut total = Interval::point(Rat::zero());
    for (mono, coeff) in arena.term(t).terms() {
        let mut m = Interval::point(Rat::one());
        for &(v, e) in mono {
            m = m.mul(&env_interval(env, v).pow(e));
        }
        total = total.add(&m.scale(coeff));
    }
    total
}

/// The sign set of `rel` as an interval (`p ⋈ 0` ⇔ `p ∈ sat_set(rel)`);
/// `Neq` is not an interval and returns `None`.
fn rel_interval(rel: Rel) -> Option<Interval> {
    let z = Rat::zero;
    Some(match rel {
        Rel::Eq => Interval::point(z()),
        Rel::Lt => Interval {
            lo: None,
            lo_open: false,
            hi: Some(z()),
            hi_open: true,
        },
        Rel::Le => Interval {
            lo: None,
            lo_open: false,
            hi: Some(z()),
            hi_open: false,
        },
        Rel::Gt => Interval {
            lo: Some(z()),
            lo_open: true,
            hi: None,
            hi_open: false,
        },
        Rel::Ge => Interval {
            lo: Some(z()),
            lo_open: false,
            hi: None,
            hi_open: false,
        },
        Rel::Neq => return None,
    })
}

/// The verdict of the atom `p ⋈ 0` given `range ⊇ values(p)`: inclusion
/// in the sign set proves validity, empty intersection proves
/// unsatisfiability, anything else is unknown.
fn atom_verdict(range: &Interval, rel: Rel) -> Verdict {
    if range.is_empty() {
        // An empty range means the *environment* is empty; the caller
        // handles that — the atom itself proves nothing here.
        return Verdict::Unknown;
    }
    match rel_interval(rel) {
        Some(sat) => {
            if range.subset_of(&sat) {
                Verdict::Valid
            } else if range.meet(&sat).is_empty() {
                Verdict::Unsat
            } else {
                Verdict::Unknown
            }
        }
        None => {
            // p ≠ 0: valid when 0 is outside the range, unsat only when
            // the range is exactly {0}.
            let zero = Rat::zero();
            if !range.contains(&zero) {
                Verdict::Valid
            } else if range == &Interval::point(zero) {
                Verdict::Unsat
            } else {
                Verdict::Unknown
            }
        }
    }
}

/// Derives per-variable bounds from an *affine* atom `Σ aᵢxᵢ + c ⋈ 0`
/// under `env`, meeting them into `env`. For each variable, the rest of
/// the polynomial is bracketed by its interval under `env` and the sign
/// set is solved for `aᵢxᵢ`: `xᵢ ∈ (sat ⊕ (−rest)) / aᵢ` — exact interval
/// arithmetic with openness (a strict relation or an open rest endpoint
/// gives an open bound).
fn refine_affine_atom(arena: &Arena, t: TermId, rel: Rel, env: &mut Env) {
    let Some(sat) = rel_interval(rel) else {
        return;
    };
    let p = arena.term(t);
    if p.total_degree().unwrap_or(0) > 1 {
        return;
    }
    // Collect (var, coeff) pairs and the constant.
    let mut linear: Vec<(Var, Rat)> = Vec::new();
    let mut constant = Rat::zero();
    for (mono, c) in p.terms() {
        match mono {
            [] => constant = c.clone(),
            [(v, 1)] => linear.push((*v, c.clone())),
            _ => return, // non-affine monomial (defensive; degree said ≤ 1)
        }
    }
    for i in 0..linear.len() {
        let (v, a) = &linear[i];
        // rest = p − a·v, bracketed under the current env.
        let mut rest = Interval::point(constant.clone());
        for (j, (w, b)) in linear.iter().enumerate() {
            if j != i {
                rest = rest.add(&env_interval(env, *w).scale(b));
            }
        }
        // a·v ∈ sat ⊕ (−rest)  ⇒  v ∈ (sat ⊕ (−rest)) · (1/a).
        let av = sat.add(&rest.neg());
        env_meet(env, *v, av.scale(&a.recip()));
    }
}

/// Collects the conjunct atoms reachable from `id` through nested `And`
/// nodes and atom negations, as `(term, rel)` pairs.
fn conjunct_atoms(arena: &Arena, id: FormulaId, out: &mut Vec<(TermId, Rel)>) {
    match arena.node(id) {
        Node::Atom { poly, rel } => out.push((*poly, *rel)),
        Node::Not(g) => {
            if let Node::Atom { poly, rel } = arena.node(*g) {
                out.push((*poly, rel.negate()));
            }
        }
        Node::And(fs) => {
            for &g in fs {
                conjunct_atoms(arena, g, out);
            }
        }
        _ => {}
    }
}

fn compute_facts(arena: &Arena, id: FormulaId, memo: &mut AbsintMemo) -> Facts {
    match arena.node(id).clone() {
        Node::True => Facts {
            verdict: Verdict::Valid,
            env: Env::new(),
        },
        Node::False => Facts {
            verdict: Verdict::Unsat,
            env: Env::new(),
        },
        Node::Atom { poly, rel } => atom_facts(arena, poly, rel),
        // Schema relations are opaque to the numeric domain (callers that
        // want precision expand them against the database first).
        Node::Rel { .. } => Facts::unknown(),
        Node::Not(g) => {
            // Negated atoms get the full atom treatment via the
            // complementary relation; anything else only flips verdicts.
            if let Node::Atom { poly, rel } = arena.node(g) {
                return atom_facts(arena, *poly, rel.negate());
            }
            let inner = analyze_id(arena, g, memo);
            Facts {
                verdict: match inner.verdict {
                    Verdict::Unsat => Verdict::Valid,
                    Verdict::Valid => Verdict::Unsat,
                    Verdict::Unknown => Verdict::Unknown,
                },
                env: Env::new(),
            }
        }
        Node::And(fs) => {
            let mut env = Env::new();
            let mut all_valid = true;
            for &g in &fs {
                let child = analyze_id(arena, g, memo);
                if child.verdict == Verdict::Unsat {
                    return Facts {
                        verdict: Verdict::Unsat,
                        env,
                    };
                }
                all_valid &= child.verdict == Verdict::Valid;
                for (v, iv) in &child.env {
                    env_meet(&mut env, *v, iv.clone());
                }
            }
            // Bounded refinement: re-derive affine bounds under the met
            // environment and re-check every conjunct atom against it.
            let mut atoms = Vec::new();
            for &g in &fs {
                conjunct_atoms(arena, g, &mut atoms);
            }
            for _ in 0..REFINE_ROUNDS {
                let before = env.clone();
                for &(t, rel) in &atoms {
                    refine_affine_atom(arena, t, rel, &mut env);
                }
                if env_infeasible(&env) {
                    return Facts {
                        verdict: Verdict::Unsat,
                        env,
                    };
                }
                if env == before {
                    break;
                }
            }
            for &(t, rel) in &atoms {
                if atom_verdict(&term_range(arena, t, &env), rel) == Verdict::Unsat {
                    return Facts {
                        verdict: Verdict::Unsat,
                        env,
                    };
                }
            }
            Facts {
                verdict: if env_infeasible(&env) {
                    Verdict::Unsat
                } else if all_valid {
                    Verdict::Valid
                } else {
                    Verdict::Unknown
                },
                env,
            }
        }
        Node::Or(fs) => {
            if fs.is_empty() {
                return Facts {
                    verdict: Verdict::Unsat,
                    env: Env::new(),
                };
            }
            let mut env: Option<Env> = None;
            let mut any_valid = false;
            let mut all_unsat = true;
            for &g in &fs {
                let child = analyze_id(arena, g, memo);
                match child.verdict {
                    Verdict::Unsat => continue,
                    v => {
                        all_unsat = false;
                        any_valid |= v == Verdict::Valid;
                    }
                }
                env = Some(match env {
                    // Hull only over variables bounded in *every* feasible
                    // branch; a variable missing from one branch is
                    // unconstrained there, so it must stay unconstrained.
                    None => child.env,
                    Some(acc) => acc
                        .into_iter()
                        .filter_map(|(v, iv)| child.env.get(&v).map(|other| (v, iv.join(other))))
                        .collect(),
                });
            }
            Facts {
                verdict: if all_unsat {
                    Verdict::Unsat
                } else if any_valid {
                    Verdict::Valid
                } else {
                    Verdict::Unknown
                },
                env: env.unwrap_or_default(),
            }
        }
        Node::Exists(vs, g) | Node::Forall(vs, g) => {
            // Over the (nonempty) reals both quantifiers preserve
            // unsatisfiability and validity of the body; the environment
            // projects the bound variables away.
            let inner = analyze_id(arena, g, memo);
            let mut env = inner.env;
            for v in &vs {
                env.remove(v);
            }
            Facts {
                verdict: inner.verdict,
                env,
            }
        }
        Node::ExistsAdom(v, g) => {
            // An empty active domain makes ∃adom false, so only
            // unsatisfiability of the body lifts.
            let inner = analyze_id(arena, g, memo);
            let mut env = inner.env;
            env.remove(&v);
            Facts {
                verdict: match inner.verdict {
                    Verdict::Unsat => Verdict::Unsat,
                    _ => Verdict::Unknown,
                },
                env,
            }
        }
        Node::ForallAdom(_, g) => {
            // An empty active domain makes ∀adom true, so only validity
            // of the body lifts — and the formula constrains nothing when
            // the domain is empty, so the environment is ⊤.
            let inner = analyze_id(arena, g, memo);
            Facts {
                verdict: match inner.verdict {
                    Verdict::Valid => Verdict::Valid,
                    _ => Verdict::Unknown,
                },
                env: Env::new(),
            }
        }
    }
}

/// Facts for a sign-condition atom `p ⋈ 0` in an empty context.
fn atom_facts(arena: &Arena, poly: TermId, rel: Rel) -> Facts {
    let mut env = Env::new();
    refine_affine_atom(arena, poly, rel, &mut env);
    let range = term_range(arena, poly, &Env::new());
    let verdict = if env_infeasible(&env) {
        Verdict::Unsat
    } else {
        atom_verdict(&range, rel)
    };
    Facts { verdict, env }
}

/// Sound pruning through the dag: statically-unsat nodes collapse to ⊥,
/// statically-valid nodes to ⊤ (context-free facts make both replacements
/// equivalence-preserving at any position), then the memoized simplifier
/// ([`cqa_qe::simplify_id`]) folds the released structure away.
pub fn prune_id(
    arena: &mut Arena,
    id: FormulaId,
    memo: &mut AbsintMemo,
    simp: &mut SimplifyMemo,
) -> FormulaId {
    let pruned = prune_rec(arena, id, memo);
    cqa_qe::simplify_id(arena, pruned, simp)
}

fn prune_rec(arena: &mut Arena, id: FormulaId, memo: &mut AbsintMemo) -> FormulaId {
    let verdict = analyze_id(arena, id, memo).verdict;
    match verdict {
        Verdict::Unsat => return arena.intern_node(Node::False),
        Verdict::Valid => return arena.intern_node(Node::True),
        Verdict::Unknown => {}
    }
    match arena.node(id).clone() {
        Node::Not(g) => {
            let p = prune_rec(arena, g, memo);
            if p == g {
                id
            } else {
                arena.intern_node(Node::Not(p))
            }
        }
        Node::And(fs) => {
            let ps: Vec<FormulaId> = fs.iter().map(|&g| prune_rec(arena, g, memo)).collect();
            if ps == fs {
                id
            } else {
                arena.intern_node(Node::And(ps))
            }
        }
        Node::Or(fs) => {
            let ps: Vec<FormulaId> = fs.iter().map(|&g| prune_rec(arena, g, memo)).collect();
            if ps == fs {
                id
            } else {
                arena.intern_node(Node::Or(ps))
            }
        }
        Node::Exists(vs, g) => {
            let p = prune_rec(arena, g, memo);
            if p == g {
                id
            } else {
                arena.intern_node(Node::Exists(vs, p))
            }
        }
        Node::Forall(vs, g) => {
            let p = prune_rec(arena, g, memo);
            if p == g {
                id
            } else {
                arena.intern_node(Node::Forall(vs, p))
            }
        }
        Node::ExistsAdom(v, g) => {
            let p = prune_rec(arena, g, memo);
            if p == g {
                id
            } else {
                arena.intern_node(Node::ExistsAdom(v, p))
            }
        }
        Node::ForallAdom(v, g) => {
            let p = prune_rec(arena, g, memo);
            if p == g {
                id
            } else {
                arena.intern_node(Node::ForallAdom(v, p))
            }
        }
        _ => id,
    }
}

/// The unit-box sampling box certified by `env` for the given output
/// columns: per-dimension conservative `f64` bounds clamped to `[0, 1]`.
/// Returns `None` when the box is the whole unit box (no lane would ever
/// be skipped) — callers then keep the unfiltered path.
pub fn unit_box(env: &Env, vars: &[Var]) -> Option<Vec<(f64, f64)>> {
    let mut any = false;
    let mut out = Vec::with_capacity(vars.len());
    for v in vars {
        let (lo, hi) = env_interval(env, *v).outer_f64();
        let (lo, hi) = (lo.max(0.0), hi.min(1.0));
        any |= lo > 0.0 || hi < 1.0;
        out.push((lo, hi));
    }
    (any && !vars.is_empty()).then_some(out)
}

/// The volume of the certified box clamped to the unit box (`1.0` when
/// `env` certifies nothing) — a planner-grade cost input: it bounds the
/// Monte Carlo acceptance region.
pub fn box_volume(env: &Env, vars: &[Var]) -> f64 {
    let mut vol = 1.0;
    for v in vars {
        let (lo, hi) = env_interval(env, *v).outer_f64();
        vol *= (hi.min(1.0) - lo.max(0.0)).max(0.0);
    }
    vol
}

/// The output columns for which `env` carries no boundedness certificate
/// (an endpoint is infinite).
pub fn unbounded_vars(env: &Env, vars: &[Var]) -> Vec<Var> {
    vars.iter()
        .filter(|v| !env_interval(env, **v).is_bounded())
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::parse_formula_with;
    use cqa_logic::VarMap;

    fn facts_of(src: &str) -> (Facts, VarMap) {
        let mut vars = VarMap::new();
        let f = parse_formula_with(src, &mut vars).unwrap();
        let mut arena = Arena::new();
        let id = arena.intern(&f);
        let mut memo = AbsintMemo::new();
        (analyze_id(&arena, id, &mut memo), vars)
    }

    fn verdict_of(src: &str) -> Verdict {
        facts_of(src).0.verdict
    }

    #[test]
    fn atom_verdicts() {
        assert_eq!(verdict_of("x*x >= 0"), Verdict::Valid);
        assert_eq!(verdict_of("x*x < 0"), Verdict::Unsat);
        assert_eq!(verdict_of("x*x + 1 > 0"), Verdict::Valid);
        assert_eq!(verdict_of("x*x + 1 = 0"), Verdict::Unsat);
        assert_eq!(verdict_of("x > 0"), Verdict::Unknown);
        assert_eq!(verdict_of("!(x*x >= 0)"), Verdict::Unsat);
    }

    #[test]
    fn conjunction_contradiction_is_unsat() {
        assert_eq!(verdict_of("x > 2 & x < 1"), Verdict::Unsat);
        assert_eq!(verdict_of("x < 1 & x > 1"), Verdict::Unsat);
        assert_eq!(verdict_of("x < 1 & x >= 1"), Verdict::Unsat);
        // Closed endpoints touching: the point x = 1 survives.
        assert_eq!(verdict_of("x <= 1 & x >= 1"), Verdict::Unknown);
    }

    #[test]
    fn refinement_chains_through_variables() {
        // x ≤ y ∧ y ≤ z ∧ z ≤ 1 ∧ x ≥ 2 is empty, but only after bounds
        // propagate across the chain (REFINE_ROUNDS ≥ 3).
        assert_eq!(
            verdict_of("x <= y & y <= z & z <= 1 & x >= 2"),
            Verdict::Unsat
        );
    }

    #[test]
    fn disjunction_joins_and_lifts() {
        assert_eq!(verdict_of("x*x < 0 | x*x + 1 = 0"), Verdict::Unsat);
        assert_eq!(verdict_of("x > 0 | x*x >= 0"), Verdict::Valid);
        let (facts, vars) = facts_of("(0 <= x & x <= 1) | (2 <= x & x <= 3)");
        let x = vars.get("x").unwrap();
        assert_eq!(
            env_interval(&facts.env, x),
            Interval::closed(rat(0, 1), rat(3, 1))
        );
    }

    #[test]
    fn or_branch_missing_a_variable_unbounds_it() {
        // The second branch says nothing about x, so the hull must not
        // keep the first branch's x-bounds.
        let (facts, vars) = facts_of("(0 <= x & x <= 1) | y > 0");
        let x = vars.get("x").unwrap();
        assert!(env_interval(&facts.env, x).is_top());
    }

    #[test]
    fn quantifiers_project_and_preserve() {
        assert_eq!(verdict_of("exists x. x*x < 0"), Verdict::Unsat);
        assert_eq!(verdict_of("forall x. x*x >= 0"), Verdict::Valid);
        assert_eq!(verdict_of("exists x. x > 0"), Verdict::Unknown);
        let (facts, vars) = facts_of("exists y. (0 <= y & y <= 1) & x = y + 1");
        let x = vars.get("x").unwrap();
        let y = vars.get("y").unwrap();
        assert_eq!(
            env_interval(&facts.env, x),
            Interval::closed(rat(1, 1), rat(2, 1))
        );
        assert!(!facts.env.contains_key(&y), "bound variable projected");
    }

    #[test]
    fn strict_inequality_bounds_stay_open() {
        let (facts, vars) = facts_of("2*x > 1 & x < 3");
        let x = vars.get("x").unwrap();
        let iv = env_interval(&facts.env, x);
        assert_eq!(iv.lo, Some(rat(1, 2)));
        assert!(iv.lo_open);
        assert_eq!(iv.hi, Some(rat(3, 1)));
        assert!(iv.hi_open);
        // Non-strict: closed endpoint.
        let (facts, vars) = facts_of("2*x >= 1");
        let x = vars.get("x").unwrap();
        let iv = env_interval(&facts.env, x);
        assert_eq!(iv.lo, Some(rat(1, 2)));
        assert!(!iv.lo_open);
    }

    #[test]
    fn interval_mul_handles_infinities() {
        let pos = Interval {
            lo: Some(rat(2, 1)),
            lo_open: false,
            hi: None,
            hi_open: false,
        };
        let m = pos.mul(&Interval::closed(rat(-1, 1), rat(1, 1)));
        assert!(m.lo.is_none() && m.hi.is_none(), "{m}");
        let z = Interval::point(Rat::zero()).mul(&Interval::top());
        assert_eq!(z, Interval::point(Rat::zero()));
        let nn = pos.mul(&pos);
        assert_eq!(nn.lo, Some(rat(4, 1)));
        assert!(nn.hi.is_none());
    }

    #[test]
    fn even_powers_are_nonnegative() {
        let iv = Interval::closed(rat(-2, 1), rat(1, 1)).pow(2);
        assert_eq!(iv, Interval::closed(rat(0, 1), rat(4, 1)));
        let odd = Interval::closed(rat(-2, 1), rat(1, 1)).pow(3);
        assert_eq!(odd, Interval::closed(rat(-8, 1), rat(1, 1)));
        assert_eq!(Interval::top().pow(2).lo, Some(Rat::zero()));
    }

    #[test]
    fn outer_f64_is_conservative() {
        // 1/3 is not representable: the enclosure must straddle it.
        let iv = Interval::closed(rat(1, 3), rat(2, 3));
        let (lo, hi) = iv.outer_f64();
        assert!(Rat::from_f64(lo).unwrap() <= rat(1, 3));
        assert!(Rat::from_f64(hi).unwrap() >= rat(2, 3));
        assert!(hi - lo < 0.34, "enclosure far too wide");
    }

    #[test]
    fn prune_replaces_decided_subformulas() {
        let mut vars = VarMap::new();
        let f = parse_formula_with("(x*x >= 0 & x > 0) | (x*x < 0 & x < 5)", &mut vars).unwrap();
        let mut arena = Arena::new();
        let id = arena.intern(&f);
        let mut memo = AbsintMemo::new();
        let mut simp = SimplifyMemo::default();
        let pruned = prune_id(&mut arena, id, &mut memo, &mut simp);
        // The valid conjunct and the unsat branch both disappear.
        let g = arena.extern_formula(pruned);
        let mut w = VarMap::new();
        assert_eq!(g, parse_formula_with("x > 0", &mut w).unwrap());
    }

    #[test]
    fn unit_box_and_volume() {
        let (facts, vars) = facts_of("x >= 1/4 & x <= 3/4 & y >= 0");
        let x = vars.get("x").unwrap();
        let y = vars.get("y").unwrap();
        let bx = unit_box(&facts.env, &[x, y]).expect("x is usefully bounded");
        assert!(bx[0].0 <= 0.25 && bx[0].1 >= 0.75);
        assert_eq!(bx[1], (0.0, 1.0));
        let vol = box_volume(&facts.env, &[x, y]);
        assert!((vol - 0.5).abs() < 1e-9, "vol = {vol}");
        assert_eq!(unbounded_vars(&facts.env, &[x, y]), vec![y]);
        // A fully unconstrained query certifies nothing.
        let (facts, vars) = facts_of("x*x + y*y <= 1");
        let x = vars.get("x").unwrap();
        assert!(unit_box(&facts.env, &[x]).is_none());
    }
}
