//! Pass 3 — the Σ-term range-restriction and determinism discipline.
//!
//! The paper's §5 summation term `Σ_{ρ(w⃗)} γ` is only well-formed when
//!
//! * the `END` body `φ₂` has the bound variable `y` as its only free
//!   variable,
//! * the filter `φ₁` speaks only about the tuple variables `w⃗`, and
//! * the summand `γ` speaks only about `w⃗` and its output variable `x`.
//!
//! Violations are CQA006 errors pointing at the atom that leaks the
//! variable. On top of the binding discipline, the pass runs
//! [`cqa_core::is_syntactically_deterministic`] on γ: summands in the
//! paper's functional-graph shape `x = t(w⃗)` are *certified* — evaluation
//! skips the QE-based semantic determinism check — while anything else gets
//! a CQA007 warning announcing the fallback.

use crate::diag::{Code, Diagnostic};
use crate::program::SumStmt;
use crate::scope;
use cqa_logic::{Span, SpannedFormula, SpannedNode, VarMap};
use cqa_poly::Var;

/// The outcome of the determinism analysis of a Σ-term's summand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GammaStatus {
    /// γ is syntactically certified deterministic; evaluation skips the
    /// semantic QE check.
    Certified,
    /// γ could not be certified; evaluation falls back to the semantic
    /// check (which may still accept it — or reject it at runtime).
    Fallback,
}

/// Checks one Σ-term, appending findings to `diags`, and reports whether
/// its summand is certified.
pub fn check_sum(stmt: &SumStmt, vars: &VarMap, diags: &mut Vec<Diagnostic>) -> GammaStatus {
    let tuple: Vec<Var> = stmt.tuple_vars.iter().map(|b| b.var).collect();

    // Duplicate tuple variables shadow each other.
    for (i, b) in stmt.tuple_vars.iter().enumerate() {
        if stmt.tuple_vars[..i].iter().any(|a| a.var == b.var) {
            diags.push(Diagnostic::new(
                Code::ShadowedBinder,
                b.span,
                format!("duplicate tuple variable `{}`", vars.name(b.var)),
            ));
        }
    }
    // The output variable colliding with an input makes γ(x, w⃗)
    // ill-formed as a function graph.
    if tuple.contains(&stmt.out_var.var) {
        diags.push(Diagnostic::new(
            Code::SigmaRangeUnbound,
            stmt.out_var.span,
            format!(
                "summand output `{}` collides with a tuple variable",
                vars.name(stmt.out_var.var)
            ),
        ));
    }

    // Binding discipline of the three parts. Scope analysis does the
    // walking; unbound findings are re-coded as the Σ-specific CQA006.
    check_part(&stmt.filter, &tuple, "the filter φ₁", vars, diags);
    check_part(
        &stmt.end_formula,
        &[stmt.end_var.var],
        "the END body φ₂",
        vars,
        diags,
    );
    let mut gamma_scope = tuple.clone();
    gamma_scope.push(stmt.out_var.var);
    check_part(&stmt.gamma, &gamma_scope, "the summand γ", vars, diags);

    // Determinism certification.
    let gamma = stmt.gamma.to_formula();
    if cqa_core::is_syntactically_deterministic(&gamma, stmt.out_var.var, &tuple) {
        GammaStatus::Certified
    } else {
        let mut d = Diagnostic::new(
            Code::GammaNotCertified,
            stmt.gamma.span,
            format!(
                "summand `{}` is not syntactically deterministic",
                vars.name(stmt.out_var.var)
            ),
        )
        .with_note(
            "evaluation falls back to the QE-based semantic determinism check \
             (∀w⃗∀x∀x′. γ(x,w⃗) ∧ γ(x′,w⃗) → x = x′)",
        );
        if !gamma.is_relation_free() {
            d = d.with_note(
                "γ mentions database relations, which the semantic check \
                 conservatively rejects — evaluation will fail with \
                 NotDeterministic",
            );
        }
        diags.push(d);
        GammaStatus::Fallback
    }
}

/// Scope-checks one Σ-term part with `allowed` in scope, re-coding unbound
/// variables as CQA006 with the part named in the message.
fn check_part(
    f: &SpannedFormula,
    allowed: &[Var],
    part: &str,
    vars: &VarMap,
    diags: &mut Vec<Diagnostic>,
) {
    let mut tmp = Vec::new();
    scope::check_scopes(f, allowed, vars, &mut tmp);
    for mut d in tmp {
        if d.code == Code::UnboundVariable {
            d.code = Code::SigmaRangeUnbound;
            d.message = format!("{} in {part}", d.message);
            d.notes = vec![format!(
                "{part} may only use {}",
                if allowed.is_empty() {
                    "no free variables".to_string()
                } else {
                    allowed
                        .iter()
                        .map(|v| format!("`{}`", vars.name(*v)))
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            )];
        }
        diags.push(d);
    }
}

/// The span of the first atom of `f` mentioning `v`, for anchoring
/// variable-leak messages; falls back to the formula's own span.
pub fn span_of_var(f: &SpannedFormula, v: Var) -> Span {
    let mut found = None;
    f.visit(&mut |g| {
        if found.is_some() {
            return;
        }
        let mentions = match &g.node {
            SpannedNode::Atom(a) => a.poly.vars().contains(&v),
            SpannedNode::Rel { args, .. } => args.iter().any(|t| t.vars().contains(&v)),
            _ => false,
        };
        if mentions {
            found = Some(g.span);
        }
    });
    found.unwrap_or(f.span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{parse_program, Statement};

    fn sum_of(src: &str) -> (SumStmt, VarMap) {
        let (prog, diags) = parse_program(src);
        assert!(diags.is_empty(), "{diags:?}");
        let Some(Statement::Sum(s)) = prog.statements.into_iter().next() else {
            panic!("expected a sum statement")
        };
        (s, prog.vars)
    }

    #[test]
    fn certified_sum_is_clean() {
        let (s, vars) = sum_of("sum T(w) := w > 0 | END[y. 0 <= y & y <= 1] ; x . x = 2*w\n");
        let mut d = Vec::new();
        assert_eq!(check_sum(&s, &vars, &mut d), GammaStatus::Certified);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unbound_range_variable_is_cqa006() {
        // The filter mentions `z`, which is not a tuple variable.
        let src = "sum T(w) := w > z | END[y. 0 <= y & y <= 1] ; x . x = w\n";
        let (s, vars) = sum_of(src);
        let mut d = Vec::new();
        check_sum(&s, &vars, &mut d);
        let leak = d
            .iter()
            .find(|x| x.code == Code::SigmaRangeUnbound)
            .expect("a leaking filter variable must lint as CQA006, never panic");
        assert!(leak.message.contains("`z`"));
        assert!(leak.message.contains("filter"));
        assert_eq!(&src[leak.span.start..leak.span.end], "w > z");
    }

    #[test]
    fn end_body_may_only_use_its_binder() {
        let src = "sum T(w) := w > 0 | END[y. y <= w] ; x . x = w\n";
        let (s, vars) = sum_of(src);
        let mut d = Vec::new();
        check_sum(&s, &vars, &mut d);
        let leak = d
            .iter()
            .find(|x| x.code == Code::SigmaRangeUnbound)
            .expect("a leaking END-body variable must lint as CQA006, never panic");
        assert!(leak.message.contains("`w`"));
        assert!(leak.message.contains("END body"));
    }

    #[test]
    fn nondeterministic_gamma_is_cqa007() {
        let src = "sum T(w) := w > 0 | END[y. 0 <= y & y <= 1] ; x . x*x = w\n";
        let (s, vars) = sum_of(src);
        let mut d = Vec::new();
        assert_eq!(check_sum(&s, &vars, &mut d), GammaStatus::Fallback);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::GammaNotCertified);
        assert_eq!(&src[d[0].span.start..d[0].span.end], "x*x = w");
    }

    #[test]
    fn relational_pinned_gamma_is_certified() {
        let src = "sum T(w) := true | END[y. 0 <= y & y <= 1] ; x . x = w & S(w)\n";
        let (s, vars) = sum_of(src);
        let mut d = Vec::new();
        assert_eq!(check_sum(&s, &vars, &mut d), GammaStatus::Certified);
    }

    #[test]
    fn output_collision_flagged() {
        let src = "sum T(w) := true | END[y. 0 <= y] ; w . w = 1\n";
        let (s, vars) = sum_of(src);
        let mut d = Vec::new();
        check_sum(&s, &vars, &mut d);
        assert!(d
            .iter()
            .any(|x| x.code == Code::SigmaRangeUnbound && x.message.contains("collides")));
    }

    #[test]
    fn span_of_var_finds_the_leaking_atom() {
        let src = "sum T(w) := true | END[y. y > 0 & y < z] ; x . x = w\n";
        let (prog, _) = parse_program(src);
        let Some(Statement::Sum(s)) = prog.statements.into_iter().next() else {
            panic!()
        };
        let z = prog_var(src, "z");
        let sp = span_of_var(&s.end_formula, z);
        assert_eq!(&src[sp.start..sp.end], "y < z");
    }

    fn prog_var(src: &str, name: &str) -> Var {
        let (prog, _) = parse_program(src);
        prog.vars
            .get(name)
            .unwrap_or_else(|| panic!("test program never mentions variable `{name}`"))
    }

    #[test]
    fn malformed_sigma_programs_lint_instead_of_panicking() {
        // Adversarial Σ-programs through the full analyzer driver — the
        // cqa-lint path. Every one must produce diagnostics, not a panic.
        let sources = [
            // Filter and γ leak variables; END body leaks the tuple var.
            "sum A(w) := w > z | END[y. y <= w] ; x . x = q\n",
            // Output variable collides with a tuple variable.
            "sum B(w, w) := true | END[y. 0 <= y] ; w . w = 1\n",
            // γ mentions an unknown relation and is not deterministic.
            "sum C(w) := true | END[y. 0 <= y & y <= 1] ; x . x*x = w & Nope(x)\n",
            // Syntactically broken Σ-terms (missing END, missing γ).
            "sum D(w) := w > 0 ; x . x = w\n",
            "sum E(w) := w > 0 | END[y. 0 <= y]\n",
            // Statically empty range and unbounded output, absint codes.
            "sum F(w) := w > 2 & w < 1 | END[y. 0 <= y & y <= 1] ; x . x = w\n",
        ];
        for src in sources {
            let (_, a) = crate::analyzer::analyze_source(src, &Default::default());
            assert!(
                !a.diagnostics.is_empty(),
                "malformed program produced no findings: {src}"
            );
        }
    }
}
