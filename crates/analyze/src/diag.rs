//! Compiler-style diagnostics: stable codes, severities, byte-span
//! locations, and rustc-like rendering with source excerpts.

use cqa_logic::Span;

/// Stable diagnostic codes. The numeric part never changes meaning across
//  versions; retired codes are not reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// CQA000 — a statement or formula failed to parse.
    Syntax,
    /// CQA001 — a variable occurs free where no binder or parameter
    /// declares it.
    UnboundVariable,
    /// CQA002 — a quantifier rebinds a variable already in scope.
    ShadowedBinder,
    /// CQA003 — a quantifier binds a variable its body never uses.
    UnusedBinder,
    /// CQA004 — a relation atom names a relation absent from the schema.
    UnknownRelation,
    /// CQA005 — a relation atom's argument count differs from the schema
    /// arity.
    ArityMismatch,
    /// CQA006 — a Σ-term part (filter, `END` body, or summand γ) uses a
    /// variable outside its binding discipline.
    SigmaRangeUnbound,
    /// CQA007 — the summand γ is not syntactically deterministic;
    /// evaluation falls back to the QE-based semantic check.
    GammaNotCertified,
    /// CQA008 — the predicted Karpinski–Macintyre approximation formula
    /// exceeds the configured budget (the paper's Section-3 blow-up).
    KmBlowup,
    /// CQA009 — an active-domain quantifier ranges over an empty active
    /// domain (no relations in scope).
    EmptyActiveDomain,
    /// CQA010 — a relation definition is not a quantifier-free,
    /// relation-free constraint formula over its parameters.
    BadRelationDef,
}

impl Code {
    /// The stable code string, e.g. `"CQA001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Syntax => "CQA000",
            Code::UnboundVariable => "CQA001",
            Code::ShadowedBinder => "CQA002",
            Code::UnusedBinder => "CQA003",
            Code::UnknownRelation => "CQA004",
            Code::ArityMismatch => "CQA005",
            Code::SigmaRangeUnbound => "CQA006",
            Code::GammaNotCertified => "CQA007",
            Code::KmBlowup => "CQA008",
            Code::EmptyActiveDomain => "CQA009",
            Code::BadRelationDef => "CQA010",
        }
    }

    /// The severity this code always reports at.
    pub fn severity(self) -> Severity {
        match self {
            Code::Syntax
            | Code::UnboundVariable
            | Code::UnknownRelation
            | Code::ArityMismatch
            | Code::SigmaRangeUnbound
            | Code::BadRelationDef => Severity::Error,
            Code::ShadowedBinder
            | Code::UnusedBinder
            | Code::GammaNotCertified
            | Code::KmBlowup
            | Code::EmptyActiveDomain => Severity::Warning,
        }
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note.
    Info,
    /// Suspicious but not necessarily wrong; evaluation may still succeed.
    Warning,
    /// Definitely wrong; evaluation would fail or answer the wrong
    /// question.
    Error,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding: a coded, located, human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Where in the source the finding anchors (byte span).
    pub span: Span,
    /// The primary message.
    pub message: String,
    /// Secondary notes rendered below the excerpt.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Adds a secondary note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// The severity (derived from the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders the diagnostic rustc-style against its source text:
    ///
    /// ```text
    /// error[CQA001]: unbound variable `z`
    ///   --> queries.cqa:3:15
    ///    |
    ///  3 | query Q(x) := x = z + 1
    ///    |               ^^^^^^^^^
    /// ```
    pub fn render(&self, src: &str, filename: &str) -> String {
        let (line_no, col, line) = locate(src, self.span.start);
        let mut out = String::new();
        out.push_str(&format!(
            "{}[{}]: {}\n",
            self.severity().label(),
            self.code.as_str(),
            self.message
        ));
        out.push_str(&format!("  --> {filename}:{line_no}:{col}\n"));
        let gutter = line_no.to_string().len().max(2);
        out.push_str(&format!("{:>gutter$} |\n", ""));
        out.push_str(&format!("{line_no:>gutter$} | {line}\n"));
        let width = self
            .span
            .len()
            .max(1)
            .min(line.len().saturating_sub(col - 1).max(1));
        out.push_str(&format!(
            "{:>gutter$} | {}{}\n",
            "",
            " ".repeat(col - 1),
            "^".repeat(width)
        ));
        for note in &self.notes {
            out.push_str(&format!("{:>gutter$} = note: {note}\n", ""));
        }
        out
    }
}

/// 1-based line number, 1-based column, and the line's text at `offset`.
fn locate(src: &str, offset: usize) -> (usize, usize, &str) {
    let offset = offset.min(src.len());
    let before = &src[..offset];
    let line_no = before.matches('\n').count() + 1;
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let line_end = src[offset..].find('\n').map_or(src.len(), |i| offset + i);
    (line_no, offset - line_start + 1, &src[line_start..line_end])
}

/// Renders a batch of diagnostics, sorted by position then code.
pub fn render_all(diags: &[Diagnostic], src: &str, filename: &str) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by_key(|d| (d.span.start, d.code));
    sorted
        .iter()
        .map(|d| d.render(src, filename))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_typed() {
        assert_eq!(Code::UnboundVariable.as_str(), "CQA001");
        assert_eq!(Code::KmBlowup.as_str(), "CQA008");
        assert_eq!(Code::UnboundVariable.severity(), Severity::Error);
        assert_eq!(Code::KmBlowup.severity(), Severity::Warning);
    }

    #[test]
    fn rendering_points_at_the_span() {
        let src = "rel S(y) := y >= 0\nquery Q(x) := x = z + 1\n";
        let at = src.find("x = z").unwrap();
        let d = Diagnostic::new(
            Code::UnboundVariable,
            Span::new(at, at + 9),
            "unbound variable `z`",
        )
        .with_note("declare it as a parameter or bind it with a quantifier");
        let text = d.render(src, "queries.cqa");
        assert!(text.contains("error[CQA001]: unbound variable `z`"));
        assert!(text.contains("queries.cqa:2:15"));
        assert!(text.contains("query Q(x) := x = z + 1"));
        assert!(text.contains("^^^^^^^^^"));
        assert!(text.contains("note: declare it"));
    }

    #[test]
    fn locate_handles_edges() {
        let (l, c, line) = locate("ab\ncd", 3);
        assert_eq!((l, c, line), (2, 1, "cd"));
        let (l, c, _) = locate("ab", 5);
        assert_eq!((l, c), (1, 3));
    }
}
