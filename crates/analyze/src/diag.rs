//! Compiler-style diagnostics: stable codes, severities, byte-span
//! locations, and rustc-like rendering with source excerpts.

use cqa_logic::Span;

/// Stable diagnostic codes. The numeric part never changes meaning across
//  versions; retired codes are not reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// CQA000 — a statement or formula failed to parse.
    Syntax,
    /// CQA001 — a variable occurs free where no binder or parameter
    /// declares it.
    UnboundVariable,
    /// CQA002 — a quantifier rebinds a variable already in scope.
    ShadowedBinder,
    /// CQA003 — a quantifier binds a variable its body never uses.
    UnusedBinder,
    /// CQA004 — a relation atom names a relation absent from the schema.
    UnknownRelation,
    /// CQA005 — a relation atom's argument count differs from the schema
    /// arity.
    ArityMismatch,
    /// CQA006 — a Σ-term part (filter, `END` body, or summand γ) uses a
    /// variable outside its binding discipline.
    SigmaRangeUnbound,
    /// CQA007 — the summand γ is not syntactically deterministic;
    /// evaluation falls back to the QE-based semantic check.
    GammaNotCertified,
    /// CQA008 — the predicted Karpinski–Macintyre approximation formula
    /// exceeds the configured budget (the paper's Section-3 blow-up).
    KmBlowup,
    /// CQA009 — an active-domain quantifier ranges over an empty active
    /// domain (no relations in scope).
    EmptyActiveDomain,
    /// CQA010 — a relation definition is not a quantifier-free,
    /// relation-free constraint formula over its parameters.
    BadRelationDef,
    /// CQA011 — interval analysis proves the query body unsatisfiable:
    /// the query is statically empty and evaluation returns the empty
    /// answer (measure 0) without quantifier elimination.
    StaticallyEmpty,
    /// CQA012 — interval analysis proves a subformula valid (always
    /// true): the subformula contributes nothing and can be dropped.
    StaticallyTrivial,
    /// CQA013 — a free variable of a volume/SUM query carries no
    /// boundedness certificate: interval analysis cannot bound it, so
    /// the Monte Carlo sampling box cannot shrink along that dimension.
    UnboundedFreeVariable,
}

impl Code {
    /// The stable code string, e.g. `"CQA001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Syntax => "CQA000",
            Code::UnboundVariable => "CQA001",
            Code::ShadowedBinder => "CQA002",
            Code::UnusedBinder => "CQA003",
            Code::UnknownRelation => "CQA004",
            Code::ArityMismatch => "CQA005",
            Code::SigmaRangeUnbound => "CQA006",
            Code::GammaNotCertified => "CQA007",
            Code::KmBlowup => "CQA008",
            Code::EmptyActiveDomain => "CQA009",
            Code::BadRelationDef => "CQA010",
            Code::StaticallyEmpty => "CQA011",
            Code::StaticallyTrivial => "CQA012",
            Code::UnboundedFreeVariable => "CQA013",
        }
    }

    /// Every code, in numeric order — the runtime diagnostic catalog
    /// behind `cqa-lint --explain`.
    pub const ALL: [Code; 14] = [
        Code::Syntax,
        Code::UnboundVariable,
        Code::ShadowedBinder,
        Code::UnusedBinder,
        Code::UnknownRelation,
        Code::ArityMismatch,
        Code::SigmaRangeUnbound,
        Code::GammaNotCertified,
        Code::KmBlowup,
        Code::EmptyActiveDomain,
        Code::StaticallyEmpty,
        Code::StaticallyTrivial,
        Code::UnboundedFreeVariable,
        Code::BadRelationDef,
    ];

    /// Parses a code string (`"CQA011"`, case-insensitive, `CQA11` also
    /// accepted) back to the typed code.
    pub fn parse(s: &str) -> Option<Code> {
        let s = s.trim().to_ascii_uppercase();
        let digits = s.strip_prefix("CQA")?;
        let n: u32 = digits.parse().ok()?;
        Code::ALL.iter().copied().find(|c| {
            c.as_str()
                .strip_prefix("CQA")
                .and_then(|d| d.parse::<u32>().ok())
                == Some(n)
        })
    }

    /// A one-line title for the catalog listing.
    pub fn title(self) -> &'static str {
        match self {
            Code::Syntax => "statement or formula failed to parse",
            Code::UnboundVariable => "variable occurs free with no binder or parameter",
            Code::ShadowedBinder => "quantifier rebinds a variable already in scope",
            Code::UnusedBinder => "quantifier binds a variable its body never uses",
            Code::UnknownRelation => "relation atom names a relation absent from the schema",
            Code::ArityMismatch => "relation atom argument count differs from schema arity",
            Code::SigmaRangeUnbound => "Σ-term part uses a variable outside its discipline",
            Code::GammaNotCertified => "summand γ is not syntactically deterministic",
            Code::KmBlowup => "predicted approximation formula exceeds the budget",
            Code::EmptyActiveDomain => "active-domain quantifier over an empty active domain",
            Code::BadRelationDef => "relation definition is not quantifier-free constraint",
            Code::StaticallyEmpty => "query body is statically unsatisfiable",
            Code::StaticallyTrivial => "subformula is statically valid (always true)",
            Code::UnboundedFreeVariable => "free variable has no boundedness certificate",
        }
    }

    /// The full catalog entry: what the code means, why it fires, and
    /// what to do about it.
    pub fn explain(self) -> &'static str {
        match self {
            Code::Syntax => {
                "The statement or formula could not be parsed. The rest of the \
                 program is still analyzed; fix the syntax at the reported span."
            }
            Code::UnboundVariable => {
                "A variable occurs free where no quantifier binds it and no query \
                 parameter declares it. Declare it as a parameter or bind it with \
                 `exists`/`forall`."
            }
            Code::ShadowedBinder => {
                "A quantifier rebinds a variable that an enclosing binder or \
                 parameter already declares. The inner binding wins, which is \
                 usually not what was meant; rename one of the two."
            }
            Code::UnusedBinder => {
                "A quantifier binds a variable its body never mentions. Over the \
                 reals the quantifier is then a no-op; remove it or use the \
                 variable."
            }
            Code::UnknownRelation => {
                "A relation atom names a relation the program never defines. \
                 Define it with a `rel` statement before use."
            }
            Code::ArityMismatch => {
                "A relation atom supplies a different number of arguments than \
                 the relation's definition declares."
            }
            Code::SigmaRangeUnbound => {
                "A part of a Σ-term (filter, END body, or summand γ) uses a \
                 variable outside the paper's binding discipline: filters may \
                 only use tuple variables, END bodies the end variable plus \
                 tuple variables, and γ the output variable plus tuple variables."
            }
            Code::GammaNotCertified => {
                "The summand γ is not in the functional-graph shape `out = t(w⃗)` \
                 the analyzer certifies as deterministic, so evaluation falls \
                 back to a QE-based semantic determinism check (slower, same \
                 answer)."
            }
            Code::KmBlowup => {
                "The Karpinski–Macintyre model predicts the ε-approximation \
                 formula for this query exceeds the configured atom budget — the \
                 paper's Section 3 blow-up. Consider relaxing ε or restructuring \
                 the query."
            }
            Code::EmptyActiveDomain => {
                "An active-domain quantifier ranges over an empty active domain \
                 (no relation atoms are in scope), so it quantifies over nothing: \
                 `existsadom` is false, `foralladom` is true."
            }
            Code::BadRelationDef => {
                "A relation definition must be a quantifier-free, relation-free \
                 constraint formula over its declared parameters (the paper's \
                 finitely-representable database model)."
            }
            Code::StaticallyEmpty => {
                "Interval abstract interpretation proved the query body \
                 unsatisfiable: some atom or conjunction admits no real point \
                 (e.g. `x > 2 & x < 1`). The engine answers such queries with \
                 the empty result (volume 0) without running quantifier \
                 elimination or sampling. If the query should be nonempty, the \
                 reported bounds show which constraints contradict."
            }
            Code::StaticallyTrivial => {
                "Interval abstract interpretation proved a subformula valid — \
                 true for every assignment (e.g. `x*x >= 0`). It contributes \
                 nothing to the query and can be deleted; the simplifier prunes \
                 it before elimination."
            }
            Code::UnboundedFreeVariable => {
                "A free variable of a volume/SUM query has no boundedness \
                 certificate: interval analysis derived no finite lower or upper \
                 bound, so the Monte Carlo sampling box cannot shrink along that \
                 dimension and cost estimates assume the full unit range. Add \
                 explicit range constraints if the variable is in fact bounded."
            }
        }
    }

    /// The severity this code always reports at.
    pub fn severity(self) -> Severity {
        match self {
            Code::Syntax
            | Code::UnboundVariable
            | Code::UnknownRelation
            | Code::ArityMismatch
            | Code::SigmaRangeUnbound
            | Code::BadRelationDef => Severity::Error,
            Code::ShadowedBinder
            | Code::UnusedBinder
            | Code::GammaNotCertified
            | Code::KmBlowup
            | Code::EmptyActiveDomain
            | Code::StaticallyEmpty
            | Code::StaticallyTrivial
            | Code::UnboundedFreeVariable => Severity::Warning,
        }
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note.
    Info,
    /// Suspicious but not necessarily wrong; evaluation may still succeed.
    Warning,
    /// Definitely wrong; evaluation would fail or answer the wrong
    /// question.
    Error,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding: a coded, located, human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Where in the source the finding anchors (byte span).
    pub span: Span,
    /// The primary message.
    pub message: String,
    /// Secondary notes rendered below the excerpt.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Adds a secondary note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// The severity (derived from the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders the diagnostic rustc-style against its source text:
    ///
    /// ```text
    /// error[CQA001]: unbound variable `z`
    ///   --> queries.cqa:3:15
    ///    |
    ///  3 | query Q(x) := x = z + 1
    ///    |               ^^^^^^^^^
    /// ```
    pub fn render(&self, src: &str, filename: &str) -> String {
        let (line_no, col, line) = locate(src, self.span.start);
        let mut out = String::new();
        out.push_str(&format!(
            "{}[{}]: {}\n",
            self.severity().label(),
            self.code.as_str(),
            self.message
        ));
        out.push_str(&format!("  --> {filename}:{line_no}:{col}\n"));
        let gutter = line_no.to_string().len().max(2);
        out.push_str(&format!("{:>gutter$} |\n", ""));
        out.push_str(&format!("{line_no:>gutter$} | {line}\n"));
        let width = self
            .span
            .len()
            .max(1)
            .min(line.len().saturating_sub(col - 1).max(1));
        out.push_str(&format!(
            "{:>gutter$} | {}{}\n",
            "",
            " ".repeat(col - 1),
            "^".repeat(width)
        ));
        for note in &self.notes {
            out.push_str(&format!("{:>gutter$} = note: {note}\n", ""));
        }
        out
    }
}

/// 1-based line number, 1-based column, and the line's text at `offset`.
fn locate(src: &str, offset: usize) -> (usize, usize, &str) {
    let offset = offset.min(src.len());
    let before = &src[..offset];
    let line_no = before.matches('\n').count() + 1;
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let line_end = src[offset..].find('\n').map_or(src.len(), |i| offset + i);
    (line_no, offset - line_start + 1, &src[line_start..line_end])
}

/// Renders a batch of diagnostics, sorted by position then code.
pub fn render_all(diags: &[Diagnostic], src: &str, filename: &str) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by_key(|d| (d.span.start, d.code));
    sorted
        .iter()
        .map(|d| d.render(src, filename))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_typed() {
        assert_eq!(Code::UnboundVariable.as_str(), "CQA001");
        assert_eq!(Code::KmBlowup.as_str(), "CQA008");
        assert_eq!(Code::UnboundVariable.severity(), Severity::Error);
        assert_eq!(Code::KmBlowup.severity(), Severity::Warning);
    }

    #[test]
    fn rendering_points_at_the_span() {
        let src = "rel S(y) := y >= 0\nquery Q(x) := x = z + 1\n";
        let at = src.find("x = z").unwrap();
        let d = Diagnostic::new(
            Code::UnboundVariable,
            Span::new(at, at + 9),
            "unbound variable `z`",
        )
        .with_note("declare it as a parameter or bind it with a quantifier");
        let text = d.render(src, "queries.cqa");
        assert!(text.contains("error[CQA001]: unbound variable `z`"));
        assert!(text.contains("queries.cqa:2:15"));
        assert!(text.contains("query Q(x) := x = z + 1"));
        assert!(text.contains("^^^^^^^^^"));
        assert!(text.contains("note: declare it"));
    }

    #[test]
    fn catalog_is_complete_and_parseable() {
        assert_eq!(Code::ALL.len(), 14);
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            assert!(!c.title().is_empty());
            assert!(!c.explain().is_empty());
        }
        assert_eq!(Code::parse("cqa011"), Some(Code::StaticallyEmpty));
        assert_eq!(Code::parse("CQA13"), Some(Code::UnboundedFreeVariable));
        assert_eq!(Code::parse("CQA099"), None);
        assert_eq!(Code::parse("FOO"), None);
        assert_eq!(Code::StaticallyEmpty.severity(), Severity::Warning);
    }

    #[test]
    fn locate_handles_edges() {
        let (l, c, line) = locate("ab\ncd", 3);
        assert_eq!((l, c, line), (2, 1, "cd"));
        let (l, c, _) = locate("ab", 5);
        assert_eq!((l, c), (1, 3));
    }
}
