//! Shared `.cqa` file loading and diagnostic rendering.
//!
//! Both front ends that accept `.cqa` programs from disk — the `cqa-lint`
//! CLI and the `cqa-serve` `--preload` startup gate — go through these
//! helpers, so a program rejected by one is rejected by the other with the
//! same rustc-style output.

use cqa_analyze::{analyze_source, Analysis, AnalyzerConfig, GammaStatus, Program};

/// A `.cqa` file read from disk and run through the full static-analysis
/// pipeline (scope, fragment/schema, Σ-discipline, cost/VC estimation).
pub struct LintedFile {
    /// Display label (the path as given).
    pub file: String,
    /// Raw source text.
    pub src: String,
    /// Parsed program (best-effort when there are errors).
    pub program: Program,
    /// Analysis verdicts and diagnostics.
    pub analysis: Analysis,
}

impl LintedFile {
    /// `true` iff the analyzer found hard errors.
    pub fn has_errors(&self) -> bool {
        self.analysis.has_errors()
    }

    /// Rustc-style diagnostics with source excerpts; empty when clean.
    pub fn diagnostics(&self) -> String {
        self.analysis.render(&self.src, &self.file)
    }

    /// Per-statement fragment/cost summary lines plus the closing
    /// `N error(s), M warning(s)` line.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for r in &self.analysis.reports {
            let cost = r.cost.map_or(String::new(), |c| {
                format!(
                    ", C = {:.1}, VC ≤ {:.1}, KM ≈ {:.2e} atoms / {:.2e} quantifiers",
                    c.gj_constant, c.vc_bound, c.km.atoms, c.km.quantifiers
                )
            });
            let gamma = match r.gamma {
                Some(GammaStatus::Certified) => ", γ certified",
                Some(GammaStatus::Fallback) => ", γ falls back to semantic check",
                None => "",
            };
            out.push_str(&format!(
                "{}: {} `{}`: {}, {} atom(s), {} quantifier(s), degree {}{}{}\n",
                self.file,
                r.kind,
                r.name,
                r.fragment.fragment_name(),
                r.fragment.atoms,
                r.fragment.quantifiers,
                r.fragment.max_degree,
                cost,
                gamma
            ));
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s)",
            self.file,
            self.analysis.error_count(),
            self.analysis.warning_count()
        ));
        out
    }
}

/// Reads `path` and runs the analyzer over it. `Err` only for I/O
/// failures; analysis errors are reported inside the returned value.
pub fn lint_file(path: &str, cfg: &AnalyzerConfig) -> Result<LintedFile, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (program, analysis) = analyze_source(&src, cfg);
    Ok(LintedFile {
        file: path.to_string(),
        src,
        program,
        analysis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_file_reports_missing_file_and_lints_real_ones() {
        assert!(lint_file("/nonexistent/x.cqa", &AnalyzerConfig::default()).is_err());
        let lf = lint_file(
            "../../examples/lint/endpoints.cqa",
            &AnalyzerConfig::default(),
        )
        .expect("example program");
        assert!(!lf.has_errors(), "{}", lf.diagnostics());
        assert!(lf.summary().contains("error(s)"));
        let bad = lint_file("../../examples/lint/broken.cqa", &AnalyzerConfig::default())
            .expect("example program");
        assert!(bad.has_errors());
        assert!(!bad.diagnostics().is_empty());
    }
}
