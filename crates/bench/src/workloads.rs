//! Shared workload generators for the experiments and benches.

use cqa_arith::{rat, Rat};
use cqa_geom::{convex_hull, Point2};
use cqa_logic::{parse_formula_with, Formula, VarMap};
use cqa_poly::Var;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random convex polygon: the hull of `n` integer points in a box.
pub fn random_convex_polygon(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<Point2> = (0..n.max(3))
        .map(|_| {
            (
                rat(rng.random_range(-50..50), 1),
                rat(rng.random_range(-50..50), 1),
            )
        })
        .collect();
    convex_hull(&pts)
}

/// A random bounded simplex-like region in `dim` variables:
/// `x_i ≥ lo_i` and `Σ c_i x_i ≤ b` with positive coefficients.
pub fn random_simplex_formula(dim: usize, seed: u64, vars: &mut VarMap) -> (Formula, Vec<Var>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..dim).map(|i| format!("x{i}")).collect();
    let vs: Vec<Var> = names.iter().map(|n| vars.intern(n)).collect();
    let mut parts: Vec<String> = Vec::new();
    for n in &names {
        parts.push(format!("{n} >= {}", rng.random_range(-3..1)));
    }
    let coeffs: Vec<i64> = (0..dim).map(|_| rng.random_range(1..4)).collect();
    let sum = names
        .iter()
        .zip(&coeffs)
        .map(|(n, c)| format!("{c}*{n}"))
        .collect::<Vec<_>>()
        .join(" + ");
    parts.push(format!("{sum} <= {}", rng.random_range(2..8)));
    let src = parts.join(" & ");
    (parse_formula_with(&src, vars).unwrap(), vs)
}

/// A random union of `k` axis-aligned boxes in the unit square (linear,
/// generally *not* variable independent once rotated pieces are added).
pub fn random_box_union(k: usize, seed: u64, vars: &mut VarMap) -> (Formula, Vec<Var>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = vars.intern("x");
    let y = vars.intern("y");
    let mut clauses = Vec::new();
    for _ in 0..k.max(1) {
        let x0 = rng.random_range(0..6);
        let dx = rng.random_range(1..5);
        let y0 = rng.random_range(0..6);
        let dy = rng.random_range(1..5);
        clauses.push(format!(
            "({x0} <= 10*x & 10*x <= {} & {y0} <= 10*y & 10*y <= {})",
            x0 + dx,
            y0 + dy
        ));
    }
    let src = clauses.join(" | ");
    (parse_formula_with(&src, vars).unwrap(), vec![x, y])
}

/// A random finite unary relation `U ⊆ (0,1)` of size `n` (distinct dyadic
/// rationals), as in the Section-3 worked example.
pub fn random_unary_relation(n: usize, seed: u64) -> Vec<Rat> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Rat> = Vec::with_capacity(n);
    while out.len() < n {
        let v = rat(rng.random_range(1..1024), 1024);
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out.sort();
    out
}

/// The E13/E17 linear kernel workload: a 16-gon inscribed in the unit
/// box — 16 linear half-plane atoms per sample point, all on the
/// degree-1 dot-product fast path of the batched kernel.
pub fn linear16_workload(vars: &mut VarMap) -> (Formula, Vec<Var>) {
    let x = vars.intern("x");
    let y = vars.intern("y");
    // Rational approximations of (cos θ, sin θ) on a 16-direction fan:
    // c·(x−1/2) + s·(y−1/2) ≤ 2/5 for each direction (c, s).
    let dirs: [(i64, i64, i64); 4] = [(1, 0, 1), (12, 5, 13), (4, 3, 5), (3, 4, 5)];
    let mut parts = Vec::new();
    for &(p, q, h) in &dirs {
        for (c, s) in [(p, q), (-p, q), (p, -q), (-p, -q)] {
            parts.push(format!("{c}*(5*x - 2) + {s}*(5*y - 2) <= {}", 2 * h));
        }
    }
    let src = parts.join(" & ");
    (parse_formula_with(&src, vars).unwrap(), vec![x, y])
}

/// The E13/E17 polynomial kernel workload: an annulus with a cubic
/// wobble — polynomial atoms of degree up to 3, exercising the
/// term-sweep (non-linear) path of the batched kernel.
pub fn poly3_workload(vars: &mut VarMap) -> (Formula, Vec<Var>) {
    let x = vars.intern("x");
    let y = vars.intern("y");
    let src = "(2*x - 1)*(2*x - 1) + (2*y - 1)*(2*y - 1) <= 1 \
               & 4*((2*x - 1)*(2*x - 1) + (2*y - 1)*(2*y - 1)) >= 1 \
               & 8*(2*x - 1)*(2*x - 1)*(2*y - 1) <= 1";
    (parse_formula_with(src, vars).unwrap(), vec![x, y])
}

/// A random quantified linear formula with `vars` free variables, `q`
/// quantified ones, and `atoms` random atoms (for the QE benches).
pub fn random_linear_query(
    free: usize,
    quantified: usize,
    atoms: usize,
    seed: u64,
    vars: &mut VarMap,
) -> Formula {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = free + quantified;
    let names: Vec<String> = (0..total).map(|i| format!("v{i}")).collect();
    for n in &names {
        vars.intern(n);
    }
    let mut parts = Vec::new();
    for _ in 0..atoms.max(1) {
        let mut terms = Vec::new();
        for n in &names {
            let c = rng.random_range(-2..=2);
            if c != 0 {
                terms.push(format!("{c}*{n}"));
            }
        }
        if terms.is_empty() {
            terms.push("0".to_string());
        }
        let rel = ["<", "<=", ">=", ">"][rng.random_range(0..4)];
        parts.push(format!(
            "{} {rel} {}",
            terms.join(" + "),
            rng.random_range(-3..=3)
        ));
    }
    let body = parse_formula_with(&parts.join(" & "), vars).unwrap();
    let qvars: Vec<Var> = names[free..].iter().map(|n| vars.get(n).unwrap()).collect();
    Formula::exists(qvars, body)
}
