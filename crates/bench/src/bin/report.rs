//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p cqa-bench --release --bin report          # all experiments
//! cargo run -p cqa-bench --release --bin report -- e3 e7 # a selection
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print!("{}", cqa_bench::run_all());
        return;
    }
    for id in &args {
        match cqa_bench::run_one(id) {
            Some(tbl) => print!("{tbl}"),
            None => {
                eprintln!("unknown experiment `{id}` (valid: e1..e12, e15..e21)");
                std::process::exit(1);
            }
        }
    }
}
