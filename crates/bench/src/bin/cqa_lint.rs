//! `cqa-lint` — static checker for `.cqa` programs.
//!
//! ```text
//! cqa-lint [--eps E] [--delta D] [--db-size N] [--max-atoms A] [--max-quantifiers Q]
//!          [--timeout-ms MS] [--max-steps N] FILE...
//! cqa-lint --explain CQA0NN
//! ```
//!
//! Parses each file, runs the `cqa-analyze` passes (scope, fragment/schema,
//! Σ-discipline, cost/VC estimation), prints rustc-style diagnostics with
//! source excerpts, and summarizes each statement's fragment and predicted
//! approximation cost. Exits non-zero iff any file has errors.
//!
//! With `--timeout-ms` and/or `--max-steps` an additional **dynamic pass**
//! runs each statement through budget-governed quantifier elimination /
//! Σ-evaluation: statements that blow past the budget are reported with a
//! budget diagnostic (and a non-zero exit) instead of hanging the linter.

use cqa_analyze::{AnalyzerConfig, Code, Program, Statement};
use cqa_bench::lint::lint_file;
use cqa_logic::budget::EvalBudget;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: cqa-lint [--eps E] [--delta D] [--db-size N] \
         [--max-atoms A] [--max-quantifiers Q] \
         [--timeout-ms MS] [--max-steps N] FILE...\n\
         \x20      cqa-lint --explain CQA0NN"
    );
    std::process::exit(2);
}

/// `--explain CQA0NN`: prints the diagnostic catalog entry for one code,
/// or the whole catalog index when the code is unknown.
fn explain(code_str: &str) -> ExitCode {
    match Code::parse(code_str) {
        Some(code) => {
            println!("{}: {}", code.as_str(), code.title());
            println!("severity: {:?}", code.severity());
            println!();
            println!("{}", code.explain());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("cqa-lint: unknown diagnostic code `{code_str}`; known codes:");
            for c in Code::ALL {
                eprintln!("  {}  {}", c.as_str(), c.title());
            }
            std::process::exit(2);
        }
    }
}

/// Runs the budget-governed dynamic pass over every statement of `program`.
/// Returns `true` if any statement tripped the budget or failed to
/// evaluate. The budget is per statement, so one runaway query cannot
/// starve the diagnostics of the statements after it.
fn dynamic_pass(
    file: &str,
    program: &Program,
    timeout_ms: Option<u64>,
    max_steps: Option<u64>,
) -> bool {
    let db = match program.to_database() {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{file}: dynamic pass skipped: {e}");
            return true;
        }
    };
    let fresh_budget = || {
        let mut b = EvalBudget::unlimited();
        if let Some(ms) = timeout_ms {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        if let Some(n) = max_steps {
            b = b.with_max_steps(n);
        }
        b
    };
    // (note, is_budget_trip, message) — budget trips get the dedicated
    // diagnostic; other evaluation failures are reported as plain errors.
    let eliminate = |body: cqa_logic::Formula, budget: &EvalBudget| {
        let expanded = db.expand(&body).map_err(|e| (false, e.to_string()))?;
        cqa_qe::eliminate_with_budget(&expanded, budget)
            .map(|_| "eliminates".to_string())
            .map_err(|e| (matches!(e, cqa_qe::QeError::Budget(_)), e.to_string()))
    };
    let mut any_tripped = false;
    for stmt in &program.statements {
        let budget = fresh_budget();
        let outcome: Result<String, (bool, String)> = match stmt {
            Statement::Rel(r) => eliminate(r.body.to_formula(), &budget),
            Statement::Query(q) => eliminate(q.body.to_formula(), &budget),
            Statement::Sum(s) => s
                .to_sum_term()
                .eval_with_budget(&db, &budget)
                .map(|v| format!("Σ = {v}"))
                .map_err(|e| (matches!(e, cqa_agg::AggError::Budget(_)), e.to_string())),
        };
        match outcome {
            Ok(note) => println!(
                "{file}: dynamic `{}`: {note} ({} budget steps)",
                stmt.name(),
                budget.steps()
            ),
            Err((tripped, msg)) => {
                let label = if tripped {
                    "budget diagnostic"
                } else {
                    "evaluation error"
                };
                println!(
                    "{file}: dynamic `{}`: {label}: {msg} (after {} budget steps)",
                    stmt.name(),
                    budget.steps()
                );
                any_tripped = true;
            }
        }
    }
    any_tripped
}

fn main() -> ExitCode {
    let mut cfg = AnalyzerConfig::default();
    let mut files: Vec<String> = Vec::new();
    let mut timeout_ms: Option<u64> = None;
    let mut max_steps: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag = |name: &str| -> f64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("cqa-lint: {name} needs a numeric argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--eps" => cfg.cost.eps = flag("--eps"),
            "--delta" => cfg.cost.delta = flag("--delta"),
            "--db-size" => cfg.cost.db_size = flag("--db-size") as usize,
            "--max-atoms" => cfg.cost.budget.max_atoms = flag("--max-atoms"),
            "--max-quantifiers" => cfg.cost.budget.max_quantifiers = flag("--max-quantifiers"),
            "--timeout-ms" => timeout_ms = Some(flag("--timeout-ms") as u64),
            "--max-steps" => max_steps = Some(flag("--max-steps") as u64),
            "--explain" => {
                let code = args.next().unwrap_or_else(|| {
                    eprintln!("cqa-lint: --explain needs a diagnostic code (e.g. CQA011)");
                    std::process::exit(2);
                });
                return explain(&code);
            }
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        usage();
    }
    let dynamic = timeout_ms.is_some() || max_steps.is_some();

    let mut any_errors = false;
    for file in &files {
        let linted = match lint_file(file, &cfg) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cqa-lint: {e}");
                any_errors = true;
                continue;
            }
        };
        let rendered = linted.diagnostics();
        if !rendered.is_empty() {
            println!("{rendered}");
        }
        println!("{}", linted.summary());
        any_errors |= linted.has_errors();
        if dynamic && !linted.has_errors() {
            any_errors |= dynamic_pass(file, &linted.program, timeout_ms, max_steps);
        }
    }
    if any_errors {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
