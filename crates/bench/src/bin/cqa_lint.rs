//! `cqa-lint` — static checker for `.cqa` programs.
//!
//! ```text
//! cqa-lint [--eps E] [--delta D] [--db-size N] [--max-atoms A] [--max-quantifiers Q] FILE...
//! ```
//!
//! Parses each file, runs the `cqa-analyze` passes (scope, fragment/schema,
//! Σ-discipline, cost/VC estimation), prints rustc-style diagnostics with
//! source excerpts, and summarizes each statement's fragment and predicted
//! approximation cost. Exits non-zero iff any file has errors.

use cqa_analyze::{analyze_source, AnalyzerConfig, GammaStatus};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: cqa-lint [--eps E] [--delta D] [--db-size N] \
         [--max-atoms A] [--max-quantifiers Q] FILE..."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = AnalyzerConfig::default();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag = |name: &str| -> f64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("cqa-lint: {name} needs a numeric argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--eps" => cfg.cost.eps = flag("--eps"),
            "--delta" => cfg.cost.delta = flag("--delta"),
            "--db-size" => cfg.cost.db_size = flag("--db-size") as usize,
            "--max-atoms" => cfg.cost.budget.max_atoms = flag("--max-atoms"),
            "--max-quantifiers" => cfg.cost.budget.max_quantifiers = flag("--max-quantifiers"),
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        usage();
    }

    let mut any_errors = false;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cqa-lint: cannot read {file}: {e}");
                any_errors = true;
                continue;
            }
        };
        let (_, analysis) = analyze_source(&src, &cfg);
        let rendered = analysis.render(&src, file);
        if !rendered.is_empty() {
            println!("{rendered}");
        }
        for r in &analysis.reports {
            let cost = r.cost.map_or(String::new(), |c| {
                format!(
                    ", C = {:.1}, VC ≤ {:.1}, KM ≈ {:.2e} atoms / {:.2e} quantifiers",
                    c.gj_constant, c.vc_bound, c.km.atoms, c.km.quantifiers
                )
            });
            let gamma = match r.gamma {
                Some(GammaStatus::Certified) => ", γ certified",
                Some(GammaStatus::Fallback) => ", γ falls back to semantic check",
                None => "",
            };
            println!(
                "{file}: {} `{}`: {}, {} atom(s), {} quantifier(s), degree {}{}{}",
                r.kind,
                r.name,
                r.fragment.fragment_name(),
                r.fragment.atoms,
                r.fragment.quantifiers,
                r.fragment.max_degree,
                cost,
                gamma
            );
        }
        println!(
            "{file}: {} error(s), {} warning(s)",
            analysis.error_count(),
            analysis.warning_count()
        );
        any_errors |= analysis.has_errors();
    }
    if any_errors {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
