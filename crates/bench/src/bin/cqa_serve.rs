//! `cqa-serve` — the constraint-query service daemon.
//!
//! ```text
//! cqa-serve [--addr HOST:PORT] [--workers N] [--max-sessions N]
//!           [--cache-bytes B] [--shards N] [--timeout-ms MS]
//!           [--max-steps N] [--eps E] [--delta D] [--idle-secs S]
//!           [--write-timeout-ms MS] [--max-body-bytes B]
//!           [--preload FILE.cqa] [--no-plan] [--threaded]
//!           [--data-dir DIR] [--snapshot-every N]
//! ```
//!
//! Binds a TCP listener (default `127.0.0.1:0`, i.e. an ephemeral port),
//! prints `LISTENING <addr>` on stdout once ready, and serves the
//! `cqa-engine` wire protocol until a client sends `SHUTDOWN`. The
//! default front end is the event-driven reactor (idle sessions cost no
//! worker threads, pipelining and `BATCH` supported); `--threaded`
//! selects the legacy thread-per-connection loop, kept as the parity
//! oracle and benchmark baseline. A `--preload` program is run through
//! the same static-analysis gate as `cqa-lint` before the listener
//! opens; errors abort startup with the usual diagnostics.
//!
//! `--data-dir DIR` turns on durable storage: crash recovery
//! (snapshot + write-ahead-log replay) and the cache warm-start load run
//! *before* `LISTENING` is printed, so the first connection already sees
//! the recovered databases and a warm prepared-query cache; sessions
//! attach with `PERSIST <name>`. `--snapshot-every N` sets the
//! compaction cadence (default 64 WAL records).

use cqa_analyze::AnalyzerConfig;
use cqa_bench::lint::lint_file;
use cqa_engine::{serve, serve_threaded, Engine, EngineConfig};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: cqa-serve [--addr HOST:PORT] [--workers N] [--max-sessions N] \
         [--cache-bytes B] [--shards N] [--timeout-ms MS] [--max-steps N] \
         [--eps E] [--delta D] [--idle-secs S] [--write-timeout-ms MS] \
         [--max-body-bytes B] [--preload FILE.cqa] [--no-plan] [--threaded] \
         [--data-dir DIR] [--snapshot-every N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut cfg = EngineConfig::default();
    let mut preload_path: Option<String> = None;
    let mut threaded = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("cqa-serve: {name} needs an argument");
                std::process::exit(2);
            })
        };
        let parse = |name: &str, v: String| -> f64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("cqa-serve: {name} needs a numeric argument, got `{v}`");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => cfg.workers = parse("--workers", value("--workers")) as usize,
            "--max-sessions" => {
                cfg.max_sessions = parse("--max-sessions", value("--max-sessions")) as usize
            }
            "--cache-bytes" => {
                cfg.cache_bytes = parse("--cache-bytes", value("--cache-bytes")) as usize
            }
            "--shards" => cfg.cache_shards = parse("--shards", value("--shards")) as usize,
            "--timeout-ms" => {
                cfg.timeout = Some(Duration::from_millis(parse(
                    "--timeout-ms",
                    value("--timeout-ms"),
                ) as u64))
            }
            "--max-steps" => {
                cfg.max_steps = Some(parse("--max-steps", value("--max-steps")) as u64)
            }
            "--eps" => cfg.default_eps = parse("--eps", value("--eps")),
            "--delta" => cfg.default_delta = parse("--delta", value("--delta")),
            "--idle-secs" => {
                cfg.idle_timeout =
                    Duration::from_secs(parse("--idle-secs", value("--idle-secs")) as u64)
            }
            "--write-timeout-ms" => {
                cfg.write_timeout = Duration::from_millis(parse(
                    "--write-timeout-ms",
                    value("--write-timeout-ms"),
                ) as u64)
            }
            "--max-body-bytes" => {
                cfg.max_body_bytes = parse("--max-body-bytes", value("--max-body-bytes")) as usize
            }
            "--preload" => preload_path = Some(value("--preload")),
            "--data-dir" => cfg.data_dir = Some(value("--data-dir").into()),
            "--snapshot-every" => {
                cfg.snapshot_every = parse("--snapshot-every", value("--snapshot-every")) as u64
            }
            // Parity oracle: fall back to the fixed QE dispatch pipeline.
            "--no-plan" => cfg.plan = false,
            // Parity oracle: the thread-per-connection front end.
            "--threaded" => threaded = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    if let Some(path) = &preload_path {
        // Same gate as `cqa-lint`: a program the linter rejects must not
        // silently become every session's preamble.
        let linted = match lint_file(path, &AnalyzerConfig::default()) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cqa-serve: {e}");
                return ExitCode::FAILURE;
            }
        };
        if linted.has_errors() {
            eprintln!("{}", linted.diagnostics());
            eprintln!("cqa-serve: --preload {path} rejected by the analyzer");
            return ExitCode::FAILURE;
        }
        cfg.preload = Some(linted.src);
    }

    // Recovery (when --data-dir is set) runs inside with_storage, before
    // the listener even binds: a client that sees LISTENING is guaranteed
    // fully recovered durable databases and a warm prepared-query cache.
    let engine = match Engine::with_storage(cfg) {
        Ok(e) => Arc::new(e),
        Err(e) => {
            eprintln!("cqa-serve: storage recovery failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cqa-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("LISTENING {local}");
    let result = if threaded {
        serve_threaded(engine, listener)
    } else {
        serve(engine, listener)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cqa-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
