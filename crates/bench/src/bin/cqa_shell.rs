//! `cqa-shell` — line-oriented client for `cqa-serve`.
//!
//! ```text
//! cqa-shell HOST:PORT
//! ```
//!
//! Reads protocol commands from stdin, forwards them, and prints each
//! response (header plus payload lines). Suitable both interactively and
//! piped (the CI smoke test drives it with a heredoc). Conveniences:
//!
//! * after a bare `LOAD` or `BATCH` (with or without a leading `@tag`),
//!   stdin lines up to a lone `.` are forwarded as the dot-stuffed body,
//!   exactly as the protocol expects;
//! * `.load FILE` (client-side command) sends `LOAD` with the contents of
//!   `FILE` as the body, so programs don't have to be pasted.
//!
//! Exits 0 when the server closes the conversation cleanly (`CLOSE`,
//! `SHUTDOWN`, or stdin EOF), 1 on connection errors.

use cqa_engine::read_response;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn print_response(resp: &cqa_engine::Response) {
    println!("{}", resp.header);
    for line in &resp.body {
        println!("{line}");
    }
}

fn run(addr: &str) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);
    let greeting = read_response(&mut reader)
        .map_err(|e| e.to_string())?
        .ok_or("server closed the connection before greeting")?;
    print_response(&greeting);

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    while let Some(line) = lines.next() {
        let line = line.map_err(|e| e.to_string())?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(path) = trimmed.strip_prefix(".load ") {
            let src = std::fs::read_to_string(path.trim())
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            writeln!(writer, "LOAD").map_err(|e| e.to_string())?;
            for l in src.lines() {
                let stuffed = if l.starts_with('.') {
                    format!(".{l}")
                } else {
                    l.to_string()
                };
                writeln!(writer, "{stuffed}").map_err(|e| e.to_string())?;
            }
            writeln!(writer, ".").map_err(|e| e.to_string())?;
        } else {
            writeln!(writer, "{line}").map_err(|e| e.to_string())?;
            // The command verb, skipping a `@tag` prefix if present.
            let mut words = trimmed.split_whitespace();
            let mut verb = words.next().unwrap_or("");
            if verb.starts_with('@') {
                verb = words.next().unwrap_or("");
            }
            let bare = words.next().is_none();
            if bare && (verb.eq_ignore_ascii_case("LOAD") || verb.eq_ignore_ascii_case("BATCH")) {
                // Bare LOAD/BATCH: forward the dot-terminated body
                // verbatim.
                for body_line in lines.by_ref() {
                    let body_line = body_line.map_err(|e| e.to_string())?;
                    writeln!(writer, "{body_line}").map_err(|e| e.to_string())?;
                    if body_line.trim_end() == "." {
                        break;
                    }
                }
            }
        }
        writer.flush().map_err(|e| e.to_string())?;
        match read_response(&mut reader).map_err(|e| e.to_string())? {
            Some(resp) => {
                print_response(&resp);
                let mut words = trimmed.split_whitespace();
                let mut verb = words.next().unwrap_or("");
                if verb.starts_with('@') {
                    verb = words.next().unwrap_or("");
                }
                if verb.eq_ignore_ascii_case("CLOSE") || verb.eq_ignore_ascii_case("SHUTDOWN") {
                    return Ok(());
                }
            }
            None => return Err("server closed the connection".into()),
        }
    }
    // stdin exhausted: end the session politely.
    writeln!(writer, "CLOSE").map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    if let Some(resp) = read_response(&mut reader).map_err(|e| e.to_string())? {
        print_response(&resp);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [addr] = args.as_slice() else {
        eprintln!("usage: cqa-shell HOST:PORT");
        return ExitCode::from(2);
    };
    match run(addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cqa-shell: {e}");
            ExitCode::FAILURE
        }
    }
}
