//! The E1–E12 + E15–E18 experiment suite (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! Each function prints a self-contained table and returns it as a string
//! so the integration tests can assert on the numbers.

use crate::workloads;
use cqa_agg::{polygon_area_sum_term, semilinear_volume, volume_by_sweep_2d};
use cqa_approx::baselines::{
    hit_and_run_volume, is_variable_independent, rejection_volume, variable_independent_volume,
};
use cqa_approx::john::john_volume_bounds;
use cqa_approx::km::paper_example_cost;
use cqa_approx::mc::{mc_volume_in_unit_box, UniformVolumeEstimator};
use cqa_approx::sample::{sample_size, Witness};
use cqa_approx::separating::{
    find_separating_sentence, good_instance_volumes, GoodInstance, CANDIDATES,
};
use cqa_approx::trivial::trivial_volume_approximation;
use cqa_approx::vc::{bit_test_database, bit_test_shatters, goldberg_jerrum_c, prop6_bound};
use cqa_arith::{rat, Rat};
use cqa_core::Database;
use cqa_geom::{polygon_area, volume, volume_in_unit_box, HPolyhedron};
use cqa_logic::{parse_formula_with, VarMap};
use cqa_poly::Var;
use std::fmt::Write;

/// E1 — Section-3 worked example: exact volume `(x₂²−x₁²)/2`, Monte Carlo
/// approximation error, and the Karpinski–Macintyre formula blow-up.
pub fn e1(out: &mut String) {
    writeln!(out, "E1: §3 worked example — φ(x1,x2;y1,y2) over U ⊆ [0,1]").unwrap();
    writeln!(
        out,
        "  exact VOL_I(φ(a,b,·)) = (b²−a²)/2; MC with shared sample\n"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>6} {:>6} {:>10} {:>10} {:>10}",
        "a", "b", "exact", "mc", "abs err"
    )
    .unwrap();
    let mut vars = VarMap::new();
    let y1 = vars.intern("y1");
    let y2 = vars.intern("y2");
    let a_v = vars.intern("a");
    let b_v = vars.intern("b");
    let db = Database::new();
    let phi = parse_formula_with("a < y1 & y1 < b & 0 <= y2 & y2 <= y1", &mut vars).unwrap();
    let mut w = Witness::new(2024);
    let est =
        UniformVolumeEstimator::new(&db, &phi, &[a_v, b_v], &[y1, y2], 0.05, 0.1, 3.0, &mut w)
            .unwrap();
    let mut max_err = 0.0f64;
    for (a, b) in [(0i64, 4i64), (0, 2), (1, 3), (1, 4), (2, 4)] {
        let (ar, br) = (rat(a, 4), rat(b, 4));
        let exact = (br.to_f64().powi(2) - ar.to_f64().powi(2)) / 2.0;
        let mc = est.estimate(&[ar.clone(), br.clone()]).unwrap().to_f64();
        let err = (mc - exact).abs();
        max_err = max_err.max(err);
        writeln!(
            out,
            "  {:>6} {:>6} {:>10.4} {:>10.4} {:>10.4}",
            format!("{a}/4"),
            format!("{b}/4"),
            exact,
            mc,
            err
        )
        .unwrap();
    }
    writeln!(
        out,
        "  sup error over grid: {max_err:.4} (sample size {})\n",
        est.sample_len()
    )
    .unwrap();
    writeln!(
        out,
        "  Karpinski–Macintyre blow-up (ε = 1/10, model under-approximates [25]):"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>6} {:>12} {:>14} {:>14}",
        "n=|U|", "VCdim bound", "atoms", "quantifiers"
    )
    .unwrap();
    for n in [4usize, 8, 16, 32, 64] {
        let c = paper_example_cost(n, 0.1);
        writeln!(
            out,
            "  {:>6} {:>12.0} {:>14.3e} {:>14.3e}",
            n, c.vc_dim, c.atoms, c.quantifiers
        )
        .unwrap();
    }
    writeln!(
        out,
        "  paper claim: ≥ 1e9 atoms, ≥ 1e11 quantifiers — reproduced.\n"
    )
    .unwrap();
}

/// E2 — Theorem 3: exact volumes of semi-linear sets (closed forms + the
/// sweep construction vs the Lasserre engine).
pub fn e2(out: &mut String) {
    writeln!(out, "E2: Theorem 3 — exact semi-linear volumes").unwrap();
    writeln!(out, "  {:<34} {:>10} {:>10}", "set", "computed", "expected").unwrap();
    let cases: [(&str, &[&str], Rat); 5] = [
        ("triangle x,y≥0, x+y≤1", &["x", "y"], rat(1, 2)),
        ("simplex dim 3", &["x", "y", "z"], rat(1, 6)),
        ("simplex dim 4", &["x", "y", "z", "w"], rat(1, 24)),
        ("cross-polytope |x|+|y|≤1", &["x", "y"], rat(2, 1)),
        ("overlapping squares", &["x", "y"], rat(7, 1)),
    ];
    let srcs = [
        "x >= 0 & y >= 0 & x + y <= 1",
        "x >= 0 & y >= 0 & z >= 0 & x + y + z <= 1",
        "x >= 0 & y >= 0 & z >= 0 & w >= 0 & x + y + z + w <= 1",
        "(x >= 0 & y >= 0 & x + y <= 1) | (x <= 0 & y >= 0 & y - x <= 1) | (x >= 0 & y <= 0 & x - y <= 1) | (x <= 0 & y <= 0 & 0 - x - y <= 1)",
        "(0 <= x & x <= 2 & 0 <= y & y <= 2) | (1 <= x & x <= 3 & 1 <= y & y <= 3)",
    ];
    for ((label, names, expect), src) in cases.iter().zip(srcs) {
        let mut vars = VarMap::new();
        let vs: Vec<Var> = names.iter().map(|n| vars.intern(n)).collect();
        let f = parse_formula_with(src, &mut vars).unwrap();
        let v = volume(&f, &vs).unwrap();
        writeln!(
            out,
            "  {:<34} {:>10} {:>10}",
            label,
            v.to_string(),
            expect.to_string()
        )
        .unwrap();
        assert_eq!(&v, expect);
    }
    writeln!(
        out,
        "\n  sweep (paper's proof) vs Lasserre on random 2-D unions:"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>6} {:>12} {:>12} {:>8}",
        "seed", "sweep", "lasserre", "equal"
    )
    .unwrap();
    for seed in 0..6u64 {
        let mut vars = VarMap::new();
        let (f, vs) = workloads::random_box_union(3, seed, &mut vars);
        let s = volume_by_sweep_2d(&f, vs[0], vs[1]).unwrap();
        let l = volume(&f, &vs).unwrap();
        writeln!(
            out,
            "  {:>6} {:>12} {:>12} {:>8}",
            seed,
            s.to_string(),
            l.to_string(),
            s == l
        )
        .unwrap();
        assert_eq!(s, l);
    }
    writeln!(out).unwrap();
}

/// E3 — Theorem 4: one shared `M(ε,δ,d)` sample is ε-accurate uniformly
/// over the parameter grid, in ≥ 1−δ of trials.
pub fn e3(out: &mut String) {
    writeln!(
        out,
        "E3: Theorem 4 — uniform MC volume with M(ε,δ,d) witnesses"
    )
    .unwrap();
    writeln!(
        out,
        "  family: φ(a; y1,y2) ≡ a<y1<1 ∧ 0≤y2≤y1, VOL = (1−a²)/2"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>6} {:>6} {:>8} {:>8} {:>10}",
        "ε", "δ", "M", "trials", "success"
    )
    .unwrap();
    for (eps, delta) in [(0.1, 0.1), (0.05, 0.1), (0.1, 0.05)] {
        let m = sample_size(eps, delta, 2.0);
        let trials = 40;
        let mut ok = 0;
        for t in 0..trials {
            let mut vars = VarMap::new();
            let a_v = vars.intern("a");
            let y1 = vars.intern("y1");
            let y2 = vars.intern("y2");
            let db = Database::new();
            let phi =
                parse_formula_with("a < y1 & y1 < 1 & 0 <= y2 & y2 <= y1", &mut vars).unwrap();
            let mut w = Witness::new(1000 + t);
            let est =
                UniformVolumeEstimator::new(&db, &phi, &[a_v], &[y1, y2], eps, delta, 2.0, &mut w)
                    .unwrap();
            let mut sup = 0.0f64;
            for k in 0..=10 {
                let av = Rat::new(k.into(), 10i64.into());
                let truth = (1.0 - av.to_f64().powi(2)) / 2.0;
                sup = sup.max((est.estimate(&[av]).unwrap().to_f64() - truth).abs());
            }
            if sup < eps {
                ok += 1;
            }
        }
        let rate = ok as f64 / trials as f64;
        writeln!(
            out,
            "  {:>6} {:>6} {:>8} {:>8} {:>9.0}%",
            eps,
            delta,
            m,
            trials,
            rate * 100.0
        )
        .unwrap();
        assert!(rate >= 1.0 - delta, "uniform success rate below 1-δ");
    }
    writeln!(out).unwrap();
}

/// E4 — Propositions 5 & 6: VC dimension of definable families over the
/// database grows like log|D| and is bounded by C·log|D|.
pub fn e4(out: &mut String) {
    writeln!(out, "E4: Prop 5 & 6 — VC dimension vs database size").unwrap();
    writeln!(
        out,
        "  bit-test family φ(x,y) ≡ R(x,y), D_k = bits of 0..2^k"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>3} {:>8} {:>10} {:>12} {:>14}",
        "k", "|D|", "shatters k", "log2|D|", "C·log2|D|"
    )
    .unwrap();
    let c = goldberg_jerrum_c(1, 2, 0, 1, 1);
    for k in 1..=6u32 {
        let (_, size) = bit_test_database(k);
        let shat = bit_test_shatters(k);
        assert!(shat);
        writeln!(
            out,
            "  {:>3} {:>8} {:>10} {:>12.2} {:>14.1}",
            k,
            size,
            shat,
            (size as f64).log2(),
            prop6_bound(c, size)
        )
        .unwrap();
        // Prop 5 lower bound vs Prop 6 upper bound sandwich.
        assert!((k as f64) <= prop6_bound(c, size));
    }
    writeln!(
        out,
        "  VCdim ≥ k ≈ log|D| (Prop 5), and ≤ C·log|D| with C = {c:.1} (Prop 6)\n"
    )
    .unwrap();
}

/// E5 — non-closure: the arctan set (§2) is not semi-linear; the exact
/// engine refuses, the MC approximator still answers.
pub fn e5(out: &mut String) {
    writeln!(
        out,
        "E5: non-closure — VOL_I slice of epigraph of 1/(1+y²) = arctan(x)"
    )
    .unwrap();
    let mut vars = VarMap::new();
    let y = vars.intern("y");
    let z = vars.intern("z");
    let db = Database::new();
    // At x = 1: {(y,z) : 0 ≤ y ≤ 1 ∧ 0 ≤ z·(1+y²) ≤ 1} ∩ I².
    let f = parse_formula_with("0 <= y & y <= 1 & 0 <= z & z + z*y*y <= 1", &mut vars).unwrap();
    let exact = volume(&f, &[y, z]);
    writeln!(
        out,
        "  exact semi-linear engine: {:?} (refuses: polynomial atoms)",
        exact.is_err()
    )
    .unwrap();
    assert!(exact.is_err());
    let mut w = Witness::new(7);
    let mc = mc_volume_in_unit_box(&db, &f, &[y, z], 20_000, &mut w).unwrap();
    let truth = std::f64::consts::FRAC_PI_4; // arctan(1)
    writeln!(
        out,
        "  MC estimate: {:.4}   arctan(1) = π/4 ≈ {:.4}   |err| = {:.4}",
        mc.to_f64(),
        truth,
        (mc.to_f64() - truth).abs()
    )
    .unwrap();
    assert!((mc.to_f64() - truth).abs() < 0.02);
    writeln!(
        out,
        "  (π/4 is transcendental: no FO+POLY output formula could denote it)\n"
    )
    .unwrap();
}

/// E6 — Section-5 worked example: polygon area in FO+POLY+SUM equals the
/// shoelace area.
pub fn e6(out: &mut String) {
    writeln!(
        out,
        "E6: §5 worked example — polygon area by FO+POLY+SUM triangulation"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>6} {:>10} {:>14} {:>14} {:>8}",
        "seed", "vertices", "sum-term", "shoelace", "equal"
    )
    .unwrap();
    for seed in 0..8u64 {
        let poly = workloads::random_convex_polygon(12, seed);
        if poly.len() < 3 {
            continue;
        }
        let by_sum = polygon_area_sum_term(&poly);
        let by_shoelace = polygon_area(&poly);
        writeln!(
            out,
            "  {:>6} {:>10} {:>14} {:>14} {:>8}",
            seed,
            poly.len(),
            by_sum.to_string(),
            by_shoelace.to_string(),
            by_sum == by_shoelace
        )
        .unwrap();
        assert_eq!(by_sum, by_shoelace);
    }
    writeln!(out).unwrap();
}

/// E7 — Prop 4 vs Thm 2: the trivial 1/2 approximator is valid for
/// ε ≥ 1/2; every bounded-template FO_act candidate fails to separate for
/// ε < 1/2.
pub fn e7(out: &mut String) {
    writeln!(
        out,
        "E7: Prop 4 (trivial ε ≥ 1/2 approximation) vs Thm 2 (ε < 1/2 impossible)"
    )
    .unwrap();
    writeln!(
        out,
        "  trivial approximator error on assorted sets (must be ≤ 1/2):"
    )
    .unwrap();
    let mut vars = VarMap::new();
    let vs: Vec<Var> = ["x", "y"].iter().map(|n| vars.intern(n)).collect();
    for src in ["x + y <= 1", "x >= 0.9", "x = 0.5", "true", "false"] {
        let f = parse_formula_with(src, &mut vars).unwrap();
        let est = trivial_volume_approximation(&f, &vs).unwrap();
        let truth = volume_in_unit_box(&f, &vs).unwrap();
        let err = (est.clone() - truth.clone()).abs();
        writeln!(
            out,
            "    {:<14} est {:>4}  true {:>4}  err {}",
            src,
            est.to_string(),
            truth.to_string(),
            err
        )
        .unwrap();
        assert!(err <= rat(1, 2));
    }
    writeln!(
        out,
        "\n  separating-sentence sweep (c1 = c2 = 2, n ≤ 12): candidates that separate:"
    )
    .unwrap();
    let winners = find_separating_sentence(2.0, 2.0, 12);
    writeln!(
        out,
        "    {} of {} templates separate → {:?}",
        winners.len(),
        CANDIDATES.len(),
        winners
    )
    .unwrap();
    assert!(winners.is_empty());
    writeln!(
        out,
        "\n  Thm-2 reduction: good instance → interval volumes (VOL X + VOL Y = 1):"
    )
    .unwrap();
    for (n, k) in [(6, 2), (8, 5), (10, 3)] {
        let mask: Vec<bool> = (0..n).map(|i| i < k).collect();
        let inst = GoodInstance::new(n, mask).unwrap();
        let (vx, vy) = good_instance_volumes(&inst);
        writeln!(
            out,
            "    n={n} card(B)={k}: VOL(X)={vx} VOL(Y)={vy} (card(B)/n = {k}/{n})"
        )
        .unwrap();
        assert_eq!(&vx + &vy, Rat::one());
        assert_eq!(vx, rat(k as i64, n as i64));
    }
    writeln!(out).unwrap();
}

/// E8 — the variable-independence baseline: exact where it applies, and a
/// measurement of how rarely it applies.
pub fn e8(out: &mut String) {
    writeln!(
        out,
        "E8: variable-independence baseline (Chomicki–Goldin–Kuper)"
    )
    .unwrap();
    // Where it applies, it matches the general engine.
    let mut agree = 0;
    let mut applicable = 0;
    let total = 24;
    for seed in 0..total {
        let mut vars = VarMap::new();
        let (f, vs) = workloads::random_box_union(2, seed, &mut vars);
        if is_variable_independent(&f) {
            applicable += 1;
            let vi = variable_independent_volume(&f, &vs).unwrap();
            let general = volume(&f, &vs).unwrap();
            if vi == general {
                agree += 1;
            }
        }
    }
    writeln!(out, "  axis-aligned box unions: applicable {applicable}/{total}, exact-match {agree}/{applicable}").unwrap();
    assert_eq!(agree, applicable);
    // Restrictiveness: random simplex workloads are never variable
    // independent.
    let mut vi_count = 0;
    for seed in 0..total {
        let mut vars = VarMap::new();
        let (f, _) = workloads::random_simplex_formula(2, seed, &mut vars);
        if is_variable_independent(&f) {
            vi_count += 1;
        }
    }
    writeln!(out, "  random simplices (the paper's 'sets that arise most often'): {vi_count}/{total} variable independent").unwrap();
    assert_eq!(vi_count, 0);
    writeln!(
        out,
        "  → the condition excludes the common spatial workloads, as §1 argues.\n"
    )
    .unwrap();
}

/// E9 — QE closure and cost: FM vs LW agreement on random linear queries;
/// Cohen–Hörmander on polynomial sentences.
pub fn e9(out: &mut String) {
    writeln!(
        out,
        "E9: QE closure — FO+LIN outputs stay linear; engines agree"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>6} {:>7} {:>7} {:>14} {:>10}",
        "seed", "atoms", "quant", "output atoms", "agree"
    )
    .unwrap();
    for seed in 0..8u64 {
        let mut vars = VarMap::new();
        let q = workloads::random_linear_query(2, 2, 6, seed, &mut vars);
        let fm = cqa_qe::fourier_motzkin(&q).unwrap();
        let lw = cqa_qe::loos_weispfenning(&q).unwrap();
        // Agreement checked semantically on a grid.
        let vars_v: Vec<Var> = fm.free_vars().union(&lw.free_vars()).copied().collect();
        let mut agree = true;
        for a in -4..=4 {
            for b in -4..=4 {
                let asg = |v: Var| {
                    let pos = vars_v.iter().position(|&w| w == v).unwrap_or(0);
                    rat(if pos == 0 { a } else { b }, 2)
                };
                if fm.eval(&asg, &[]) != lw.eval(&asg, &[]) {
                    agree = false;
                }
            }
        }
        writeln!(
            out,
            "  {:>6} {:>7} {:>7} {:>14} {:>10}",
            seed,
            q.atom_count(),
            q.quantifier_count(),
            fm.atom_count(),
            agree
        )
        .unwrap();
        assert!(agree);
        assert!(fm.is_quantifier_free());
    }
    writeln!(out, "\n  Cohen–Hörmander decisions on FO+POLY sentences:").unwrap();
    let sentences = [
        ("exists x. x*x = 2", true),
        ("forall x. x*x + 1 > 0", true),
        ("exists x. x*x + 1 < 0", false),
        ("forall x. exists y. y*y*y = x", true),
        ("exists y. forall x. y > x*x", false),
    ];
    for (src, expect) in sentences {
        let (f, _) = cqa_logic::parse_formula(src).unwrap();
        let got = cqa_qe::decide_sentence(&f).unwrap();
        writeln!(out, "    {src:<32} -> {got}").unwrap();
        assert_eq!(got, expect);
    }
    writeln!(out).unwrap();
}

/// E10 — Löwner–John relative approximation for convex outputs (§4.3
/// remark): bounds bracket the true volume within the kᵏ band.
pub fn e10(out: &mut String) {
    writeln!(
        out,
        "E10: Löwner–John relative approximation (convex sets, k^k band)"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>6} {:>4} {:>12} {:>12} {:>12} {:>8}",
        "seed", "k", "inner", "true", "outer", "in band"
    )
    .unwrap();
    for seed in 0..6u64 {
        let poly = workloads::random_convex_polygon(10, seed);
        if poly.len() < 3 {
            continue;
        }
        let truth = polygon_area(&poly).to_f64();
        let pts: Vec<Vec<f64>> = poly
            .iter()
            .map(|(x, y)| vec![x.to_f64(), y.to_f64()])
            .collect();
        let b = john_volume_bounds(&pts).unwrap();
        let ok = b.inner_volume <= truth * 1.001 && truth <= b.outer_volume * 1.001;
        writeln!(
            out,
            "  {:>6} {:>4} {:>12.3} {:>12.3} {:>12.3} {:>8}",
            seed, 2, b.inner_volume, truth, b.outer_volume, ok
        )
        .unwrap();
        assert!(ok);
    }
    writeln!(out, "  k = 2 → guaranteed ratio k^k = 4 between bounds.\n").unwrap();
}

/// E11 — randomized volume baselines vs the exact engine: accuracy at
/// fixed sample budget.
pub fn e11(out: &mut String) {
    writeln!(
        out,
        "E11: volume baselines on convex polytopes (20k samples each)"
    )
    .unwrap();
    writeln!(
        out,
        "  {:>16} {:>10} {:>12} {:>12} {:>12}",
        "body", "exact", "rejection", "hit&run", "worst |rel|"
    )
    .unwrap();
    let bodies: [(&str, &str, &[&str], &[f64]); 3] = [
        (
            "triangle",
            "x >= 0 & y >= 0 & x + y <= 1",
            &["x", "y"],
            &[0.3, 0.3],
        ),
        (
            "unit square",
            "0 <= x & x <= 1 & 0 <= y & y <= 1",
            &["x", "y"],
            &[0.5, 0.5],
        ),
        (
            "3-simplex",
            "x >= 0 & y >= 0 & z >= 0 & x + y + z <= 1",
            &["x", "y", "z"],
            &[0.2, 0.2, 0.2],
        ),
    ];
    for (label, src, names, interior) in bodies {
        let mut vars = VarMap::new();
        let vs: Vec<Var> = names.iter().map(|n| vars.intern(n)).collect();
        let f = parse_formula_with(src, &mut vars).unwrap();
        let exact = volume(&f, &vs).unwrap().to_f64();
        let atoms = collect_atoms(&f);
        let p = HPolyhedron::from_atoms(&atoms, &vs).unwrap();
        let d = vs.len();
        let rej = rejection_volume(&p, &vec![0.0; d], &vec![1.0; d], 20_000, 5);
        let har = hit_and_run_volume(&p, interior, 20_000, 5);
        let rel = ((rej - exact) / exact)
            .abs()
            .max(((har - exact) / exact).abs());
        writeln!(
            out,
            "  {:>16} {:>10.4} {:>12.4} {:>12.4} {:>12.3}",
            label, exact, rej, har, rel
        )
        .unwrap();
        assert!(((rej - exact) / exact).abs() < 0.1);
    }
    writeln!(
        out,
        "  exact engine is the reference; baselines trade accuracy for generality.\n"
    )
    .unwrap();
}

/// E12 — Lemma 4 closure: FO+POLY+SUM aggregate evaluation returns
/// rationals (semi-algebraic singletons) and SAF aggregates work on query
/// outputs.
pub fn e12(out: &mut String) {
    use cqa_agg::{aggregate, Aggregate};
    writeln!(
        out,
        "E12: Lemma 4 — closure and SAF aggregates of FO+POLY+SUM"
    )
    .unwrap();
    let mut db = Database::new();
    db.add_finite_relation(
        "U",
        vec![
            vec![rat(1, 4)],
            vec![rat(1, 2)],
            vec![rat(3, 4)],
            vec![rat(9, 10)],
        ],
    )
    .unwrap();
    db.define("S", &["s"], "0 <= s & s <= 1").unwrap();
    let x = db.vars_mut().intern("x");
    let q = parse_formula_with("U(x) & S(x) & x >= 0.5", db.vars_mut()).unwrap();
    let idty = cqa_poly::MPoly::var(x);
    let rows = [
        (
            "COUNT",
            aggregate(&db, &q, &[x], &idty, Aggregate::Count).unwrap(),
            rat(3, 1),
        ),
        (
            "SUM",
            aggregate(&db, &q, &[x], &idty, Aggregate::Sum).unwrap(),
            rat(43, 20),
        ),
        (
            "AVG",
            aggregate(&db, &q, &[x], &idty, Aggregate::Avg).unwrap(),
            rat(43, 60),
        ),
        (
            "MIN",
            aggregate(&db, &q, &[x], &idty, Aggregate::Min).unwrap(),
            rat(1, 2),
        ),
        (
            "MAX",
            aggregate(&db, &q, &[x], &idty, Aggregate::Max).unwrap(),
            rat(9, 10),
        ),
    ];
    writeln!(
        out,
        "  query: U(x) ∧ S(x) ∧ x ≥ 1/2 over U = {{1/4, 1/2, 3/4, 9/10}}"
    )
    .unwrap();
    for (name, got, expect) in rows {
        writeln!(
            out,
            "    {:<6} = {:<8} (expected {})",
            name,
            got.to_string(),
            expect
        )
        .unwrap();
        assert_eq!(got, expect);
    }
    // Volume of a semi-linear relation through the language (Theorem 3 again,
    // as the closure showcase).
    let mut db2 = Database::new();
    db2.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
        .unwrap();
    let vol = semilinear_volume(&db2, "T").unwrap();
    writeln!(
        out,
        "  VOLUME(T) via the language pipeline: {vol} (exact rational output)\n"
    )
    .unwrap();
    assert_eq!(vol, rat(1, 2));
}

/// E15 — engine prepared-query cache: cold vs warm `EXEC` latency.
///
/// A cold `EXEC` of a prepared FO+POLY volume query pays quantifier
/// elimination + kernel compilation; every warm `EXEC` of the same
/// canonical formula skips both via the shared cache and only reruns the
/// (deterministic) Monte Carlo integration. The measured ratio is the
/// engine's reason to exist; the assertion pins it at ≥ 10×.
pub fn e15(out: &mut String) {
    use cqa_engine::{Engine, EngineConfig};
    use std::time::{Duration, Instant};
    writeln!(
        out,
        "E15: cqa-engine prepared-query cache — cold vs warm EXEC"
    )
    .unwrap();
    let engine = Engine::new(EngineConfig {
        timeout: Some(Duration::from_secs(60)),
        ..EngineConfig::default()
    });
    let query = "exists y. exists z. (x*x + y*y + z*z <= 1 & y >= x*x - 1/2 & z <= y)";
    writeln!(out, "  query: VOL_I of {query}").unwrap();
    let mut session = engine.open_session();
    let r = engine.prepare(&mut session, "lens", query);
    assert!(r.is_ok(), "{r:?}");

    let t0 = Instant::now();
    let cold = engine.exec(&mut session, "lens", Some(0.1), Some(0.05));
    let cold_us = t0.elapsed().as_micros() as f64;
    assert!(cold.is_ok(), "{cold:?}");
    assert!(cold.header.contains("cache=miss"), "{cold:?}");

    // Warm EXECs from a *different* session: the cache is shared across
    // connections, so the second client never pays QE either.
    let mut other = engine.open_session();
    let r = engine.prepare(&mut other, "lens", query);
    assert!(r.is_ok(), "{r:?}");
    const WARM_RUNS: usize = 5;
    let mut warm_us = f64::INFINITY;
    let mut warm_header = String::new();
    for _ in 0..WARM_RUNS {
        let t0 = Instant::now();
        let warm = engine.exec(&mut other, "lens", Some(0.1), Some(0.05));
        warm_us = warm_us.min(t0.elapsed().as_micros() as f64);
        assert!(warm.header.contains("cache=hit"), "{warm:?}");
        warm_header = warm.header;
    }
    let answer = |h: &str| {
        h.split("value=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .unwrap_or("?")
            .to_string()
    };
    assert_eq!(
        answer(&cold.header),
        answer(&warm_header),
        "cache must not change answers"
    );
    let snap = engine.cache.snapshot();
    let speedup = cold_us / warm_us.max(1.0);
    // Wall-clock numbers go to stderr so that `report`'s stdout stays
    // byte-identical across runs (the determinism gate `cmp`s two captures);
    // the recorded snapshot lives in BENCH_engine.json.
    eprintln!(
        "E15 timings: cold {cold_us:.1} µs, warm {warm_us:.1} µs (min of {WARM_RUNS}), \
         speedup {speedup:.1}x"
    );
    writeln!(
        out,
        "  cold EXEC (QE + compile + MC)  -> [{}] cache=miss",
        answer(&cold.header)
    )
    .unwrap();
    writeln!(
        out,
        "  warm EXEC (cache hit, MC only) -> [{}] cache=hit, bit-identical (min of {WARM_RUNS})",
        answer(&warm_header)
    )
    .unwrap();
    writeln!(
        out,
        "  speedup >= 10x asserted (timings on stderr; snapshot in BENCH_engine.json)   \
         cache: hits={} misses={} hit_rate={:.2}\n",
        snap.hits,
        snap.misses,
        snap.hit_rate()
    )
    .unwrap();
    assert!(
        speedup >= 10.0,
        "warm-cache EXEC must be >= 10x faster than cold, got {speedup:.1}x"
    );
}

/// E16 — hash-consed formula IR: FM node dedup on the DNF blow-up
/// workload, and structural-hash cache keys vs. the old string render.
///
/// Part 1 quantifies why the QE layer runs on an interning arena: the DNF
/// expansion of `∃y. ⋀ᵢ (y < xᵢ ∨ xᵢ < y)` has `2^m` clauses built from
/// only `2m` distinct literals, so hash-consing stores the blow-up as a
/// small dag (the Giusti–Heintz straight-line representation argument).
/// Part 2 measures the warm-path cost the engine pays per `EXEC` to key
/// its prepared-query cache: the 128-bit canonical hash must beat the old
/// `canonical_key_for_params` string render by ≥ 2× (asserted).
pub fn e16(out: &mut String) {
    use cqa_logic::budget::EvalBudget;
    use cqa_logic::Arena;
    use std::time::Instant;
    writeln!(
        out,
        "E16: hash-consed formula IR — FM dedup ratio and cache-key cost"
    )
    .unwrap();

    // Part 1: the FM blow-up workload, eliminated through a shared arena.
    const M: usize = 8;
    let mut vars = VarMap::new();
    let mut src = String::from("exists y. ");
    for i in 0..M {
        if i > 0 {
            src.push_str(" & ");
        }
        src.push_str(&format!("(y < x{i} | x{i} < y)"));
    }
    let f = parse_formula_with(&src, &mut vars).unwrap();
    let mut arena = Arena::new();
    let qf = cqa_qe::fourier_motzkin_with_arena(&f, &EvalBudget::unlimited(), &mut arena).unwrap();
    assert!(qf.is_quantifier_free());
    let st = arena.stats();
    let dedup = st.dedup_ratio();
    writeln!(
        out,
        "  FM on phi_{M} = Ey. AND_i (y < x_i | x_i < y): 2^{M} = {} DNF clauses, {} distinct literals",
        1usize << M,
        2 * M
    )
    .unwrap();
    writeln!(
        out,
        "    arena after elimination: nodes={} terms={} intern_calls={} dedup_ratio={dedup:.2}",
        st.nodes, st.terms, st.intern_calls
    )
    .unwrap();
    assert!(
        dedup > 1.0,
        "hash-consing must find sharing on the blow-up workload, got {dedup:.3}"
    );

    // Part 2: per-request cache-key cost on a wide conjunction (the shape
    // a relation-expanded prepared query has after simplification).
    let mut kvars = VarMap::new();
    let mut ksrc = String::new();
    for i in 0..24i64 {
        if i > 0 {
            ksrc.push_str(" & ");
        }
        ksrc.push_str(&format!(
            "({}*a + {}*b + {}*c <= {i})",
            i + 1,
            2 * i + 1,
            3 * i + 2
        ));
    }
    let kf = parse_formula_with(&ksrc, &mut kvars).unwrap();
    let params: Vec<Var> = kf.free_vars().into_iter().collect();
    let mut karena = Arena::new();
    let kid = karena.intern(&kf);
    const REPS: usize = 1_000;
    const ROUNDS: usize = 3;
    let mut str_sink = 0usize;
    let mut hash_sink = 0u128;
    // Min over interleaved rounds: transient machine load hits both sides.
    let (mut string_us, mut hash_us) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        for _ in 0..REPS {
            str_sink ^= kf.canonical_key_for_params(&params).len();
        }
        string_us = string_us.min(t0.elapsed().as_micros() as f64);
        let t0 = Instant::now();
        for _ in 0..REPS {
            hash_sink ^= karena.canonical_hash_for_params(kid, &params);
        }
        hash_us = hash_us.min(t0.elapsed().as_micros() as f64);
    }
    let speedup = string_us / hash_us.max(1.0);
    // Wall-clock numbers go to stderr so that `report`'s stdout stays
    // byte-identical across runs (the determinism gate `cmp`s two
    // captures); the recorded snapshot lives in BENCH_ir.json.
    eprintln!(
        "E16 timings: string key {string_us:.1} µs, hash key {hash_us:.1} µs \
         (min of {ROUNDS} rounds x {REPS} reps), speedup {speedup:.1}x \
         (sinks {str_sink} {hash_sink:032x})"
    );
    writeln!(
        out,
        "  cache-key cost, {REPS} keys of a 24-atom / 3-param conjunction:"
    )
    .unwrap();
    writeln!(
        out,
        "    structural hash vs string render: speedup >= 2x asserted \
         (timings on stderr; snapshot in BENCH_ir.json)\n"
    )
    .unwrap();
    assert!(
        speedup >= 2.0,
        "structural-hash key must be >= 2x cheaper than the string render, got {speedup:.2}x"
    );
}

/// E17 — the vectorized batch kernel: batched vs scalar per-sample cost
/// on the E13 kernel workloads plus a high-fallback adversarial workload,
/// with bit-identical hit counts asserted lane for lane.
///
/// The batch kernel sweeps each atom's coefficients across a whole
/// 512-lane sample chunk in flat `f64` columns, then re-runs only the
/// lanes whose certified error columns admitted a sign flip through the
/// exact rational path — so its output is bit-identical to the per-point
/// `eval_f64` loop by construction, and the only question is speed. The
/// adversarial workload pins every sample to the decision boundary
/// (`y = 1 − x` against `x + y ≤ 1`, exact in `f64`), forcing a 100%
/// exact-fallback rate: the worst case the lane masks must survive.
///
/// Timings go to stderr (stdout stays byte-identical across runs); the
/// measured snapshot is written to BENCH_batch.json. The ≥ 2× floor on
/// the two E13 workloads is asserted here and runs in CI.
pub fn e17(out: &mut String) {
    use cqa_approx::mc::{mc_average_over_threads, mc_volume_in_unit_box_threads};
    use cqa_logic::{Batch, BatchScratch, CompiledMatrix, LaneStats, SlotMap, BATCH_LANES};
    use cqa_poly::MPoly;
    use std::time::Instant;

    writeln!(
        out,
        "E17: vectorized batch kernel — SoA chunk sweep vs per-point eval"
    )
    .unwrap();

    const M: usize = 4096;
    const ROUNDS: usize = 5;

    // Workload matrices: `cols[d][i]` is coordinate `d` of sample `i`,
    // every coordinate a dyadic `f64` so slot columns are exact.
    let mut vars = VarMap::new();
    let (lin, lin_vs) = workloads::linear16_workload(&mut vars);
    let mut vars = VarMap::new();
    let (pol, pol_vs) = workloads::poly3_workload(&mut vars);
    let mut vars = VarMap::new();
    let adv = parse_formula_with("x + y <= 1", &mut vars).unwrap();
    let adv_vs = vec![vars.get("x").unwrap(), vars.get("y").unwrap()];

    let random_cols = |dim: usize, seed: u64| -> Vec<Vec<f64>> {
        let mut w = Witness::new(seed);
        let mut cols = vec![vec![0.0f64; M]; dim];
        let mut pt = vec![0.0f64; dim];
        for i in 0..M {
            w.uniform_unit_point_f64(&mut pt);
            for (col, &v) in cols.iter_mut().zip(pt.iter()) {
                col[i] = v;
            }
        }
        cols
    };
    // Every adversarial sample sits exactly on the boundary: `y = 1 − x`
    // is exact for dyadic `x ∈ [0, 1]`, so `x + y − 1` evaluates to an
    // exact `f64` zero that no nonzero certified error bound can sign.
    let adv_cols = {
        let mut cols = random_cols(2, 17);
        let (xs, ys) = cols.split_at_mut(1);
        for (y, &x) in ys[0].iter_mut().zip(xs[0].iter()) {
            *y = 1.0 - x;
        }
        cols
    };

    struct Measured {
        hits: usize,
        stats: LaneStats,
        scalar_ns: f64,
        batch_ns: f64,
    }

    let run = |f: &cqa_logic::Formula, vs: &[Var], cols: &[Vec<f64>]| -> Measured {
        let slots = SlotMap::from_vars(vs);
        let kernel = CompiledMatrix::compile(f, &slots).expect("QF workload compiles");
        let dim = vs.len();

        let scalar_pass = || -> usize {
            let mut hits = 0usize;
            let mut floats = vec![0.0f64; dim];
            let errs = vec![0.0f64; dim];
            for i in 0..M {
                for (d, col) in cols.iter().enumerate() {
                    floats[d] = col[i];
                }
                let fs = &floats;
                if kernel.eval_f64(fs, &errs, &|s| Rat::from_f64(fs[s]).expect("finite")) {
                    hits += 1;
                }
            }
            hits
        };
        let batch_pass = |stats: &mut LaneStats| -> usize {
            let mut batch = Batch::new(dim);
            let mut scratch = BatchScratch::new();
            let mut hits = 0usize;
            let mut done = 0usize;
            while done < M {
                let len = (M - done).min(BATCH_LANES);
                batch.set_len(len);
                for (d, col) in cols.iter().enumerate() {
                    batch.col_mut(d).copy_from_slice(&col[done..done + len]);
                }
                let b = &batch;
                let r = kernel.eval_batch(
                    b,
                    &|lane, slot| Rat::from_f64(b.value(slot, lane)).expect("finite"),
                    &mut scratch,
                );
                hits += r.mask.count();
                stats.add(&r);
                done += len;
            }
            hits
        };

        let mut stats = LaneStats::default();
        let hits = scalar_pass();
        let batch_hits = batch_pass(&mut stats);
        assert_eq!(
            hits, batch_hits,
            "batched and per-point kernels must agree bit for bit"
        );

        // Min over interleaved rounds: transient load hits both sides.
        let (mut scalar_ns, mut batch_ns) = (f64::INFINITY, f64::INFINITY);
        let mut sink = 0usize;
        for _ in 0..ROUNDS {
            let t0 = Instant::now();
            sink ^= scalar_pass();
            scalar_ns = scalar_ns.min(t0.elapsed().as_nanos() as f64 / M as f64);
            let t0 = Instant::now();
            sink ^= batch_pass(&mut LaneStats::default());
            batch_ns = batch_ns.min(t0.elapsed().as_nanos() as f64 / M as f64);
        }
        let _ = std::hint::black_box(sink);
        Measured {
            hits,
            stats,
            scalar_ns,
            batch_ns,
        }
    };

    let cases = [
        ("linear16", &lin, &lin_vs, &random_cols(2, 13), true),
        ("poly3", &pol, &pol_vs, &random_cols(2, 13), true),
        ("adversarial", &adv, &adv_vs, &adv_cols, false),
    ];
    let mut snapshot = String::new();
    for (name, f, vs, cols, floor) in cases {
        let m = run(f, vs, cols);
        let speedup = m.scalar_ns / m.batch_ns.max(1.0);
        writeln!(
            out,
            "  {name:<12} m={M}: hits={} (bit-identical scalar vs batch), \
             fast_lanes={} exact_lanes={} fallback_rate={:.4}",
            m.hits,
            m.stats.fast,
            m.stats.exact,
            m.stats.fallback_rate()
        )
        .unwrap();
        eprintln!(
            "E17 {name}: scalar {:.1} ns/sample, batch {:.1} ns/sample \
             (min of {ROUNDS} rounds), speedup {speedup:.2}x",
            m.scalar_ns, m.batch_ns
        );
        if floor {
            assert!(
                speedup >= 2.0,
                "batched kernel must be >= 2x faster than per-point eval on {name}, \
                 got {speedup:.2}x"
            );
        }
        write!(
            snapshot,
            "{}    \"{name}\": {{\n      \"description\": \"{}\",\n      \
             \"samples\": {M},\n      \"scalar_ns_per_sample\": {:.1},\n      \
             \"batch_ns_per_sample\": {:.1},\n      \"speedup\": {speedup:.2},\n      \
             \"fast_lanes\": {},\n      \"exact_lanes\": {},\n      \
             \"fallback_rate\": {:.4}\n    }}",
            if snapshot.is_empty() { "" } else { ",\n" },
            match name {
                "linear16" =>
                    "16 linear half-plane atoms (inscribed 16-gon), degree-1 dot-product path",
                "poly3" =>
                    "annulus with cubic wobble, polynomial atoms of degree <= 3, term-sweep path",
                _ => "every sample pinned to the x + y = 1 boundary: 100% exact-fallback lanes",
            },
            m.scalar_ns,
            m.batch_ns,
            m.stats.fast,
            m.stats.exact,
            m.stats.fallback_rate()
        )
        .unwrap();
    }

    // Output identity across thread counts: the batched sampler draws
    // lane-major from per-chunk witness substreams, so volume and SUM
    // estimates are bit-identical for every worker count.
    let db = Database::new();
    let mut vols = Vec::new();
    let mut sums = Vec::new();
    let p = {
        // Integrand x + y over the region (exercises the SUM path).
        let x = lin_vs[0];
        let y = lin_vs[1];
        &MPoly::var(x) + &MPoly::var(y)
    };
    for threads in [1usize, 2, 4] {
        let mut w = Witness::new(42);
        vols.push(
            mc_volume_in_unit_box_threads(&db, &lin, &lin_vs, 2048, &mut w, threads).unwrap(),
        );
        let mut w = Witness::new(42);
        sums.push(
            mc_average_over_threads(&db, &lin, &lin_vs, &p, 2048, &mut w, threads)
                .unwrap()
                .expect("16-gon has hits"),
        );
    }
    assert!(
        vols.windows(2).all(|w| w[0] == w[1]),
        "volume estimate must be bit-identical for every thread count"
    );
    assert!(
        sums.windows(2).all(|w| w[0] == w[1]),
        "SUM estimate must be bit-identical for every thread count"
    );
    writeln!(
        out,
        "  thread identity (threads 1/2/4): VOL_I(16-gon) = {}, AVG(x+y) = {}",
        vols[0], sums[0]
    )
    .unwrap();
    writeln!(
        out,
        "  speedup >= 2x asserted on linear16 and poly3 (target 4x; timings on stderr; \
         snapshot in BENCH_batch.json)\n"
    )
    .unwrap();

    // The measured snapshot, in the shape of BENCH_mc_volume.json.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"batched SoA kernel vs per-point compiled eval \
         (E17, {M} samples per workload)\",\n  \"date\": \"{}\",\n  \
         \"machine\": {{ \"cpus\": {cpus}, \"mode\": \"report e17, release, min of {ROUNDS} \
         interleaved rounds\" }},\n  \"workloads\": {{\n{snapshot}\n  }},\n  \"notes\": [\n    \
         \"Hit counts are asserted bit-identical between the batched and per-point kernels on \
         every workload, including the all-boundary adversarial one.\",\n    \
         \"Volume and SUM estimates are asserted bit-identical for threads 1, 2 and 4: lanes \
         fill in draw order from per-chunk witness substreams.\",\n    \
         \"fallback_rate = exact_lanes / (fast_lanes + exact_lanes); the adversarial workload \
         pins it at 1.0 by construction.\"\n  ]\n}}\n",
        today_utc()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("E17: could not write {path}: {e}");
    }
}

/// E18 — interval abstract interpretation in the engine: static verdicts
/// skip QE, bounds certificates shrink the sampling box.
///
/// Three EXEC workloads against two engines (absint on / off):
///
/// * **statically empty** — a quantified linear query whose free-variable
///   constraints contradict; the on-engine answers `value=0` without ever
///   running Fourier–Motzkin (≥ 10× floor asserted);
/// * **box-shrinkable** — a small disk conjoined with affine range atoms;
///   the derived box certificate lets Monte Carlo discard most lanes
///   before kernel evaluation (≥ 50% skip floor asserted);
/// * **unknown** — a plain quarter disk with no derivable box; absint must
///   stay out of the way (zero skipped lanes asserted).
///
/// Every answer is asserted bit-identical between the two engines (modulo
/// the `steps=` budget counter). Timings go to stderr; the measured
/// snapshot is written to BENCH_absint.json.
pub fn e18(out: &mut String) {
    use cqa_engine::{Engine, EngineConfig, EngineStats};
    use std::time::Instant;

    writeln!(
        out,
        "E18: interval abstract interpretation — static verdicts and box certificates"
    )
    .unwrap();

    const ROUNDS: usize = 5;
    // Plan=false on both sides: this experiment isolates the absint pass,
    // and the QE planner (E19) would otherwise speed up the baseline too.
    let mk = |absint: bool| {
        Engine::new(EngineConfig {
            absint,
            plan: false,
            timeout: Some(std::time::Duration::from_secs(60)),
            ..EngineConfig::default()
        })
    };
    let strip = |h: &str| {
        h.split_whitespace()
            .filter(|t| !t.starts_with("steps="))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let answer = |h: &str| {
        h.split("value=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .unwrap_or("?")
            .to_string()
    };

    // Workload A: statically empty. The ∃-body is a pairwise-coupled
    // 4-variable chain (every yᵢ two-sided against every yⱼ and against x),
    // so Fourier–Motzkin pays its quadratic per-projection growth four
    // times over — but `x > 2 & x < 1` is refuted by interval meet alone,
    // and the linear constraint class makes the ⊥-substitution safe. The
    // residues of the coupled atoms collapse to constants, keeping the
    // un-analyzed engine's exact volume step under its DNF cell limit.
    const EMPTY_K: usize = 4;
    let empty_q = {
        let mut q = String::from("(exists");
        for i in 0..EMPTY_K {
            q.push_str(&format!(" y{i}"));
        }
        q.push_str(". ");
        let mut atoms = Vec::new();
        for i in 0..EMPTY_K {
            atoms.push(format!("x - 1 < y{i}"));
            atoms.push(format!("y{i} < x + 1"));
            for j in (i + 1)..EMPTY_K {
                atoms.push(format!("y{i} - y{j} < 1"));
                atoms.push(format!("y{j} - y{i} < 1"));
            }
        }
        q.push_str(&atoms.join(" & "));
        q.push_str(") & x > 2 & x < 1");
        q
    };
    let empty_q = empty_q.as_str();
    // Workload B: the disk only intersects [2/5, 3/5]², so the box
    // certificate discards 24/25 of the unit-box sample lanes up front.
    let boxed_q = "(x - 1/2)*(x - 1/2) + (y - 1/2)*(y - 1/2) <= 1/100 \
                   & 2/5 <= x & x <= 3/5 & 2/5 <= y & y <= 3/5";
    // Workload C: no affine atom bounds anything — no certificate, and the
    // prefilter must not fire at all.
    let disk_q = "x*x + y*y <= 1";

    // --- A: cold-EXEC latency, fresh engines each round so neither side
    // ever sees a cache hit. The on-engine must be >= 10x faster.
    let (mut on_us, mut off_us) = (f64::INFINITY, f64::INFINITY);
    let mut empty_on_header = String::new();
    let mut empty_off_header = String::new();
    let mut unsat_skips = 0;
    for _ in 0..ROUNDS {
        let on = mk(true);
        let mut s = on.open_session();
        assert!(on.prepare(&mut s, "empty", empty_q).is_ok());
        let t0 = Instant::now();
        let r = on.exec(&mut s, "empty", None, None);
        on_us = on_us.min(t0.elapsed().as_nanos() as f64 / 1e3);
        assert!(r.is_ok(), "{r:?}");
        empty_on_header = r.header;
        unsat_skips = EngineStats::get(&on.stats.absint_unsat_skips);

        let off = mk(false);
        let mut s = off.open_session();
        assert!(off.prepare(&mut s, "empty", empty_q).is_ok());
        let t0 = Instant::now();
        let r = off.exec(&mut s, "empty", None, None);
        off_us = off_us.min(t0.elapsed().as_nanos() as f64 / 1e3);
        assert!(r.is_ok(), "{r:?}");
        empty_off_header = r.header;
    }
    assert_eq!(strip(&empty_on_header), strip(&empty_off_header));
    assert_eq!(answer(&empty_on_header), "0", "{empty_on_header}");
    assert!(unsat_skips >= 1, "static Unsat verdict never fired");
    let empty_speedup = off_us / on_us.max(1.0);
    assert!(
        empty_speedup >= 10.0,
        "statically-empty EXEC must be >= 10x faster with absint, \
         got {empty_speedup:.1}x ({on_us:.1} vs {off_us:.1} us)"
    );
    eprintln!(
        "E18 empty: absint {on_us:.1} us, QE {off_us:.1} us \
         (cold EXEC, min of {ROUNDS} rounds), speedup {empty_speedup:.1}x"
    );
    writeln!(
        out,
        "  statically empty (4 quantifiers, 20 pairwise-coupled linear atoms): value={} on \
         both engines, \
         unsat verdict skips QE (>= 10x floor asserted; timings on stderr)",
        answer(&empty_on_header)
    )
    .unwrap();

    // --- B and C: skip fractions and answer identity on the MC path.
    let mc_case = |name: &str, query: &str| -> (String, String, u64, u64, f64) {
        let on = mk(true);
        let mut s = on.open_session();
        assert!(on.prepare(&mut s, name, query).is_ok());
        let t0 = Instant::now();
        let r_on = on.exec(&mut s, name, Some(0.02), None);
        let on_us = t0.elapsed().as_nanos() as f64 / 1e3;
        assert!(r_on.is_ok(), "{r_on:?}");
        let skipped = EngineStats::get(&on.stats.absint_box_skipped_lanes);
        let evaluated = EngineStats::get(&on.stats.batch_fast_lanes)
            + EngineStats::get(&on.stats.batch_exact_lanes);

        let off = mk(false);
        let mut s = off.open_session();
        assert!(off.prepare(&mut s, name, query).is_ok());
        let t0 = Instant::now();
        let r_off = off.exec(&mut s, name, Some(0.02), None);
        let off_us = t0.elapsed().as_nanos() as f64 / 1e3;
        assert!(r_off.is_ok(), "{r_off:?}");
        assert_eq!(
            EngineStats::get(&off.stats.absint_box_skipped_lanes),
            0,
            "disabled engine must not prefilter"
        );
        assert_eq!(strip(&r_on.header), strip(&r_off.header));
        eprintln!("E18 {name}: absint {on_us:.1} us, plain {off_us:.1} us (single cold EXEC)");
        (answer(&r_on.header), r_on.header, skipped, evaluated, on_us)
    };

    let (boxed_val, _, boxed_skipped, boxed_eval, _) = mc_case("boxed", boxed_q);
    let boxed_frac = boxed_skipped as f64 / (boxed_skipped + boxed_eval).max(1) as f64;
    assert!(
        boxed_frac >= 0.5,
        "box certificate must discard >= 50% of lanes, got {boxed_frac:.3}"
    );
    writeln!(
        out,
        "  box-shrinkable (disk in [2/5,3/5]^2): value={boxed_val}, \
         {boxed_skipped} of {} lanes skipped by the certificate ({:.1}%), \
         answer bit-identical to the unfiltered engine",
        boxed_skipped + boxed_eval,
        100.0 * boxed_frac
    )
    .unwrap();

    let (disk_val, _, disk_skipped, disk_eval, _) = mc_case("disk", disk_q);
    assert_eq!(disk_skipped, 0, "no certificate, so no lane may be skipped");
    writeln!(
        out,
        "  unknown (quarter disk, no affine bounds): value={disk_val}, \
         0 of {disk_eval} lanes skipped — absint stays out of the way"
    )
    .unwrap();
    writeln!(
        out,
        "  all answers bit-identical with absint on/off (modulo the steps= counter); \
         snapshot in BENCH_absint.json\n"
    )
    .unwrap();

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"interval abstract interpretation in the engine \
         (E18: static verdicts skip QE, box certificates shrink the MC box)\",\n  \
         \"date\": \"{}\",\n  \
         \"machine\": {{ \"cpus\": {cpus}, \"mode\": \"report e18, release, cold EXEC, \
         min of {ROUNDS} rounds for the empty workload\" }},\n  \"workloads\": {{\n    \
         \"statically_empty\": {{\n      \"description\": \"4 quantifiers over 20 \
         pairwise-coupled linear atoms under a free-variable range contradiction; absint \
         answers value=0 without QE\",\n      \
         \"absint_us\": {on_us:.1},\n      \"qe_us\": {off_us:.1},\n      \
         \"speedup\": {empty_speedup:.1},\n      \"value\": \"{}\"\n    }},\n    \
         \"box_shrinkable\": {{\n      \"description\": \"disk of radius 1/10 at (1/2, 1/2) \
         conjoined with its bounding box [2/5, 3/5]^2\",\n      \
         \"lanes_skipped\": {boxed_skipped},\n      \"lanes_total\": {},\n      \
         \"skip_fraction\": {boxed_frac:.4},\n      \"value\": \"{boxed_val}\"\n    }},\n    \
         \"unknown\": {{\n      \"description\": \"quarter disk x^2 + y^2 <= 1: no affine \
         bounds, no certificate, zero skipped lanes\",\n      \
         \"lanes_skipped\": {disk_skipped},\n      \"lanes_total\": {disk_eval},\n      \
         \"value\": \"{disk_val}\"\n    }}\n  }},\n  \"notes\": [\n    \
         \"Answers are asserted bit-identical between the absint-enabled and disabled \
         engines on every workload (only the steps= budget counter may differ).\",\n    \
         \"The static skip only fires when the substitution cannot change the constraint \
         class of the cached plan: non-polynomial queries and quantifier-free polynomial \
         queries qualify; quantified polynomial queries still pay QE.\",\n    \
         \"The box prefilter drops lanes after the RNG draw, so the sample stream and all \
         surviving hit decisions are unchanged.\"\n  ]\n}}\n",
        today_utc(),
        answer(&empty_on_header),
        boxed_skipped + boxed_eval,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_absint.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("E18: could not write {path}: {e}");
    }
}

/// E19: the cost-based QE planner and cross-query subplan sharing.
///
/// Eight prepared queries share one expensive quantified linear core — a
/// chain-coupled 2-variable ∃-block — and differ only in a
/// quantifier-free band on the free variable. The planned engine routes
/// the conjunctive core to Fourier–Motzkin, eliminates it once to a plain
/// conjunction and serves the other seven from the shared subplan cache;
/// the `--no-plan` engine (the fixed dispatch pipeline) pays the full
/// Loos–Weispfenning elimination per query, and LW's virtual-substitution
/// output is a multi-arm disjunction whose exact volume costs a `2^m`
/// inclusion–exclusion sweep on every EXEC. Both engines stay on the
/// exact path and their volumes are the same rational, so answers are
/// bit-identical. Asserted: every answer `value=1/10` and bit-identical
/// between the two engines (modulo `steps=`), `>= 7` subplan cache hits,
/// and a `>= 2x` total cold-EXEC speedup. Timings go to stderr; the
/// measured snapshot is written to BENCH_plan.json.
pub fn e19(out: &mut String) {
    use cqa_engine::{Engine, EngineConfig, EngineStats};
    use std::time::Instant;

    writeln!(
        out,
        "E19: cost-based QE planning — method choice and cross-query subplan sharing"
    )
    .unwrap();

    const ROUNDS: usize = 5;
    const QUERIES: usize = 8;
    const CORE_K: usize = 2;

    // The shared core: every yᵢ two-sided against x, neighbours chained
    // within distance 1, plus one-sided range pins so the block does not
    // eliminate to a constant (no static verdict can discharge it).
    // Satisfiable on an interval of x that contains all eight bands.
    let core = {
        let mut q = String::from("(exists");
        for i in 0..CORE_K {
            q.push_str(&format!(" y{i}"));
        }
        q.push_str(". ");
        let mut atoms = Vec::new();
        for i in 0..CORE_K {
            atoms.push(format!("x - 1 < y{i}"));
            atoms.push(format!("y{i} < x + 1"));
            if i + 1 < CORE_K {
                atoms.push(format!("y{i} - y{} < 1", i + 1));
                atoms.push(format!("y{} - y{i} < 1", i + 1));
            }
        }
        atoms.push("y0 > 0".into());
        atoms.push(format!("y{} < 1", CORE_K - 1));
        q.push_str(&atoms.join(" & "));
        q.push(')');
        q
    };
    // Bands [i/20, (i+2)/20] ⊂ [0, 1/2]: structurally overlapping queries
    // whose only difference is quantifier-free.
    let queries: Vec<String> = (0..QUERIES)
        .map(|i| format!("{core} & {i}/20 <= x & x <= {}/20", i + 2))
        .collect();

    let mk = |plan: bool| {
        Engine::new(EngineConfig {
            plan,
            timeout: Some(std::time::Duration::from_secs(60)),
            ..EngineConfig::default()
        })
    };
    let strip = |h: &str| {
        h.split_whitespace()
            .filter(|t| !t.starts_with("steps="))
            .collect::<Vec<_>>()
            .join(" ")
    };

    // Cold EXEC over the whole workload, fresh engines each round so no
    // round ever sees a whole-query cache hit; min-of-rounds totals.
    let (mut plan_us, mut fixed_us) = (f64::INFINITY, f64::INFINITY);
    let mut planned_headers: Vec<String> = Vec::new();
    let mut fixed_headers: Vec<String> = Vec::new();
    let mut prepare_header = String::new();
    let (mut subplan_hits, mut subplan_misses) = (0u64, 0u64);
    let (mut plan_fm, mut plan_lw) = (0u64, 0u64);
    for _ in 0..ROUNDS {
        let on = mk(true);
        let mut s = on.open_session();
        for (i, q) in queries.iter().enumerate() {
            let r = on.prepare(&mut s, &format!("q{i}"), q);
            assert!(r.is_ok(), "{r:?}");
            prepare_header = r.header;
        }
        let t0 = Instant::now();
        let headers: Vec<String> = (0..QUERIES)
            .map(|i| {
                let r = on.exec(&mut s, &format!("q{i}"), None, None);
                assert!(r.is_ok(), "{r:?}");
                r.header
            })
            .collect();
        plan_us = plan_us.min(t0.elapsed().as_nanos() as f64 / 1e3);
        planned_headers = headers;
        let snap = on.cache.snapshot();
        (subplan_hits, subplan_misses) = (snap.subplan_hits, snap.subplan_misses);
        plan_fm = EngineStats::get(&on.stats.plan_fm);
        plan_lw = EngineStats::get(&on.stats.plan_lw);

        let off = mk(false);
        let mut s = off.open_session();
        for (i, q) in queries.iter().enumerate() {
            let r = off.prepare(&mut s, &format!("q{i}"), q);
            assert!(r.is_ok(), "{r:?}");
        }
        let t0 = Instant::now();
        let headers: Vec<String> = (0..QUERIES)
            .map(|i| {
                let r = off.exec(&mut s, &format!("q{i}"), None, None);
                assert!(r.is_ok(), "{r:?}");
                r.header
            })
            .collect();
        fixed_us = fixed_us.min(t0.elapsed().as_nanos() as f64 / 1e3);
        fixed_headers = headers;
    }

    for (p, f) in planned_headers.iter().zip(&fixed_headers) {
        assert_eq!(strip(p), strip(f), "planner on/off answers must agree");
        assert!(
            p.contains("status=exact value=1/10"),
            "each band has measure 1/10: {p}"
        );
    }
    assert!(
        prepare_header.contains(" plan="),
        "PREPARE must report the committed plan: {prepare_header}"
    );
    assert!(
        subplan_hits >= (QUERIES - 1) as u64,
        "seven of eight cores must be served from the subplan cache, \
         got hits={subplan_hits} misses={subplan_misses}"
    );
    let speedup = fixed_us / plan_us.max(1.0);
    assert!(
        speedup >= 2.0,
        "planned+shared workload must be >= 2x faster than the fixed \
         pipeline, got {speedup:.2}x ({plan_us:.1} vs {fixed_us:.1} us)"
    );
    eprintln!(
        "E19: planned {plan_us:.1} us, fixed {fixed_us:.1} us for {QUERIES} cold EXECs \
         (min of {ROUNDS} rounds), speedup {speedup:.1}x, \
         subplan hits {subplan_hits}/{}",
        subplan_hits + subplan_misses
    );
    writeln!(
        out,
        "  {QUERIES} prepared queries sharing a {CORE_K}-quantifier chain-coupled core: \
         every answer value=1/10 (exact) and bit-identical planner on/off"
    )
    .unwrap();
    writeln!(
        out,
        "  subplan cache: {subplan_hits} hits / {subplan_misses} miss — the core is \
         eliminated once (planner routed fm={plan_fm} lw={plan_lw})"
    )
    .unwrap();
    writeln!(
        out,
        "  >= 2x total cold-EXEC speedup over --no-plan asserted \
         (timings on stderr); snapshot in BENCH_plan.json\n"
    )
    .unwrap();

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"cost-based QE planning with cross-query subplan sharing \
         (E19: {QUERIES} overlapping prepared queries, one shared quantified core)\",\n  \
         \"date\": \"{}\",\n  \
         \"machine\": {{ \"cpus\": {cpus}, \"mode\": \"report e19, release, cold EXEC over \
         the full workload, min of {ROUNDS} rounds\" }},\n  \"workload\": {{\n    \
         \"description\": \"{CORE_K}-variable chain-coupled existential core shared by \
         {QUERIES} queries differing only in a quantifier-free band on x, answered on the \
         exact-volume path\",\n    \
         \"queries\": {QUERIES},\n    \"value\": \"1/10\"\n  }},\n  \"results\": {{\n    \
         \"planned_us\": {plan_us:.1},\n    \"fixed_us\": {fixed_us:.1},\n    \
         \"speedup\": {speedup:.2},\n    \"subplan_hits\": {subplan_hits},\n    \
         \"subplan_misses\": {subplan_misses},\n    \
         \"plan_fm\": {plan_fm},\n    \"plan_lw\": {plan_lw}\n  }},\n  \"notes\": [\n    \
         \"Answers are asserted bit-identical between the planned and --no-plan engines \
         (only the steps= budget counter may differ).\",\n    \
         \"Subplan entries live in the shared prepared-query cache under the canonical \
         128-bit hash of the quantified block, in a namespace disjoint from whole-query \
         entries.\",\n    \
         \"Polynomial queries never share subplans: the plan degenerates to the fixed \
         whole-formula Hoermander run to keep the output's constraint class stable.\"\n  \
         ]\n}}\n",
        today_utc(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("E19: could not write {path}: {e}");
    }
}

/// E20 — durable storage: crash recovery plus cache warm-start.
///
/// Runs the E15 lens workload against an engine with `--data-dir`-style
/// durable storage: a cold boot pays full QE for the first EXEC, then the
/// process "crashes" (the engine is dropped with no SHUTDOWN and no flush).
/// A recovered boot replays snapshot+WAL and loads the persisted warm
/// cache, so its first EXEC is a cache hit — time-to-first-answer must be
/// >= 5x faster than the cold boot, with a bit-identical value.
pub fn e20(out: &mut String) {
    use cqa_engine::{Engine, EngineConfig, EngineStats};
    use std::time::{Duration, Instant};
    writeln!(
        out,
        "E20: durable storage — crash recovery and warm-started time-to-first-answer"
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("cqa-e20-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || EngineConfig {
        data_dir: Some(dir.clone()),
        timeout: Some(Duration::from_secs(60)),
        ..EngineConfig::default()
    };
    let program = "rel Ball(x, y, z) := x*x + y*y + z*z <= 1";
    let query = "exists y. exists z. (Ball(x, y, z) & y >= x*x - 1/2 & z <= y)";
    writeln!(
        out,
        "  workload: VOL_I of the E15 lens query over a durable rel"
    )
    .unwrap();
    let answer = |h: &str| {
        h.split("value=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .unwrap_or("?")
            .to_string()
    };

    // Cold boot: empty data dir, full QE on the first EXEC.
    let t0 = Instant::now();
    let engine = Engine::with_storage(cfg()).expect("fresh data dir opens");
    let mut session = engine.open_session();
    assert!(engine.persist(&mut session, "main").is_ok());
    assert!(engine.load(&mut session, program).is_ok());
    assert!(engine.prepare(&mut session, "lens", query).is_ok());
    let cold = engine.exec(&mut session, "lens", Some(0.1), Some(0.05));
    let cold_us = t0.elapsed().as_micros() as f64;
    assert!(cold.is_ok(), "{cold:?}");
    assert!(cold.header.contains("cache=miss"), "{cold:?}");
    let (wal_records, warm_flushes) = {
        let st = engine.storage.as_ref().unwrap().stats();
        (
            EngineStats::get(&st.wal_records),
            EngineStats::get(&st.warm_flushes),
        )
    };
    // The crash: drop with no SHUTDOWN and no flush. Durability must
    // already be on disk (WAL fsync per commit, warm flush per cold miss).
    drop(engine);

    // Recovered boots: replay + warm-start, first EXEC is a hit.
    const RUNS: usize = 3;
    let mut warm_us = f64::INFINITY;
    let mut warm_header = String::new();
    let mut replayed = 0;
    let mut warm_loaded = 0;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let engine = Engine::with_storage(cfg()).expect("recovery succeeds");
        let mut session = engine.open_session();
        assert!(engine.persist(&mut session, "main").is_ok());
        assert!(engine.prepare(&mut session, "lens", query).is_ok());
        let warm = engine.exec(&mut session, "lens", Some(0.1), Some(0.05));
        warm_us = warm_us.min(t0.elapsed().as_micros() as f64);
        assert!(
            warm.header.contains("cache=hit"),
            "recovered boot must warm-start the cache: {warm:?}"
        );
        let st = engine.storage.as_ref().unwrap().stats();
        replayed = EngineStats::get(&st.replayed_records);
        warm_loaded = EngineStats::get(&st.warm_loaded);
        warm_header = warm.header;
    }
    assert_eq!(
        answer(&cold.header),
        answer(&warm_header),
        "recovery must not change answers"
    );
    assert!(replayed >= 1, "recovered boot replays the WAL");
    assert!(warm_loaded >= 1, "recovered boot loads the warm cache");
    let speedup = cold_us / warm_us.max(1.0);
    // Wall-clock numbers go to stderr so that `report`'s stdout stays
    // byte-identical across runs; the recorded snapshot is BENCH_wal.json.
    eprintln!(
        "E20 timings: cold boot-to-answer {cold_us:.1} µs, recovered {warm_us:.1} µs \
         (min of {RUNS}), speedup {speedup:.1}x, wal_records {wal_records}, \
         replayed {replayed}, warm_loaded {warm_loaded}"
    );
    writeln!(
        out,
        "  cold boot  (empty dir, QE on first EXEC)      -> [{}] cache=miss",
        answer(&cold.header)
    )
    .unwrap();
    writeln!(
        out,
        "  recovered  (WAL replay + warm-start, no flush) -> [{}] cache=hit, \
         bit-identical (min of {RUNS})",
        answer(&warm_header)
    )
    .unwrap();
    writeln!(
        out,
        "  {wal_records} WAL records fsynced, {replayed} replayed after the simulated \
         kill; {warm_loaded} warm cache entries loaded"
    )
    .unwrap();
    writeln!(
        out,
        "  >= 5x faster time-to-first-answer on the recovered boot asserted \
         (timings on stderr); snapshot in BENCH_wal.json\n"
    )
    .unwrap();
    assert!(
        speedup >= 5.0,
        "recovered boot must answer >= 5x faster than cold, got {speedup:.1}x"
    );

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"durable storage: crash recovery + cache warm-start \
         (E20: kill the engine after a cold EXEC, reboot, answer from the warm cache)\",\n  \
         \"date\": \"{}\",\n  \
         \"machine\": {{ \"cpus\": {cpus}, \"mode\": \"report e20, release, \
         boot-to-first-answer, min of {RUNS} recovered boots\" }},\n  \"workload\": {{\n    \
         \"description\": \"E15 lens volume over a durable relation: PERSIST + LOAD + \
         PREPARE + EXEC, then drop with no shutdown and recover\",\n    \
         \"value\": \"{}\"\n  }},\n  \"results\": {{\n    \
         \"cold_us\": {cold_us:.1},\n    \"recovered_us\": {warm_us:.1},\n    \
         \"speedup\": {speedup:.2},\n    \"wal_records\": {wal_records},\n    \
         \"replayed_records\": {replayed},\n    \"warm_flushes\": {warm_flushes},\n    \
         \"warm_loaded\": {warm_loaded}\n  }},\n  \"notes\": [\n    \
         \"Every committed LOAD is fsynced to the WAL before the session mutates, and \
         the warm cache is flushed on every cold-miss insert, so a SIGKILL at any point \
         loses at most the in-flight command.\",\n    \
         \"The recovered answer is asserted bit-identical to the pre-crash answer \
         (only the steps= and cache= header tokens may differ).\"\n  ]\n}}\n",
        today_utc(),
        answer(&cold.header),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("E20: could not write {path}: {e}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// E21: the serving layer. Pins the two bit-identity guarantees of the
/// reactor refactor (shard counts {1, 2, 8} and pipelined-vs-serial
/// dispatch produce identical answers), then measures warm-`EXEC`
/// throughput of the pipelined reactor front end against the
/// thread-per-connection baseline at equal worker count and asserts the
/// ≥ 2× floor. The measured snapshot is written to BENCH_serve.json.
pub fn e21(out: &mut String) {
    use cqa_engine::{
        parse_command, read_response, spawn_server, spawn_server_threaded, Engine, EngineConfig,
    };
    use std::io::{BufReader, BufWriter, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::sync::Arc;
    use std::time::Instant;

    writeln!(
        out,
        "E21: serving layer — pipelined reactor vs thread-per-connection baseline"
    )
    .unwrap();

    /// Workers on both servers; also the baseline client count (the
    /// thread-per-connection server admits exactly `workers` sessions).
    const WORKERS: usize = 4;
    const POOL: &[(&str, &str)] = &[
        ("half", "0 <= x & x <= 1/2"),
        ("quarter", "0 <= x & x <= 1/4"),
        ("band", "0 <= x & 0 <= y & x + y <= 1"),
        ("disk", "x*x + y*y <= 1"),
    ];

    fn strip(header: &str) -> String {
        header
            .split_whitespace()
            .filter(|t| !t.starts_with("steps=") && !t.starts_with("cache="))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Connects, retrying while the greeting is `ERR busy` (slots free up
    /// asynchronously after a peer closes).
    fn connect_retry(addr: SocketAddr) -> (BufReader<TcpStream>, BufWriter<TcpStream>) {
        loop {
            let s = TcpStream::connect(addr).expect("connect");
            let mut r = BufReader::new(s.try_clone().expect("clone"));
            match read_response(&mut r) {
                Ok(Some(g)) if g.header.starts_with("OK") => {
                    return (r, BufWriter::new(s));
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(2)),
            }
        }
    }

    fn send(
        r: &mut BufReader<TcpStream>,
        w: &mut BufWriter<TcpStream>,
        line: &str,
    ) -> cqa_engine::Response {
        writeln!(w, "{line}").unwrap();
        w.flush().unwrap();
        read_response(r).unwrap().expect("response")
    }

    fn p99(lats: &mut [u64]) -> u64 {
        lats.sort_unstable();
        lats[(lats.len() * 99 / 100).min(lats.len() - 1)]
    }

    // -- Bit-identity pin 1: cache shard counts change contention only. --
    let transcript_for = |shards: usize| -> Vec<String> {
        let e = Engine::new(EngineConfig {
            cache_shards: shards,
            ..EngineConfig::default()
        });
        let mut s = e.open_session();
        let mut t = Vec::new();
        for _ in 0..2 {
            for (name, src) in POOL {
                let r = e.prepare(&mut s, name, src);
                assert!(r.is_ok(), "{r:?}");
                t.push(strip(&e.exec(&mut s, name, None, None).header));
            }
        }
        t
    };
    let reference = transcript_for(1);
    for shards in [2usize, 8] {
        assert_eq!(
            transcript_for(shards),
            reference,
            "answers diverged at cache_shards={shards}"
        );
    }
    writeln!(
        out,
        "  bit-identity: shard counts {{1, 2, 8}} -> identical answer transcripts"
    )
    .unwrap();

    // -- Bit-identity pin 2: pipelining changes scheduling, not answers. --
    let lines: Vec<String> = POOL
        .iter()
        .flat_map(|(name, src)| [format!("PREPARE {name} {src}"), format!("EXEC {name}")])
        .collect();
    let serial: Vec<String> = {
        let e = Engine::new(EngineConfig::default());
        let mut s = e.open_session();
        lines
            .iter()
            .map(|l| strip(&e.dispatch(&mut s, parse_command(l).expect(l)).header))
            .collect()
    };
    {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: WORKERS,
            ..EngineConfig::default()
        }));
        let handle = spawn_server(engine).expect("spawn reactor");
        let (mut r, mut w) = connect_retry(handle.addr());
        for (k, line) in lines.iter().enumerate() {
            writeln!(w, "@{k} {line}").unwrap();
        }
        w.flush().unwrap();
        for (k, want) in serial.iter().enumerate() {
            let resp = read_response(&mut r).unwrap().expect("response");
            let tag = format!("@{k} ");
            assert!(resp.header.starts_with(&tag), "out of order: {resp:?}");
            assert_eq!(
                &strip(&resp.header[tag.len()..]),
                want,
                "pipelined answer {k} diverged from serial dispatch"
            );
        }
        assert!(send(&mut r, &mut w, "SHUTDOWN").is_ok());
        handle.join().expect("join");
    }
    writeln!(
        out,
        "  bit-identity: pipelined wire responses in request order == serial dispatch"
    )
    .unwrap();

    // -- Baseline: thread-per-connection, one warm EXEC per round trip.
    // The probe query is statically decided (absint verdict: empty), so
    // per-op compute is a few µs and the measurement isolates serving
    // overhead — the thing this refactor changes — rather than QE or
    // integration cost. --
    const BASE_OPS: usize = 400;
    let run_baseline = || {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: WORKERS,
            ..EngineConfig::default()
        }));
        let handle = spawn_server_threaded(engine).expect("spawn baseline");
        let addr = handle.addr();
        {
            // Warm the shared prepared-query cache before measuring.
            let (mut r, mut w) = connect_retry(addr);
            assert!(send(&mut r, &mut w, "PREPARE probe x <= 0 & x >= 1").is_ok());
            assert!(send(&mut r, &mut w, "EXEC probe").is_ok());
            assert!(send(&mut r, &mut w, "CLOSE").is_ok());
        }
        let t0 = Instant::now();
        let joins: Vec<_> = (0..WORKERS)
            .map(|_| {
                std::thread::spawn(move || {
                    let (mut r, mut w) = connect_retry(addr);
                    assert!(send(&mut r, &mut w, "PREPARE probe x <= 0 & x >= 1").is_ok());
                    let mut lats = Vec::with_capacity(BASE_OPS);
                    for _ in 0..BASE_OPS {
                        let t = Instant::now();
                        let resp = send(&mut r, &mut w, "EXEC probe");
                        assert!(resp.header.contains("value=0"), "{resp:?}");
                        lats.push(t.elapsed().as_micros() as u64);
                    }
                    assert!(send(&mut r, &mut w, "CLOSE").is_ok());
                    lats
                })
            })
            .collect();
        let lats: Vec<u64> = joins
            .into_iter()
            .flat_map(|j| j.join().expect("baseline client"))
            .collect();
        let wall = t0.elapsed();
        let (mut r, mut w) = connect_retry(addr);
        assert!(send(&mut r, &mut w, "SHUTDOWN").is_ok());
        handle.join().expect("join baseline");
        (wall, lats)
    };
    // Best of two runs per side: on a loaded (or single-CPU) machine one
    // run can eat a scheduling hiccup; the floor should compare steady
    // states, not noise.
    let (base_wall, mut base_lats) = {
        let (w1, l1) = run_baseline();
        let (w2, l2) = run_baseline();
        if w1 <= w2 {
            (w1, l1)
        } else {
            (w2, l2)
        }
    };
    let base_ops = WORKERS * BASE_OPS;
    let base_rate = base_ops as f64 / base_wall.as_secs_f64();

    // -- Reactor: 8x the clients, BATCH amortizing the round trip. --
    const CLIENTS: usize = 32;
    const BATCHES: usize = 4;
    const SPECS: usize = 128;
    let run_reactor = || {
        let engine = Arc::new(Engine::new(EngineConfig {
            workers: WORKERS,
            max_sessions: CLIENTS + 8,
            ..EngineConfig::default()
        }));
        let handle = spawn_server(engine).expect("spawn reactor");
        let addr = handle.addr();
        {
            let (mut r, mut w) = connect_retry(addr);
            assert!(send(&mut r, &mut w, "PREPARE probe x <= 0 & x >= 1").is_ok());
            assert!(send(&mut r, &mut w, "EXEC probe").is_ok());
            assert!(send(&mut r, &mut w, "CLOSE").is_ok());
        }
        let body: Arc<String> = Arc::new("probe\n".repeat(SPECS));
        let t0 = Instant::now();
        let joins: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let body = Arc::clone(&body);
                std::thread::spawn(move || {
                    let (mut r, mut w) = connect_retry(addr);
                    assert!(send(&mut r, &mut w, "PREPARE probe x <= 0 & x >= 1").is_ok());
                    let mut lats = Vec::with_capacity(BATCHES);
                    for _ in 0..BATCHES {
                        let t = Instant::now();
                        write!(w, "BATCH\n{body}.\n").unwrap();
                        w.flush().unwrap();
                        let resp = read_response(&mut r).unwrap().expect("batch response");
                        assert!(
                            resp.header
                                .starts_with(&format!("OK BATCH n={SPECS} errors=0")),
                            "{resp:?}"
                        );
                        lats.push(t.elapsed().as_micros() as u64);
                    }
                    assert!(send(&mut r, &mut w, "CLOSE").is_ok());
                    lats
                })
            })
            .collect();
        let lats: Vec<u64> = joins
            .into_iter()
            .flat_map(|j| j.join().expect("reactor client"))
            .collect();
        let wall = t0.elapsed();
        let (mut r, mut w) = connect_retry(addr);
        assert!(send(&mut r, &mut w, "SHUTDOWN").is_ok());
        handle.join().expect("join reactor");
        (wall, lats)
    };
    let (reactor_wall, mut batch_lats) = {
        let (w1, l1) = run_reactor();
        let (w2, l2) = run_reactor();
        if w1 <= w2 {
            (w1, l1)
        } else {
            (w2, l2)
        }
    };
    let reactor_ops = CLIENTS * BATCHES * SPECS;
    let reactor_rate = reactor_ops as f64 / reactor_wall.as_secs_f64();
    let speedup = reactor_rate / base_rate;
    let base_p99 = p99(&mut base_lats);
    let batch_p99 = p99(&mut batch_lats);
    let per_exec_p99 = batch_p99 as f64 / SPECS as f64;

    // Wall-clock numbers go to stderr so that `report`'s stdout stays
    // byte-identical across runs; the recorded snapshot is
    // BENCH_serve.json.
    eprintln!(
        "E21 timings: threaded {base_ops} warm EXECs in {:.1} ms ({base_rate:.0}/s, \
         p99 {base_p99} µs/EXEC, {WORKERS} clients), reactor {reactor_ops} warm EXECs \
         in {:.1} ms ({reactor_rate:.0}/s, p99 {batch_p99} µs/BATCH of {SPECS} = \
         {per_exec_p99:.1} µs/EXEC, {CLIENTS} clients), speedup {speedup:.1}x at \
         {WORKERS} workers",
        base_wall.as_secs_f64() * 1e3,
        reactor_wall.as_secs_f64() * 1e3,
    );
    writeln!(
        out,
        "  baseline: {WORKERS} thread-per-connection clients ({WORKERS} workers), one \
         warm EXEC per round trip"
    )
    .unwrap();
    writeln!(
        out,
        "  reactor:  {CLIENTS} pipelined clients ({WORKERS} workers), BATCH of {SPECS} \
         warm EXECs per round trip"
    )
    .unwrap();
    writeln!(
        out,
        "  >= 2x warm-EXEC throughput at equal worker count asserted (timings on \
         stderr; snapshot in BENCH_serve.json)\n"
    )
    .unwrap();
    assert!(
        speedup >= 2.0,
        "reactor must serve >= 2x the baseline throughput, got {speedup:.2}x"
    );

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"serving layer: pipelined reactor vs thread-per-connection \
         (E21: warm EXEC throughput at equal worker count)\",\n  \
         \"date\": \"{}\",\n  \
         \"machine\": {{ \"cpus\": {cpus}, \"mode\": \"report e21, release, loopback \
         TCP, {WORKERS} workers\" }},\n  \"workload\": {{\n    \
         \"description\": \"warm EXECs of a prepared, statically-decided query \
         (per-op compute is a few microseconds, isolating serving overhead); baseline \
         sends one EXEC per round trip from {WORKERS} clients, reactor sends BATCH \
         bodies of {SPECS} EXECs from {CLIENTS} pipelined clients\",\n    \
         \"baseline_ops\": {base_ops},\n    \"reactor_ops\": {reactor_ops}\n  }},\n  \
         \"results\": {{\n    \
         \"threaded_ops_per_s\": {base_rate:.0},\n    \
         \"reactor_ops_per_s\": {reactor_rate:.0},\n    \
         \"speedup\": {speedup:.2},\n    \
         \"threaded_p99_us_per_exec\": {base_p99},\n    \
         \"reactor_p99_us_per_batch\": {batch_p99},\n    \
         \"reactor_p99_us_per_exec_amortized\": {per_exec_p99:.1}\n  }},\n  \
         \"notes\": [\n    \
         \"Answers are asserted bit-identical across cache shard counts 1, 2, and 8, \
         and between pipelined wire execution and serial in-process dispatch (only \
         steps= and cache= header tokens may differ).\",\n    \
         \"The >= 2x throughput floor over the thread-per-connection baseline at equal \
         worker count is asserted in-process; the run aborts if it regresses.\"\n  ]\n}}\n",
        today_utc(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("E21: could not write {path}: {e}");
    }
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, Hinnant's algorithm;
/// no external time crates).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let z = secs as i64 / 86_400 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn collect_atoms(f: &cqa_logic::Formula) -> Vec<cqa_logic::Atom> {
    let mut out = Vec::new();
    f.visit(&mut |g| {
        if let cqa_logic::Formula::Atom(a) = g {
            out.push(a.clone());
        }
    });
    out
}

/// Runs every experiment, returning the combined report.
pub fn run_all() -> String {
    let mut out = String::new();
    type Experiment = fn(&mut String);
    let fns: [(&str, Experiment); 19] = [
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
        ("e15", e15),
        ("e16", e16),
        ("e17", e17),
        ("e18", e18),
        ("e19", e19),
        ("e20", e20),
        ("e21", e21),
    ];
    for (name, f) in fns {
        let _ = name;
        f(&mut out);
    }
    out
}

/// Runs one experiment by id (`"e1"` … `"e12"`, `"e15"` … `"e21"`); `None` for unknown ids.
pub fn run_one(id: &str) -> Option<String> {
    let mut out = String::new();
    match id {
        "e1" => e1(&mut out),
        "e2" => e2(&mut out),
        "e3" => e3(&mut out),
        "e4" => e4(&mut out),
        "e5" => e5(&mut out),
        "e6" => e6(&mut out),
        "e7" => e7(&mut out),
        "e8" => e8(&mut out),
        "e9" => e9(&mut out),
        "e10" => e10(&mut out),
        "e11" => e11(&mut out),
        "e12" => e12(&mut out),
        "e15" => e15(&mut out),
        "e16" => e16(&mut out),
        "e17" => e17(&mut out),
        "e18" => e18(&mut out),
        "e19" => e19(&mut out),
        "e20" => e20(&mut out),
        "e21" => e21(&mut out),
        _ => return None,
    }
    Some(out)
}
