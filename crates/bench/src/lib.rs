//! Experiment harness for the constraint-agg reproduction.
//!
//! Each `e*` function regenerates one experiment of EXPERIMENTS.md (the
//! paper has no numbered tables or figures — it is a PODS theory paper —
//! so the experiments check its quantitative claims, worked examples and
//! constructive theorems; see DESIGN.md §4 for the index). The `report`
//! binary prints them; the Criterion benches under `benches/` measure the
//! corresponding costs.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod lint;
pub mod workloads;

pub use experiments::*;
pub use lint::{lint_file, LintedFile};
