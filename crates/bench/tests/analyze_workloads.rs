//! The analyzer wired in front of the bench workloads: every generated
//! workload formula must lint clean (zero errors) — the acceptance gate
//! that the analyzer's under-approximations never reject well-formed
//! queries the benches rely on.

use cqa_analyze::{analyze_formula, AnalyzerConfig, Schema};
use cqa_approx::km::KmBudget;
use cqa_bench::workloads::{random_box_union, random_linear_query, random_simplex_formula};
use cqa_logic::VarMap;

fn permissive() -> AnalyzerConfig {
    let mut cfg = AnalyzerConfig::default();
    // The blow-up lint is a warning, but keep budgets out of the way so
    // this test is strictly about errors.
    cfg.cost.budget = KmBudget {
        max_atoms: f64::INFINITY,
        max_quantifiers: f64::INFINITY,
    };
    cfg
}

#[test]
fn simplex_workloads_lint_clean() {
    for seed in 0..20 {
        for dim in 1..=4 {
            let mut vars = VarMap::new();
            let (f, vs) = random_simplex_formula(dim, seed, &mut vars);
            let a = analyze_formula(&f, &vs, &Schema::new(), &vars, &permissive());
            assert!(
                !a.has_errors(),
                "dim {dim} seed {seed}: {:?}",
                a.diagnostics
            );
        }
    }
}

#[test]
fn box_union_workloads_lint_clean() {
    for seed in 0..20 {
        let mut vars = VarMap::new();
        let (f, vs) = random_box_union(4, seed, &mut vars);
        let a = analyze_formula(&f, &vs, &Schema::new(), &vars, &permissive());
        assert!(!a.has_errors(), "seed {seed}: {:?}", a.diagnostics);
    }
}

#[test]
fn linear_query_workloads_lint_clean_and_classify_linear() {
    for seed in 0..10 {
        let mut vars = VarMap::new();
        let f = random_linear_query(2, 2, 6, seed, &mut vars);
        let free: Vec<_> = f.free_vars().into_iter().collect();
        let a = analyze_formula(&f, &free, &Schema::new(), &vars, &permissive());
        assert!(!a.has_errors(), "seed {seed}: {:?}", a.diagnostics);
        assert_eq!(a.reports[0].fragment.fragment_name(), "FO+LIN");
        assert_eq!(a.reports[0].fragment.quantifiers, 2);
    }
}

#[test]
fn workload_cost_estimates_are_finite_and_positive() {
    let mut vars = VarMap::new();
    let (f, vs) = random_simplex_formula(3, 7, &mut vars);
    let a = analyze_formula(&f, &vs, &Schema::new(), &vars, &permissive());
    let cost = a.reports[0].cost.unwrap();
    assert!(cost.gj_constant.is_finite() && cost.gj_constant > 0.0);
    assert!(cost.km.atoms.is_finite() && cost.km.atoms > 0.0);
}
