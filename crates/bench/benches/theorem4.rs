//! E3 bench: building the uniform estimator (sample draw + QE) and
//! querying it across a parameter grid.

use cqa_approx::mc::UniformVolumeEstimator;
use cqa_approx::sample::Witness;
use cqa_arith::Rat;
use cqa_core::Database;
use cqa_logic::{parse_formula_with, VarMap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_theorem4(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem4");
    group.sample_size(10);
    let mut vars = VarMap::new();
    let a = vars.intern("a");
    let y1 = vars.intern("y1");
    let y2 = vars.intern("y2");
    let phi = parse_formula_with("a < y1 & y1 < 1 & 0 <= y2 & y2 <= y1", &mut vars).unwrap();
    let db = Database::new();
    for eps in [0.2f64, 0.1, 0.05] {
        group.bench_with_input(
            BenchmarkId::new("build", format!("eps_{eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let mut w = Witness::new(1);
                    UniformVolumeEstimator::new(&db, &phi, &[a], &[y1, y2], eps, 0.1, 2.0, &mut w)
                        .unwrap()
                })
            },
        );
    }
    let mut w = Witness::new(1);
    let est =
        UniformVolumeEstimator::new(&db, &phi, &[a], &[y1, y2], 0.1, 0.1, 2.0, &mut w).unwrap();
    group.bench_function("estimate_grid_11", |b| {
        b.iter(|| {
            let mut acc = Rat::zero();
            for k in 0..=10i64 {
                acc += est.estimate(&[Rat::new(k.into(), 10i64.into())]).unwrap();
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_theorem4);
criterion_main!(benches);
