//! E9 bench: Cohen–Hörmander cost by degree and variable count — the
//! paper's Section-3 point that QE is the expensive step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_qe_poly(c: &mut Criterion) {
    let mut group = c.benchmark_group("qe_poly");
    group.sample_size(10);
    let sentences = [
        ("deg2_1var", "exists x. x*x - 2 = 0"),
        ("deg3_1var", "exists x. x*x*x - 3*x + 1 = 0 & x > 0"),
        ("deg2_2var", "exists x, y. x*x + y*y = 1 & y = x"),
        ("parametric_disc", "exists x. x*x + b*x + 1 = 0"),
        ("forall_exists", "forall x. exists y. y*y*y = x"),
    ];
    for (name, src) in sentences {
        let (f, _) = cqa_logic::parse_formula(src).unwrap();
        group.bench_with_input(BenchmarkId::new("hoermander", name), &f, |b, f| {
            b.iter(|| cqa_qe::hoermander(f).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qe_poly);
criterion_main!(benches);
