//! Kernel bench: interpreted tree-walking evaluation vs the compiled
//! `f64`-with-exact-fallback kernel, single- and multi-threaded, on the
//! Monte Carlo volume workload (the hot loop of Theorem 4).

use cqa_approx::mc::mc_volume_in_unit_box_threads;
use cqa_approx::sample::Witness;
use cqa_arith::Rat;
use cqa_bench::workloads::{linear16_workload, poly3_workload};
use cqa_core::Database;
use cqa_logic::{Formula, SlotMap};
use cqa_poly::Var;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const M: usize = 2000;

/// The pre-kernel evaluation loop: rational sample points fed to the
/// tree-walking interpreter (the reference oracle).
fn interpreted_volume(db: &Database, f: &Formula, vs: &[Var], m: usize, seed: u64) -> Rat {
    let matrix = cqa_qe::eliminate(&db.expand(f).unwrap()).unwrap();
    let slots = SlotMap::from_vars(vs);
    let mut w = Witness::new(seed);
    let mut hits = 0usize;
    for _ in 0..m {
        let p = w.uniform_unit_point(vs.len());
        if matrix.eval(&slots.assignment(&p), &[]).unwrap() {
            hits += 1;
        }
    }
    Rat::new((hits as i64).into(), (m as i64).into())
}

fn bench_workload(c: &mut Criterion, name: &str, f: &Formula, vs: &[Var]) {
    let db = Database::new();
    let mut group = c.benchmark_group(format!("compiled_eval/{name}"));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("interpreted", M), &M, |b, &m| {
        b.iter(|| interpreted_volume(&db, f, vs, m, 1))
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("compiled", threads), &threads, |b, &t| {
            b.iter(|| {
                let mut w = Witness::new(1);
                mc_volume_in_unit_box_threads(&db, f, vs, M, &mut w, t).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_compiled_eval(c: &mut Criterion) {
    let mut vars = cqa_logic::VarMap::new();
    let (lin, lin_vs) = linear16_workload(&mut vars);
    bench_workload(c, "linear16", &lin, &lin_vs);
    let mut vars = cqa_logic::VarMap::new();
    let (pol, pol_vs) = poly3_workload(&mut vars);
    bench_workload(c, "poly3", &pol, &pol_vs);
}

criterion_group!(benches, bench_compiled_eval);
criterion_main!(benches);
