//! Kernel bench: interpreted tree-walking evaluation vs the compiled
//! `f64`-with-exact-fallback kernel, single- and multi-threaded, on the
//! Monte Carlo volume workload (the hot loop of Theorem 4).

use cqa_approx::mc::mc_volume_in_unit_box_threads;
use cqa_approx::sample::Witness;
use cqa_arith::Rat;
use cqa_core::Database;
use cqa_logic::{parse_formula_with, Formula, SlotMap, VarMap};
use cqa_poly::Var;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const M: usize = 2000;

/// A 16-gon inscribed in the unit box: 16 linear atoms per point.
fn linear_workload(vars: &mut VarMap) -> (Formula, Vec<Var>) {
    let x = vars.intern("x");
    let y = vars.intern("y");
    // Rational approximations of (cos θ, sin θ) on a 16-direction fan:
    // c·(x−1/2) + s·(y−1/2) ≤ 2/5 for each direction (c, s).
    let dirs: [(i64, i64, i64); 4] = [(1, 0, 1), (12, 5, 13), (4, 3, 5), (3, 4, 5)];
    let mut parts = Vec::new();
    for &(p, q, h) in &dirs {
        for (c, s) in [(p, q), (-p, q), (p, -q), (-p, -q)] {
            parts.push(format!("{c}*(5*x - 2) + {s}*(5*y - 2) <= {}", 2 * h));
        }
    }
    let src = parts.join(" & ");
    (parse_formula_with(&src, vars).unwrap(), vec![x, y])
}

/// An annulus with a cubic wobble: polynomial atoms of degree up to 3.
fn poly_workload(vars: &mut VarMap) -> (Formula, Vec<Var>) {
    let x = vars.intern("x");
    let y = vars.intern("y");
    let src = "(2*x - 1)*(2*x - 1) + (2*y - 1)*(2*y - 1) <= 1 \
               & 4*((2*x - 1)*(2*x - 1) + (2*y - 1)*(2*y - 1)) >= 1 \
               & 8*(2*x - 1)*(2*x - 1)*(2*y - 1) <= 1";
    (parse_formula_with(src, vars).unwrap(), vec![x, y])
}

/// The pre-kernel evaluation loop: rational sample points fed to the
/// tree-walking interpreter (the reference oracle).
fn interpreted_volume(db: &Database, f: &Formula, vs: &[Var], m: usize, seed: u64) -> Rat {
    let matrix = cqa_qe::eliminate(&db.expand(f).unwrap()).unwrap();
    let slots = SlotMap::from_vars(vs);
    let mut w = Witness::new(seed);
    let mut hits = 0usize;
    for _ in 0..m {
        let p = w.uniform_unit_point(vs.len());
        if matrix.eval(&slots.assignment(&p), &[]).unwrap() {
            hits += 1;
        }
    }
    Rat::new((hits as i64).into(), (m as i64).into())
}

fn bench_workload(c: &mut Criterion, name: &str, f: &Formula, vs: &[Var]) {
    let db = Database::new();
    let mut group = c.benchmark_group(format!("compiled_eval/{name}"));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("interpreted", M), &M, |b, &m| {
        b.iter(|| interpreted_volume(&db, f, vs, m, 1))
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("compiled", threads), &threads, |b, &t| {
            b.iter(|| {
                let mut w = Witness::new(1);
                mc_volume_in_unit_box_threads(&db, f, vs, M, &mut w, t).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_compiled_eval(c: &mut Criterion) {
    let mut vars = VarMap::new();
    let (lin, lin_vs) = linear_workload(&mut vars);
    bench_workload(c, "linear16", &lin, &lin_vs);
    let mut vars = VarMap::new();
    let (pol, pol_vs) = poly_workload(&mut vars);
    bench_workload(c, "poly3", &pol, &pol_vs);
}

criterion_group!(benches, bench_compiled_eval);
criterion_main!(benches);
