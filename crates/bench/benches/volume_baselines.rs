//! E11 bench: exact engine vs rejection sampling vs hit-and-run on convex
//! bodies.

use cqa_approx::baselines::{hit_and_run_volume, rejection_volume};
use cqa_geom::{volume, HPolyhedron};
use cqa_logic::{parse_formula_with, Formula, VarMap};
use cqa_poly::Var;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn simplex(dim: usize) -> (Formula, Vec<Var>, HPolyhedron) {
    let mut vars = VarMap::new();
    let names: Vec<String> = (0..dim).map(|i| format!("x{i}")).collect();
    let vs: Vec<Var> = names.iter().map(|n| vars.intern(n)).collect();
    let src = names
        .iter()
        .map(|n| format!("{n} >= 0"))
        .chain(std::iter::once(format!("{} <= 1", names.join(" + "))))
        .collect::<Vec<_>>()
        .join(" & ");
    let f = parse_formula_with(&src, &mut vars).unwrap();
    let mut atoms = Vec::new();
    f.visit(&mut |g| {
        if let Formula::Atom(a) = g {
            atoms.push(a.clone());
        }
    });
    let p = HPolyhedron::from_atoms(&atoms, &vs).unwrap();
    (f, vs, p)
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("volume_baselines");
    group.sample_size(10);
    for dim in [2usize, 3, 4] {
        let (f, vs, p) = simplex(dim);
        group.bench_with_input(
            BenchmarkId::new("exact_lasserre", dim),
            &(f, vs),
            |b, (f, vs)| b.iter(|| volume(f, vs).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("rejection_10k", dim), &p, |b, p| {
            b.iter(|| rejection_volume(p, &vec![0.0; dim], &vec![1.0; dim], 10_000, 1))
        });
        let interior = vec![0.5 / dim as f64; dim];
        group.bench_with_input(BenchmarkId::new("hit_and_run_10k", dim), &p, |b, p| {
            b.iter(|| hit_and_run_volume(p, &interior, 10_000, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
