//! E4 bench: cost of exact (QE-backed) shattering decisions and of the
//! bit-test family check.

use cqa_approx::vc::{bit_test_shatters, shatters};
use cqa_arith::rat;
use cqa_core::Database;
use cqa_logic::parse_formula_with;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_vc(c: &mut Criterion) {
    let mut group = c.benchmark_group("vc_dimension");
    group.sample_size(10);
    for k in [2u32, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("bit_test", k), &k, |b, &k| {
            b.iter(|| bit_test_shatters(k))
        });
    }
    // QE-backed shattering of intervals.
    let mut db = Database::new();
    let a = db.vars_mut().intern("a");
    let bb = db.vars_mut().intern("b");
    let y = db.vars_mut().intern("y");
    let phi = parse_formula_with("a <= y & y <= b", db.vars_mut()).unwrap();
    for pts in [1usize, 2] {
        let points: Vec<Vec<_>> = (0..pts).map(|i| vec![rat(i as i64, 1)]).collect();
        group.bench_with_input(
            BenchmarkId::new("qe_shatters", pts),
            &points,
            |bch, points| bch.iter(|| shatters(&db, &phi, &[a, bb], &[y], points).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_vc);
criterion_main!(benches);
