//! E6 bench: polygon area via the FO+POLY+SUM triangulation pipeline vs
//! the direct shoelace formula, by vertex count.

use cqa_agg::polygon_area_sum_term;
use cqa_bench::workloads::random_convex_polygon;
use cqa_geom::polygon_area;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_polygon(c: &mut Criterion) {
    let mut group = c.benchmark_group("polygon_area");
    for n in [8usize, 16, 32, 64] {
        let poly = random_convex_polygon(n, n as u64);
        group.bench_with_input(BenchmarkId::new("sum_term", n), &poly, |b, p| {
            b.iter(|| polygon_area_sum_term(p))
        });
        group.bench_with_input(BenchmarkId::new("shoelace", n), &poly, |b, p| {
            b.iter(|| polygon_area(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_polygon);
criterion_main!(benches);
