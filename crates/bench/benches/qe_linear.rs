//! E9 bench: Fourier–Motzkin vs Loos–Weispfenning cost on random linear
//! queries, swept over atom count and quantifier count.

use cqa_bench::workloads::random_linear_query;
use cqa_logic::VarMap;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_qe_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("qe_linear");
    for atoms in [4usize, 6, 8] {
        let mut vars = VarMap::new();
        let q = random_linear_query(2, 2, atoms, atoms as u64, &mut vars);
        group.bench_with_input(BenchmarkId::new("fourier_motzkin", atoms), &q, |b, q| {
            b.iter(|| cqa_qe::fourier_motzkin(q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("loos_weispfenning", atoms), &q, |b, q| {
            b.iter(|| cqa_qe::loos_weispfenning(q).unwrap())
        });
    }
    for quant in [1usize, 2, 3] {
        let mut vars = VarMap::new();
        let q = random_linear_query(2, quant, 5, 99 + quant as u64, &mut vars);
        group.bench_with_input(BenchmarkId::new("fm_by_quantifiers", quant), &q, |b, q| {
            b.iter(|| cqa_qe::fourier_motzkin(q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lw_by_quantifiers", quant), &q, |b, q| {
            b.iter(|| cqa_qe::loos_weispfenning(q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qe_linear);
criterion_main!(benches);
