//! E8 bench: the variable-independence fast path vs the general exact
//! engine on axis-aligned unions.

use cqa_approx::baselines::variable_independent_volume;
use cqa_bench::workloads::random_box_union;
use cqa_geom::volume;
use cqa_logic::VarMap;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_var_indep(c: &mut Criterion) {
    let mut group = c.benchmark_group("var_indep");
    for cells in [1usize, 2, 3] {
        let mut vars = VarMap::new();
        let (f, vs) = random_box_union(cells, 7 + cells as u64, &mut vars);
        group.bench_with_input(
            BenchmarkId::new("grid_baseline", cells),
            &(f.clone(), vs.clone()),
            |b, (f, vs)| b.iter(|| variable_independent_volume(f, vs).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("general_engine", cells),
            &(f, vs),
            |b, (f, vs)| b.iter(|| volume(f, vs).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_var_indep);
criterion_main!(benches);
