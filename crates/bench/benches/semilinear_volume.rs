//! E2 bench: exact semi-linear volume — Lasserre engine vs the paper's
//! Theorem-3 sweep construction, by dimension and by number of DNF cells.

use cqa_agg::volume_by_sweep_2d;
use cqa_bench::workloads::{random_box_union, random_simplex_formula};
use cqa_geom::volume;
use cqa_logic::VarMap;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_semilinear_volume(c: &mut Criterion) {
    let mut group = c.benchmark_group("semilinear_volume");
    for dim in [2usize, 3, 4] {
        let mut vars = VarMap::new();
        let (f, vs) = random_simplex_formula(dim, dim as u64, &mut vars);
        group.bench_with_input(
            BenchmarkId::new("lasserre_simplex", dim),
            &(f, vs),
            |b, (f, vs)| b.iter(|| volume(f, vs).unwrap()),
        );
    }
    for cells in [1usize, 2, 3] {
        let mut vars = VarMap::new();
        let (f, vs) = random_box_union(cells, cells as u64, &mut vars);
        group.bench_with_input(
            BenchmarkId::new("lasserre_union", cells),
            &(f.clone(), vs.clone()),
            |b, (f, vs)| b.iter(|| volume(f, vs).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("sweep_union", cells),
            &(f, vs),
            |b, (f, vs)| b.iter(|| volume_by_sweep_2d(f, vs[0], vs[1]).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_semilinear_volume);
criterion_main!(benches);
