//! E1/E5 bench: Monte Carlo VOL_I cost by sample count.

use cqa_approx::mc::mc_volume_in_unit_box;
use cqa_approx::sample::Witness;
use cqa_core::Database;
use cqa_logic::{parse_formula_with, VarMap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_mc(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_volume");
    let mut vars = VarMap::new();
    let x = vars.intern("x");
    let y = vars.intern("y");
    let f = parse_formula_with("x + y <= 1", &mut vars).unwrap();
    let db = Database::new();
    for m in [500usize, 2000, 8000] {
        group.bench_with_input(BenchmarkId::new("halfplane", m), &m, |b, &m| {
            b.iter(|| {
                let mut w = Witness::new(1);
                mc_volume_in_unit_box(&db, &f, &[x, y], m, &mut w).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
