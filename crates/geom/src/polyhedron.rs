//! Convex polyhedra in H-representation (conjunctions of half-spaces).

use crate::linalg::{solve, Mat};
use cqa_arith::Rat;
use cqa_logic::{Atom, Formula, Rel};
use cqa_poly::Var;

/// A convex polyhedron `{ x ∈ ℝⁿ : A·x ≤ b }` (closed; strictness is a
/// measure-zero matter and is normalized away on construction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HPolyhedron {
    dim: usize,
    /// Rows `(a, b)` meaning `a·x ≤ b`.
    rows: Vec<(Vec<Rat>, Rat)>,
}

impl HPolyhedron {
    /// The whole space `ℝⁿ` (no constraints).
    pub fn whole(dim: usize) -> HPolyhedron {
        HPolyhedron {
            dim,
            rows: Vec::new(),
        }
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The constraint rows `(a, b)` with meaning `a·x ≤ b`.
    pub fn rows(&self) -> &[(Vec<Rat>, Rat)] {
        &self.rows
    }

    /// Adds the half-space `a·x ≤ b`.
    pub fn add_halfspace(&mut self, a: Vec<Rat>, b: Rat) {
        assert_eq!(a.len(), self.dim, "half-space dimension mismatch");
        self.rows.push((a, b));
    }

    /// The unit box `[0,1]ⁿ`.
    pub fn unit_box(dim: usize) -> HPolyhedron {
        let mut p = HPolyhedron::whole(dim);
        for i in 0..dim {
            let mut pos = vec![Rat::zero(); dim];
            pos[i] = Rat::one();
            p.add_halfspace(pos.clone(), Rat::one()); // x_i ≤ 1
            let neg: Vec<Rat> = pos.into_iter().map(|c| -c).collect();
            p.add_halfspace(neg, Rat::zero()); // -x_i ≤ 0
        }
        p
    }

    /// Builds the closed polyhedron of a conjunction of *linear* atoms over
    /// the given variable ordering. Strict inequalities are closed,
    /// equalities become two half-spaces, and disequalities are dropped
    /// (all measure-zero adjustments). Returns `None` if an atom is not
    /// affine or mentions a variable outside `vars`.
    pub fn from_atoms(atoms: &[Atom], vars: &[Var]) -> Option<HPolyhedron> {
        let mut p = HPolyhedron::whole(vars.len());
        for atom in atoms {
            if !atom.poly.is_affine() {
                return None;
            }
            let mut a = vec![Rat::zero(); vars.len()];
            let mut c = Rat::zero();
            for (m, coeff) in atom.poly.terms() {
                match m {
                    [] => c = coeff.clone(),
                    [(v, 1)] => {
                        let idx = vars.iter().position(|w| w == v)?;
                        a[idx] = coeff.clone();
                    }
                    _ => return None,
                }
            }
            // atom: a·x + c REL 0.
            match atom.rel {
                Rel::Lt | Rel::Le => p.add_halfspace(a, -c),
                Rel::Gt | Rel::Ge => {
                    let neg: Vec<Rat> = a.into_iter().map(|x| -x).collect();
                    p.add_halfspace(neg, c);
                }
                Rel::Eq => {
                    let neg: Vec<Rat> = a.iter().map(|x| -x).collect();
                    p.add_halfspace(a, -c.clone());
                    p.add_halfspace(neg, c);
                }
                Rel::Neq => {}
            }
        }
        Some(p)
    }

    /// The conjunction formula of this polyhedron over the variable order.
    pub fn to_formula(&self, vars: &[Var]) -> Formula {
        let mut f = Formula::True;
        for (a, b) in &self.rows {
            let mut poly = cqa_poly::MPoly::constant(-b.clone());
            for (i, coeff) in a.iter().enumerate() {
                poly = poly + cqa_poly::MPoly::var(vars[i]).scale(coeff);
            }
            f = f.and(Formula::Atom(Atom::new(poly, Rel::Le)));
        }
        f
    }

    /// Intersection (same dimension).
    pub fn intersect(&self, other: &HPolyhedron) -> HPolyhedron {
        assert_eq!(self.dim, other.dim);
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        HPolyhedron {
            dim: self.dim,
            rows,
        }
    }

    /// Membership test.
    pub fn contains(&self, point: &[Rat]) -> bool {
        assert_eq!(point.len(), self.dim);
        self.rows.iter().all(|(a, b)| {
            let lhs: Rat = a
                .iter()
                .zip(point)
                .fold(Rat::zero(), |acc, (c, x)| acc + c * x);
            lhs <= *b
        })
    }

    /// Enumerates the vertices (basic feasible solutions): every affinely
    /// independent choice of `dim` constraints solved as equalities whose
    /// solution satisfies all constraints. Exponential in the number of
    /// constraints; intended for the small instances of the paper's
    /// examples.
    pub fn vertices(&self) -> Vec<Vec<Rat>> {
        let n = self.dim;
        let m = self.rows.len();
        let mut out: Vec<Vec<Rat>> = Vec::new();
        if m < n || n == 0 {
            return out;
        }
        let mut choice: Vec<usize> = (0..n).collect();
        loop {
            // Solve the chosen subsystem.
            let mat = Mat::from_rows(choice.iter().map(|&i| self.rows[i].0.clone()).collect());
            let rhs: Vec<Rat> = choice.iter().map(|&i| self.rows[i].1.clone()).collect();
            if let Some(x) = solve(&mat, &rhs) {
                if self.contains(&x) && !out.contains(&x) {
                    out.push(x);
                }
            }
            // Next combination.
            let mut k = n;
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                if choice[k] < m - (n - k) {
                    choice[k] += 1;
                    for j in k + 1..n {
                        choice[j] = choice[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    /// Exact per-coordinate bounds `(min, max)` of the polyhedron, or `None`
    /// for a coordinate unbounded in that direction. Returns `None`
    /// overall if the polyhedron is empty.
    ///
    /// Computed by Fourier–Motzkin projection onto each axis.
    pub fn coordinate_bounds(&self, vars: &[Var]) -> Option<Vec<(Option<Rat>, Option<Rat>)>> {
        assert_eq!(vars.len(), self.dim);
        let f = self.to_formula(vars);
        if !cqa_qe::is_satisfiable(&f).ok()? {
            return None;
        }
        let mut out = Vec::with_capacity(self.dim);
        for (i, &v) in vars.iter().enumerate() {
            let others: Vec<Var> = vars
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &w)| w)
                .collect();
            let proj = cqa_qe::fourier_motzkin(&Formula::exists(others, f.clone())).ok()?;
            out.push(interval_of_1d(&proj, v));
        }
        Some(out)
    }

    /// `true` iff the polyhedron is bounded (requires non-emptiness; an
    /// empty polyhedron reports bounded).
    pub fn is_bounded(&self, vars: &[Var]) -> bool {
        match self.coordinate_bounds(vars) {
            None => true, // empty
            Some(bounds) => bounds.iter().all(|(lo, hi)| lo.is_some() && hi.is_some()),
        }
    }
}

/// Extracts `(min, max)` of a satisfiable one-variable conjunction-of-bounds
/// formula produced by projection. `None` marks an unbounded direction.
fn interval_of_1d(f: &Formula, v: Var) -> (Option<Rat>, Option<Rat>) {
    let mut lo: Option<Rat> = None;
    let mut hi: Option<Rat> = None;
    let clauses = cqa_logic::dnf(f);
    let mut first = true;
    for clause in clauses {
        let mut clo: Option<Rat> = None;
        let mut chi: Option<Rat> = None;
        let mut feasible = true;
        for lit in &clause {
            let Formula::Atom(a) = lit else { continue };
            let coeffs = a.poly.as_univariate_in(v);
            if coeffs.len() != 2 {
                continue;
            }
            let (Some(c), Some(r)) = (coeffs[1].as_constant(), coeffs[0].as_constant()) else {
                continue;
            };
            let t = -(r / &c);
            let rel = if c.is_negative() { a.rel.flip() } else { a.rel };
            match rel {
                Rel::Lt | Rel::Le => {
                    if chi.as_ref().is_none_or(|h| t < *h) {
                        chi = Some(t);
                    }
                }
                Rel::Gt | Rel::Ge => {
                    if clo.as_ref().is_none_or(|l| t > *l) {
                        clo = Some(t);
                    }
                }
                Rel::Eq => {
                    clo = Some(t.clone());
                    chi = Some(t);
                }
                Rel::Neq => {}
            }
        }
        if let (Some(l), Some(h)) = (&clo, &chi) {
            if l > h {
                feasible = false;
            }
        }
        if !feasible {
            continue;
        }
        if first {
            lo = clo;
            hi = chi;
            first = false;
        } else {
            lo = match (lo, clo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            };
            hi = match (hi, chi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::parse_formula_with;
    use cqa_logic::VarMap;

    fn triangle() -> (HPolyhedron, Vec<Var>) {
        // x ≥ 0, y ≥ 0, x + y ≤ 1.
        let mut vars = VarMap::new();
        let f = parse_formula_with("x >= 0 & y >= 0 & x + y <= 1", &mut vars).unwrap();
        let vs = vec![vars.get("x").unwrap(), vars.get("y").unwrap()];
        let atoms = match f {
            Formula::And(parts) => parts
                .into_iter()
                .map(|p| match p {
                    Formula::Atom(a) => a,
                    other => panic!("{other:?}"),
                })
                .collect::<Vec<_>>(),
            other => panic!("{other:?}"),
        };
        (HPolyhedron::from_atoms(&atoms, &vs).unwrap(), vs)
    }

    #[test]
    fn membership() {
        let (p, _) = triangle();
        assert!(p.contains(&[rat(1, 4), rat(1, 4)]));
        assert!(p.contains(&[rat(0, 1), rat(0, 1)]));
        assert!(!p.contains(&[rat(3, 4), rat(3, 4)]));
        assert!(!p.contains(&[rat(-1, 10), rat(0, 1)]));
    }

    #[test]
    fn vertex_enumeration() {
        let (p, _) = triangle();
        let mut vs = p.vertices();
        vs.sort();
        assert_eq!(
            vs,
            vec![
                vec![rat(0, 1), rat(0, 1)],
                vec![rat(0, 1), rat(1, 1)],
                vec![rat(1, 1), rat(0, 1)],
            ]
        );
    }

    #[test]
    fn unit_box_vertices() {
        let p = HPolyhedron::unit_box(3);
        assert_eq!(p.vertices().len(), 8);
    }

    #[test]
    fn bounds_and_boundedness() {
        let (p, vs) = triangle();
        let bounds = p.coordinate_bounds(&vs).unwrap();
        assert_eq!(bounds[0], (Some(rat(0, 1)), Some(rat(1, 1))));
        assert_eq!(bounds[1], (Some(rat(0, 1)), Some(rat(1, 1))));
        assert!(p.is_bounded(&vs));

        // Half-plane: unbounded.
        let mut h = HPolyhedron::whole(2);
        h.add_halfspace(vec![rat(1, 1), rat(0, 1)], rat(0, 1)); // x ≤ 0
        assert!(!h.is_bounded(&vs));
    }

    #[test]
    fn intersection() {
        let (p, vs) = triangle();
        let box2 = HPolyhedron::unit_box(2);
        let q = p.intersect(&box2);
        assert!(q.contains(&[rat(1, 4), rat(1, 4)]));
        assert!(q.is_bounded(&vs));
    }

    #[test]
    fn equality_atoms_become_two_halfspaces() {
        let mut vars = VarMap::new();
        let f = parse_formula_with("x = 1", &mut vars).unwrap();
        let v = vec![vars.get("x").unwrap()];
        let Formula::Atom(a) = f else { panic!() };
        let p = HPolyhedron::from_atoms(&[a], &v).unwrap();
        assert_eq!(p.rows().len(), 2);
        assert!(p.contains(&[rat(1, 1)]));
        assert!(!p.contains(&[rat(2, 1)]));
    }

    #[test]
    fn nonlinear_rejected() {
        let mut vars = VarMap::new();
        let f = parse_formula_with("x*x <= 1", &mut vars).unwrap();
        let v = vec![vars.get("x").unwrap()];
        let Formula::Atom(a) = f else { panic!() };
        assert!(HPolyhedron::from_atoms(&[a], &v).is_none());
    }

    #[test]
    fn empty_polyhedron_bounds() {
        let mut p = HPolyhedron::whole(1);
        p.add_halfspace(vec![rat(1, 1)], rat(0, 1)); // x ≤ 0
        p.add_halfspace(vec![rat(-1, 1)], rat(-1, 1)); // x ≥ 1
        let vars = vec![Var(0)];
        assert!(p.coordinate_bounds(&vars).is_none());
        assert!(p.vertices().is_empty() || !p.contains(&p.vertices()[0]));
    }
}
