//! Exact volumes of semi-linear sets.
//!
//! The paper's Theorem 3 shows FO+POLY+SUM expresses the volume of any
//! semi-linear database. The computational content is implemented here:
//!
//! 1. the quantifier-free linear formula is put in DNF — a finite union of
//!    convex cells;
//! 2. the union volume is computed by inclusion–exclusion over the cells
//!    (intersections of convex cells are convex);
//! 3. each convex cell's volume is computed exactly by **Lasserre's facet
//!    recursion**: for `P = {x : aᵢ·x ≤ bᵢ}` bounded and `n ≥ 1`,
//!    `vol(P) = (1/n) Σᵢ bᵢ · vol(Qᵢ)/|a_{i,jᵢ}|` where `Qᵢ` is the facet
//!    `P ∩ {aᵢ·x = bᵢ}` written in the coordinates obtained by eliminating
//!    a pivot `jᵢ`. All arithmetic is rational; Euclidean facet norms
//!    cancel.
//!
//! Strict vs. non-strict inequalities and disequalities differ on measure
//! zero and are normalized away. Lower-dimensional cells (detected by
//! open-interior unsatisfiability) contribute zero. A genuinely unbounded
//! full-dimensional cell yields [`VolumeError::Unbounded`].

use crate::linalg::{det, Mat};
use crate::polyhedron::HPolyhedron;
use cqa_arith::Rat;
use cqa_logic::budget::{BudgetExceeded, EvalBudget};
use cqa_logic::{dnf, Atom, Formula, Rel};
use cqa_poly::Var;

/// Inclusion–exclusion enumerates `2^m − 1` cell intersections; beyond this
/// many DNF cells the exact engine refuses (typed, not a panic) — use the
/// Monte Carlo approximator in `cqa-approx` instead.
pub const MAX_DNF_CELLS: usize = 20;

/// Errors from exact volume computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VolumeError {
    /// The set has infinite volume.
    Unbounded,
    /// The formula is not a quantifier-free linear constraint formula over
    /// the given variables (eliminate quantifiers first; polynomial
    /// constraints have no semi-linear volume algorithm — see the paper's
    /// non-closure discussion and the Monte Carlo approximator in
    /// `cqa-approx`).
    NotSemiLinear,
    /// The formula mentions schema relations; substitute definitions first.
    HasRelations,
    /// The DNF has more than [`MAX_DNF_CELLS`] cells: the `2^m`
    /// inclusion–exclusion would be astronomically large.
    TooManyCells(usize),
    /// The evaluation budget was exhausted mid-computation; the work was
    /// cancelled cooperatively (see [`cqa_logic::budget`]).
    Budget(BudgetExceeded),
}

impl std::fmt::Display for VolumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VolumeError::Unbounded => write!(f, "set has unbounded volume"),
            VolumeError::NotSemiLinear => write!(f, "formula is not quantifier-free linear"),
            VolumeError::HasRelations => write!(f, "formula mentions schema relations"),
            VolumeError::TooManyCells(m) => {
                write!(f, "too many DNF cells for inclusion–exclusion ({m})")
            }
            VolumeError::Budget(b) => write!(f, "{b}"),
        }
    }
}
impl std::error::Error for VolumeError {}

impl From<BudgetExceeded> for VolumeError {
    fn from(b: BudgetExceeded) -> VolumeError {
        VolumeError::Budget(b)
    }
}

/// The volume of the simplex with the given `n+1` vertices in ℝⁿ:
/// `|det(v₁-v₀, …, v_n-v₀)| / n!`.
///
/// # Panics
/// Panics unless exactly `n+1` vertices of dimension `n` are supplied.
pub fn simplex_volume(vertices: &[Vec<Rat>]) -> Rat {
    let n = vertices.len() - 1;
    assert!(
        n >= 1 && vertices.iter().all(|v| v.len() == n),
        "simplex needs n+1 points in ℝⁿ"
    );
    let rows: Vec<Vec<Rat>> = vertices[1..]
        .iter()
        .map(|v| v.iter().zip(&vertices[0]).map(|(a, b)| a - b).collect())
        .collect();
    let mut d = det(&Mat::from_rows(rows)).abs();
    for k in 2..=n {
        d = d / Rat::from(k as i64);
    }
    d
}

/// Exact volume of the semi-linear set defined by a quantifier-free linear
/// formula over the variable ordering `vars` (the ambient space is
/// `ℝ^vars.len()`).
pub fn volume(f: &Formula, vars: &[Var]) -> Result<Rat, VolumeError> {
    volume_with_budget(f, vars, &EvalBudget::unlimited())
}

/// [`volume`] under a cooperative [`EvalBudget`]: the inclusion–exclusion
/// loop and the per-cell satisfiability probes check the budget and abort
/// with [`VolumeError::Budget`] when it is exhausted. When the budget is
/// not hit, the result is bit-identical to [`volume`].
pub fn volume_with_budget(
    f: &Formula,
    vars: &[Var],
    budget: &EvalBudget,
) -> Result<Rat, VolumeError> {
    volume_impl(f, vars, None, budget)
}

/// Exact volume of the set intersected with the unit box `[0,1]ⁿ` — the
/// `VOL_I` operator of the paper (Section 2). Never unbounded.
pub fn volume_in_unit_box(f: &Formula, vars: &[Var]) -> Result<Rat, VolumeError> {
    volume_in_unit_box_with_budget(f, vars, &EvalBudget::unlimited())
}

/// [`volume_in_unit_box`] under a cooperative [`EvalBudget`].
pub fn volume_in_unit_box_with_budget(
    f: &Formula,
    vars: &[Var],
    budget: &EvalBudget,
) -> Result<Rat, VolumeError> {
    volume_impl(f, vars, Some(HPolyhedron::unit_box(vars.len())), budget)
}

fn volume_impl(
    f: &Formula,
    vars: &[Var],
    clip: Option<HPolyhedron>,
    budget: &EvalBudget,
) -> Result<Rat, VolumeError> {
    if !f.is_relation_free() {
        return Err(VolumeError::HasRelations);
    }
    if !f.is_quantifier_free() {
        return Err(VolumeError::NotSemiLinear);
    }
    if vars.is_empty() {
        // 0-dimensional space: volume of a point set under counting measure
        // conventions — treat ⊤ as 1, ⊥ as 0.
        return match f.eval(&|_| Rat::zero(), &[]) {
            Some(true) => Ok(Rat::one()),
            Some(false) => Ok(Rat::zero()),
            None => Err(VolumeError::NotSemiLinear),
        };
    }

    // DNF cells as closed polyhedra.
    let mut cells: Vec<HPolyhedron> = Vec::new();
    for clause in dnf(f) {
        budget.check()?;
        let mut atoms: Vec<Atom> = Vec::with_capacity(clause.len());
        for lit in clause {
            match lit {
                Formula::Atom(a) => atoms.push(a),
                Formula::True => {}
                Formula::False => {
                    atoms.clear();
                    atoms.push(Atom::new(cqa_poly::MPoly::one(), Rel::Lt));
                    break;
                }
                _ => return Err(VolumeError::HasRelations),
            }
        }
        let mut p = HPolyhedron::from_atoms(&atoms, vars).ok_or(VolumeError::NotSemiLinear)?;
        if let Some(c) = &clip {
            p = p.intersect(c);
        }
        if !cells.contains(&p) {
            cells.push(p);
        }
    }
    if cells.is_empty() {
        return Ok(Rat::zero());
    }

    // Inclusion–exclusion over non-empty subsets of cells.
    let m = cells.len();
    if m >= MAX_DNF_CELLS {
        return Err(VolumeError::TooManyCells(m));
    }
    let mut total = Rat::zero();
    for mask in 1u32..(1 << m) {
        budget.check()?;
        let mut inter: Option<HPolyhedron> = None;
        for (i, cell) in cells.iter().enumerate() {
            if mask & (1 << i) != 0 {
                inter = Some(match inter {
                    None => cell.clone(),
                    Some(p) => p.intersect(cell),
                });
            }
        }
        let p = inter.unwrap();
        let v = convex_volume(&p, vars, budget)?;
        if mask.count_ones() % 2 == 1 {
            total += v;
        } else {
            total = total - v;
        }
    }
    Ok(total)
}

/// Volume of one convex cell.
fn convex_volume(p: &HPolyhedron, vars: &[Var], budget: &EvalBudget) -> Result<Rat, VolumeError> {
    // Lower-dimensional (or empty) cells have volume zero: test whether the
    // open interior is satisfiable.
    let mut open = Formula::True;
    for (a, b) in p.rows() {
        let mut poly = cqa_poly::MPoly::constant(-b.clone());
        for (i, coeff) in a.iter().enumerate() {
            poly = poly + cqa_poly::MPoly::var(vars[i]).scale(coeff);
        }
        open = open.and(Formula::Atom(Atom::new(poly, Rel::Lt)));
    }
    match cqa_qe::is_satisfiable_with_budget(&open, budget) {
        Ok(false) => return Ok(Rat::zero()),
        Ok(true) => {}
        Err(cqa_qe::QeError::Budget(b)) => return Err(VolumeError::Budget(b)),
        Err(_) => return Err(VolumeError::NotSemiLinear),
    }
    if !p.is_bounded(vars) {
        return Err(VolumeError::Unbounded);
    }
    Ok(lasserre(p.rows(), p.dim()))
}

/// Lasserre's recursion on a *bounded* system `a·x ≤ b` in `n ≥ 1`
/// variables. (Boundedness of the top-level cell implies boundedness of
/// every facet subproblem.)
///
/// Rows are scale-normalized and deduplicated first: Lasserre's formula is
/// `(1/n) Σᵢ bᵢ · ∂V/∂bᵢ`-shaped, and a duplicated constraint would have
/// its facet counted twice (the true partial derivative of a redundant
/// duplicate is zero).
fn lasserre(rows_in: &[(Vec<Rat>, Rat)], n: usize) -> Rat {
    let mut rows: Vec<(Vec<Rat>, Rat)> = Vec::with_capacity(rows_in.len());
    for (a, b) in rows_in {
        match a.iter().find(|c| !c.is_zero()) {
            None => {
                if b.is_negative() {
                    return Rat::zero(); // 0 ≤ b < 0: empty system
                }
            }
            Some(c) => {
                let s = c.abs().recip();
                let na: Vec<Rat> = a.iter().map(|x| x * &s).collect();
                let nb = b * &s;
                let row = (na, nb);
                if !rows.contains(&row) {
                    rows.push(row);
                }
            }
        }
    }
    let rows = &rows[..];
    if n == 1 {
        let mut lo: Option<Rat> = None;
        let mut hi: Option<Rat> = None;
        for (a, b) in rows {
            let c = &a[0];
            debug_assert!(!c.is_zero(), "zero rows removed by normalization");
            let t = b / c;
            if c.is_positive() {
                if hi.as_ref().is_none_or(|h| t < *h) {
                    hi = Some(t);
                }
            } else if lo.as_ref().is_none_or(|l| t > *l) {
                lo = Some(t);
            }
        }
        return match (lo, hi) {
            (Some(l), Some(h)) if l < h => h - l,
            (Some(_), Some(_)) => Rat::zero(),
            // Unbounded directions cannot occur for facets of a bounded
            // top-level cell; returning 0 keeps the function total.
            _ => Rat::zero(),
        };
    }
    let mut total = Rat::zero();
    for (i, (a, b)) in rows.iter().enumerate() {
        // Pivot coordinate (rows are normalized: some coefficient is non-zero).
        let j = a.iter().position(|c| !c.is_zero()).unwrap();
        // Substitute x_j = (b - Σ_{k≠j} a_k x_k)/a_j into the other rows.
        let aj = &a[j];
        let mut sub_rows: Vec<(Vec<Rat>, Rat)> = Vec::with_capacity(rows.len() - 1);
        for (k, (c, d)) in rows.iter().enumerate() {
            if k == i {
                continue;
            }
            // c·x ≤ d with x_j replaced:
            // Σ_{l≠j} (c_l - c_j·a_l/a_j) x_l ≤ d - c_j·b/a_j.
            let cj = &c[j];
            let factor = cj / aj;
            let mut new_c: Vec<Rat> = Vec::with_capacity(a.len() - 1);
            for l in 0..a.len() {
                if l == j {
                    continue;
                }
                new_c.push(&c[l] - &(&factor * &a[l]));
            }
            let new_d = d - &(&factor * b);
            sub_rows.push((new_c, new_d));
        }
        let facet_vol = lasserre(&sub_rows, n - 1);
        if !facet_vol.is_zero() {
            total += b * &facet_vol / aj.abs();
        }
    }
    total / Rat::from(n as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::{parse_formula_with, VarMap};

    fn vol(src: &str, var_names: &[&str]) -> Result<Rat, VolumeError> {
        let mut vars = VarMap::new();
        // Intern in caller order so the ambient dimension is explicit.
        let vs: Vec<Var> = var_names.iter().map(|n| vars.intern(n)).collect();
        let f = parse_formula_with(src, &mut vars).unwrap();
        volume(&f, &vs)
    }

    fn vol_box(src: &str, var_names: &[&str]) -> Result<Rat, VolumeError> {
        let mut vars = VarMap::new();
        let vs: Vec<Var> = var_names.iter().map(|n| vars.intern(n)).collect();
        let f = parse_formula_with(src, &mut vars).unwrap();
        volume_in_unit_box(&f, &vs)
    }

    #[test]
    fn intervals() {
        assert_eq!(vol("0 <= x & x <= 1", &["x"]).unwrap(), rat(1, 1));
        assert_eq!(vol("0 < x & x < 1", &["x"]).unwrap(), rat(1, 1));
        assert_eq!(vol("1 <= x & x <= 0", &["x"]).unwrap(), rat(0, 1));
        assert_eq!(vol("x = 5", &["x"]).unwrap(), rat(0, 1));
        assert!(matches!(vol("x >= 0", &["x"]), Err(VolumeError::Unbounded)));
    }

    #[test]
    fn union_of_intervals_with_overlap() {
        // [0,2] ∪ [1,3] has length 3, not 4.
        let v = vol("(0 <= x & x <= 2) | (1 <= x & x <= 3)", &["x"]).unwrap();
        assert_eq!(v, rat(3, 1));
        // Disjoint pieces add.
        let w = vol("(0 <= x & x <= 1) | (2 <= x & x <= 4)", &["x"]).unwrap();
        assert_eq!(w, rat(3, 1));
    }

    #[test]
    fn triangle_area() {
        let v = vol("x >= 0 & y >= 0 & x + y <= 1", &["x", "y"]).unwrap();
        assert_eq!(v, rat(1, 2));
    }

    #[test]
    fn square_and_shifted_square() {
        assert_eq!(
            vol("0 <= x & x <= 1 & 0 <= y & y <= 1", &["x", "y"]).unwrap(),
            rat(1, 1)
        );
        assert_eq!(
            vol("1 <= x & x <= 3 & -1 <= y & y <= 2", &["x", "y"]).unwrap(),
            rat(6, 1)
        );
    }

    #[test]
    fn simplex_volumes_by_dimension() {
        // Standard simplex volume 1/n!.
        assert_eq!(
            vol(
                "x >= 0 & y >= 0 & z >= 0 & x + y + z <= 1",
                &["x", "y", "z"]
            )
            .unwrap(),
            rat(1, 6)
        );
        assert_eq!(
            vol(
                "x >= 0 & y >= 0 & z >= 0 & w >= 0 & x + y + z + w <= 1",
                &["x", "y", "z", "w"]
            )
            .unwrap(),
            rat(1, 24)
        );
    }

    #[test]
    fn cross_polytope() {
        // |x| + |y| ≤ 1 as a union of four cells: area 2.
        let src = "(x >= 0 & y >= 0 & x + y <= 1) | (x <= 0 & y >= 0 & y - x <= 1) \
                   | (x >= 0 & y <= 0 & x - y <= 1) | (x <= 0 & y <= 0 & 0 - x - y <= 1)";
        assert_eq!(vol(src, &["x", "y"]).unwrap(), rat(2, 1));
    }

    #[test]
    fn overlapping_squares_2d() {
        // [0,2]² ∪ [1,3]² = 4 + 4 - 1 = 7.
        let src = "(0 <= x & x <= 2 & 0 <= y & y <= 2) | (1 <= x & x <= 3 & 1 <= y & y <= 3)";
        assert_eq!(vol(src, &["x", "y"]).unwrap(), rat(7, 1));
    }

    #[test]
    fn lower_dimensional_pieces_are_null() {
        // A segment inside the plane plus a unit square: area still 1.
        let src = "(x = 0 & 0 <= y & y <= 5) | (0 <= x & x <= 1 & 0 <= y & y <= 1)";
        assert_eq!(vol(src, &["x", "y"]).unwrap(), rat(1, 1));
        // The diagonal line y = x alone: measure zero even though unbounded
        // in every coordinate.
        assert_eq!(
            vol("y = x & 0 <= x & x <= 1", &["x", "y"]).unwrap(),
            rat(0, 1)
        );
    }

    #[test]
    fn disequalities_ignored() {
        let v = vol("0 <= x & x <= 1 & x != 0.5", &["x"]).unwrap();
        assert_eq!(v, rat(1, 1));
    }

    #[test]
    fn unit_box_clipping() {
        // Half-plane x ≥ 1/2 clipped to the unit square: area 1/2.
        assert_eq!(vol_box("x >= 0.5", &["x", "y"]).unwrap(), rat(1, 2));
        // Whole space clipped: 1.
        assert_eq!(vol_box("true", &["x", "y"]).unwrap(), rat(1, 1));
        // Paper Section 3 example: x1 < y1 < x2, 0 ≤ y2 ≤ y1 with
        // (x1, x2) = (0, 1): volume (x2² - x1²)/2 = 1/2.
        assert_eq!(
            vol_box("0 < y1 & y1 < 1 & 0 <= y2 & y2 <= y1", &["y1", "y2"]).unwrap(),
            rat(1, 2)
        );
    }

    #[test]
    fn paper_example_volume_formula() {
        // VOL_I(φ(a, b, U)) = (b² - a²)/2 for the Section-3 query: check at
        // (a, b) = (1/4, 3/4): (9/16 - 1/16)/2 = 1/4.
        let v = vol_box("0.25 < y1 & y1 < 0.75 & 0 <= y2 & y2 <= y1", &["y1", "y2"]).unwrap();
        assert_eq!(v, rat(1, 4));
    }

    #[test]
    fn simplex_volume_determinant() {
        // Unit triangle.
        let tri = vec![
            vec![rat(0, 1), rat(0, 1)],
            vec![rat(1, 1), rat(0, 1)],
            vec![rat(0, 1), rat(1, 1)],
        ];
        assert_eq!(simplex_volume(&tri), rat(1, 2));
        // Unit tetrahedron.
        let tet = vec![
            vec![rat(0, 1), rat(0, 1), rat(0, 1)],
            vec![rat(1, 1), rat(0, 1), rat(0, 1)],
            vec![rat(0, 1), rat(1, 1), rat(0, 1)],
            vec![rat(0, 1), rat(0, 1), rat(1, 1)],
        ];
        assert_eq!(simplex_volume(&tet), rat(1, 6));
        // Degenerate: zero volume.
        let degen = vec![
            vec![rat(0, 1), rat(0, 1)],
            vec![rat(1, 1), rat(1, 1)],
            vec![rat(2, 1), rat(2, 1)],
        ];
        assert_eq!(simplex_volume(&degen), rat(0, 1));
    }

    #[test]
    fn too_many_cells_is_typed_error() {
        // 21 pairwise-distinct disjoint intervals: more DNF cells than
        // inclusion–exclusion will enumerate. Used to be an assert! panic;
        // now a typed error.
        let src = (0..21)
            .map(|i| format!("({} <= x & x <= {})", 2 * i, 2 * i + 1))
            .collect::<Vec<_>>()
            .join(" | ");
        assert_eq!(vol(&src, &["x"]), Err(VolumeError::TooManyCells(21)));
    }

    #[test]
    fn budget_trips_during_inclusion_exclusion() {
        // 16 overlapping squares: 2^16 − 1 intersections, each with a QE
        // satisfiability probe. An already-expired deadline trips on the
        // first cooperative check instead of grinding through them.
        let src = (0..16)
            .map(|i| format!("({i} <= x & x <= {hi} & {i} <= y & y <= {hi})", hi = i + 8))
            .collect::<Vec<_>>()
            .join(" | ");
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let f = parse_formula_with(&src, &mut vars).unwrap();
        let budget = EvalBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        assert!(matches!(
            volume_with_budget(&f, &[x, y], &budget),
            Err(VolumeError::Budget(_))
        ));
        // An unhit budget is invisible: same value as the unbudgeted run on
        // a small instance.
        let small = parse_formula_with(
            "(0 <= x & x <= 2 & 0 <= y & y <= 2) | (1 <= x & x <= 3 & 1 <= y & y <= 3)",
            &mut vars,
        )
        .unwrap();
        let roomy = EvalBudget::unlimited().with_max_steps(u64::MAX / 2);
        assert_eq!(
            volume_with_budget(&small, &[x, y], &roomy),
            volume(&small, &[x, y])
        );
    }

    #[test]
    fn zero_dimensional() {
        assert_eq!(vol("true", &[]).unwrap(), rat(1, 1));
        assert_eq!(vol("false", &[]).unwrap(), rat(0, 1));
    }

    #[test]
    fn quantified_input_rejected() {
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let f = parse_formula_with("exists y. x < y & y < 1", &mut vars).unwrap();
        assert_eq!(volume(&f, &[x]), Err(VolumeError::NotSemiLinear));
    }

    #[test]
    fn nonlinear_rejected() {
        assert_eq!(vol("x*x <= 1", &["x"]), Err(VolumeError::NotSemiLinear));
    }
}
