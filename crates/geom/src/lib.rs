//! Exact polyhedral geometry for constraint databases.
//!
//! Semi-linear sets — the finitely representable instances of FO+LIN — are
//! finite boolean combinations of half-spaces. This crate supplies the
//! geometric substrate the paper's constructive results (Theorem 3, the
//! polygon-area example of Section 5, the Löwner–John remark of Section 4)
//! rest on:
//!
//! * [`Mat`]/[`solve`]/[`det`] — exact rational linear algebra.
//! * [`HPolyhedron`] — conjunctions of closed half-spaces: emptiness,
//!   membership, per-coordinate bounds, vertex enumeration.
//! * [`volume`]/[`volume_in_unit_box`] — **exact volume of arbitrary
//!   semi-linear sets** given as quantifier-free linear formulas, via
//!   inclusion–exclusion over DNF cells and Lasserre's facet recursion for
//!   each convex cell. This is the engine behind the FO+POLY+SUM volume
//!   terms of `cqa-agg`.
//! * [`convex_hull`]/[`polygon_area`]/[`triangulate_fan`] — 2-D convex
//!   hulls, shoelace areas, fan triangulations (the paper's Section-5
//!   worked example).
//! * [`simplex_volume`] — determinant-based simplex volumes.

#![forbid(unsafe_code)]

mod hull2d;
mod linalg;
mod polyhedron;
mod volume;

pub use hull2d::{convex_hull, point_in_convex_polygon, polygon_area, triangulate_fan, Point2};
pub use linalg::{det, solve, Mat};
pub use polyhedron::HPolyhedron;
pub use volume::{
    simplex_volume, volume, volume_in_unit_box, volume_in_unit_box_with_budget, volume_with_budget,
    VolumeError, MAX_DNF_CELLS,
};
