//! Exact rational linear algebra: Gaussian elimination over ℚ.

use cqa_arith::Rat;

/// A dense rational matrix (row major).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<Rat>,
}

impl Mat {
    /// Creates a matrix from rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: Vec<Vec<Rat>>) -> Mat {
        assert!(!rows.is_empty(), "Mat: no rows");
        let cols = rows[0].len();
        assert!(
            cols > 0 && rows.iter().all(|r| r.len() == cols),
            "Mat: ragged rows"
        );
        let nrows = rows.len();
        Mat {
            rows: nrows,
            cols,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// The zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![Rat::zero(); rows * cols],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn at(&self, r: usize, c: usize) -> &Rat {
        &self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut Rat {
        &mut self.data[r * self.cols + c]
    }

    /// Rank via Gaussian elimination.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        let mut row = 0;
        for col in 0..m.cols {
            // Find pivot.
            let Some(p) = (row..m.rows).find(|&r| !m.at(r, col).is_zero()) else {
                continue;
            };
            m.swap_rows(row, p);
            let inv = m.at(row, col).recip();
            for c in col..m.cols {
                *m.at_mut(row, c) = m.at(row, c) * &inv;
            }
            for r in 0..m.rows {
                if r != row && !m.at(r, col).is_zero() {
                    let f = m.at(r, col).clone();
                    for c in col..m.cols {
                        *m.at_mut(r, c) = m.at(r, c) - &(m.at(row, c) * &f);
                    }
                }
            }
            row += 1;
            rank += 1;
            if row == m.rows {
                break;
            }
        }
        rank
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

/// Determinant of a square matrix (fraction-based Gaussian elimination).
///
/// # Panics
/// Panics if the matrix is not square.
pub fn det(m: &Mat) -> Rat {
    assert_eq!(m.rows, m.cols, "det: non-square matrix");
    let n = m.rows;
    let mut a = m.clone();
    let mut result = Rat::one();
    for col in 0..n {
        let Some(p) = (col..n).find(|&r| !a.at(r, col).is_zero()) else {
            return Rat::zero();
        };
        if p != col {
            a.swap_rows(col, p);
            result = -result;
        }
        let pivot = a.at(col, col).clone();
        result *= &pivot;
        let inv = pivot.recip();
        for r in col + 1..n {
            if !a.at(r, col).is_zero() {
                let f = a.at(r, col) * &inv;
                for c in col..n {
                    *a.at_mut(r, c) = a.at(r, c) - &(a.at(col, c) * &f);
                }
            }
        }
    }
    result
}

/// Solves the square system `A·x = b` exactly. Returns `None` if `A` is
/// singular.
///
/// # Panics
/// Panics if dimensions disagree.
pub fn solve(a: &Mat, b: &[Rat]) -> Option<Vec<Rat>> {
    assert_eq!(a.rows, a.cols, "solve: non-square matrix");
    assert_eq!(a.rows, b.len(), "solve: rhs length mismatch");
    let n = a.rows;
    // Augmented elimination.
    let mut m = Mat::zeros(n, n + 1);
    for (r, rhs) in b.iter().enumerate() {
        for c in 0..n {
            *m.at_mut(r, c) = a.at(r, c).clone();
        }
        *m.at_mut(r, n) = rhs.clone();
    }
    for col in 0..n {
        let p = (col..n).find(|&r| !m.at(r, col).is_zero())?;
        m.swap_rows(col, p);
        let inv = m.at(col, col).recip();
        for c in col..=n {
            *m.at_mut(col, c) = m.at(col, c) * &inv;
        }
        for r in 0..n {
            if r != col && !m.at(r, col).is_zero() {
                let f = m.at(r, col).clone();
                for c in col..=n {
                    *m.at_mut(r, c) = m.at(r, c) - &(m.at(col, c) * &f);
                }
            }
        }
    }
    Some((0..n).map(|r| m.at(r, n).clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;

    fn m(rows: &[&[i64]]) -> Mat {
        Mat::from_rows(
            rows.iter()
                .map(|r| r.iter().map(|&v| rat(v, 1)).collect())
                .collect(),
        )
    }

    #[test]
    fn determinants() {
        assert_eq!(det(&m(&[&[2]])), rat(2, 1));
        assert_eq!(det(&m(&[&[1, 2], &[3, 4]])), rat(-2, 1));
        assert_eq!(det(&m(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]])), rat(1, 1));
        assert_eq!(det(&m(&[&[1, 2], &[2, 4]])), rat(0, 1));
        // Row swap sign.
        assert_eq!(det(&m(&[&[0, 1], &[1, 0]])), rat(-1, 1));
    }

    #[test]
    fn solve_system() {
        // x + y = 3, x - y = 1 → x = 2, y = 1.
        let a = m(&[&[1, 1], &[1, -1]]);
        let x = solve(&a, &[rat(3, 1), rat(1, 1)]).unwrap();
        assert_eq!(x, vec![rat(2, 1), rat(1, 1)]);
    }

    #[test]
    fn solve_singular_is_none() {
        let a = m(&[&[1, 2], &[2, 4]]);
        assert!(solve(&a, &[rat(1, 1), rat(2, 1)]).is_none());
    }

    #[test]
    fn solve_rational_entries() {
        let a = Mat::from_rows(vec![
            vec![rat(1, 2), rat(1, 3)],
            vec![rat(1, 4), rat(-1, 5)],
        ]);
        let b = [rat(1, 1), rat(0, 1)];
        let x = solve(&a, &b).unwrap();
        // Verify by substitution.
        for (r, rhs) in b.iter().enumerate() {
            let lhs = a.at(r, 0) * &x[0] + a.at(r, 1) * &x[1];
            assert_eq!(lhs, *rhs);
        }
    }

    #[test]
    fn ranks() {
        assert_eq!(m(&[&[1, 2], &[2, 4]]).rank(), 1);
        assert_eq!(m(&[&[1, 2], &[3, 4]]).rank(), 2);
        assert_eq!(m(&[&[0, 0], &[0, 0]]).rank(), 0);
        assert_eq!(m(&[&[1, 2, 3], &[4, 5, 6]]).rank(), 2);
    }
}
