//! Exact 2-D computational geometry: convex hulls, shoelace areas and fan
//! triangulations — the machinery behind the paper's Section-5 worked
//! example (polygon area in FO+POLY+SUM).

use cqa_arith::Rat;

/// An exact rational point in the plane.
pub type Point2 = (Rat, Rat);

/// Twice the signed area of the triangle `(a, b, c)` (positive iff
/// counter-clockwise).
fn cross(a: &Point2, b: &Point2, c: &Point2) -> Rat {
    let abx = &b.0 - &a.0;
    let aby = &b.1 - &a.1;
    let acx = &c.0 - &a.0;
    let acy = &c.1 - &a.1;
    abx * acy - aby * acx
}

/// Convex hull by Andrew's monotone chain; returns vertices in
/// counter-clockwise order with collinear interior points removed.
/// Degenerate inputs return what is left after deduplication (a point or a
/// segment's endpoints).
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort();
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let mut lower: Vec<Point2> = Vec::with_capacity(n);
    for p in &pts {
        while lower.len() >= 2
            && cross(&lower[lower.len() - 2], &lower[lower.len() - 1], p).signum() <= 0
        {
            lower.pop();
        }
        lower.push(p.clone());
    }
    let mut upper: Vec<Point2> = Vec::with_capacity(n);
    for p in pts.iter().rev() {
        while upper.len() >= 2
            && cross(&upper[upper.len() - 2], &upper[upper.len() - 1], p).signum() <= 0
        {
            upper.pop();
        }
        upper.push(p.clone());
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    if lower.is_empty() {
        // All points collinear: keep the two extremes.
        vec![pts[0].clone(), pts[n - 1].clone()]
    } else {
        lower
    }
}

/// Exact polygon area by the shoelace formula (vertices in order, convex or
/// not; self-intersecting polygons give the usual signed-sum semantics).
pub fn polygon_area(vertices: &[Point2]) -> Rat {
    if vertices.len() < 3 {
        return Rat::zero();
    }
    let mut twice = Rat::zero();
    for i in 0..vertices.len() {
        let (x1, y1) = &vertices[i];
        let (x2, y2) = &vertices[(i + 1) % vertices.len()];
        twice += x1 * y2 - x2 * y1;
    }
    twice.abs() / Rat::from(2i64)
}

/// Fan triangulation of a convex polygon given in boundary order: triangles
/// `(v₀, vᵢ, vᵢ₊₁)`. This is exactly the decomposition the paper's
/// FO+POLY+SUM polygon-area program constructs with its range-restricted
/// triangle query.
pub fn triangulate_fan(vertices: &[Point2]) -> Vec<[Point2; 3]> {
    if vertices.len() < 3 {
        return Vec::new();
    }
    (1..vertices.len() - 1)
        .map(|i| {
            [
                vertices[0].clone(),
                vertices[i].clone(),
                vertices[i + 1].clone(),
            ]
        })
        .collect()
}

/// Membership in a convex polygon given in counter-clockwise order
/// (boundary inclusive).
pub fn point_in_convex_polygon(p: &Point2, vertices: &[Point2]) -> bool {
    if vertices.len() < 3 {
        return false;
    }
    for i in 0..vertices.len() {
        let a = &vertices[i];
        let b = &vertices[(i + 1) % vertices.len()];
        if cross(a, b, p).is_negative() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;

    fn pt(x: i64, y: i64) -> Point2 {
        (rat(x, 1), rat(y, 1))
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![pt(0, 0), pt(2, 0), pt(2, 2), pt(0, 2), pt(1, 1), pt(1, 0)];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert_eq!(polygon_area(&hull), rat(4, 1));
    }

    #[test]
    fn hull_is_counter_clockwise() {
        let hull = convex_hull(&[pt(0, 0), pt(1, 0), pt(0, 1)]);
        assert_eq!(hull.len(), 3);
        // Signed area positive.
        let mut twice = Rat::zero();
        for i in 0..hull.len() {
            let (x1, y1) = &hull[i];
            let (x2, y2) = &hull[(i + 1) % hull.len()];
            twice += x1 * y2 - x2 * y1;
        }
        assert!(twice.is_positive());
    }

    #[test]
    fn degenerate_hulls() {
        assert_eq!(convex_hull(&[pt(1, 1)]).len(), 1);
        assert_eq!(convex_hull(&[pt(0, 0), pt(1, 1), pt(2, 2)]).len(), 2);
        assert_eq!(convex_hull(&[]).len(), 0);
        assert_eq!(convex_hull(&[pt(3, 4), pt(3, 4)]).len(), 1);
    }

    #[test]
    fn shoelace_areas() {
        assert_eq!(polygon_area(&[pt(0, 0), pt(1, 0), pt(0, 1)]), rat(1, 2));
        assert_eq!(
            polygon_area(&[pt(0, 0), pt(2, 0), pt(2, 2), pt(0, 2)]),
            rat(4, 1)
        );
        // Clockwise order gives the same absolute area.
        assert_eq!(
            polygon_area(&[pt(0, 0), pt(0, 2), pt(2, 2), pt(2, 0)]),
            rat(4, 1)
        );
        assert_eq!(polygon_area(&[pt(0, 0), pt(1, 0)]), rat(0, 1));
    }

    #[test]
    fn fan_triangulation_covers_area() {
        let square = [pt(0, 0), pt(3, 0), pt(3, 3), pt(0, 3)];
        let tris = triangulate_fan(&square);
        assert_eq!(tris.len(), 2);
        let total: Rat = tris
            .iter()
            .map(|t| polygon_area(t))
            .fold(Rat::zero(), |acc, a| acc + a);
        assert_eq!(total, polygon_area(&square));
    }

    #[test]
    fn membership() {
        let square = [pt(0, 0), pt(2, 0), pt(2, 2), pt(0, 2)];
        assert!(point_in_convex_polygon(&(rat(1, 1), rat(1, 1)), &square));
        assert!(point_in_convex_polygon(&(rat(0, 1), rat(0, 1)), &square)); // corner
        assert!(point_in_convex_polygon(&(rat(2, 1), rat(1, 1)), &square)); // edge
        assert!(!point_in_convex_polygon(&(rat(3, 1), rat(1, 1)), &square));
    }
}
