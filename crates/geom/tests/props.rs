//! Property tests: the Lasserre volume engine against independent methods.

use cqa_arith::{rat, Rat};
use cqa_geom::{convex_hull, polygon_area, simplex_volume, volume, HPolyhedron};
use cqa_poly::Var;
use proptest::prelude::*;

/// Random small-integer points in the plane.
fn points_strategy() -> impl Strategy<Value = Vec<(Rat, Rat)>> {
    prop::collection::vec((-5i64..=5, -5i64..=5), 3..9).prop_map(|ps| {
        ps.into_iter()
            .map(|(x, y)| (rat(x, 1), rat(y, 1)))
            .collect()
    })
}

/// The H-polyhedron of a convex hull: one half-space per edge.
fn hull_to_hpoly(hull: &[(Rat, Rat)]) -> HPolyhedron {
    let mut p = HPolyhedron::whole(2);
    let n = hull.len();
    for i in 0..n {
        let (x1, y1) = &hull[i];
        let (x2, y2) = &hull[(i + 1) % n];
        // CCW edge (x1,y1)→(x2,y2): interior is on the left:
        // (x2-x1)(y-y1) - (y2-y1)(x-x1) ≥ 0
        // ⇔ (y2-y1)x - (x2-x1)y ≤ (y2-y1)x1 - (x2-x1)y1.
        let a = vec![y2 - y1, -(x2 - x1)];
        let b = (y2 - y1) * x1 - (x2 - x1) * y1;
        p.add_halfspace(a, b);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lasserre_matches_shoelace_on_random_hulls(pts in points_strategy()) {
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        let hp = hull_to_hpoly(&hull);
        let vars = [Var(0), Var(1)];
        let f = hp.to_formula(&vars);
        let vol = volume(&f, &vars).unwrap();
        let area = polygon_area(&hull);
        prop_assert_eq!(vol, area);
    }

    #[test]
    fn vertices_of_hull_polyhedron_match_hull(pts in points_strategy()) {
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        let hp = hull_to_hpoly(&hull);
        let mut vs = hp.vertices();
        vs.sort();
        let mut expect: Vec<Vec<Rat>> = hull.iter().map(|(x, y)| vec![x.clone(), y.clone()]).collect();
        expect.sort();
        prop_assert_eq!(vs, expect);
    }

    #[test]
    fn random_triangle_volume_equals_simplex_formula(
        ax in -5i64..=5, ay in -5i64..=5,
        bx in -5i64..=5, by in -5i64..=5,
        cx in -5i64..=5, cy in -5i64..=5,
    ) {
        let tri = vec![
            vec![rat(ax, 1), rat(ay, 1)],
            vec![rat(bx, 1), rat(by, 1)],
            vec![rat(cx, 1), rat(cy, 1)],
        ];
        let sv = simplex_volume(&tri);
        let area = polygon_area(&[
            (rat(ax, 1), rat(ay, 1)),
            (rat(bx, 1), rat(by, 1)),
            (rat(cx, 1), rat(cy, 1)),
        ]);
        prop_assert_eq!(sv, area);
    }

    #[test]
    fn union_volume_bounded_by_sum(pts in points_strategy(), dx in -2i64..=2, dy in -2i64..=2) {
        // vol(A ∪ B) ≤ vol(A) + vol(B), with equality iff disjoint interiors.
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        let a = hull_to_hpoly(&hull);
        let shifted: Vec<(Rat, Rat)> = hull
            .iter()
            .map(|(x, y)| (x + rat(dx, 1), y + rat(dy, 1)))
            .collect();
        let b = hull_to_hpoly(&shifted);
        let vars = [Var(0), Var(1)];
        let fa = a.to_formula(&vars);
        let fb = b.to_formula(&vars);
        let va = volume(&fa, &vars).unwrap();
        let vb = volume(&fb, &vars).unwrap();
        let vu = volume(&fa.clone().or(fb.clone()), &vars).unwrap();
        prop_assert!(vu <= &va + &vb);
        prop_assert!(vu >= va.clone().max(vb.clone()));
        if dx == 0 && dy == 0 {
            prop_assert_eq!(vu, va);
        }
    }
}
