//! Vapnik–Chervonenkis dimension of definable families.
//!
//! For a query `φ(x⃗, y⃗)` and database `D`, the definable family is
//! `F_φ(D) = { φ(ā, D) : ā }` — the sets of `y⃗`-points carved out as the
//! parameters range over the reals. The paper uses its VC dimension in both
//! directions: Proposition 5 exhibits a quantifier-free query with
//! `VCdim(F_φ(D_n)) ≥ log |D_n|`, and Proposition 6 bounds it above by
//! `C·log|D|` with an effective `C` (Goldberg–Jerrum).

use cqa_arith::Rat;
use cqa_core::Database;
use cqa_logic::Formula;
use cqa_poly::Var;
use cqa_qe::QeError;

/// Decides *exactly*, via quantifier elimination, whether the definable
/// family of `φ(params; point_vars)` (with relations resolved against `db`)
/// shatters the finite point set `points`: for every subset `S` there must
/// exist parameters `ā` with `φ(ā, p)` for `p ∈ S` and `¬φ(ā, p)` for
/// `p ∉ S`.
pub fn shatters(
    db: &Database,
    phi: &Formula,
    params: &[Var],
    point_vars: &[Var],
    points: &[Vec<Rat>],
) -> Result<bool, QeError> {
    let expanded = db.expand(phi).map_err(|_| QeError::HasRelations)?;
    for mask in 0u32..(1 << points.len()) {
        let mut body = Formula::True;
        for (i, p) in points.iter().enumerate() {
            let mut inst = expanded.clone();
            for (v, x) in point_vars.iter().zip(p) {
                inst = inst.subst_rat(*v, x);
            }
            if mask & (1 << i) != 0 {
                body = body.and(inst);
            } else {
                body = body.and(inst.negate());
            }
        }
        let witness = Formula::exists(params.to_vec(), body);
        if !cqa_qe::decide_sentence(&witness)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The largest subset of `candidates` shattered by the family (exact, via
/// QE). Exponential in the candidate count; meant for the small instances
/// of E4.
pub fn vc_dimension_on(
    db: &Database,
    phi: &Formula,
    params: &[Var],
    point_vars: &[Var],
    candidates: &[Vec<Rat>],
) -> Result<usize, QeError> {
    let n = candidates.len();
    let mut best = 0;
    // Try subset sizes from large to small; stop at the first shattered.
    for size in (1..=n).rev() {
        if size <= best {
            break;
        }
        let mut choice: Vec<usize> = (0..size).collect();
        'combos: loop {
            let subset: Vec<Vec<Rat>> = choice.iter().map(|&i| candidates[i].clone()).collect();
            if shatters(db, phi, params, point_vars, &subset)? {
                best = size;
                break 'combos;
            }
            let mut k = size;
            loop {
                if k == 0 {
                    break 'combos;
                }
                k -= 1;
                if choice[k] < n - (size - k) {
                    choice[k] += 1;
                    for j in k + 1..size {
                        choice[j] = choice[j - 1] + 1;
                    }
                    break;
                }
            }
        }
        if best == size {
            break;
        }
    }
    Ok(best)
}

/// Empirical shattering for families parameterized over a *finite* pool
/// (e.g. the active domain), avoiding QE: returns true iff every subset of
/// `points` is cut out by some parameter tuple in `pool`.
pub fn shatters_over_pool(
    member: &dyn Fn(&[Rat], &[Rat]) -> bool,
    pool: &[Vec<Rat>],
    points: &[Vec<Rat>],
) -> bool {
    let n = points.len();
    let mut seen = vec![false; 1usize << n];
    let mut remaining = 1usize << n;
    for a in pool {
        let mut mask = 0usize;
        for (i, p) in points.iter().enumerate() {
            if member(a, p) {
                mask |= 1 << i;
            }
        }
        if !seen[mask] {
            seen[mask] = true;
            remaining -= 1;
            if remaining == 0 {
                return true;
            }
        }
    }
    false
}

/// The Proposition-5 witness: the quantifier-free query `φ(x, y) ≡ R(x, y)`
/// over the bit-test database
/// `D_k = { (m, i) : 0 ≤ m < 2ᵏ, 0 ≤ i < k, bit i of m is set }`.
/// The family `{φ(m, D)}` shatters `{0, …, k−1}`, so
/// `VCdim(F_φ(D_k)) ≥ k ≥ log |D_k| − log k + 1 ≥ log |adom(D_k)| · (1−o(1))`;
/// the paper states the clean form `VCdim ≥ log |D|`.
pub fn bit_test_database(k: u32) -> (Database, usize) {
    let mut db = Database::new();
    let mut tuples = Vec::new();
    for m in 0u64..(1 << k) {
        for i in 0..k {
            if m & (1 << i) != 0 {
                tuples.push(vec![Rat::from(m as i64), Rat::from(i as i64)]);
            }
        }
    }
    let size = tuples.len();
    db.add_finite_relation("R", tuples).unwrap();
    (db, size)
}

/// Checks that the bit-test family shatters `{0, …, k−1}` using the active
/// domain as the parameter pool (no QE needed: the query is
/// quantifier-free and relational).
pub fn bit_test_shatters(k: u32) -> bool {
    let (db, _) = bit_test_database(k);
    let member = |a: &[Rat], p: &[Rat]| -> bool {
        let rel = db.relation("R").unwrap();
        rel.contains(&[a[0].clone(), p[0].clone()])
    };
    let pool: Vec<Vec<Rat>> = (0u64..(1 << k))
        .map(|m| vec![Rat::from(m as i64)])
        .collect();
    let points: Vec<Vec<Rat>> = (0..k).map(|i| vec![Rat::from(i as i64)]).collect();
    shatters_over_pool(&member, &pool, &points)
}

/// The effective constant of Proposition 6 for active-semantics FO+POLY
/// queries (via the Goldberg–Jerrum VC bounds):
/// `C = 16·k·(p+q)·(log₂(8·e·d·p·s) + 1)`, where `k` = number of point
/// variables, `q` = quantifier rank, `p` = maximal relation arity,
/// `d` = maximal polynomial degree, `s` = number of atomic subformulas.
pub fn goldberg_jerrum_c(k: u32, p: u32, q: u32, d: u32, s: u32) -> f64 {
    let inner = 8.0 * std::f64::consts::E * f64::from(d) * f64::from(p) * f64::from(s);
    16.0 * f64::from(k) * f64::from(p + q) * (inner.log2() + 1.0)
}

/// Proposition 6 upper bound: `VCdim(F_φ(D)) < C·log₂|D|`.
pub fn prop6_bound(c: f64, db_size: usize) -> f64 {
    c * (db_size.max(2) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::parse_formula_with;

    #[test]
    fn halflines_shatter_one_point_not_two() {
        // φ(a; y) ≡ y ≤ a: thresholds shatter any single point but no pair.
        let mut db = Database::new();
        let a = db.vars_mut().intern("a");
        let y = db.vars_mut().intern("y");
        let phi = parse_formula_with("y <= a", db.vars_mut()).unwrap();
        let single = vec![vec![rat(0, 1)]];
        assert!(shatters(&db, &phi, &[a], &[y], &single).unwrap());
        let pair = vec![vec![rat(0, 1)], vec![rat(1, 1)]];
        assert!(!shatters(&db, &phi, &[a], &[y], &pair).unwrap());
        let cands = vec![vec![rat(0, 1)], vec![rat(1, 1)], vec![rat(2, 1)]];
        assert_eq!(vc_dimension_on(&db, &phi, &[a], &[y], &cands).unwrap(), 1);
    }

    #[test]
    fn intervals_have_vc_dimension_two() {
        // φ(a, b; y) ≡ a ≤ y ≤ b.
        let mut db = Database::new();
        let a = db.vars_mut().intern("a");
        let b = db.vars_mut().intern("b");
        let y = db.vars_mut().intern("y");
        let phi = parse_formula_with("a <= y & y <= b", db.vars_mut()).unwrap();
        let two = vec![vec![rat(0, 1)], vec![rat(1, 1)]];
        assert!(shatters(&db, &phi, &[a, b], &[y], &two).unwrap());
        let three = vec![vec![rat(0, 1)], vec![rat(1, 1)], vec![rat(2, 1)]];
        assert!(!shatters(&db, &phi, &[a, b], &[y], &three).unwrap());
        assert_eq!(
            vc_dimension_on(&db, &phi, &[a, b], &[y], &three).unwrap(),
            2
        );
    }

    #[test]
    fn prop5_family_shatters_log_many() {
        for k in 1..=5 {
            assert!(bit_test_shatters(k), "k = {k}");
        }
    }

    #[test]
    fn prop5_exceeds_log_db() {
        // VCdim ≥ k while |D| = k·2^(k-1): k ≥ log2(|D|) − log2(k) + 1.
        let k = 4u32;
        let (_, size) = bit_test_database(k);
        assert_eq!(size, (k as usize) << (k - 1)); // k·2^(k−1)
        let vc_lower = k as f64;
        assert!(vc_lower >= (size as f64).log2() - (k as f64).log2() + 1.0 - 1e-9);
    }

    #[test]
    fn goldberg_jerrum_is_modest() {
        let c = goldberg_jerrum_c(2, 2, 1, 1, 8);
        assert!(c > 0.0 && c < 1e4);
        assert!(prop6_bound(c, 100) > c);
    }

    #[test]
    fn pool_shattering() {
        // Pool {0,1,2,3} as 2-bit masks, membership = bit test: shatters 2 points.
        let member = |a: &[Rat], p: &[Rat]| {
            let m = a[0].numer().to_i64().unwrap();
            let i = p[0].numer().to_i64().unwrap();
            m & (1 << i) != 0
        };
        let pool: Vec<Vec<Rat>> = (0..4).map(|m| vec![rat(m, 1)]).collect();
        let pts: Vec<Vec<Rat>> = (0..2).map(|i| vec![rat(i, 1)]).collect();
        assert!(shatters_over_pool(&member, &pool, &pts));
        let three: Vec<Vec<Rat>> = (0..3).map(|i| vec![rat(i, 1)]).collect();
        assert!(!shatters_over_pool(&member, &pool, &three));
    }
}
